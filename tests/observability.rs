//! The observability layer must be free when disabled and passive when
//! enabled: attaching the null sink or a ring recorder may not change
//! any observable behavior of a run — results, printed output, heap,
//! mutator, or (deterministic) GC statistics — under any strategy.

use tfgc::obs::{GcEvent, Obs};
use tfgc::{Compiled, Strategy, VmConfig};

fn churn() -> Compiled {
    Compiled::compile(
        "fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
         fun go n = if n = 0 then 0 else sum (build 25) + go (n - 1) ;
         go 30",
    )
    .expect("compiles")
}

fn cfg(s: Strategy) -> VmConfig {
    // Small heap + forced collections so every strategy actually GCs
    // (large enough for the tagged encoding's header overhead).
    // one no-liveness frame per `go` level keeps its dead list alive.
    VmConfig::new(s).heap_words(1 << 13).force_gc_every(120)
}

/// A null-sink run is bit-identical to a plain (no-sink) run.
#[test]
fn null_sink_changes_nothing() {
    let c = churn();
    for s in Strategy::ALL {
        let meta = c.metadata(s);
        let plain = c.run_with_meta(cfg(s), meta.clone()).expect("plain run");
        let (nulled, obs) = c
            .run_observed(cfg(s), meta, Obs::null())
            .expect("null-sink run");
        assert!(!obs.enabled(), "{s}: null sink stays disabled");
        assert!(plain.heap.collections > 0, "{s}: workload collects");
        assert_eq!(nulled.result, plain.result, "{s}");
        assert_eq!(nulled.printed, plain.printed, "{s}");
        assert_eq!(nulled.heap, plain.heap, "{s}: HeapStats identical");
        assert_eq!(nulled.mutator, plain.mutator, "{s}: MutatorStats identical");
        assert_eq!(
            nulled.gc.deterministic(),
            plain.gc.deterministic(),
            "{s}: GcStats identical up to wall-clock pause"
        );
    }
}

/// A ring recorder observes without perturbing, under all five
/// strategies, and its aggregates agree with the VM's own counters.
#[test]
fn ring_recorder_is_passive_across_strategies() {
    let c = churn();
    for s in Strategy::ALL {
        let plain = c.run_with(cfg(s)).expect("plain run");
        let (recorded, rec) = c.run_profiled(cfg(s), 1 << 12).expect("recorded run");
        assert_eq!(recorded.result, plain.result, "{s}");
        assert_eq!(recorded.printed, plain.printed, "{s}");
        assert_eq!(recorded.heap, plain.heap, "{s}");
        assert_eq!(recorded.mutator, plain.mutator, "{s}");
        assert_eq!(recorded.gc.deterministic(), plain.gc.deterministic(), "{s}");

        assert_eq!(rec.strategy(), Some(s.name()), "{s}");
        assert_eq!(
            rec.collections().len() as u64,
            plain.heap.collections,
            "{s}: one summary per collection"
        );
        assert_eq!(
            rec.sites().total_allocs(),
            plain.heap.allocations,
            "{s}: every allocation attributed to a site"
        );
    }
}

/// Histogram totals equal the number of recorded events, and each
/// histogram's bucket counts sum back to its total (integration-level
/// check of the obs crate's property, on real event streams).
#[test]
fn histogram_buckets_sum_to_recorded_events() {
    let c = churn();
    let (out, rec) = c
        .run_profiled(cfg(Strategy::Compiled), 1 << 12)
        .expect("runs");

    let pauses = rec.pause_hist();
    assert_eq!(pauses.count(), out.heap.collections);
    assert_eq!(
        pauses.buckets().iter().map(|(_, n)| n).sum::<u64>(),
        pauses.count(),
        "pause buckets sum to pause count"
    );

    let allocs = rec.alloc_hist();
    assert_eq!(allocs.count(), out.heap.allocations);
    assert_eq!(
        allocs.buckets().iter().map(|(_, n)| n).sum::<u64>(),
        allocs.count(),
        "alloc buckets sum to alloc count"
    );

    // The retained raw stream agrees too (capacity was not exceeded).
    assert_eq!(rec.dropped(), 0);
    let raw_allocs = rec
        .events()
        .iter()
        .filter(|e| matches!(e, GcEvent::Alloc { .. }))
        .count() as u64;
    assert_eq!(raw_allocs, out.heap.allocations);
}

/// Serve-mode observation neutrality: driving the request engine with
/// the full serve telemetry sink (latency histograms, windowed
/// steady-state metrics, occupancy sampling) produces bit-identical
/// per-request results — and identical engine reports — to a `NullSink`
/// run, across strategies. The request-lifecycle hooks sit on the
/// `Obs::emit` closure path, so the disabled run never even constructs
/// the events.
#[test]
fn serve_telemetry_is_observation_neutral() {
    use tfgc::tasking::{serve_requests, Request, SuspendPolicy, TaskConfig};

    let c = Compiled::compile(
        "fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
         fun churn n = sum (build n) ;
         fun spin n = if n = 0 then 0 else (let val x = n * n in spin (n - 1) end) ;
         0",
    )
    .expect("compiles");
    let churn = tfgc::tasking::find_fn(&c.program, "churn").expect("churn");
    let spin = tfgc::tasking::find_fn(&c.program, "spin").expect("spin");
    let requests: Vec<Request> = (0..24)
        .map(|i| {
            Request::new(
                if i % 5 == 4 { spin } else { churn },
                if i % 5 == 4 { 200 } else { 25 + (i % 7) * 10 },
                (i % 5 == 4) as u32,
            )
        })
        .collect();

    for s in [Strategy::Compiled, Strategy::Tagged, Strategy::AppelPerFn] {
        let mk = || {
            let mut tc = TaskConfig::new(s);
            tc.heap_words = 1 << 10;
            tc.policy = SuspendPolicy::EveryCall;
            tc
        };
        let (plain, obs) =
            serve_requests(&c.program, &requests, 3, 0, mk(), Obs::null()).expect("null run");
        assert!(!obs.enabled(), "{s}");
        let (observed, obs) = serve_requests(
            &c.program,
            &requests,
            3,
            16,
            mk(),
            Obs::serve(1 << 12, 1_000_000),
        )
        .expect("observed run");
        assert!(
            plain.heap.collections > 0,
            "{s}: the differential must cover collections"
        );
        assert_eq!(
            observed.outcomes, plain.outcomes,
            "{s}: responses identical"
        );
        assert_eq!(observed.printed, plain.printed, "{s}");
        assert_eq!(observed.heap, plain.heap, "{s}: HeapStats identical");
        assert_eq!(
            observed.mutator, plain.mutator,
            "{s}: MutatorStats identical"
        );
        assert_eq!(
            observed.gc.deterministic(),
            plain.gc.deterministic(),
            "{s}: GcStats identical up to wall-clock pause"
        );
        assert_eq!(
            (observed.suspension_checks, observed.suspension_events),
            (plain.suspension_checks, plain.suspension_events),
            "{s}: suspension accounting identical"
        );

        // The telemetry itself is coherent: every request's start and
        // end were seen, and the sampled occupancy timeline is nonempty.
        let rec = obs.into_serve_recorder().expect("serve sink");
        assert_eq!(rec.requests(), (24, 24, 0), "{s}");
        assert_eq!(rec.latency_hist().count(), 24, "{s}");
        assert!(!rec.samples().is_empty(), "{s}");
    }

    // The batch adapter (run_tasks) rides the same engine: its reports
    // must also be sink-independent.
    let entries = vec![(churn, 12), (churn, 15), (spin, 200)];
    let cfg = || {
        let mut tc = TaskConfig::new(Strategy::Compiled);
        tc.heap_words = 1 << 10;
        tc
    };
    let plain = tfgc::tasking::run_tasks(&c.program, &entries, cfg()).expect("plain tasks");
    let (observed, _) = tfgc::tasking::run_tasks_with_obs(
        &c.program,
        &entries,
        cfg(),
        Obs::serve(1 << 12, 1_000_000),
    )
    .expect("observed tasks");
    assert_eq!(observed.results, plain.results);
    assert_eq!(observed.task_errors, plain.task_errors);
    assert_eq!(observed.heap, plain.heap);
    assert_eq!(observed.mutator, plain.mutator);
}

/// Overload decisions are observation-neutral and conserve every
/// request: the admission policy, deadline budgets, and circuit breaker
/// are driven by the quantum clock and the seeded jitter stream, never
/// by telemetry — so a null-sink run and a full serve-sink run must
/// agree bit-for-bit on which requests were shed (and why), which were
/// quarantined, and the breaker's entire history. Checked across seeds
/// and strategies, with `completed + failed + shed == submitted` in
/// every configuration.
#[test]
fn overload_decisions_are_observation_neutral_and_conserved() {
    use tfgc::tasking::{
        serve_requests_overload, AdmissionPolicy, OverloadConfig, Request, SuspendPolicy,
        TaskConfig,
    };

    let c = Compiled::compile(
        "fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
         fun churn n = sum (build n) ;
         fun runaway n = if n = 0 then 0 else runaway (n + 1) ;
         0",
    )
    .expect("compiles");
    let churn = tfgc::tasking::find_fn(&c.program, "churn").expect("churn");
    let runaway = tfgc::tasking::find_fn(&c.program, "runaway").expect("runaway");
    let requests: Vec<Request> = (0..30)
        .map(|i| {
            if i % 6 == 5 {
                Request::new(runaway, 1, 1)
            } else {
                Request::new(churn, 20 + (i % 5) * 8, 0)
            }
        })
        .collect();

    let mut sheds = 0u64;
    let mut deadline_kills = 0usize;
    for s in [Strategy::Compiled, Strategy::Tagged] {
        for seed in [1u64, 9] {
            let overload = OverloadConfig {
                queue_cap: 2,
                admission: AdmissionPolicy::RetryBackoff {
                    max_attempts: 4,
                    base: 8,
                },
                deadline_quanta: Some(600),
                breaker_threshold: 2,
                breaker_cooldown: 150,
                seed,
                ..OverloadConfig::none()
            };
            let mk = || {
                let mut tc = TaskConfig::new(s);
                tc.heap_words = 1 << 10;
                tc.policy = SuspendPolicy::EveryCall;
                tc
            };
            let run =
                |obs| serve_requests_overload(&c.program, &requests, 2, 16, mk(), overload, obs);
            let (plain, obs) = run(Obs::null()).expect("null run");
            assert!(!obs.enabled(), "{s} seed {seed}");
            let (observed, _) = run(Obs::serve(1 << 12, 1_000_000)).expect("observed run");
            let (replayed, _) = run(Obs::null()).expect("replayed null run");

            assert_eq!(
                observed.outcomes, plain.outcomes,
                "{s} seed {seed}: shed/quarantine decisions must not depend on the sink"
            );
            assert_eq!(
                replayed.outcomes, plain.outcomes,
                "{s} seed {seed}: determinism"
            );
            assert_eq!(
                (
                    observed.shed,
                    observed.breaker_trips,
                    &observed.breaker_final
                ),
                (plain.shed, plain.breaker_trips, &plain.breaker_final),
                "{s} seed {seed}: breaker history identical"
            );
            assert_eq!(
                plain.completed + plain.failed + plain.shed,
                plain.outcomes.len() as u64,
                "{s} seed {seed}: conservation"
            );
            sheds += plain.shed;
            deadline_kills += plain
                .outcomes
                .iter()
                .filter(|o| matches!(o.error, Some(tfgc::VmError::DeadlineExceeded { .. })))
                .count();
        }
    }
    // The matrix proves nothing unless both mechanisms actually fired.
    assert!(sheds > 0, "no configuration ever shed");
    assert!(deadline_kills > 0, "no runaway was ever quarantined");
}

/// Reported pause time measures collection work, not observation setup:
/// the pause clock starts *after* the `CollectionBegin` event is
/// emitted, so a sink that pays per-emit cost cannot charge its
/// begin-of-collection bookkeeping to the collector. Per-event emits
/// *during* a collection (frame visits, copies) still legitimately
/// count, so the bound is deliberately loose — it catches the
/// order-of-magnitude regression of timing the sink itself, not
/// scheduling jitter.
#[test]
fn pause_excludes_sink_setup() {
    let c = churn();
    let meta = c.metadata(Strategy::Compiled);
    let (plain, _) = c
        .run_observed(cfg(Strategy::Compiled), meta, Obs::null())
        .expect("null-sink run");
    let (ringed, rec) = c
        .run_profiled(cfg(Strategy::Compiled), 1 << 12)
        .expect("ring run");
    assert!(plain.heap.collections > 0);
    assert_eq!(plain.heap.collections, ringed.heap.collections);

    let mean = |gc: &tfgc::gc::GcStats, n: u64| gc.pause_nanos as f64 / n as f64;
    let null_mean = mean(&plain.gc, plain.heap.collections);
    let ring_mean = mean(&ringed.gc, ringed.heap.collections);
    // Within noise: a generous multiplicative factor plus absolute
    // slack (debug builds on loaded CI machines jitter by tens of µs).
    assert!(
        ring_mean <= null_mean * 25.0 + 2_000_000.0,
        "ring-sink mean pause {ring_mean:.0}ns vs null-sink {null_mean:.0}ns — \
         observation overhead is being charged to the collector"
    );
    // The recorder's own histogram agrees with the VM's total.
    assert_eq!(
        rec.pause_hist().count(),
        ringed.heap.collections,
        "one pause sample per collection"
    );
}
