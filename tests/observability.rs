//! The observability layer must be free when disabled and passive when
//! enabled: attaching the null sink or a ring recorder may not change
//! any observable behavior of a run — results, printed output, heap,
//! mutator, or (deterministic) GC statistics — under any strategy.

use tfgc::obs::{GcEvent, Obs};
use tfgc::{Compiled, Strategy, VmConfig};

fn churn() -> Compiled {
    Compiled::compile(
        "fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
         fun go n = if n = 0 then 0 else sum (build 25) + go (n - 1) ;
         go 30",
    )
    .expect("compiles")
}

fn cfg(s: Strategy) -> VmConfig {
    // Small heap + forced collections so every strategy actually GCs
    // (large enough for the tagged encoding's header overhead).
    // one no-liveness frame per `go` level keeps its dead list alive.
    VmConfig::new(s).heap_words(1 << 13).force_gc_every(120)
}

/// A null-sink run is bit-identical to a plain (no-sink) run.
#[test]
fn null_sink_changes_nothing() {
    let c = churn();
    for s in Strategy::ALL {
        let meta = c.metadata(s);
        let plain = c.run_with_meta(cfg(s), meta.clone()).expect("plain run");
        let (nulled, obs) = c
            .run_observed(cfg(s), meta, Obs::null())
            .expect("null-sink run");
        assert!(!obs.enabled(), "{s}: null sink stays disabled");
        assert!(plain.heap.collections > 0, "{s}: workload collects");
        assert_eq!(nulled.result, plain.result, "{s}");
        assert_eq!(nulled.printed, plain.printed, "{s}");
        assert_eq!(nulled.heap, plain.heap, "{s}: HeapStats identical");
        assert_eq!(nulled.mutator, plain.mutator, "{s}: MutatorStats identical");
        assert_eq!(
            nulled.gc.deterministic(),
            plain.gc.deterministic(),
            "{s}: GcStats identical up to wall-clock pause"
        );
    }
}

/// A ring recorder observes without perturbing, under all five
/// strategies, and its aggregates agree with the VM's own counters.
#[test]
fn ring_recorder_is_passive_across_strategies() {
    let c = churn();
    for s in Strategy::ALL {
        let plain = c.run_with(cfg(s)).expect("plain run");
        let (recorded, rec) = c.run_profiled(cfg(s), 1 << 12).expect("recorded run");
        assert_eq!(recorded.result, plain.result, "{s}");
        assert_eq!(recorded.printed, plain.printed, "{s}");
        assert_eq!(recorded.heap, plain.heap, "{s}");
        assert_eq!(recorded.mutator, plain.mutator, "{s}");
        assert_eq!(recorded.gc.deterministic(), plain.gc.deterministic(), "{s}");

        assert_eq!(rec.strategy(), Some(s.name()), "{s}");
        assert_eq!(
            rec.collections().len() as u64,
            plain.heap.collections,
            "{s}: one summary per collection"
        );
        assert_eq!(
            rec.sites().total_allocs(),
            plain.heap.allocations,
            "{s}: every allocation attributed to a site"
        );
    }
}

/// Histogram totals equal the number of recorded events, and each
/// histogram's bucket counts sum back to its total (integration-level
/// check of the obs crate's property, on real event streams).
#[test]
fn histogram_buckets_sum_to_recorded_events() {
    let c = churn();
    let (out, rec) = c
        .run_profiled(cfg(Strategy::Compiled), 1 << 12)
        .expect("runs");

    let pauses = rec.pause_hist();
    assert_eq!(pauses.count(), out.heap.collections);
    assert_eq!(
        pauses.buckets().iter().map(|(_, n)| n).sum::<u64>(),
        pauses.count(),
        "pause buckets sum to pause count"
    );

    let allocs = rec.alloc_hist();
    assert_eq!(allocs.count(), out.heap.allocations);
    assert_eq!(
        allocs.buckets().iter().map(|(_, n)| n).sum::<u64>(),
        allocs.count(),
        "alloc buckets sum to alloc count"
    );

    // The retained raw stream agrees too (capacity was not exceeded).
    assert_eq!(rec.dropped(), 0);
    let raw_allocs = rec
        .events()
        .iter()
        .filter(|e| matches!(e, GcEvent::Alloc { .. }))
        .count() as u64;
    assert_eq!(raw_allocs, out.heap.allocations);
}

/// Reported pause time measures collection work, not observation setup:
/// the pause clock starts *after* the `CollectionBegin` event is
/// emitted, so a sink that pays per-emit cost cannot charge its
/// begin-of-collection bookkeeping to the collector. Per-event emits
/// *during* a collection (frame visits, copies) still legitimately
/// count, so the bound is deliberately loose — it catches the
/// order-of-magnitude regression of timing the sink itself, not
/// scheduling jitter.
#[test]
fn pause_excludes_sink_setup() {
    let c = churn();
    let meta = c.metadata(Strategy::Compiled);
    let (plain, _) = c
        .run_observed(cfg(Strategy::Compiled), meta, Obs::null())
        .expect("null-sink run");
    let (ringed, rec) = c
        .run_profiled(cfg(Strategy::Compiled), 1 << 12)
        .expect("ring run");
    assert!(plain.heap.collections > 0);
    assert_eq!(plain.heap.collections, ringed.heap.collections);

    let mean = |gc: &tfgc::gc::GcStats, n: u64| gc.pause_nanos as f64 / n as f64;
    let null_mean = mean(&plain.gc, plain.heap.collections);
    let ring_mean = mean(&ringed.gc, ringed.heap.collections);
    // Within noise: a generous multiplicative factor plus absolute
    // slack (debug builds on loaded CI machines jitter by tens of µs).
    assert!(
        ring_mean <= null_mean * 25.0 + 2_000_000.0,
        "ring-sink mean pause {ring_mean:.0}ns vs null-sink {null_mean:.0}ns — \
         observation overhead is being charged to the collector"
    );
    // The recorder's own histogram agrees with the VM's total.
    assert_eq!(
        rec.pause_hist().count(),
        ringed.heap.collections,
        "one pause sample per collection"
    );
}
