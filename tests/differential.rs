//! Cross-strategy differential testing.
//!
//! Every strategy must compute identical observable results on every
//! workload, under both roomy heaps and heaps small enough to force many
//! collections, and with collections forced at every allocation. Any
//! divergence is a collector soundness bug.

use tfgc::{Compiled, Strategy, VmConfig};

fn differential(name: &str, src: &str, heap_words: usize) {
    let compiled = Compiled::compile(src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut first: Option<(Strategy, String, Vec<i64>)> = None;
    for s in Strategy::ALL {
        let out = compiled
            .run_with(VmConfig::new(s).heap_words(heap_words))
            .unwrap_or_else(|e| panic!("{name} under {s}: {e}"));
        match &first {
            None => first = Some((s, out.result, out.printed)),
            Some((s0, r0, p0)) => {
                assert_eq!(&out.result, r0, "{name}: {s} vs {s0}");
                assert_eq!(&out.printed, p0, "{name}: {s} vs {s0}");
            }
        }
    }
}

#[test]
fn workload_suite_is_strategy_independent() {
    for (name, src) in tfgc::workloads::suite() {
        differential(name, &src, 1 << 15);
    }
}

#[test]
fn paper_examples_are_strategy_independent() {
    use tfgc::workloads::paper_examples as pe;
    differential("append_mono", &pe::append_mono(40), 1 << 13);
    differential("append_poly", &pe::append_poly(40), 1 << 13);
    differential("map_closure", &pe::map_closure(60), 1 << 13);
    differential("poly_f_main", pe::poly_f_main(), 1 << 13);
    differential("variant_records", &pe::variant_records(40), 1 << 13);
    differential("higher_order_poly", &pe::higher_order_poly(20), 1 << 13);
}

#[test]
fn forced_gc_at_every_allocation_agrees() {
    // The most hostile schedule: a collection before every allocation.
    let srcs = [
        (
            "rev",
            "fun append [] ys = ys | append (x :: xs) ys = x :: append xs ys ;
             fun rev xs = case xs of [] => [] | x :: r => append (rev r) [x] ;
             rev [1, 2, 3, 4, 5, 6]",
        ),
        (
            "tree",
            "datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree ;
             fun insert t x = case t of Leaf => Node (Leaf, x, Leaf)
               | Node (l, v, r) => if x < v then Node (insert l x, v, r)
                 else Node (l, v, insert r x) ;
             fun build i n t = if i > n then t else build (i + 1) n (insert t ((i * 7) mod 13)) ;
             fun size t = case t of Leaf => 0 | Node (l, _, r) => 1 + size l + size r ;
             size (build 1 20 Leaf)",
        ),
        (
            "closures",
            "fun map f xs = case xs of [] => [] | x :: r => f x :: map f r ;
             fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
             let val k = 5 in sum (map (fn x => x * k) [1, 2, 3, 4]) end",
        ),
    ];
    for (name, src) in srcs {
        let compiled = Compiled::compile(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut first: Option<String> = None;
        for s in Strategy::ALL {
            let out = compiled
                .run_with(VmConfig::new(s).heap_words(1 << 13).force_gc_every(1))
                .unwrap_or_else(|e| panic!("{name} under {s}: {e}"));
            match &first {
                None => first = Some(out.result),
                Some(r) => assert_eq!(&out.result, r, "{name}: {s}"),
            }
        }
    }
}

#[test]
fn generated_programs_agree_across_strategies() {
    // Seeded random well-typed programs; every strategy must agree.
    let cfg = tfgc::workloads::GenConfig::default();
    for seed in 0..25u64 {
        let src = tfgc::workloads::generate(seed, &cfg);
        let compiled =
            Compiled::compile(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        let mut first: Option<(Strategy, String)> = None;
        for s in Strategy::ALL {
            let out = compiled
                .run_with(VmConfig::new(s).heap_words(1 << 14))
                .unwrap_or_else(|e| panic!("seed {seed} under {s}: {e}\n{src}"));
            match &first {
                None => first = Some((s, out.result)),
                Some((s0, r)) => {
                    assert_eq!(&out.result, r, "seed {seed}: {s} vs {s0}\n{src}")
                }
            }
        }
    }
}

#[test]
fn generated_programs_agree_under_pressure() {
    // Same generator, tiny heap: collections interleave with everything.
    let cfg = tfgc::workloads::GenConfig::default();
    for seed in 0..12u64 {
        let src = tfgc::workloads::generate(seed, &cfg);
        let compiled =
            Compiled::compile(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        let mut first: Option<String> = None;
        for s in Strategy::ALL {
            let out = compiled
                .run_with(VmConfig::new(s).heap_words(1 << 14).force_gc_every(3))
                .unwrap_or_else(|e| panic!("seed {seed} under {s}: {e}\n{src}"));
            match &first {
                None => first = Some(out.result),
                Some(r) => assert_eq!(&out.result, r, "seed {seed}: {s}\n{src}"),
            }
        }
    }
}

#[test]
fn refined_gc_points_are_sound() {
    // The closure-flow refinement omits strictly more gc_words; if it
    // omitted a wrong one, the collector would panic on encountering an
    // on-stack frame without a routine. Run the whole suite (plus the
    // closure-heavy programs) under refined metadata with forced
    // collections.
    for (name, src) in tfgc::workloads::suite() {
        let c = Compiled::compile(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let base = c
            .run_with(VmConfig::new(Strategy::Compiled).heap_words(1 << 15))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let meta = c.metadata_refined(Strategy::Compiled);
        let refined_omits = meta.omitted_gc_words();
        let first_order_omits = c.metadata(Strategy::Compiled).omitted_gc_words();
        assert!(
            refined_omits >= first_order_omits,
            "{name}: refinement must only remove gc_words"
        );
        let out = c
            .run_with_meta(
                VmConfig::new(Strategy::Compiled)
                    .heap_words(1 << 15)
                    .force_gc_every(25),
                meta,
            )
            .unwrap_or_else(|e| panic!("{name} refined: {e}"));
        assert_eq!(out.result, base.result, "{name}");
    }
}
