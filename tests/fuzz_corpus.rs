//! Replays the committed fuzz corpus (`tests/corpus/*.tfml`).
//!
//! Every file in the corpus is either a minimized reproducer from a past
//! `tfml fuzz` campaign or a hand-seeded regression shape for a latent bug
//! class fixed in an earlier change. Each program runs across all five GC
//! strategies, with trace plans both on and off, on a tiny growable heap
//! with collections forced every few allocations and the heap verifier
//! enabled. All configurations must agree on the observable outcome.

use std::fs;
use std::path::PathBuf;

use tfgc::{Compiled, Strategy, VmConfig};

fn corpus_files() -> Vec<PathBuf> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .expect("tests/corpus must exist")
        .map(|e| e.expect("readable corpus entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "tfml"))
        .collect();
    paths.sort();
    paths
}

#[test]
fn corpus_is_not_empty() {
    assert!(
        !corpus_files().is_empty(),
        "tests/corpus holds committed fuzz reproducers and must never be empty"
    );
}

#[test]
fn corpus_replays_identically_under_generational_collection() {
    // Same agreement contract as the single-generation replay, but with a
    // tiny bump-pointer nursery so every reproducer exercises minor
    // collections, survivor aging, and promotion under the heap verifier.
    for path in corpus_files() {
        let name = path
            .file_name()
            .expect("corpus file name")
            .to_string_lossy()
            .into_owned();
        let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: read: {e}"));
        let compiled = Compiled::compile(&src).unwrap_or_else(|e| panic!("{name}: compile: {e}"));
        let mut reference: Option<(String, Vec<i64>)> = None;
        for s in Strategy::ALL {
            for generational in [false, true] {
                let mut cfg = VmConfig::new(s)
                    .heap_words(1 << 10)
                    .heap_max_words(1 << 16)
                    .force_gc_every(7)
                    .verify_heap(true)
                    .trace_plans(true);
                if generational {
                    cfg = cfg.generational(1 << 8, 1);
                }
                let out = compiled
                    .run_with_meta(cfg, compiled.metadata(s))
                    .unwrap_or_else(|e| panic!("{name} under {s} gen={generational}: {e}"));
                match &reference {
                    None => reference = Some((out.result, out.printed)),
                    Some((r0, p0)) => {
                        assert_eq!(
                            &out.result, r0,
                            "{name}: result under {s} gen={generational}"
                        );
                        assert_eq!(
                            &out.printed, p0,
                            "{name}: printed under {s} gen={generational}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn corpus_replays_identically_across_strategies_and_plans() {
    for path in corpus_files() {
        let name = path
            .file_name()
            .expect("corpus file name")
            .to_string_lossy()
            .into_owned();
        let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: read: {e}"));
        let compiled = Compiled::compile(&src).unwrap_or_else(|e| panic!("{name}: compile: {e}"));
        let mut reference: Option<(String, Vec<i64>)> = None;
        for s in Strategy::ALL {
            for plans in [false, true] {
                let cfg = VmConfig::new(s)
                    .heap_words(1 << 10)
                    .heap_max_words(1 << 16)
                    .force_gc_every(7)
                    .verify_heap(true)
                    .trace_plans(plans);
                let out = compiled
                    .run_with_meta(cfg, compiled.metadata(s))
                    .unwrap_or_else(|e| panic!("{name} under {s} plans={plans}: {e}"));
                match &reference {
                    None => reference = Some((out.result, out.printed)),
                    Some((r0, p0)) => {
                        assert_eq!(&out.result, r0, "{name}: result under {s} plans={plans}");
                        assert_eq!(&out.printed, p0, "{name}: printed under {s} plans={plans}");
                    }
                }
            }
        }
    }
}
