//! GC-time metadata cache: memoization must be invisible.
//!
//! The cache ([`tfgc::gc::RtCache`]) memoizes template evaluation,
//! Figure-3 extraction, and descriptor conversion during collection.
//! `eval_sx` is a pure function of (template, environment), so a cached
//! collection must be **bit-identical** to an uncached one in every
//! mutator-observable way — results, printed output, heap statistics,
//! and the cache-insensitive part of the GC statistics — under all five
//! strategies. The deep-recursion tests then check the point of the
//! cache: routine-construction work per collection is proportional to
//! the number of distinct (site, environment) shapes, not to the number
//! of frames on the stack.

use tfgc::workloads::programs::poly_deep_alloc;
use tfgc::{Compiled, Strategy, VmConfig};

/// Runs `src` with the cache on and off under every strategy and insists
/// on bit-identical observable behavior. Returns the number of
/// collections observed (identical between the two runs).
fn cached_uncached_differential(name: &str, src: &str, heap_words: usize, force: u64) -> u64 {
    let c = Compiled::compile(src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut collections = u64::MAX;
    for s in Strategy::ALL {
        let base = VmConfig::new(s)
            .heap_words(heap_words)
            .force_gc_every(force);
        let cached = c
            .run_with(base.clone().rt_cache(true))
            .unwrap_or_else(|e| panic!("{name} under {s} (cached): {e}"));
        let uncached = c
            .run_with(base.rt_cache(false))
            .unwrap_or_else(|e| panic!("{name} under {s} (uncached): {e}"));

        collections = collections.min(cached.heap.collections);
        assert_eq!(cached.result, uncached.result, "{name} under {s}: result");
        assert_eq!(
            cached.printed, uncached.printed,
            "{name} under {s}: printed"
        );
        assert_eq!(
            cached.heap, uncached.heap,
            "{name} under {s}: HeapStats (copies, allocations, collections)"
        );
        assert_eq!(
            cached.mutator, uncached.mutator,
            "{name} under {s}: MutatorStats"
        );
        assert_eq!(
            cached.gc.cache_insensitive(),
            uncached.gc.cache_insensitive(),
            "{name} under {s}: GcStats minus cache accounting"
        );
        if s != Strategy::Tagged {
            assert_eq!(
                uncached.gc.rt_cache_hits + uncached.gc.rt_cache_misses,
                0,
                "{name} under {s}: disabled cache reports no traffic"
            );
        }
    }
    collections
}

#[test]
fn cached_collections_are_bit_identical_polymorphic() {
    let n = cached_uncached_differential("poly_deep", &poly_deep_alloc(150), 1 << 14, 40);
    assert!(n > 0, "workload must collect for the comparison to bite");
}

#[test]
fn cached_collections_are_bit_identical_closures() {
    use tfgc::workloads::paper_examples as pe;
    let a = cached_uncached_differential("map_closure", &pe::map_closure(60), 1 << 13, 30);
    let b =
        cached_uncached_differential("higher_order_poly", &pe::higher_order_poly(20), 1 << 13, 25);
    let c = cached_uncached_differential("variant_records", &pe::variant_records(40), 1 << 13, 30);
    assert!(a > 0 && b > 0 && c > 0, "closure workloads must collect");
}

#[test]
fn cached_collections_are_bit_identical_suite() {
    for (name, src) in tfgc::workloads::suite() {
        cached_uncached_differential(name, &src, 1 << 15, 200);
    }
}

/// Deep recursion under the forward (§3) strategies: ≥10⁵ frames on the
/// stack during collections, yet routine construction stays bounded by
/// the number of distinct shapes.
#[test]
fn deep_recursion_builds_o_sites_not_o_frames() {
    const DEPTH: usize = 100_000;
    let c = Compiled::compile(&poly_deep_alloc(DEPTH)).expect("compiles");
    for s in [Strategy::Compiled, Strategy::Interpreted] {
        let out = c
            .run_with(VmConfig::new(s).heap_words(1 << 21).force_gc_every(60_000))
            .unwrap_or_else(|e| panic!("{s}: {e}"));
        assert!(out.heap.collections > 0, "{s}: must collect");
        assert!(
            out.gc.frames_visited >= DEPTH as u64,
            "{s}: a collection saw the deep stack (visited {})",
            out.gc.frames_visited
        );
        assert!(
            out.gc.rt_cache_hits > 0,
            "{s}: repeated activations hit the cache"
        );
        // The headline bound: evaluating the same θ at 10⁵ activations
        // of the same call sites must not build 10⁵ routine trees.
        assert!(
            out.gc.rt_nodes_built * 100 < out.gc.frames_visited,
            "{s}: built {} nodes for {} frame visits — O(frames), not O(sites)",
            out.gc.rt_nodes_built,
            out.gc.frames_visited
        );
    }
}

/// Same check for Appel's backward scheme at a depth its O(depth²) chain
/// re-walking can afford. The cache memoizes each frame's θ evaluation,
/// so even the quadratic traversal builds O(distinct shapes) nodes.
#[test]
fn deep_recursion_appel_backward_scheme() {
    const DEPTH: usize = 2_000;
    let c = Compiled::compile(&poly_deep_alloc(DEPTH)).expect("compiles");
    let out = c
        .run_with(
            VmConfig::new(Strategy::AppelPerFn)
                .heap_words(1 << 18)
                .force_gc_every(1_500),
        )
        .expect("runs");
    assert!(out.heap.collections > 0);
    assert!(out.gc.chain_steps > out.gc.frames_visited, "quadratic term");
    assert!(out.gc.rt_cache_hits > 0);
    assert!(
        out.gc.rt_nodes_built * 100 < out.gc.chain_steps,
        "built {} nodes for {} chain steps",
        out.gc.rt_nodes_built,
        out.gc.chain_steps
    );
}

/// The cache's hit counters surface in the per-collection event stream.
#[test]
fn cache_counters_reach_the_event_stream() {
    let c = Compiled::compile(&poly_deep_alloc(150)).expect("compiles");
    let (out, rec) = c
        .run_profiled(
            VmConfig::new(Strategy::Compiled)
                .heap_words(1 << 14)
                .force_gc_every(40),
            1 << 12,
        )
        .expect("runs");
    assert!(out.heap.collections > 1);
    let summed: u64 = rec.collections().iter().map(|c| c.rt_cache_hits).sum();
    assert_eq!(summed, out.gc.rt_cache_hits, "summaries sum to the total");
    let summed_misses: u64 = rec.collections().iter().map(|c| c.rt_cache_misses).sum();
    assert_eq!(summed_misses, out.gc.rt_cache_misses);
    assert!(summed > 0, "a collecting polymorphic run hits the cache");
}
