//! GC-time metadata cache: memoization must be invisible.
//!
//! The cache ([`tfgc::gc::RtCache`]) memoizes template evaluation,
//! Figure-3 extraction, and descriptor conversion during collection.
//! `eval_sx` is a pure function of (template, environment), so a cached
//! collection must be **bit-identical** to an uncached one in every
//! mutator-observable way — results, printed output, heap statistics,
//! and the cache-insensitive part of the GC statistics — under all five
//! strategies. The deep-recursion tests then check the point of the
//! cache: routine-construction work per collection is proportional to
//! the number of distinct (site, environment) shapes, not to the number
//! of frames on the stack.

use tfgc::workloads::programs::poly_deep_alloc;
use tfgc::{Compiled, Strategy, VmConfig};

/// Runs `src` with the cache on and off under every strategy and insists
/// on bit-identical observable behavior. Returns the number of
/// collections observed (identical between the two runs).
fn cached_uncached_differential(name: &str, src: &str, heap_words: usize, force: u64) -> u64 {
    let c = Compiled::compile(src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut collections = u64::MAX;
    for s in Strategy::ALL {
        let base = VmConfig::new(s)
            .heap_words(heap_words)
            .force_gc_every(force);
        let cached = c
            .run_with(base.clone().rt_cache(true))
            .unwrap_or_else(|e| panic!("{name} under {s} (cached): {e}"));
        let uncached = c
            .run_with(base.rt_cache(false))
            .unwrap_or_else(|e| panic!("{name} under {s} (uncached): {e}"));

        collections = collections.min(cached.heap.collections);
        assert_eq!(cached.result, uncached.result, "{name} under {s}: result");
        assert_eq!(
            cached.printed, uncached.printed,
            "{name} under {s}: printed"
        );
        assert_eq!(
            cached.heap, uncached.heap,
            "{name} under {s}: HeapStats (copies, allocations, collections)"
        );
        assert_eq!(
            cached.mutator, uncached.mutator,
            "{name} under {s}: MutatorStats"
        );
        assert_eq!(
            cached.gc.cache_insensitive(),
            uncached.gc.cache_insensitive(),
            "{name} under {s}: GcStats minus cache accounting"
        );
        if s != Strategy::Tagged {
            assert_eq!(
                uncached.gc.rt_cache_hits + uncached.gc.rt_cache_misses,
                0,
                "{name} under {s}: disabled cache reports no traffic"
            );
        }
    }
    collections
}

#[test]
fn cached_collections_are_bit_identical_polymorphic() {
    let n = cached_uncached_differential("poly_deep", &poly_deep_alloc(150), 1 << 14, 40);
    assert!(n > 0, "workload must collect for the comparison to bite");
}

#[test]
fn cached_collections_are_bit_identical_closures() {
    use tfgc::workloads::paper_examples as pe;
    let a = cached_uncached_differential("map_closure", &pe::map_closure(60), 1 << 13, 30);
    let b =
        cached_uncached_differential("higher_order_poly", &pe::higher_order_poly(20), 1 << 13, 25);
    let c = cached_uncached_differential("variant_records", &pe::variant_records(40), 1 << 13, 30);
    assert!(a > 0 && b > 0 && c > 0, "closure workloads must collect");
}

#[test]
fn cached_collections_are_bit_identical_suite() {
    for (name, src) in tfgc::workloads::suite() {
        cached_uncached_differential(name, &src, 1 << 15, 200);
    }
}

/// Deep recursion under the forward (§3) strategies: ≥10⁵ frames on the
/// stack during collections, yet routine construction stays bounded by
/// the number of distinct shapes.
#[test]
fn deep_recursion_builds_o_sites_not_o_frames() {
    const DEPTH: usize = 100_000;
    let c = Compiled::compile(&poly_deep_alloc(DEPTH)).expect("compiles");
    for s in [Strategy::Compiled, Strategy::Interpreted] {
        let out = c
            .run_with(VmConfig::new(s).heap_words(1 << 21).force_gc_every(60_000))
            .unwrap_or_else(|e| panic!("{s}: {e}"));
        assert!(out.heap.collections > 0, "{s}: must collect");
        assert!(
            out.gc.frames_visited >= DEPTH as u64,
            "{s}: a collection saw the deep stack (visited {})",
            out.gc.frames_visited
        );
        assert!(
            out.gc.rt_cache_hits > 0,
            "{s}: repeated activations hit the cache"
        );
        // The headline bound: evaluating the same θ at 10⁵ activations
        // of the same call sites must not build 10⁵ routine trees.
        assert!(
            out.gc.rt_nodes_built * 100 < out.gc.frames_visited,
            "{s}: built {} nodes for {} frame visits — O(frames), not O(sites)",
            out.gc.rt_nodes_built,
            out.gc.frames_visited
        );
    }
}

/// Same check for Appel's backward scheme at a depth its O(depth²) chain
/// re-walking can afford. The cache memoizes each frame's θ evaluation,
/// so even the quadratic traversal builds O(distinct shapes) nodes.
#[test]
fn deep_recursion_appel_backward_scheme() {
    const DEPTH: usize = 2_000;
    let c = Compiled::compile(&poly_deep_alloc(DEPTH)).expect("compiles");
    let out = c
        .run_with(
            VmConfig::new(Strategy::AppelPerFn)
                .heap_words(1 << 18)
                .force_gc_every(1_500),
        )
        .expect("runs");
    assert!(out.heap.collections > 0);
    assert!(out.gc.chain_steps > out.gc.frames_visited, "quadratic term");
    assert!(out.gc.rt_cache_hits > 0);
    assert!(
        out.gc.rt_nodes_built * 100 < out.gc.chain_steps,
        "built {} nodes for {} chain steps",
        out.gc.rt_nodes_built,
        out.gc.chain_steps
    );
}

/// Strips wall-clock timestamps and implementation-accounting counters
/// from an event, leaving exactly the part that must be bit-identical
/// between a plan-executed and a closure-walked collection.
fn normalize_event(ev: &tfgc::obs::GcEvent) -> tfgc::obs::GcEvent {
    use tfgc::obs::GcEvent;
    let mut e = ev.clone();
    match &mut e {
        GcEvent::CollectionBegin { t_ns, .. }
        | GcEvent::Alloc { t_ns, .. }
        | GcEvent::TaskParked { t_ns, .. }
        | GcEvent::TaskResumed { t_ns, .. }
        | GcEvent::VerificationEnd { t_ns, .. }
        | GcEvent::FaultInjected { t_ns, .. }
        | GcEvent::HeapGrown { t_ns, .. }
        | GcEvent::RequestStart { t_ns, .. }
        | GcEvent::RequestEnd { t_ns, .. }
        | GcEvent::HeapSample { t_ns, .. }
        | GcEvent::RequestShed { t_ns, .. }
        | GcEvent::DeadlineExceeded { t_ns, .. }
        | GcEvent::BreakerOpen { t_ns, .. }
        | GcEvent::BreakerHalfOpen { t_ns, .. }
        | GcEvent::BreakerClose { t_ns, .. }
        | GcEvent::BacklogSample { t_ns, .. } => *t_ns = 0,
        GcEvent::CollectionEnd {
            t_ns,
            pause_ns,
            rt_nodes_built,
            rt_cache_hits,
            rt_cache_misses,
            plan_hits,
            plan_misses,
            plans_compiled,
            ..
        } => {
            *t_ns = 0;
            *pause_ns = 0;
            *rt_nodes_built = 0;
            *rt_cache_hits = 0;
            *rt_cache_misses = 0;
            *plan_hits = 0;
            *plan_misses = 0;
            *plans_compiled = 0;
        }
        GcEvent::Phase {
            start_ns, dur_ns, ..
        } => {
            *start_ns = 0;
            *dur_ns = 0;
        }
        GcEvent::FrameVisit { .. } | GcEvent::RoutineRun { .. } | GcEvent::ObjectCopied { .. } => {}
    }
    e
}

/// Runs `src` with trace plans on and off under every strategy and
/// insists on bit-identical observable behavior — results, printed
/// output, heap/mutator statistics, the plan-insensitive part of the GC
/// statistics, and the complete normalized event stream (every object
/// copy in the same order, to the same addresses). Returns the total
/// plans compiled across strategies so callers can assert the fast path
/// actually engaged.
fn plans_closures_differential(name: &str, src: &str, heap_words: usize, force: u64) -> u64 {
    let c = Compiled::compile(src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut compiled_total = 0;
    for s in Strategy::ALL {
        let base = VmConfig::new(s)
            .heap_words(heap_words)
            .force_gc_every(force);
        let (planned, prec) = c
            .run_profiled(base.clone().trace_plans(true), 1 << 20)
            .unwrap_or_else(|e| panic!("{name} under {s} (plans): {e}"));
        let (walked, wrec) = c
            .run_profiled(base.trace_plans(false), 1 << 20)
            .unwrap_or_else(|e| panic!("{name} under {s} (closures): {e}"));

        assert_eq!(planned.result, walked.result, "{name} under {s}: result");
        assert_eq!(planned.printed, walked.printed, "{name} under {s}: printed");
        assert_eq!(planned.heap, walked.heap, "{name} under {s}: HeapStats");
        assert_eq!(
            planned.mutator, walked.mutator,
            "{name} under {s}: MutatorStats"
        );
        assert_eq!(
            planned.gc.plan_insensitive(),
            walked.gc.plan_insensitive(),
            "{name} under {s}: GcStats minus plan accounting"
        );
        assert_eq!(
            walked.gc.plan_hits + walked.gc.plan_misses + walked.gc.plans_compiled,
            0,
            "{name} under {s}: disabled plans report no traffic"
        );
        assert_eq!(prec.dropped(), 0, "{name} under {s}: ring large enough");
        assert_eq!(wrec.dropped(), 0, "{name} under {s}: ring large enough");
        let pe: Vec<_> = prec.events().iter().map(normalize_event).collect();
        let we: Vec<_> = wrec.events().iter().map(normalize_event).collect();
        assert_eq!(
            pe, we,
            "{name} under {s}: normalized event streams (copy order, addresses)"
        );
        compiled_total += planned.gc.plans_compiled;
    }
    compiled_total
}

#[test]
fn planned_collections_are_bit_identical_polymorphic() {
    let n = plans_closures_differential("poly_deep", &poly_deep_alloc(150), 1 << 14, 40);
    assert!(n > 0, "polymorphic workload must lower plans");
}

#[test]
fn planned_collections_are_bit_identical_closures() {
    use tfgc::workloads::paper_examples as pe;
    let a = plans_closures_differential("map_closure", &pe::map_closure(60), 1 << 13, 30);
    let b =
        plans_closures_differential("higher_order_poly", &pe::higher_order_poly(20), 1 << 13, 25);
    let c = plans_closures_differential("variant_records", &pe::variant_records(40), 1 << 13, 30);
    assert!(
        a > 0 && b > 0 && c > 0,
        "closure workloads must lower plans"
    );
}

#[test]
fn planned_collections_are_bit_identical_suite() {
    let mut total = 0;
    for (name, src) in tfgc::workloads::suite() {
        total += plans_closures_differential(name, &src, 1 << 15, 200);
    }
    assert!(total > 0, "the suite must lower plans somewhere");
}

/// Plans are lowered per distinct routine shape, then hit: across a deep
/// recursion the hit count dwarfs compilation.
#[test]
fn plan_compilation_is_o_shapes_not_o_objects() {
    let c = Compiled::compile(&poly_deep_alloc(5_000)).expect("compiles");
    for s in [Strategy::Compiled, Strategy::Interpreted] {
        let out = c
            .run_with(VmConfig::new(s).heap_words(1 << 18).force_gc_every(3_000))
            .unwrap_or_else(|e| panic!("{s}: {e}"));
        assert!(out.heap.collections > 0, "{s}: must collect");
        assert!(out.gc.plans_compiled > 0, "{s}: plans lowered");
        assert_eq!(
            out.gc.plan_misses, out.gc.plans_compiled,
            "{s}: every miss compiles exactly one plan"
        );
        // Repeated collections re-trace the same shapes: lookups must
        // keep resolving from the store, not re-lowering.
        assert!(
            out.gc.plan_hits > out.gc.plans_compiled,
            "{s}: hits ({}) must exceed compilations ({}) — plans are per-shape",
            out.gc.plan_hits,
            out.gc.plans_compiled
        );
    }
}

/// The plan counters surface in the per-collection event stream.
#[test]
fn plan_counters_reach_the_event_stream() {
    let c = Compiled::compile(&poly_deep_alloc(150)).expect("compiles");
    let (out, rec) = c
        .run_profiled(
            VmConfig::new(Strategy::Compiled)
                .heap_words(1 << 14)
                .force_gc_every(40),
            1 << 12,
        )
        .expect("runs");
    assert!(out.heap.collections > 1);
    let hits: u64 = rec.collections().iter().map(|c| c.plan_hits).sum();
    let misses: u64 = rec.collections().iter().map(|c| c.plan_misses).sum();
    let comp: u64 = rec.collections().iter().map(|c| c.plans_compiled).sum();
    assert_eq!(hits, out.gc.plan_hits, "summaries sum to the total");
    assert_eq!(misses, out.gc.plan_misses);
    assert_eq!(comp, out.gc.plans_compiled);
    assert!(comp > 0, "a collecting polymorphic run lowers plans");
}

/// Suite-wide property test for the fingerprint fix: across randomized
/// `RtVal` graphs that aggressively share sub-`Rc`s (the `extract_path`
/// recombination shape), `RtCache::identity` aliases two values iff they
/// are structurally equal.
#[test]
fn identity_never_aliases_structurally_unequal_values() {
    use std::rc::Rc;
    use tfgc::gc::{RtCache, RtVal, TypeRtId};
    use tfgc::types::DataId;

    // Deterministic xorshift — no RNG dependencies.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    let mut cache = RtCache::new();
    let mut pool: Vec<RtVal> = vec![RtVal::Const, RtVal::Ground(TypeRtId(0))];
    for _ in 0..600 {
        let r = next();
        let pick = |n: u64, pool: &[RtVal]| pool[(n % pool.len() as u64) as usize].clone();
        let v = match r % 4 {
            0 => RtVal::Arrow(Rc::new(pick(r >> 8, &pool)), Rc::new(pick(r >> 24, &pool))),
            1 => {
                // Recombine: reuse an existing Arrow's domain Rc under a
                // new codomain — the shape the old single-pointer key
                // collapsed.
                let donor = pool.iter().rev().find_map(|v| match v {
                    RtVal::Arrow(a, _) => Some(a.clone()),
                    _ => None,
                });
                match donor {
                    Some(a) => RtVal::Arrow(a, Rc::new(pick(r >> 16, &pool))),
                    None => RtVal::Tuple(Rc::new(vec![pick(r >> 16, &pool)])),
                }
            }
            2 => {
                let n = (r >> 8) % 3 + 1;
                let fs: Vec<RtVal> = (0..n).map(|i| pick(r >> (16 + i), &pool)).collect();
                RtVal::Tuple(Rc::new(fs))
            }
            _ => {
                // Rewrap: the same fields Rc under rotating datatype ids.
                let fields = pool.iter().rev().find_map(|v| match v {
                    RtVal::Tuple(fs) => Some(fs.clone()),
                    _ => None,
                });
                let d = DataId((r >> 8) as u32 % 5);
                match fields {
                    Some(fs) => RtVal::Data(d, fs),
                    None => RtVal::Data(d, Rc::new(vec![pick(r >> 16, &pool)])),
                }
            }
        };
        pool.push(v);
    }

    let ids: Vec<u32> = pool.iter().map(|v| cache.identity(v)).collect();
    for i in 0..pool.len() {
        for j in (i + 1)..pool.len() {
            assert_eq!(
                ids[i] == ids[j],
                pool[i] == pool[j],
                "identity aliases iff structurally equal (values {i} and {j}: {:?} vs {:?})",
                pool[i],
                pool[j]
            );
        }
    }
}

/// The cache's hit counters surface in the per-collection event stream.
#[test]
fn cache_counters_reach_the_event_stream() {
    let c = Compiled::compile(&poly_deep_alloc(150)).expect("compiles");
    let (out, rec) = c
        .run_profiled(
            VmConfig::new(Strategy::Compiled)
                .heap_words(1 << 14)
                .force_gc_every(40),
            1 << 12,
        )
        .expect("runs");
    assert!(out.heap.collections > 1);
    let summed: u64 = rec.collections().iter().map(|c| c.rt_cache_hits).sum();
    assert_eq!(summed, out.gc.rt_cache_hits, "summaries sum to the total");
    let summed_misses: u64 = rec.collections().iter().map(|c| c.rt_cache_misses).sum();
    assert_eq!(summed_misses, out.gc.rt_cache_misses);
    assert!(summed > 0, "a collecting polymorphic run hits the cache");
}
