//! Generational-collection equivalence and promotion-boundary tests.
//!
//! The nursery is pure copying plumbing: minor collections, survivor
//! aging, and tenured promotion must never change what a program
//! computes, under any strategy, any trace-plan setting, and any
//! `promote_after` threshold. These tests pin that contract with the
//! heap verifier enabled, plus determinism of the generational
//! counters themselves.

use tfgc::{Compiled, Strategy, VmConfig};

/// A heap small enough that the workload suite collects, with a nursery
/// small enough that most of those collections are minors.
fn gen_cfg(s: Strategy, plans: bool, promote_after: u32) -> VmConfig {
    VmConfig::new(s)
        .heap_words(1 << 12)
        .heap_max_words(1 << 16)
        .verify_heap(true)
        .trace_plans(plans)
        .generational(1 << 8, promote_after)
}

fn base_cfg(s: Strategy, plans: bool) -> VmConfig {
    VmConfig::new(s)
        .heap_words(1 << 12)
        .heap_max_words(1 << 16)
        .verify_heap(true)
        .trace_plans(plans)
}

#[test]
fn suite_is_bit_identical_with_and_without_generational() {
    let mut minors_total = 0u64;
    for (name, src) in tfgc::workloads::suite() {
        let compiled = Compiled::compile(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        for s in Strategy::ALL {
            for plans in [false, true] {
                let base = compiled
                    .run_with_meta(base_cfg(s, plans), compiled.metadata(s))
                    .unwrap_or_else(|e| panic!("{name} under {s} plans={plans}: {e}"));
                let gen = compiled
                    .run_with_meta(gen_cfg(s, plans, 1), compiled.metadata(s))
                    .unwrap_or_else(|e| panic!("{name} under {s} plans={plans} gen: {e}"));
                assert_eq!(
                    gen.result, base.result,
                    "{name}: result under {s} plans={plans}"
                );
                assert_eq!(
                    gen.printed, base.printed,
                    "{name}: printed under {s} plans={plans}"
                );
                assert_eq!(
                    base.gc.minor_collections, 0,
                    "{name}: baseline must never run minors"
                );
                minors_total += gen.gc.minor_collections;
            }
        }
    }
    assert!(
        minors_total > 0,
        "the suite must trigger minor collections somewhere or the test is vacuous"
    );
}

#[test]
fn generational_runs_are_deterministic() {
    for (name, src) in tfgc::workloads::suite() {
        let compiled = Compiled::compile(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let s = Strategy::Compiled;
        let a = compiled
            .run_with_meta(gen_cfg(s, true, 1), compiled.metadata(s))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let b = compiled
            .run_with_meta(gen_cfg(s, true, 1), compiled.metadata(s))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(a.result, b.result, "{name}: result");
        assert_eq!(a.printed, b.printed, "{name}: printed");
        assert_eq!(
            a.gc.minor_collections, b.gc.minor_collections,
            "{name}: minor count must be deterministic"
        );
        assert_eq!(
            a.gc.major_collections, b.gc.major_collections,
            "{name}: major count must be deterministic"
        );
        assert_eq!(
            a.gc.promoted_words, b.gc.promoted_words,
            "{name}: promoted words must be deterministic"
        );
        assert_eq!(
            a.gc.died_young_words, b.gc.died_young_words,
            "{name}: died-young words must be deterministic"
        );
    }
}

#[test]
fn promote_after_edges_agree() {
    // promote_after 0 tenures on first survival (the whole nursery is
    // eden, no survivor halves); 1 ages through the survivor half once;
    // a huge threshold never promotes by age at all (only survivor
    // overflow can tenure, which escalates to a major in-pause). All
    // three must compute the same answers as each other.
    let mut eager_promoted = 0u64;
    for (name, src) in tfgc::workloads::suite() {
        let compiled = Compiled::compile(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        for s in Strategy::ALL {
            let mut runs = Vec::new();
            for promote_after in [0u32, 1, u32::MAX] {
                let out = compiled
                    .run_with_meta(gen_cfg(s, true, promote_after), compiled.metadata(s))
                    .unwrap_or_else(|e| panic!("{name} under {s} k={promote_after}: {e}"));
                runs.push((promote_after, out));
            }
            let (_, eager) = &runs[0];
            for (k, out) in &runs[1..] {
                assert_eq!(
                    out.result, eager.result,
                    "{name} under {s}: result at k={k}"
                );
                assert_eq!(
                    out.printed, eager.printed,
                    "{name} under {s}: printed at k={k}"
                );
            }
            eager_promoted += eager.gc.promoted_words;
        }
    }
    assert!(
        eager_promoted > 0,
        "promote_after=0 must tenure survivors somewhere in the suite"
    );
}

#[test]
fn deep_list_mid_spine_survivors_promote_and_agree() {
    // A long list built once, then repeatedly re-summed alongside small
    // transient lists. The long spine straddles many minor-collection
    // boundaries while it is built, so mid-spine cells survive and
    // promote; each iteration's short list fits in eden and is garbage
    // by the next minor, so it dies young. (A transient larger than the
    // nursery would never die young — minors would always catch it
    // half-built and fully live.)
    let src = "fun build n = if n = 0 then [] else n :: build (n - 1) ;
               fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
               fun go i acc xs =
                 if i = 0 then acc
                 else go (i - 1) (acc + sum (build 25) + sum xs) xs ;
               let val xs = build 300 in go 30 0 xs end";
    let compiled = Compiled::compile(src).expect("deep-list program compiles");
    let mut reference: Option<String> = None;
    for s in Strategy::ALL {
        let base = compiled
            .run_with_meta(base_cfg(s, true), compiled.metadata(s))
            .unwrap_or_else(|e| panic!("baseline under {s}: {e}"));
        let gen = compiled
            .run_with_meta(gen_cfg(s, true, 1), compiled.metadata(s))
            .unwrap_or_else(|e| panic!("generational under {s}: {e}"));
        assert_eq!(gen.result, base.result, "{s}: generational result");
        assert!(
            gen.gc.minor_collections > 0,
            "{s}: the deep list must force minor collections"
        );
        assert!(
            gen.gc.promoted_words > 0,
            "{s}: surviving spine cells must reach the tenured generation"
        );
        // Only the liveness-precise strategies clear dead stack slots;
        // without liveness the transient lists stay stack-reachable at
        // minor time, so they survive (and the minor escalates) instead
        // of dying young.
        if matches!(s, Strategy::Compiled | Strategy::Interpreted) {
            assert!(
                gen.gc.died_young_words > 0,
                "{s}: transient per-iteration lists must die young"
            );
        }
        match &reference {
            None => reference = Some(gen.result.clone()),
            Some(r) => assert_eq!(&gen.result, r, "{s}: cross-strategy agreement"),
        }
    }
}
