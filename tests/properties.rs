//! Property-based tests (proptest) on the core data structures and
//! invariants.

use proptest::prelude::*;
use std::collections::HashSet;
use tfgc::analysis::SlotSet;
use tfgc::gc::{pack_ret, unpack_ret};
use tfgc::ir::{CallSiteId, Slot};
use tfgc::runtime::{Addr, Encoding, Heap, HeapMode, HEAP_BASE};

proptest! {
    /// Tag-free integer encoding is the identity on all of i64.
    #[test]
    fn tagfree_int_roundtrip(i in any::<i64>()) {
        let e = Encoding::new(HeapMode::TagFree);
        prop_assert_eq!(e.int_of(e.int(i)), i);
    }

    /// Tagged integers roundtrip on the 63-bit range the encoding claims.
    #[test]
    fn tagged_int_roundtrip(i in -(1i64 << 62)..(1i64 << 62) - 1) {
        let e = Encoding::new(HeapMode::Tagged);
        prop_assert_eq!(e.int_of(e.int(i)), i);
        // Tagged ints are always odd — never mistaken for pointers.
        prop_assert!(!e.is_tagged_ptr(e.int(i)));
    }

    /// Tagged integer ordering is preserved by the raw word comparison the
    /// VM relies on.
    #[test]
    fn tagged_int_order(a in -(1i64 << 62)..(1i64 << 62) - 1,
                        b in -(1i64 << 62)..(1i64 << 62) - 1) {
        let e = Encoding::new(HeapMode::Tagged);
        prop_assert_eq!((e.int(a) as i64) < (e.int(b) as i64), a < b);
    }

    /// Pointer encodings roundtrip in both modes.
    #[test]
    fn pointer_roundtrip(off in 0u64..(1 << 40)) {
        let a = Addr(HEAP_BASE + off);
        for mode in [HeapMode::TagFree, HeapMode::Tagged] {
            let e = Encoding::new(mode);
            prop_assert_eq!(e.addr_of(e.ptr(a)), a);
        }
        let t = Encoding::new(HeapMode::Tagged);
        prop_assert!(t.is_tagged_ptr(t.ptr(a)));
    }

    /// Return-word packing roundtrips for every site/slot pair.
    #[test]
    fn ret_word_roundtrip(site in 0u32..u32::MAX - 1, slot in 0u16..u16::MAX) {
        let w = pack_ret(CallSiteId(site), Slot(slot));
        prop_assert_eq!(unpack_ret(w), (CallSiteId(site), Slot(slot)));
    }

    /// SlotSet agrees with a HashSet model under arbitrary operations.
    #[test]
    fn slotset_models_hashset(ops in prop::collection::vec((0u16..200, any::<bool>()), 0..120)) {
        let mut s = SlotSet::new(200);
        let mut m: HashSet<u16> = HashSet::new();
        for (slot, insert) in ops {
            if insert {
                s.insert(Slot(slot));
                m.insert(slot);
            } else {
                s.remove(Slot(slot));
                m.remove(&slot);
            }
        }
        prop_assert_eq!(s.count(), m.len());
        for i in 0..200u16 {
            prop_assert_eq!(s.contains(Slot(i)), m.contains(&i));
        }
    }

    /// Heap write/read roundtrip over arbitrary allocation patterns, and
    /// bump allocation never hands out overlapping objects.
    #[test]
    fn heap_alloc_no_overlap(sizes in prop::collection::vec(1usize..16, 1..40)) {
        let mut heap = Heap::new(1024);
        let mut objs: Vec<(Addr, usize, u64)> = Vec::new();
        for (k, n) in sizes.iter().enumerate() {
            match heap.alloc(*n) {
                None => break,
                Some(a) => {
                    let stamp = 0xABCD_0000 + k as u64;
                    for i in 0..*n {
                        heap.write(a, i as u16, stamp + i as u64);
                    }
                    objs.push((a, *n, stamp));
                }
            }
        }
        // Every object still holds its own stamps: no overlap.
        for (a, n, stamp) in &objs {
            for i in 0..*n {
                prop_assert_eq!(heap.read(*a, i as u16), stamp + i as u64);
            }
        }
    }

    /// Copying GC mechanics: copy + forward + flip preserves contents for
    /// arbitrary object sets, and forwarding is stable.
    #[test]
    fn heap_copy_preserves_contents(sizes in prop::collection::vec(1usize..8, 1..20)) {
        let mut heap = Heap::new(512);
        let mut objs = Vec::new();
        for (k, n) in sizes.iter().enumerate() {
            if let Some(a) = heap.alloc(*n) {
                for i in 0..*n {
                    heap.write(a, i as u16, (k * 100 + i) as u64);
                }
                objs.push((a, *n, k));
            }
        }
        // Copy every object out (as a collector would).
        let mut moved = Vec::new();
        for (a, n, k) in &objs {
            let new = heap.copy_out(*a, *n);
            heap.set_forward(*a, new);
            prop_assert_eq!(heap.forward_of(*a), Some(new));
            moved.push((new, *n, *k));
        }
        heap.flip();
        for (a, n, k) in &moved {
            for i in 0..*n {
                prop_assert_eq!(heap.read(*a, i as u16), (k * 100 + i) as u64);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Generated well-typed programs run identically under the compiled
    /// tag-free strategy and the tagged baseline (randomized differential
    /// soundness).
    #[test]
    fn generated_programs_differential(seed in 0u64..500) {
        let src = tfgc::workloads::generate(seed, &tfgc::workloads::GenConfig::default());
        let c = tfgc::Compiled::compile(&src)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        let a = c.run_with(tfgc::VmConfig::new(tfgc::Strategy::Compiled).heap_words(1 << 14))
            .unwrap_or_else(|e| panic!("seed {seed} compiled: {e}\n{src}"));
        let b = c.run_with(tfgc::VmConfig::new(tfgc::Strategy::Tagged).heap_words(1 << 14))
            .unwrap_or_else(|e| panic!("seed {seed} tagged: {e}\n{src}"));
        prop_assert_eq!(a.result, b.result);
        prop_assert_eq!(a.printed, b.printed);
    }

    /// The compiled-method safety invariant on random programs: every
    /// live slot at every GC point is definitely assigned (the property
    /// that lets tag-free frames skip zero-initialization).
    #[test]
    fn live_subset_assigned_on_generated(seed in 0u64..400) {
        let src = tfgc::workloads::generate(seed, &tfgc::workloads::GenConfig::default());
        let c = tfgc::Compiled::compile(&src)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        c.analyses
            .init
            .validate_live_assigned(&c.program, &c.analyses.liveness)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
    }

    /// Pretty-printed programs reparse to the same printed form
    /// (parser/printer round-trip on generated sources).
    #[test]
    fn print_parse_roundtrip(seed in 0u64..300) {
        let src = tfgc::workloads::generate(seed, &tfgc::workloads::GenConfig::default());
        let p1 = tfgc::syntax::parse_program(&src)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let printed = tfgc::syntax::pretty::program_to_string(&p1);
        let p2 = tfgc::syntax::parse_program(&printed)
            .unwrap_or_else(|e| panic!("seed {seed} reparse: {e}\n{printed}"));
        prop_assert_eq!(printed, tfgc::syntax::pretty::program_to_string(&p2));
    }
}

/// The IR's immediate/pointer boundary and the runtime heap base must
/// agree — the tag-free "pointer or immediate" test depends on it.
#[test]
fn imm_limit_matches_heap_base() {
    assert_eq!(tfgc::ir::IMM_LIMIT, HEAP_BASE);
}
