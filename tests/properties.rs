//! Randomized property tests on the core data structures and
//! invariants, driven by the in-repo deterministic
//! [`SmallRng`](tfgc::workloads::SmallRng) (the external `proptest`
//! dependency is unavailable in offline builds; seeds are fixed so
//! every run checks the same cases).

use std::collections::HashSet;
use tfgc::analysis::SlotSet;
use tfgc::gc::{pack_ret, unpack_ret};
use tfgc::ir::{CallSiteId, Slot};
use tfgc::runtime::{Addr, Encoding, Heap, HeapMode, HEAP_BASE};
use tfgc::workloads::SmallRng;

/// Tag-free integer encoding is the identity on all of i64.
#[test]
fn tagfree_int_roundtrip() {
    let e = Encoding::new(HeapMode::TagFree);
    let mut r = SmallRng::seed_from_u64(0x01);
    for i in [0, 1, -1, i64::MIN, i64::MAX]
        .into_iter()
        .chain((0..2000).map(|_| r.next_u64() as i64))
    {
        assert_eq!(e.int_of(e.int(i)), i);
    }
}

/// Tagged integers roundtrip on the 63-bit range the encoding claims.
#[test]
fn tagged_int_roundtrip() {
    let e = Encoding::new(HeapMode::Tagged);
    let mut r = SmallRng::seed_from_u64(0x02);
    for i in [0, 1, -1, -(1i64 << 62), (1i64 << 62) - 2]
        .into_iter()
        .chain((0..2000).map(|_| r.gen_range(-(1i64 << 62), (1i64 << 62) - 1)))
    {
        assert_eq!(e.int_of(e.int(i)), i);
        // Tagged ints are always odd — never mistaken for pointers.
        assert!(!e.is_tagged_ptr(e.int(i)));
    }
}

/// Tagged integer ordering is preserved by the raw word comparison the
/// VM relies on.
#[test]
fn tagged_int_order() {
    let e = Encoding::new(HeapMode::Tagged);
    let mut r = SmallRng::seed_from_u64(0x03);
    for _ in 0..2000 {
        let a = r.gen_range(-(1i64 << 62), (1i64 << 62) - 1);
        let b = r.gen_range(-(1i64 << 62), (1i64 << 62) - 1);
        assert_eq!((e.int(a) as i64) < (e.int(b) as i64), a < b);
    }
}

/// Pointer encodings roundtrip in both modes.
#[test]
fn pointer_roundtrip() {
    let mut r = SmallRng::seed_from_u64(0x04);
    for _ in 0..2000 {
        let a = Addr(HEAP_BASE + r.gen_range(0, 1 << 40) as u64);
        for mode in [HeapMode::TagFree, HeapMode::Tagged] {
            let e = Encoding::new(mode);
            assert_eq!(e.addr_of(e.ptr(a)), a);
        }
        let t = Encoding::new(HeapMode::Tagged);
        assert!(t.is_tagged_ptr(t.ptr(a)));
    }
}

/// Return-word packing roundtrips for every site/slot pair.
#[test]
fn ret_word_roundtrip() {
    let mut r = SmallRng::seed_from_u64(0x05);
    for _ in 0..2000 {
        let site = (r.next_u64() % u64::from(u32::MAX - 1)) as u32;
        let slot = (r.next_u64() % u64::from(u16::MAX)) as u16;
        let w = pack_ret(CallSiteId(site), Slot(slot));
        assert_eq!(unpack_ret(w), (CallSiteId(site), Slot(slot)));
    }
}

/// SlotSet agrees with a HashSet model under arbitrary operations.
#[test]
fn slotset_models_hashset() {
    let mut r = SmallRng::seed_from_u64(0x06);
    for _ in 0..100 {
        let mut s = SlotSet::new(200);
        let mut m: HashSet<u16> = HashSet::new();
        for _ in 0..r.gen_range(0, 120) {
            let slot = r.gen_range(0, 200) as u16;
            if r.gen_bool() {
                s.insert(Slot(slot));
                m.insert(slot);
            } else {
                s.remove(Slot(slot));
                m.remove(&slot);
            }
        }
        assert_eq!(s.count(), m.len());
        for i in 0..200u16 {
            assert_eq!(s.contains(Slot(i)), m.contains(&i));
        }
    }
}

/// Heap write/read roundtrip over arbitrary allocation patterns, and
/// bump allocation never hands out overlapping objects.
#[test]
fn heap_alloc_no_overlap() {
    let mut r = SmallRng::seed_from_u64(0x07);
    for _ in 0..60 {
        let mut heap = Heap::new(1024);
        let mut objs: Vec<(Addr, usize, u64)> = Vec::new();
        for k in 0..r.gen_range(1, 40) {
            let n = r.gen_range(1, 16) as usize;
            match heap.alloc(n) {
                None => break,
                Some(a) => {
                    let stamp = 0xABCD_0000 + k as u64;
                    for i in 0..n {
                        heap.write(a, i as u16, stamp + i as u64);
                    }
                    objs.push((a, n, stamp));
                }
            }
        }
        // Every object still holds its own stamps: no overlap.
        for (a, n, stamp) in &objs {
            for i in 0..*n {
                assert_eq!(heap.read(*a, i as u16), stamp + i as u64);
            }
        }
    }
}

/// Copying GC mechanics: copy + forward + flip preserves contents for
/// arbitrary object sets, and forwarding is stable.
#[test]
fn heap_copy_preserves_contents() {
    let mut r = SmallRng::seed_from_u64(0x08);
    for _ in 0..60 {
        let mut heap = Heap::new(512);
        let mut objs = Vec::new();
        for k in 0..r.gen_range(1, 20) as usize {
            let n = r.gen_range(1, 8) as usize;
            if let Some(a) = heap.alloc(n) {
                for i in 0..n {
                    heap.write(a, i as u16, (k * 100 + i) as u64);
                }
                objs.push((a, n, k));
            }
        }
        // Copy every object out (as a collector would).
        let mut moved = Vec::new();
        for (a, n, k) in &objs {
            let new = heap.copy_out(*a, *n);
            heap.set_forward(*a, new);
            assert_eq!(heap.forward_of(*a), Some(new));
            moved.push((new, *n, *k));
        }
        heap.flip();
        for (a, n, k) in &moved {
            for i in 0..*n {
                assert_eq!(heap.read(*a, i as u16), (k * 100 + i) as u64);
            }
        }
    }
}

/// Generated well-typed programs run identically under the compiled
/// tag-free strategy and the tagged baseline (randomized differential
/// soundness).
#[test]
fn generated_programs_differential() {
    let mut r = SmallRng::seed_from_u64(0x09);
    for _ in 0..12 {
        let seed = r.gen_range(0, 500) as u64;
        let src = tfgc::workloads::generate(seed, &tfgc::workloads::GenConfig::default());
        let c = tfgc::Compiled::compile(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        let a = c
            .run_with(tfgc::VmConfig::new(tfgc::Strategy::Compiled).heap_words(1 << 14))
            .unwrap_or_else(|e| panic!("seed {seed} compiled: {e}\n{src}"));
        let b = c
            .run_with(tfgc::VmConfig::new(tfgc::Strategy::Tagged).heap_words(1 << 14))
            .unwrap_or_else(|e| panic!("seed {seed} tagged: {e}\n{src}"));
        assert_eq!(a.result, b.result, "seed {seed}");
        assert_eq!(a.printed, b.printed, "seed {seed}");
    }
}

/// The compiled-method safety invariant on random programs: every
/// live slot at every GC point is definitely assigned (the property
/// that lets tag-free frames skip zero-initialization).
#[test]
fn live_subset_assigned_on_generated() {
    let mut r = SmallRng::seed_from_u64(0x0A);
    for _ in 0..12 {
        let seed = r.gen_range(0, 400) as u64;
        let src = tfgc::workloads::generate(seed, &tfgc::workloads::GenConfig::default());
        let c = tfgc::Compiled::compile(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        c.analyses
            .init
            .validate_live_assigned(&c.program, &c.analyses.liveness)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
    }
}

/// Pretty-printed programs reparse to the same printed form
/// (parser/printer round-trip on generated sources).
#[test]
fn print_parse_roundtrip() {
    let mut r = SmallRng::seed_from_u64(0x0B);
    for _ in 0..12 {
        let seed = r.gen_range(0, 300) as u64;
        let src = tfgc::workloads::generate(seed, &tfgc::workloads::GenConfig::default());
        let p1 = tfgc::syntax::parse_program(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let printed = tfgc::syntax::pretty::program_to_string(&p1);
        let p2 = tfgc::syntax::parse_program(&printed)
            .unwrap_or_else(|e| panic!("seed {seed} reparse: {e}\n{printed}"));
        assert_eq!(printed, tfgc::syntax::pretty::program_to_string(&p2));
    }
}

/// The IR's immediate/pointer boundary and the runtime heap base must
/// agree — the tag-free "pointer or immediate" test depends on it.
#[test]
fn imm_limit_matches_heap_base() {
    assert_eq!(tfgc::ir::IMM_LIMIT, HEAP_BASE);
}

/// Memoized template evaluation agrees with direct evaluation on random
/// template trees and environments. One [`RtCache`] is reused across
/// every query so the memo's hit path (and its hash-consed sharing) is
/// exercised as heavily as its miss path — `eval_sx` is pure, so the
/// cache must be observationally invisible.
#[test]
fn memoized_eval_matches_direct() {
    use std::rc::Rc;
    use tfgc::gc::rtval::{eval_sx, RtBuildStats};
    use tfgc::gc::{EvalCx, RtCache, RtVal, SxTable, TypeRtId, TypeSx};
    use tfgc::types::LIST_DATA;

    const ARITY: u16 = 3;

    // Random template tree. `Ground` ids are never dereferenced by
    // evaluation (they pass through as `RtVal::Ground`), so small
    // arbitrary ids are safe.
    fn gen_sx(r: &mut SmallRng, depth: usize) -> TypeSx {
        let top = if depth == 0 { 3 } else { 6 };
        match r.gen_range(0, top) {
            0 => TypeSx::Prim,
            1 => TypeSx::Param(r.gen_range(0, i64::from(ARITY)) as u16),
            2 => TypeSx::Ground(TypeRtId(r.gen_range(0, 3) as u32)),
            3 => TypeSx::Tuple(
                (0..r.gen_range(1, 4))
                    .map(|_| gen_sx(r, depth - 1))
                    .collect(),
            ),
            4 => TypeSx::Data(LIST_DATA, vec![gen_sx(r, depth - 1)]),
            _ => TypeSx::Arrow(
                Box::new(gen_sx(r, depth - 1)),
                Box::new(gen_sx(r, depth - 1)),
            ),
        }
    }

    // Random routine value for the environment.
    fn gen_rt(r: &mut SmallRng, depth: usize) -> RtVal {
        let top = if depth == 0 { 2 } else { 5 };
        match r.gen_range(0, top) {
            0 => RtVal::Const,
            1 => RtVal::Ground(TypeRtId(r.gen_range(0, 3) as u32)),
            2 => RtVal::Tuple(Rc::new(
                (0..r.gen_range(1, 3))
                    .map(|_| gen_rt(r, depth - 1))
                    .collect(),
            )),
            3 => RtVal::Data(LIST_DATA, Rc::new(vec![gen_rt(r, depth - 1)])),
            _ => RtVal::Arrow(Rc::new(gen_rt(r, depth - 1)), Rc::new(gen_rt(r, depth - 1))),
        }
    }

    let mut r = SmallRng::seed_from_u64(0x0C);
    let mut table = SxTable::new();
    let mut cache = RtCache::new();
    // A modest template pool re-queried under a modest environment pool
    // makes both the exact-hit and the miss path fire.
    let ids: Vec<_> = (0..40).map(|_| table.intern(gen_sx(&mut r, 3))).collect();
    let envs: Vec<Vec<RtVal>> = (0..12)
        .map(|_| (0..ARITY).map(|_| gen_rt(&mut r, 2)).collect())
        .collect();
    for round in 0..400 {
        let id = ids[r.gen_range(0, ids.len() as i64) as usize];
        let env = envs[r.gen_range(0, envs.len() as i64) as usize].clone();
        let mut s1 = RtBuildStats::default();
        let mut s2 = RtBuildStats::default();
        let memo = cache.eval(&table, id, &env, &mut s1, EvalCx::None);
        let direct = eval_sx(table.get(id), &env, &mut s2, EvalCx::None);
        assert_eq!(memo, direct, "round {round}: {:?}", table.get(id));
    }
    assert!(cache.hits > 0, "reused cache must see repeat queries");
    assert!(cache.misses > 0, "fresh (template, env) pairs must miss");
}

/// Overload management is a pure function of `(seed, config)`: across a
/// seeds × strategies sweep of the canonical burst scenario, every
/// request resolves exactly one way (`completed + failed + shed ==
/// submitted`), and a same-seed replay reproduces the outcome stream,
/// the per-request shed reasons, and the circuit breaker's final states
/// bit-for-bit.
#[test]
fn overload_conserves_and_replays_across_seeds_and_strategies() {
    use tfgc::{overload_scenario, serve, Strategy};

    let mut total_shed = 0u64;
    let mut total_failed = 0u64;
    for seed in [2u64, 5, 11] {
        for s in [Strategy::Compiled, Strategy::Tagged] {
            let mut cfg = overload_scenario(s, seed);
            cfg.requests = 64; // keep the debug-build sweep quick
            let a = serve(&cfg).unwrap_or_else(|e| panic!("{s} seed {seed}: {e}"));
            let r = &a.report;
            assert_eq!(r.outcomes.len(), cfg.requests, "{s} seed {seed}");
            assert_eq!(
                r.completed + r.failed + r.shed,
                r.outcomes.len() as u64,
                "{s} seed {seed}: conservation"
            );
            let b = serve(&cfg).unwrap_or_else(|e| panic!("{s} seed {seed} replay: {e}"));
            assert_eq!(
                a.report.outcomes, b.report.outcomes,
                "{s} seed {seed}: outcome stream must replay bit-for-bit"
            );
            assert_eq!(
                a.report.breaker_trips, b.report.breaker_trips,
                "{s} seed {seed}"
            );
            assert_eq!(
                a.report.breaker_final, b.report.breaker_final,
                "{s} seed {seed}"
            );
            total_shed += r.shed;
            total_failed += r.failed;
        }
    }
    assert!(total_shed > 0, "the burst scenario must actually shed");
    assert!(
        total_failed > 0,
        "the runaways must actually be quarantined"
    );
}
