//! End-to-end scenario tests: golden results for the workload suite,
//! deep-recursion behavior, error paths, and the experiment runners.

use tfgc::{Compiled, Strategy, VmConfig};

#[test]
fn workload_suite_golden_results() {
    // Exact expected values computed by independent reasoning about the
    // programs; any drift in the compiler or collectors shows up here.
    let expected = [
        ("fib", "2584"),     // fib(18)
        ("naive_rev", "60"), // length preserved by reversal
        ("churn", "0"),
        ("poly_depth", "200"), // copy preserves length
        ("nqueens", "4"),      // 6-queens has 4 solutions
        ("mergesort", "1"),    // output is sorted
        ("sieve", "22"),       // 22 primes up to 80
        ("church", "30"),      // church 30 applied to succ/0
    ];
    let suite = tfgc::workloads::suite();
    for (name, want) in expected {
        let (_, src) = suite
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("workload {name} missing"));
        let c = Compiled::compile(src).unwrap();
        let out = c
            .run_with(VmConfig::new(Strategy::Compiled).heap_words(1 << 15))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(out.result, want, "{name}");
    }
}

#[test]
fn tree_workload_result_is_tree_size() {
    let src = tfgc::workloads::programs::tree_insert(150);
    let c = Compiled::compile(&src).unwrap();
    let out = c
        .run_with(VmConfig::new(Strategy::Compiled).heap_words(1 << 15))
        .unwrap();
    // Every insert adds a node (duplicates descend right, still inserted).
    assert_eq!(out.result, "150");
}

#[test]
fn deep_recursion_with_small_heap_survives() {
    // A 2000-deep monomorphic recursion with GC pressure.
    let src = "fun build n = if n = 0 then [] else n :: build (n - 1) ;
               fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ;
               len (build 2000)";
    let c = Compiled::compile(src).unwrap();
    for s in [Strategy::Compiled, Strategy::Tagged] {
        let out = c
            .run_with(VmConfig::new(s).heap_words(1 << 13))
            .unwrap_or_else(|e| panic!("{s}: {e}"));
        assert_eq!(out.result, "2000", "{s}");
    }
}

#[test]
fn million_element_list_collects_without_rust_stack_overflow() {
    // The collector's typed worklist must handle very deep structures.
    let src = "fun build n = if n = 0 then [] else n :: build (n - 1) ;
               fun churn n = if n = 0 then 0 else (churn (n - 1); (build 4000; 0)) ;
               fun last xs = case xs of [] => 0 | x :: t => (case t of [] => x | _ => last t) ;
               let val big = build 20000 in (churn 6; last big) end";
    let c = Compiled::compile(src).unwrap();
    let mut cfg = VmConfig::new(Strategy::Compiled).heap_words(1 << 16);
    cfg.max_stack_words = 1 << 23;
    let out = c.run_with(cfg).unwrap();
    assert_eq!(out.result, "1");
    assert!(
        out.heap.collections > 0,
        "the churn must trigger GC with big live"
    );
}

#[test]
fn oom_reports_live_words() {
    let src = "fun build n = if n = 0 then [] else n :: build (n - 1) ; build 5000";
    let c = Compiled::compile(src).unwrap();
    let err = c
        .run_with(VmConfig::new(Strategy::Compiled).heap_words(512))
        .unwrap_err();
    match err {
        tfgc::VmError::OutOfMemory { live, .. } => assert!(live > 0),
        other => panic!("expected OOM, got {other}"),
    }
}

#[test]
fn experiment_runners_produce_tables() {
    // The experiment harness itself is part of the deliverable; exercise
    // the cheap ones end to end.
    let e6 = run_in_subcrate::e6();
    assert!(e6.contains("fib"));
    assert!(e6.contains("no_trace"));
}

mod run_in_subcrate {
    // The bench crate isn't a dependency of the root tests; re-derive the
    // E6 numbers through the public API instead.
    use tfgc::gc::NO_TRACE;
    use tfgc::{Compiled, Strategy};

    pub fn e6() -> String {
        let mut out = String::from("workload sites omitted no_trace\n");
        for (name, src) in tfgc::workloads::suite() {
            let c = Compiled::compile(&src).expect("compiles");
            let meta = c.metadata(Strategy::Compiled);
            let no_trace = meta
                .sites
                .iter()
                .filter(|s| s.routine == Some(NO_TRACE))
                .count();
            out.push_str(&format!(
                "{name} {} {} {no_trace}\n",
                c.program.sites.len(),
                meta.omitted_gc_words()
            ));
        }
        out
    }
}

#[test]
fn paper_quote_simple_programs_simple_collectors() {
    // §1: "a program that manipulates mainly simple types will have very
    // simple and short garbage collection routines."
    let simple =
        Compiled::compile("fun build n = if n = 0 then [] else n :: build (n - 1) ; build 10")
            .unwrap();
    let complex = Compiled::compile(
        "datatype 'a rose = Rose of 'a * 'a rose list ;
         fun leaves r = case r of Rose (v, kids) =>
           (case kids of [] => 1 | _ => sumall kids)
         and sumall rs = case rs of [] => 0 | r :: rest => leaves r + sumall rest ;
         fun mk d = if d = 0 then Rose (1, []) else Rose (d, [mk (d - 1), mk (d - 1)]) ;
         leaves (mk 4)",
    )
    .unwrap();
    let simple_meta = simple.metadata(Strategy::Compiled);
    let complex_meta = complex.metadata(Strategy::Compiled);
    assert!(
        simple_meta.metadata_bytes() < complex_meta.metadata_bytes(),
        "simple programs get smaller collectors: {} vs {}",
        simple_meta.metadata_bytes(),
        complex_meta.metadata_bytes()
    );
}

#[test]
fn mutually_recursive_datatypes_work() {
    // Mutual recursion across datatypes: registration is two-pass, so
    // forward references between consecutive declarations resolve.
    let src = "datatype expr = Lit of int | Neg of expr | Sum of elist ;
               datatype elist = Nil2 | Cons2 of expr * elist ;
               fun eval e = case e of Lit n => n | Neg x => 0 - eval x | Sum es => evs es
               and evs es = case es of Nil2 => 0 | Cons2 (e, r) => eval e + evs r ;
               eval (Sum (Cons2 (Lit 1, Cons2 (Neg (Lit 2), Cons2 (Lit 4, Nil2)))))";
    let c = Compiled::compile(src).unwrap();
    for s in Strategy::ALL {
        let out = c
            .run_with(VmConfig::new(s).heap_words(1 << 12))
            .unwrap_or_else(|e| panic!("{s}: {e}"));
        assert_eq!(out.result, "3", "{s}");
    }
}

#[test]
fn rose_trees_under_forced_gc() {
    // Nested datatype (list of trees inside tree) with per-allocation GC.
    let src = "datatype 'a rose = Rose of 'a * 'a rose list ;
               fun count r = case r of Rose (_, kids) => 1 + countall kids
               and countall rs = case rs of [] => 0 | r :: rest => count r + countall rest ;
               fun mk d = if d = 0 then Rose (0, []) else Rose (d, [mk (d - 1), mk (d - 1)]) ;
               count (mk 5)";
    let c = Compiled::compile(src).unwrap();
    for s in Strategy::ALL {
        let out = c
            .run_with(VmConfig::new(s).heap_words(1 << 13).force_gc_every(2))
            .unwrap_or_else(|e| panic!("{s}: {e}"));
        assert_eq!(out.result, "63", "{s}");
    }
}
