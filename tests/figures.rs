//! Structural reproduction of the paper's figures.
//!
//! The 1991 paper has four figures, all structural diagrams rather than
//! measurements. Each test here verifies that our implementation realizes
//! the corresponding structure.

use std::rc::Rc;
use tfgc::gc::{walk_frames, RtVal, TypeSx, NO_TRACE};
use tfgc::{Compiled, Strategy, VmConfig};

/// **Figure 1 — stack/code organization.** Each activation record stores a
/// dynamic link and a return word; the return word identifies the call
/// instruction in the caller, from which both the caller's identity and
/// its frame GC routine (the gc_word) are recovered.
#[test]
fn figure1_stack_layout_and_gc_word_lookup() {
    use tfgc::gc::{pack_ret, unpack_ret};
    use tfgc::ir::{CallSiteId, Slot};

    // Return-word packing: site + destination slot, like the paper's
    // return address + implicit dst register.
    let w = pack_ret(CallSiteId(42), Slot(7));
    assert_eq!(unpack_ret(w), (CallSiteId(42), Slot(7)));

    // A real program's stack decodes into the dynamic chain.
    let compiled = Compiled::compile(
        "fun inner n = (n, n) ;
         fun outer n = inner (n + 1) ;
         outer 1",
    )
    .unwrap();
    // Compile-time structure: the call sites of outer/main are the
    // gc_word keys; every site's fn_id names the function containing it.
    for site in &compiled.program.sites {
        let f = &compiled.program.funs[site.fn_id.0 as usize];
        assert!(site.pc < f.code.len() as u32);
        assert_eq!(
            f.code[site.pc as usize].site(),
            Some(site.id),
            "gc_word table and code agree"
        );
    }
    let _ = walk_frames; // full dynamic decoding exercised below via VM runs
}

/// **Figure 2 — the collector's main loop.** The collector visits every
/// frame of the dynamic chain exactly once per collection, invoking one
/// frame routine per frame.
#[test]
fn figure2_collector_visits_every_frame_once() {
    // A recursion of known depth d: when GC hits at the innermost call,
    // about d+2 frames are on the stack (build frames + main).
    let compiled = Compiled::compile(
        "fun build n = if n = 0 then [] else n :: build (n - 1) ;
         build 64",
    )
    .unwrap();
    let out = compiled
        .run_with(
            VmConfig::new(Strategy::Compiled)
                .heap_words(1 << 12)
                .force_gc_every(50),
        )
        .unwrap();
    // One collection happened (forced) with the stack deep.
    assert!(out.gc.collections >= 1);
    assert_eq!(
        out.gc.routine_invocations, out.gc.frames_visited,
        "exactly one frame routine per frame (Fig. 2)"
    );
}

/// **Figure 3 — closure representation of type routines.**
/// `trace_list_of(const_gc)` and its nesting compose exactly as drawn.
#[test]
fn figure3_type_routine_closures() {
    use tfgc::types::LIST_DATA;
    // trace_list_of(const_gc)
    let int_list = RtVal::Data(LIST_DATA, Rc::new(vec![RtVal::Const]));
    // trace_list_of(trace_list_of(const_gc))
    let int_list_list = RtVal::Data(LIST_DATA, Rc::new(vec![int_list.clone()]));
    match &int_list_list {
        RtVal::Data(d, args) => {
            assert_eq!(*d, LIST_DATA);
            assert_eq!(args[0], int_list);
        }
        other => panic!("expected data routine, got {other:?}"),
    }
    // These closures are built during collection by evaluating the θ
    // templates — verified end-to-end by the polymorphic differential
    // tests; here we check the template evaluation directly.
    let sx = TypeSx::Data(LIST_DATA, vec![TypeSx::Param(0)]);
    let mut stats = tfgc::gc::rtval::RtBuildStats::default();
    let rt = tfgc::gc::rtval::eval_sx(
        &sx,
        &[RtVal::Const],
        &mut stats,
        tfgc::gc::rtval::EvalCx::None,
    );
    assert_eq!(rt, RtVal::Data(LIST_DATA, Rc::new(vec![RtVal::Const])));
}

/// **Figure 4 — type routines for function values.** The routine for a
/// closure value carries the argument/result routines, from which the
/// collector recovers parameter routines by extraction.
#[test]
fn figure4_function_value_routines() {
    let compiled = Compiled::compile("0").unwrap();
    let mut ground = tfgc::gc::GroundTable::new();
    let arrow = RtVal::Arrow(
        Rc::new(RtVal::Data(
            tfgc::types::LIST_DATA,
            Rc::new(vec![RtVal::Const]),
        )),
        Rc::new(RtVal::Const),
    );
    // Extract the argument's element routine: path [0 (arg), 0 (elem)].
    let cx = tfgc::gc::rtval::EvalCx::None;
    let elem = tfgc::gc::rtval::extract_path(&arrow, &[0, 0], &compiled.program, &mut ground, cx);
    assert_eq!(elem, RtVal::Const);
    let arg = tfgc::gc::rtval::extract_path(&arrow, &[0], &compiled.program, &mut ground, cx);
    assert!(matches!(arg, RtVal::Data(_, _)));
}

/// The §2.4 claim as an executable check: every gc_word inside `append`
/// is `no_trace` or omitted, and many sites share one `no_trace`.
#[test]
fn section_2_4_no_trace_sharing() {
    let compiled = Compiled::compile(
        "fun append [] (ys : int list) = ys
           | append (x :: xs) ys = x :: append xs ys ;
         fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ;
         len (append (build 10) (build 10))",
    )
    .unwrap();
    let meta = compiled.metadata(Strategy::Compiled);
    let append_fn = compiled
        .program
        .funs
        .iter()
        .position(|f| f.name.starts_with("append"))
        .unwrap();
    for site in &compiled.program.sites {
        if site.fn_id.0 as usize == append_fn {
            let m = &meta.sites[site.id.0 as usize];
            assert!(
                m.routine.is_none() || m.routine == Some(NO_TRACE),
                "append site {} must not trace anything",
                site.id.0
            );
        }
    }
    assert!(
        meta.no_trace_sites() >= 2,
        "no_trace is shared by many gc_words"
    );
}
