//! Side-by-side collector comparison over the whole workload suite —
//! the summary numbers behind experiments E1–E4 (see EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --release --example compare_collectors
//! ```

use tfgc::{ratio, Compiled, Strategy, Table, VmConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (name, src) in tfgc::workloads::suite() {
        let compiled = Compiled::compile(&src)?;
        let mut table = Table::new(&[
            "strategy",
            "words alloc'd",
            "GCs",
            "words copied",
            "tag ops",
            "slots traced",
            "meta bytes",
        ]);
        let mut base_alloc = 0f64;
        for strategy in Strategy::ALL {
            let out = compiled.run_with(VmConfig::new(strategy).heap_words(1 << 14))?;
            if strategy == Strategy::Compiled {
                base_alloc = out.heap.words_allocated as f64;
            }
            table.row(vec![
                strategy.to_string(),
                out.heap.words_allocated.to_string(),
                out.heap.collections.to_string(),
                out.heap.words_copied.to_string(),
                out.mutator.tag_ops.to_string(),
                out.gc.slots_traced.to_string(),
                out.metadata_bytes.to_string(),
            ]);
        }
        println!("== {name} ==");
        println!("{}", table.render());
        let tagged = compiled.run_with(VmConfig::new(Strategy::Tagged).heap_words(1 << 14))?;
        println!(
            "tagged heap overhead: {} ({} vs {} words)\n",
            ratio(tagged.heap.words_allocated as f64, base_alloc),
            tagged.heap.words_allocated,
            base_alloc
        );
    }
    Ok(())
}
