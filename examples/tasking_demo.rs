//! §4: tag-free collection with tasks.
//!
//! Runs two allocating workers and one compute-heavy spinner over a
//! shared heap, under the three suspension policies the paper discusses,
//! and prints the trade-off: per-call check cost vs suspension latency.
//!
//! ```sh
//! cargo run --example tasking_demo
//! ```

use tfgc::tasking::{find_fn, run_tasks, SuspendPolicy, TaskConfig};
use tfgc::{Compiled, Strategy, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        fun build n = if n = 0 then [] else n :: build (n - 1) ;
        fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
        fun worker n = if n = 0 then 0
                       else (sum (build 25) + worker (n - 1)) - sum (build 25) ;
        fun spin n = if n = 0 then 0 else (let val x = n * n in spin (n - 1) end) ;
        0";
    let compiled = Compiled::compile(source)?;
    let prog = &compiled.program;
    let worker = find_fn(prog, "worker").expect("worker exists");
    let spin = find_fn(prog, "spin").expect("spin exists");
    let entries = vec![(worker, 60), (worker, 60), (spin, 4000)];

    let mut table = Table::new(&[
        "policy",
        "GCs",
        "suspension checks",
        "total latency",
        "max latency",
        "results",
    ]);
    for policy in [
        SuspendPolicy::AllocationOnly,
        SuspendPolicy::EveryCall,
        SuspendPolicy::EveryCallRgc,
    ] {
        let mut cfg = TaskConfig::new(Strategy::Compiled);
        cfg.heap_words = 1 << 11;
        cfg.policy = policy;
        cfg.quantum = 48;
        let report = run_tasks(prog, &entries, cfg)?;
        table.row(vec![
            policy.to_string(),
            report.suspension_events.to_string(),
            report.suspension_checks.to_string(),
            report.total_suspension_latency.to_string(),
            report.max_suspension_latency.to_string(),
            report.results.join(","),
        ]);
    }
    println!("{}", table.render());
    println!("alloc-only: free until exhaustion, but the spinner keeps running");
    println!("while the workers wait (high latency). every-call: low latency,");
    println!("one test per call. every-call-rgc: same latency, zero-cost test");
    println!("(the paper's Rgc register folded into the call's target address).");
    Ok(())
}
