//! Quickstart: compile a TFML program and run it under the paper's
//! tag-free compiled collector and the tagged baseline, comparing the
//! observable costs.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tfgc::{Compiled, Strategy, Table, VmConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example (§2.4), at a size that forces several
    // collections in a 4096-word semispace.
    let source = "
        fun append [] ys = ys | append (x :: xs) ys = x :: append xs ys ;
        fun build n = if n = 0 then [] else n :: build (n - 1) ;
        fun rev xs = case xs of [] => [] | x :: r => append (rev r) [x] ;
        fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ;
        len (rev (build 80))";

    let compiled = Compiled::compile(source)?;
    println!(
        "compiled {} functions, {} call sites, {} bytecode instructions\n",
        compiled.program.funs.len(),
        compiled.program.sites.len(),
        compiled.program.code_len()
    );

    let mut table = Table::new(&[
        "strategy",
        "result",
        "words alloc'd",
        "collections",
        "words copied",
        "tag ops",
        "metadata bytes",
    ]);
    for strategy in Strategy::ALL {
        let out = compiled.run_with(VmConfig::new(strategy).heap_words(1 << 12))?;
        table.row(vec![
            strategy.to_string(),
            out.result.clone(),
            out.heap.words_allocated.to_string(),
            out.heap.collections.to_string(),
            out.heap.words_copied.to_string(),
            out.mutator.tag_ops.to_string(),
            out.metadata_bytes.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("All strategies compute the same result; the costs differ exactly");
    println!("as §1 of the paper claims: the tagged baseline allocates more");
    println!("words (headers), performs tag arithmetic, and needs no metadata;");
    println!("the tag-free strategies trade metadata for a lean heap and");
    println!("tag-free mutator.");
    Ok(())
}
