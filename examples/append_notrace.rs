//! §2.4's worked example, verified mechanically: "garbage collection
//! never needs to trace the elements of an append activation record!"
//!
//! We compile the paper's monomorphic `append`, print every call site's
//! generated frame routine, and demonstrate that both sites inside
//! `append` share the single `no_trace` routine (or have their gc_word
//! omitted outright by the §5.1 analysis).
//!
//! ```sh
//! cargo run --example append_notrace
//! ```

use tfgc::gc::NO_TRACE;
use tfgc::{Compiled, Strategy, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        fun append [] (ys : int list) = ys
          | append (x :: xs) ys = x :: append xs ys ;
        fun build n = if n = 0 then [] else n :: build (n - 1) ;
        fun len (xs : int list) = case xs of [] => 0 | _ :: t => 1 + len t ;
        len (append (build 200) (build 200)) + len (append (build 150) (build 150))";

    let compiled = Compiled::compile(source)?;
    assert!(
        compiled.is_monomorphic(),
        "the annotated append is §2's monomorphic case"
    );
    let meta = compiled.metadata(Strategy::Compiled);

    let append_fn = compiled
        .program
        .funs
        .iter()
        .position(|f| f.name.starts_with("append"))
        .expect("append exists");

    let mut table = Table::new(&["site", "in function", "gc_word"]);
    let mut append_traced = 0usize;
    for site in &compiled.program.sites {
        let fun = &compiled.program.funs[site.fn_id.0 as usize];
        let m = &meta.sites[site.id.0 as usize];
        let desc = match m.routine {
            None => "omitted (§5.1: cannot collect here)".to_string(),
            Some(NO_TRACE) => "no_trace (shared)".to_string(),
            Some(r) => {
                let n = meta.routines.routine(r).ops.len();
                format!("routine #{} ({n} slots)", r.0)
            }
        };
        if site.fn_id.0 as usize == append_fn && m.routine.is_some() && m.routine != Some(NO_TRACE)
        {
            append_traced += 1;
        }
        table.row(vec![site.id.0.to_string(), fun.name.clone(), desc]);
    }
    println!("{}", table.render());

    assert_eq!(
        append_traced, 0,
        "no append site may trace anything — §2.4's claim"
    );
    println!(
        "append's activation records are never traced: every gc_word in its \
         body is `no_trace` or omitted."
    );
    println!(
        "distinct frame routines after sharing: {} (of {} sites); {} gc_words omitted",
        meta.distinct_routines(),
        compiled.program.sites.len(),
        meta.omitted_gc_words()
    );

    // And the program still runs correctly under collection pressure.
    let out = compiled.run_with(tfgc::VmConfig::new(Strategy::Compiled).heap_words(1 << 11))?;
    println!(
        "\nresult = {} after {} collections",
        out.result, out.heap.collections
    );
    Ok(())
}
