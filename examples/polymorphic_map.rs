//! §3 in action: polymorphic functions under collection pressure.
//!
//! Runs the paper's own polymorphic example —
//! `fun f x = let val y = [x, x] in (y, [3]) end` used at `bool list` and
//! `int` — plus a polymorphic `map`, forcing a collection at **every**
//! allocation, so the §3 machinery (frame routines parameterized by
//! type_gc_routines, built from the θ recorded at each call site) runs
//! constantly. Compares Goldberg's forward traversal with the
//! Appel-style backward resolution it improves on.
//!
//! ```sh
//! cargo run --example polymorphic_map
//! ```

use tfgc::{Compiled, Strategy, Table, VmConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        fun f x = let val y = [x, x] in (y, [3]) end ;
        fun map g xs = case xs of [] => [] | x :: r => g x :: map g r ;
        fun build n = if n = 0 then [] else n :: build (n - 1) ;
        fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
        fun suml xss = case xss of [] => 0 | l :: r => sum l + suml r ;
        (f [true], f 7, suml (map (fn v => [v, v + 1]) (build 40)))";

    let compiled = Compiled::compile(source)?;
    assert!(!compiled.is_monomorphic());

    let mut table = Table::new(&[
        "strategy",
        "collections",
        "frames visited",
        "chain steps",
        "rt closures built",
        "result (tail)",
    ]);
    for strategy in [Strategy::Compiled, Strategy::AppelPerFn] {
        let out = compiled.run_with(
            VmConfig::new(strategy)
                .heap_words(1 << 12)
                .force_gc_every(8),
        )?;
        let tail = out
            .result
            .rsplit(", ")
            .next()
            .unwrap_or(&out.result)
            .to_string();
        table.row(vec![
            strategy.to_string(),
            out.gc.collections.to_string(),
            out.gc.frames_visited.to_string(),
            out.gc.chain_steps.to_string(),
            out.gc.rt_nodes_built.to_string(),
            tail,
        ]);
    }
    println!("{}", table.render());
    println!("Goldberg's forward traversal (compiled) takes zero chain steps:");
    println!("each frame hands the next its type routines. Appel's backward");
    println!("resolution re-walks the dynamic chain for every frame — the");
    println!("quadratic term §3 is designed to avoid.");
    Ok(())
}
