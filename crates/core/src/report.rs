//! Plain-text table rendering for experiment reports.

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns. A zero-column table
    /// renders as the empty string.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        if ncols == 0 {
            return String::new();
        }
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                for _ in c.len()..widths[i] {
                    out.push(' ');
                }
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(r, &mut out);
        }
        out
    }
}

/// Formats a ratio as `x.yz×`.
pub fn ratio(n: f64, d: f64) -> String {
    if d == 0.0 {
        "n/a".to_string()
    } else {
        format!("{:.2}x", n / d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "23".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
        // Columns align: "value" starts at the same offset everywhere.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
    }

    #[test]
    fn zero_column_table_renders_empty() {
        // Regression: `2 * (ncols - 1)` underflowed for a header-less
        // table.
        let t = Table::new(&[]);
        assert_eq!(t.render(), "");
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(3.0, 2.0), "1.50x");
        assert_eq!(ratio(1.0, 0.0), "n/a");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_length_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only".into()]);
    }
}
