//! Program-aware observability exports.
//!
//! `tfgc-obs` speaks raw site/function ids so it can sit below the IR;
//! this module joins its recordings back against the [`IrProgram`] —
//! labeling allocation sites, decorating metrics documents, and
//! rendering the `tfml profile` report.

use crate::report::Table;
use tfgc_ir::{IrProgram, SiteKind};
use tfgc_obs::{Json, RingRecorder};

/// A human label for a call/allocation site: `function@pc (kind)`.
pub fn site_label(prog: &IrProgram, site: u32) -> String {
    match prog.sites.get(site as usize) {
        None => format!("site#{site}"),
        Some(s) => {
            let f = &prog.funs[s.fn_id.0 as usize];
            let kind = match &s.kind {
                SiteKind::Direct { callee, .. } => {
                    format!("call {}", prog.funs[callee.0 as usize].name)
                }
                SiteKind::Closure { .. } => "callclos".to_string(),
                SiteKind::Alloc { operand_tys } => format!("alloc/{}", operand_tys.len()),
            };
            format!("{}@{} ({kind})", f.name, s.pc)
        }
    }
}

/// The recorder's metrics document with a `label` resolved from the
/// program injected into every per-site entry.
pub fn metrics_json(rec: &RingRecorder, prog: &IrProgram) -> Json {
    let mut doc = rec.metrics_json();
    if let Json::Obj(pairs) = &mut doc {
        for (key, value) in pairs.iter_mut() {
            if key != "sites" {
                continue;
            }
            if let Json::Arr(items) = value {
                for item in items.iter_mut() {
                    if let Json::Obj(fields) = item {
                        let site = fields
                            .iter()
                            .find(|(k, _)| k == "site")
                            .and_then(|(_, v)| v.as_f64())
                            .map_or(u32::MAX, |f| f as u32);
                        fields.insert(1, ("label".to_string(), Json::str(site_label(prog, site))));
                    }
                }
            }
        }
    }
    doc
}

/// The `tfml profile` report: pause/allocation distributions, the
/// allocation-site ranking, and one line per collection.
pub fn profile_report(rec: &RingRecorder, prog: &IrProgram) -> String {
    let mut out = String::new();
    let ph = rec.pause_hist();
    let ah = rec.alloc_hist();
    out.push_str(&format!(
        "strategy {}\ncollections {}  pause ns: p50 {}  p90 {}  p99 {}  max {}  mean {:.0}\n",
        rec.strategy().unwrap_or("-"),
        rec.collections().len(),
        ph.p50(),
        ph.p90(),
        ph.p99(),
        ph.max(),
        ph.mean(),
    ));
    out.push_str(&format!(
        "allocations {}  words: p50 {}  p99 {}  max {}  mean {:.1}\n\n",
        ah.count(),
        ah.p50(),
        ah.p99(),
        ah.max(),
        ah.mean(),
    ));

    let mut sites = Table::new(&[
        "site",
        "label",
        "allocs",
        "words",
        "survivors",
        "survivor words",
    ]);
    for (site, p) in rec.sites().top_by_words(20) {
        sites.row(vec![
            site.to_string(),
            site_label(prog, site),
            p.allocs.to_string(),
            p.words.to_string(),
            p.survivors.to_string(),
            p.survivor_words.to_string(),
        ]);
    }
    out.push_str(&sites.render());

    if !rec.collections().is_empty() {
        out.push('\n');
        let mut gcs = Table::new(&[
            "gc", "trigger", "before", "after", "copied", "frames", "routines", "pause ns",
        ]);
        for c in rec.collections() {
            gcs.row(vec![
                c.seq.to_string(),
                site_label(prog, c.trigger_site),
                c.heap_used_before.to_string(),
                c.heap_used_after.to_string(),
                c.words_copied.to_string(),
                c.frames_visited.to_string(),
                c.routine_invocations.to_string(),
                c.pause_ns.to_string(),
            ]);
        }
        out.push_str(&gcs.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Compiled;
    use tfgc_gc::Strategy;
    use tfgc_vm::VmConfig;

    fn churn() -> Compiled {
        Compiled::compile(
            "fun build n = if n = 0 then [] else n :: build (n - 1) ;
             fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
             fun go n = if n = 0 then 0 else sum (build 30) + go (n - 1) ;
             go 40",
        )
        .expect("compiles")
    }

    #[test]
    fn profiled_run_labels_sites_and_reports() {
        let c = churn();
        let cfg = VmConfig::new(Strategy::Compiled).heap_words(1 << 9);
        let (out, rec) = c.run_profiled(cfg, 1 << 12).expect("runs");
        assert!(out.heap.collections > 0, "heap small enough to collect");
        assert_eq!(rec.collections().len() as u64, out.heap.collections);

        let report = profile_report(&rec, &c.program);
        assert!(report.contains("collections"));
        assert!(report.contains("alloc"), "site labels name allocations");

        let doc = metrics_json(&rec, &c.program);
        let text = doc.to_json_pretty();
        let back = tfgc_obs::json::parse(&text).expect("parses");
        let sites = back.get("sites").unwrap().as_arr().unwrap();
        assert!(!sites.is_empty());
        assert!(sites[0].get("label").is_some(), "labels injected");
    }

    #[test]
    fn site_label_handles_unknown_sites() {
        let c = churn();
        assert_eq!(
            site_label(&c.program, u32::MAX),
            format!("site#{}", u32::MAX)
        );
    }
}
