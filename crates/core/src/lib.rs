//! # tfgc — reproduction of "Tag-Free Garbage Collection for Strongly
//! Typed Programming Languages" (Goldberg, PLDI 1991)
//!
//! This crate is the front door: [`Compiled`] drives the whole pipeline
//! (parse → infer → lower → analyze → GC metadata → run) and the
//! re-exported subsystem crates expose every layer individually.
//!
//! ```
//! use tfgc::{Compiled, Strategy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let c = Compiled::compile(
//!     "fun append [] ys = ys | append (x :: xs) ys = x :: append xs ys ;
//!      append [1, 2] [3]",
//! )?;
//! // The paper's tag-free compiled strategy...
//! let tagfree = c.run(Strategy::Compiled)?;
//! // ...and the tagged baseline agree on results:
//! let tagged = c.run(Strategy::Tagged)?;
//! assert_eq!(tagfree.result, "[1, 2, 3]");
//! assert_eq!(tagfree.result, tagged.result);
//! // But the tagged heap pays a header word per cons cell.
//! assert!(tagged.heap.words_allocated > tagfree.heap.words_allocated);
//! # Ok(())
//! # }
//! ```

pub mod pipeline;
pub mod profile;
pub mod report;
pub mod serve;
pub mod torture;

pub use pipeline::{compile_and_run, CompileError, Compiled};
pub use profile::{metrics_json, profile_report, site_label};
pub use report::{ratio, Table};
pub use serve::{
    bench_overload_json, bench_serve_json, check_overload_slo, check_slo, overload_scenario, serve,
    serve_doc, serve_json, serve_table, torture_overload, torture_serve, MixEntry, OverloadSlo,
    OverloadTortureCase, ServeConfig, ServeRun, ServeTortureCase, Slo, OVERLOAD_SCENARIOS,
    SERVICE_SRC,
};
pub use torture::{
    oracle_check, torture, OracleReport, TortureCase, TortureOutcome, TortureReport,
};

// Re-export the subsystem layers under stable names.
pub use tfgc_analysis as analysis;
pub use tfgc_gc as gc;
pub use tfgc_ir as ir;
pub use tfgc_obs as obs;
pub use tfgc_runtime as runtime;
pub use tfgc_syntax as syntax;
pub use tfgc_tasking as tasking;
pub use tfgc_types as types;
pub use tfgc_vm as vm;
pub use tfgc_workloads as workloads;

// The names used in almost every example and bench.
pub use tfgc_gc::Strategy;
pub use tfgc_tasking::{AdmissionPolicy, OverloadConfig, Request};
pub use tfgc_vm::{RunOutcome, VmConfig, VmError};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_end_to_end() {
        let c = Compiled::compile("fun double x = x + x ; double 21").expect("compiles");
        assert!(c.is_monomorphic());
        let out = c.run(Strategy::Compiled).expect("runs");
        assert_eq!(out.result, "42");
    }

    #[test]
    fn compile_errors_render() {
        let err = Compiled::compile("1 +").unwrap_err();
        assert!(err.to_string().contains("parse error"));
        let err = Compiled::compile("x").unwrap_err();
        assert!(err.to_string().contains("type error"));
    }

    #[test]
    fn run_all_strategies_checks_agreement() {
        let c = Compiled::compile(
            "fun map f xs = case xs of [] => [] | x :: r => f x :: map f r ;
             map (fn x => x * 3) [1, 2, 3]",
        )
        .expect("compiles");
        let outs = c.run_all_strategies(1 << 14).expect("all run");
        assert_eq!(outs.len(), Strategy::ALL.len());
        assert_eq!(outs[0].1.result, "[3, 6, 9]");
    }

    #[test]
    fn metadata_reuse_matches_fresh_build() {
        let c = Compiled::compile("fun id x = x ; id [1]").expect("compiles");
        let meta = c.metadata(Strategy::Compiled);
        assert!(meta.metadata_bytes() > 0);
        assert_eq!(meta.strategy, Strategy::Compiled);
    }

    #[test]
    fn workload_suite_runs_under_compiled() {
        for (name, src) in tfgc_workloads::suite() {
            let c = Compiled::compile(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let out = c
                .run_with(VmConfig::new(Strategy::Compiled).heap_words(1 << 15))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!out.result.is_empty(), "{name}");
        }
    }
}
