//! `tfml` — command-line driver for the tag-free GC reproduction.
//!
//! ```text
//! tfml run [OPTS] <file.tfml | -e SRC>     run a program
//! tfml disasm <file | -e SRC>              show bytecode + frame layouts
//! tfml gcmap [OPTS] <file | -e SRC>        show per-site gc_words/routines
//! tfml analyze <file | -e SRC>             liveness / GC points / RTTI report
//! tfml compare [OPTS] <file | -e SRC>      run under all five strategies
//!
//! OPTS:
//!   --strategy S     compiled | compiled-nolive | interpreted | appel | tagged
//!   --heap N         semispace words (default 65536)
//!   --force-gc N     force a collection every N allocations
//!   --refined        use the closure-flow-refined GC-point analysis
//!   --stats          print run statistics
//! ```

use std::process::ExitCode;
use tfgc::gc::NO_TRACE;
use tfgc::{Compiled, Strategy, Table, VmConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("tfml: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Opts {
    strategy: Strategy,
    heap: usize,
    force_gc: Option<u64>,
    refined: bool,
    stats: bool,
    source: String,
}

fn parse_strategy(s: &str) -> Result<Strategy, String> {
    Ok(match s {
        "compiled" => Strategy::Compiled,
        "compiled-nolive" => Strategy::CompiledNoLiveness,
        "interpreted" => Strategy::Interpreted,
        "appel" => Strategy::AppelPerFn,
        "tagged" => Strategy::Tagged,
        other => return Err(format!("unknown strategy `{other}`")),
    })
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut strategy = Strategy::Compiled;
    let mut heap = 1usize << 16;
    let mut force_gc = None;
    let mut refined = false;
    let mut stats = false;
    let mut source: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--strategy" => {
                i += 1;
                strategy = parse_strategy(args.get(i).ok_or("--strategy needs a value")?)?;
            }
            "--heap" => {
                i += 1;
                heap = args
                    .get(i)
                    .ok_or("--heap needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --heap: {e}"))?;
            }
            "--force-gc" => {
                i += 1;
                force_gc = Some(
                    args.get(i)
                        .ok_or("--force-gc needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --force-gc: {e}"))?,
                );
            }
            "--refined" => refined = true,
            "--stats" => stats = true,
            "-e" => {
                i += 1;
                source = Some(args.get(i).ok_or("-e needs source text")?.clone());
            }
            path => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read `{path}`: {e}"))?;
                source = Some(text);
            }
        }
        i += 1;
    }
    Ok(Opts {
        strategy,
        heap,
        force_gc,
        refined,
        stats,
        source: source.ok_or("no program given (file path or -e SRC)")?,
    })
}

fn run(args: Vec<String>) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("usage: tfml <run|disasm|gcmap|analyze|compare> ... (see --help)".into());
    };
    if cmd == "--help" || cmd == "help" {
        println!(
            "tfml run|disasm|gcmap|analyze|compare [--strategy S] [--heap N] \
             [--force-gc N] [--refined] [--stats] <file | -e SRC>"
        );
        return Ok(());
    }
    let opts = parse_opts(rest)?;
    let compiled = Compiled::compile(&opts.source).map_err(|e| e.to_string())?;

    match cmd.as_str() {
        "run" => cmd_run(&compiled, &opts),
        "disasm" => {
            print!("{}", tfgc::ir::display::disasm(&compiled.program));
            Ok(())
        }
        "gcmap" => cmd_gcmap(&compiled, &opts),
        "analyze" => cmd_analyze(&compiled),
        "compare" => cmd_compare(&compiled, &opts),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn vm_config(opts: &Opts) -> VmConfig {
    let mut cfg = VmConfig::new(opts.strategy).heap_words(opts.heap);
    if let Some(n) = opts.force_gc {
        cfg = cfg.force_gc_every(n);
    }
    cfg
}

fn cmd_run(compiled: &Compiled, opts: &Opts) -> Result<(), String> {
    let out = if opts.refined {
        let meta = compiled.metadata_refined(opts.strategy);
        compiled.run_with_meta(vm_config(opts), meta)
    } else {
        compiled.run_with(vm_config(opts))
    }
    .map_err(|e| e.to_string())?;
    for v in &out.printed {
        println!("{v}");
    }
    println!("{}", out.result);
    if opts.stats {
        eprintln!(
            "instructions {}  tag-ops {}  allocations {}  words {}  GCs {}  copied {}  \
             pause-ns {}  metadata-bytes {}",
            out.mutator.instructions,
            out.mutator.tag_ops,
            out.heap.allocations,
            out.heap.words_allocated,
            out.heap.collections,
            out.heap.words_copied,
            out.gc.pause_nanos,
            out.metadata_bytes,
        );
    }
    Ok(())
}

fn cmd_gcmap(compiled: &Compiled, opts: &Opts) -> Result<(), String> {
    let meta = if opts.refined {
        compiled.metadata_refined(opts.strategy)
    } else {
        compiled.metadata(opts.strategy)
    };
    let mut t = Table::new(&["site", "function", "pc", "kind", "gc_word"]);
    for site in &compiled.program.sites {
        let f = &compiled.program.funs[site.fn_id.0 as usize];
        let kind = match &site.kind {
            tfgc::ir::SiteKind::Direct { callee, .. } => {
                format!("call {}", compiled.program.funs[callee.0 as usize].name)
            }
            tfgc::ir::SiteKind::Closure { .. } => "callclos".to_string(),
            tfgc::ir::SiteKind::Alloc { operand_tys } => {
                format!("alloc/{}", operand_tys.len())
            }
        };
        let word = match meta.sites[site.id.0 as usize].routine {
            None => "omitted".to_string(),
            Some(NO_TRACE) => "no_trace".to_string(),
            Some(r) => format!(
                "routine#{} ({} ops)",
                r.0,
                meta.routines.routine(r).ops.len()
            ),
        };
        t.row(vec![
            site.id.0.to_string(),
            f.name.clone(),
            site.pc.to_string(),
            kind,
            word,
        ]);
    }
    println!("{}", t.render());
    println!(
        "{} sites; {} omitted; {} no_trace; {} distinct routines; {} metadata bytes",
        compiled.program.sites.len(),
        meta.omitted_gc_words(),
        meta.no_trace_sites(),
        meta.distinct_routines(),
        meta.metadata_bytes()
    );
    Ok(())
}

fn cmd_analyze(compiled: &Compiled) -> Result<(), String> {
    println!(
        "monomorphic: {}  functions: {}  sites: {}  instructions: {}",
        compiled.is_monomorphic(),
        compiled.program.funs.len(),
        compiled.program.sites.len(),
        compiled.program.code_len()
    );
    let mut t = Table::new(&["function", "kind", "slots", "frame params", "may GC"]);
    for (i, f) in compiled.program.funs.iter().enumerate() {
        t.row(vec![
            f.name.clone(),
            format!("{:?}", f.kind),
            f.slots.len().to_string(),
            f.frame_params.len().to_string(),
            compiled
                .analyses
                .gcpoints
                .fun_may_gc(tfgc::ir::FnId(i as u32))
                .to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "hidden descriptors required: {} (the 1991 scheme's completeness gap)",
        compiled.rtti.total_desc_fields()
    );
    Ok(())
}

fn cmd_compare(compiled: &Compiled, opts: &Opts) -> Result<(), String> {
    let mut t = Table::new(&[
        "strategy",
        "result",
        "words",
        "GCs",
        "copied",
        "tag-ops",
        "meta B",
    ]);
    for s in Strategy::ALL {
        let mut cfg = VmConfig::new(s).heap_words(opts.heap);
        if let Some(n) = opts.force_gc {
            cfg = cfg.force_gc_every(n);
        }
        let out = compiled.run_with(cfg).map_err(|e| format!("{s}: {e}"))?;
        t.row(vec![
            s.to_string(),
            out.result.clone(),
            out.heap.words_allocated.to_string(),
            out.heap.collections.to_string(),
            out.heap.words_copied.to_string(),
            out.mutator.tag_ops.to_string(),
            out.metadata_bytes.to_string(),
        ]);
    }
    println!("{}", t.render());
    Ok(())
}
