//! `tfml` — command-line driver for the tag-free GC reproduction.
//!
//! ```text
//! tfml run [OPTS] <file.tfml | -e SRC>     run a program
//! tfml profile [OPTS] <file | -e SRC>      run + GC/allocation profile
//! tfml disasm <file | -e SRC>              show bytecode + frame layouts
//! tfml gcmap [OPTS] <file | -e SRC>        show per-site gc_words/routines
//! tfml analyze <file | -e SRC>             liveness / GC points / RTTI report
//! tfml compare [OPTS] <file | -e SRC>      run under all five strategies
//! tfml serve [SERVE OPTS]                  drive a seeded request mix against
//!                                          a persistent heap; steady-state
//!                                          telemetry + SLO gate
//! tfml torture [--seeds N] [--oracle] [--serve] [--overload] [--generational]
//!                                          fault-injection matrix over
//!                                          seeded workloads × strategies
//!                                          (--serve: mid-traffic faults
//!                                          against the request server;
//!                                          --serve --overload: burst /
//!                                          deadline-storm / runaway-hog /
//!                                          watermark-flap scenarios)
//! tfml fuzz [FUZZ OPTS]                    differential fuzzing campaign:
//!                                          generated programs across every
//!                                          strategy × plans × cache × heap
//!                                          tier, tagged-oracle snapshots,
//!                                          seeded faults; findings shrunk
//!                                          by typed delta-debugging
//!
//! OPTS:
//!   --strategy S     compiled | compiled-nolive | interpreted | appel | tagged
//!   --heap N         semispace words (default 65536)
//!   --force-gc N     force a collection every N allocations
//!   --refined        use the closure-flow-refined GC-point analysis
//!   --stats          print run statistics
//!   --verify-heap    walk the reachable graph after every collection,
//!                    failing fast on any inconsistency
//!   --verify-oracle  replay under the tagged collector and require
//!                    identical reachable graphs at every collection
//!   --no-trace-plans trace with the nested-closure walk instead of the
//!                    flattened trace plans (differential baseline)
//!   --generational   bump-pointer nursery + minor/major cycles (barrier-
//!                    free: the immutable heap has no old-to-young edges)
//!   --nursery-words N  nursery size in words (implies --generational;
//!                    default heap/4)
//!   --promote-after K  survivals before promotion to the tenured
//!                    generation (default 0 = promote on first survival)
//!   --trace FILE     write a Chrome-trace-event JSONL file (run/profile)
//!   --metrics FILE   write a JSON metrics document (run/profile)
//!   --events N       raw events retained for --trace (default 65536)
//!
//! SERVE OPTS:
//!   --strategy S|all          strategies to serve under (default all)
//!   --requests N              requests to drain (default 400)
//!   --pool N                  concurrent pool slots (default 4)
//!   --seed N                  traffic-mix seed (default 1)
//!   --heap N                  semispace words (default 2048)
//!   --heap-max N              growth ceiling in words (default 65536)
//!   --quantum N               instructions per scheduling quantum
//!   --window-ms N             steady-state metrics window (default 10)
//!   --sample-every N          occupancy sample period in quanta (default 32)
//!   --no-trace-plans          closure-walk tracing (plans differential)
//!   --generational            nursery + minor/major cycles per strategy
//!   --nursery-words N         nursery words (implies --generational)
//!   --promote-after K         survivals before promotion (default 0)
//!   --json FILE               write the BENCH_SERVE.json document
//!                             (includes the gated overload section)
//!   --trace FILE              write a Chrome trace (single strategy only)
//!   --slo-p99-latency-ms F    gate: p99 request latency ceiling
//!   --slo-p99-pause-ms F      gate: p99 GC pause ceiling
//!
//! SERVE OVERLOAD OPTS (deterministic per seed):
//!   --deadline-quanta N       service-wide deadline in scheduler quanta
//!   --fuel N                  service-wide instruction-fuel budget
//!   --queue-cap N             admission-queue depth beyond idle slots
//!                             (0 = unbounded)
//!   --admission POLICY        reject | backoff[:ATTEMPTS:BASE]
//!                             | degrade[:MINKIND]
//!   --soft-watermark PCT      heap pressure: proactive GC + throttling
//!   --hard-watermark PCT      heap pressure: shed new admissions
//!   --breaker-threshold K     consecutive quarantines that open a
//!                             kind's circuit breaker (0 = off)
//!   --breaker-cooldown N      quanta an open breaker fast-rejects
//!   --drain-after N           stop admitting from this quantum on
//!   --runaway-every N         replace every Nth request with a
//!                             non-terminating handler (pair with a
//!                             deadline or fuel budget)
//!
//! FUZZ OPTS (campaign is a pure function of these — same flags, same
//! bytes):
//!   --seeds N        seeds to run (default 50)
//!   --seed-start N   first seed (shard campaigns by offsetting; default 0)
//!   --shrink         minimize each finding by typed delta-debugging
//!   --shrink-budget N  predicate evaluations per shrink (default 300)
//!   --json FILE      write the deterministic BENCH_E14.json report
//!   --depth N        generator: max expression depth (default 4)
//!   --funs N         generator: helper functions per program (default 3)
//!   --fuel N         generator: node budget per program (default 300)
//!   --datatypes N    generator: fresh datatypes per program (default 2)
//!   --max-rec N      generator: recursion-depth ceiling (default 48)
//!   --no-higher-order  drop closures/partial application from the universe
//!   --no-polymorphism  drop polymorphic instantiations from the universe
//! ```

use std::process::ExitCode;
use tfgc::gc::NO_TRACE;
use tfgc::obs::{write_chrome_trace, GcEvent, Obs, RingRecorder};
use tfgc::{Compiled, Strategy, Table, VmConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("tfml: {msg}");
            eprintln!("run `tfml --help` for usage");
            ExitCode::from(2)
        }
        Err(CliError::Run(msg)) => {
            eprintln!("tfml: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Command-line failure, split by whose fault it is: `Usage` is a
/// malformed invocation (unknown flag, unparsable value) and exits 2
/// with a usage pointer; `Run` is a failure of the requested work
/// (compile error, VM error, SLO violation, unwritable file) and exits 1.
#[derive(Debug, PartialEq)]
enum CliError {
    Usage(String),
    Run(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Run(msg)
    }
}

/// A malformed-invocation error (exit 2).
fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

struct Opts {
    strategy: Strategy,
    heap: usize,
    force_gc: Option<u64>,
    refined: bool,
    stats: bool,
    verify_heap: bool,
    verify_oracle: bool,
    trace: Option<String>,
    metrics: Option<String>,
    events: usize,
    trace_plans: bool,
    generational: bool,
    nursery_words: Option<usize>,
    promote_after: u32,
    source: String,
}

fn parse_strategy(s: &str) -> Result<Strategy, CliError> {
    Ok(match s {
        "compiled" => Strategy::Compiled,
        "compiled-nolive" => Strategy::CompiledNoLiveness,
        "interpreted" => Strategy::Interpreted,
        "appel" => Strategy::AppelPerFn,
        "tagged" => Strategy::Tagged,
        other => return Err(usage(format!("unknown strategy `{other}`"))),
    })
}

/// `reject`, `backoff[:ATTEMPTS:BASE]`, or `degrade[:MINKIND]`.
fn parse_admission(s: &str) -> Result<tfgc::AdmissionPolicy, CliError> {
    let mut parts = s.split(':');
    let head = parts.next().unwrap_or_default();
    let rest: Vec<&str> = parts.collect();
    let arg = |i: usize, what: &str| -> Result<u64, CliError> {
        rest.get(i)
            .ok_or_else(|| usage(format!("--admission {head} needs {what}")))?
            .parse()
            .map_err(|e| usage(format!("bad --admission {what}: {e}")))
    };
    Ok(match (head, rest.len()) {
        ("reject", 0) => tfgc::AdmissionPolicy::Reject,
        ("backoff", 0) => tfgc::AdmissionPolicy::RetryBackoff {
            max_attempts: 6,
            base: 16,
        },
        ("backoff", 2) => tfgc::AdmissionPolicy::RetryBackoff {
            max_attempts: arg(0, "ATTEMPTS")? as u32,
            base: arg(1, "BASE")?,
        },
        ("degrade", 0) => tfgc::AdmissionPolicy::Degrade { low_kind_min: 2 },
        ("degrade", 1) => tfgc::AdmissionPolicy::Degrade {
            low_kind_min: arg(0, "MINKIND")? as u32,
        },
        _ => {
            return Err(usage(format!(
                "unknown --admission `{s}` (reject | backoff[:ATTEMPTS:BASE] | degrade[:MINKIND])"
            )))
        }
    })
}

fn parse_opts(args: &[String]) -> Result<Opts, CliError> {
    let mut strategy = Strategy::Compiled;
    let mut heap = 1usize << 16;
    let mut force_gc = None;
    let mut refined = false;
    let mut stats = false;
    let mut verify_heap = false;
    let mut verify_oracle = false;
    let mut trace = None;
    let mut metrics = None;
    let mut events = 1usize << 16;
    let mut trace_plans = true;
    let mut generational = false;
    let mut nursery_words = None;
    let mut promote_after = 0u32;
    let mut source: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--strategy" => {
                i += 1;
                strategy = parse_strategy(
                    args.get(i)
                        .ok_or_else(|| usage("--strategy needs a value"))?,
                )?;
            }
            "--heap" => {
                i += 1;
                heap = args
                    .get(i)
                    .ok_or_else(|| usage("--heap needs a value"))?
                    .parse()
                    .map_err(|e| usage(format!("bad --heap: {e}")))?;
            }
            "--force-gc" => {
                i += 1;
                force_gc = Some(
                    args.get(i)
                        .ok_or_else(|| usage("--force-gc needs a value"))?
                        .parse()
                        .map_err(|e| usage(format!("bad --force-gc: {e}")))?,
                );
            }
            "--refined" => refined = true,
            "--stats" => stats = true,
            "--verify-heap" => verify_heap = true,
            "--verify-oracle" => verify_oracle = true,
            "--no-trace-plans" => trace_plans = false,
            "--generational" => generational = true,
            "--nursery-words" => {
                i += 1;
                generational = true;
                nursery_words = Some(
                    args.get(i)
                        .ok_or_else(|| usage("--nursery-words needs a value"))?
                        .parse()
                        .map_err(|e| usage(format!("bad --nursery-words: {e}")))?,
                );
            }
            "--promote-after" => {
                i += 1;
                promote_after = args
                    .get(i)
                    .ok_or_else(|| usage("--promote-after needs a value"))?
                    .parse()
                    .map_err(|e| usage(format!("bad --promote-after: {e}")))?;
            }
            "--trace" => {
                i += 1;
                trace = Some(
                    args.get(i)
                        .ok_or_else(|| usage("--trace needs a file path"))?
                        .clone(),
                );
            }
            "--metrics" => {
                i += 1;
                metrics = Some(
                    args.get(i)
                        .ok_or_else(|| usage("--metrics needs a file path"))?
                        .clone(),
                );
            }
            "--events" => {
                i += 1;
                events = args
                    .get(i)
                    .ok_or_else(|| usage("--events needs a value"))?
                    .parse()
                    .map_err(|e| usage(format!("bad --events: {e}")))?;
            }
            "-e" => {
                i += 1;
                source = Some(
                    args.get(i)
                        .ok_or_else(|| usage("-e needs source text"))?
                        .clone(),
                );
            }
            flag if flag.starts_with("--") => {
                return Err(usage(format!("unknown option `{flag}`")));
            }
            path => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CliError::Run(format!("cannot read `{path}`: {e}")))?;
                source = Some(text);
            }
        }
        i += 1;
    }
    Ok(Opts {
        strategy,
        heap,
        force_gc,
        refined,
        stats,
        verify_heap,
        verify_oracle,
        trace,
        metrics,
        events,
        trace_plans,
        generational,
        nursery_words,
        promote_after,
        source: source.ok_or_else(|| usage("no program given (file path or -e SRC)"))?,
    })
}

fn run(args: Vec<String>) -> Result<(), CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage(
            "usage: tfml <run|disasm|gcmap|analyze|compare> ... (see --help)",
        ));
    };
    if cmd == "--help" || cmd == "help" {
        println!(
            "tfml run|profile|disasm|gcmap|analyze|compare [--strategy S] [--heap N] \
             [--force-gc N] [--refined] [--stats] [--verify-heap] [--verify-oracle] \
             [--trace FILE] [--metrics FILE] [--events N] [--no-trace-plans] <file | -e SRC>\n\
             tfml serve [--strategy S|all] [--requests N] [--pool N] [--seed N] [--heap N] \
             [--heap-max N] [--quantum N] [--window-ms N] [--sample-every N] \
             [--no-trace-plans] [--json FILE] \
             [--trace FILE] [--slo-p99-latency-ms F] [--slo-p99-pause-ms F] \
             [--deadline-quanta N] [--fuel N] [--queue-cap N] \
             [--admission reject|backoff[:A:B]|degrade[:K]] [--soft-watermark PCT] \
             [--hard-watermark PCT] [--breaker-threshold K] [--breaker-cooldown N] \
             [--drain-after N] [--runaway-every N]\n\
             tfml torture [--seeds N] [--oracle] [--serve] [--overload]\n\
             tfml fuzz [--seeds N] [--seed-start N] [--shrink] [--shrink-budget N] \
             [--json FILE] [--depth N] [--funs N] [--fuel N] [--datatypes N] \
             [--max-rec N] [--no-higher-order] [--no-polymorphism]"
        );
        return Ok(());
    }
    if cmd == "torture" {
        return cmd_torture(rest);
    }
    if cmd == "fuzz" {
        return cmd_fuzz(rest);
    }
    if cmd == "serve" {
        return cmd_serve(rest);
    }
    let opts = parse_opts(rest)?;
    let compiled = Compiled::compile(&opts.source).map_err(|e| CliError::Run(e.to_string()))?;

    match cmd.as_str() {
        "run" => cmd_run(&compiled, &opts).map_err(CliError::Run),
        "profile" => cmd_profile(&compiled, &opts).map_err(CliError::Run),
        "disasm" => {
            print!("{}", tfgc::ir::display::disasm(&compiled.program));
            Ok(())
        }
        "gcmap" => cmd_gcmap(&compiled, &opts).map_err(CliError::Run),
        "analyze" => cmd_analyze(&compiled).map_err(CliError::Run),
        "compare" => cmd_compare(&compiled, &opts).map_err(CliError::Run),
        other => Err(usage(format!("unknown command `{other}`"))),
    }
}

fn vm_config(opts: &Opts) -> VmConfig {
    let mut cfg = VmConfig::new(opts.strategy)
        .heap_words(opts.heap)
        .verify_heap(opts.verify_heap)
        .trace_plans(opts.trace_plans);
    if let Some(n) = opts.force_gc {
        cfg = cfg.force_gc_every(n);
    }
    if opts.generational {
        cfg = cfg.generational(
            opts.nursery_words.unwrap_or(opts.heap / 4),
            opts.promote_after,
        );
    }
    cfg
}

fn metadata_for(compiled: &Compiled, opts: &Opts) -> tfgc::gc::GcMeta {
    if opts.refined {
        compiled.metadata_refined(opts.strategy)
    } else {
        compiled.metadata(opts.strategy)
    }
}

/// Runs under the options, attaching a ring recorder when `record`.
fn run_opts(
    compiled: &Compiled,
    opts: &Opts,
    record: bool,
) -> Result<(tfgc::RunOutcome, Option<RingRecorder>), String> {
    let meta = metadata_for(compiled, opts);
    if record {
        let (out, obs) = compiled
            .run_observed(vm_config(opts), meta, Obs::ring(opts.events))
            .map_err(|e| e.to_string())?;
        Ok((out, obs.into_recorder()))
    } else {
        let out = compiled
            .run_with_meta(vm_config(opts), meta)
            .map_err(|e| e.to_string())?;
        Ok((out, None))
    }
}

/// Writes the `--trace` / `--metrics` files from a recorded run.
fn write_exports(compiled: &Compiled, opts: &Opts, rec: &RingRecorder) -> Result<(), String> {
    if let Some(path) = &opts.trace {
        let mut events: Vec<GcEvent> = compiled.phases.clone();
        events.extend(rec.events().iter().cloned());
        std::fs::write(path, write_chrome_trace(&events))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    if let Some(path) = &opts.metrics {
        let doc = tfgc::metrics_json(rec, &compiled.program);
        std::fs::write(path, doc.to_json_pretty())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    Ok(())
}

fn cmd_run(compiled: &Compiled, opts: &Opts) -> Result<(), String> {
    if opts.verify_oracle {
        // The oracle does its own pair of runs (strategy + tagged replay)
        // with a forced-collection schedule so there is something to
        // compare even on low-pressure programs.
        let rep = tfgc::oracle_check(
            compiled,
            opts.strategy,
            opts.heap,
            opts.force_gc.unwrap_or(64),
        )?;
        println!("{}", rep.result);
        eprintln!(
            "oracle: {} collection(s) under {} match the tagged replay",
            rep.collections, rep.strategy
        );
        return Ok(());
    }
    let record = opts.trace.is_some() || opts.metrics.is_some();
    let (out, rec) = run_opts(compiled, opts, record)?;
    if let Some(rec) = &rec {
        write_exports(compiled, opts, rec)?;
    }
    for v in &out.printed {
        println!("{v}");
    }
    println!("{}", out.result);
    if opts.stats {
        eprintln!(
            "instructions {}  tag-ops {}  allocations {}  words {}  GCs {}  copied {}  \
             pause-ns {}  metadata-bytes {}",
            out.mutator.instructions,
            out.mutator.tag_ops,
            out.heap.allocations,
            out.heap.words_allocated,
            out.heap.collections,
            out.heap.words_copied,
            out.gc.pause_nanos,
            out.metadata_bytes,
        );
    }
    Ok(())
}

fn cmd_profile(compiled: &Compiled, opts: &Opts) -> Result<(), String> {
    let (out, rec) = run_opts(compiled, opts, true)?;
    let rec = rec.ok_or_else(|| {
        "profile: the run produced no recorder (ring sink failed to attach)".to_string()
    })?;
    write_exports(compiled, opts, &rec)?;
    println!("result {}", out.result);
    print!("{}", tfgc::profile_report(&rec, &compiled.program));
    Ok(())
}

fn cmd_gcmap(compiled: &Compiled, opts: &Opts) -> Result<(), String> {
    let meta = if opts.refined {
        compiled.metadata_refined(opts.strategy)
    } else {
        compiled.metadata(opts.strategy)
    };
    let mut t = Table::new(&["site", "function", "pc", "kind", "gc_word"]);
    for site in &compiled.program.sites {
        let f = &compiled.program.funs[site.fn_id.0 as usize];
        let kind = match &site.kind {
            tfgc::ir::SiteKind::Direct { callee, .. } => {
                format!("call {}", compiled.program.funs[callee.0 as usize].name)
            }
            tfgc::ir::SiteKind::Closure { .. } => "callclos".to_string(),
            tfgc::ir::SiteKind::Alloc { operand_tys } => {
                format!("alloc/{}", operand_tys.len())
            }
        };
        let word = match meta.sites[site.id.0 as usize].routine {
            None => "omitted".to_string(),
            Some(NO_TRACE) => "no_trace".to_string(),
            Some(r) => format!(
                "routine#{} ({} ops)",
                r.0,
                meta.routines.routine(r).ops.len()
            ),
        };
        t.row(vec![
            site.id.0.to_string(),
            f.name.clone(),
            site.pc.to_string(),
            kind,
            word,
        ]);
    }
    println!("{}", t.render());
    println!(
        "{} sites; {} omitted; {} no_trace; {} distinct routines; {} metadata bytes",
        compiled.program.sites.len(),
        meta.omitted_gc_words(),
        meta.no_trace_sites(),
        meta.distinct_routines(),
        meta.metadata_bytes()
    );
    Ok(())
}

fn cmd_analyze(compiled: &Compiled) -> Result<(), String> {
    println!(
        "monomorphic: {}  functions: {}  sites: {}  instructions: {}",
        compiled.is_monomorphic(),
        compiled.program.funs.len(),
        compiled.program.sites.len(),
        compiled.program.code_len()
    );
    let mut t = Table::new(&["function", "kind", "slots", "frame params", "may GC"]);
    for (i, f) in compiled.program.funs.iter().enumerate() {
        t.row(vec![
            f.name.clone(),
            format!("{:?}", f.kind),
            f.slots.len().to_string(),
            f.frame_params.len().to_string(),
            compiled
                .analyses
                .gcpoints
                .fun_may_gc(tfgc::ir::FnId(i as u32))
                .to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "hidden descriptors required: {} (the 1991 scheme's completeness gap)",
        compiled.rtti.total_desc_fields()
    );
    Ok(())
}

/// `tfml serve`: drains a seeded traffic mix through the request engine
/// per strategy and reports steady-state telemetry, optionally gated on
/// service-level objectives.
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let mut strategies: Vec<Strategy> = Strategy::ALL.to_vec();
    let mut base = tfgc::ServeConfig::new(Strategy::Compiled);
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut slo_latency_ms: Option<f64> = None;
    let mut slo_pause_ms: Option<f64> = None;
    let mut serve_generational = false;
    let mut serve_nursery: Option<usize> = None;
    fn num<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> Result<T, CliError>
    where
        T::Err: std::fmt::Display,
    {
        args.get(i)
            .ok_or_else(|| usage(format!("{flag} needs a value")))?
            .parse()
            .map_err(|e| usage(format!("bad {flag}: {e}")))
    }
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--strategy" => {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| usage("--strategy needs a value"))?;
                strategies = if v == "all" {
                    Strategy::ALL.to_vec()
                } else {
                    vec![parse_strategy(v)?]
                };
            }
            "--requests" => {
                i += 1;
                base.requests = num(args, i, "--requests")?;
            }
            "--pool" => {
                i += 1;
                base.pool = num(args, i, "--pool")?;
            }
            "--seed" => {
                i += 1;
                base.seed = num(args, i, "--seed")?;
            }
            "--heap" => {
                i += 1;
                base.heap_words = num(args, i, "--heap")?;
            }
            "--heap-max" => {
                i += 1;
                base.heap_max_words = Some(num(args, i, "--heap-max")?);
            }
            "--quantum" => {
                i += 1;
                base.quantum = num(args, i, "--quantum")?;
            }
            "--window-ms" => {
                i += 1;
                base.window_ms = num(args, i, "--window-ms")?;
            }
            "--sample-every" => {
                i += 1;
                base.sample_every = num(args, i, "--sample-every")?;
            }
            "--json" => {
                i += 1;
                json_path = Some(
                    args.get(i)
                        .ok_or_else(|| usage("--json needs a file path"))?
                        .clone(),
                );
            }
            "--trace" => {
                i += 1;
                trace_path = Some(
                    args.get(i)
                        .ok_or_else(|| usage("--trace needs a file path"))?
                        .clone(),
                );
            }
            "--no-trace-plans" => base.trace_plans = false,
            "--generational" => serve_generational = true,
            "--nursery-words" => {
                i += 1;
                serve_generational = true;
                serve_nursery = Some(num(args, i, "--nursery-words")?);
            }
            "--promote-after" => {
                i += 1;
                base.promote_after = num(args, i, "--promote-after")?;
            }
            "--slo-p99-latency-ms" => {
                i += 1;
                slo_latency_ms = Some(num(args, i, "--slo-p99-latency-ms")?);
            }
            "--slo-p99-pause-ms" => {
                i += 1;
                slo_pause_ms = Some(num(args, i, "--slo-p99-pause-ms")?);
            }
            "--deadline-quanta" => {
                i += 1;
                base.overload.deadline_quanta = Some(num(args, i, "--deadline-quanta")?);
            }
            "--fuel" => {
                i += 1;
                base.overload.fuel = Some(num(args, i, "--fuel")?);
            }
            "--queue-cap" => {
                i += 1;
                base.overload.queue_cap = num(args, i, "--queue-cap")?;
            }
            "--admission" => {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| usage("--admission needs a value"))?;
                base.overload.admission = parse_admission(v)?;
            }
            "--soft-watermark" => {
                i += 1;
                base.overload.soft_watermark_pct = Some(num(args, i, "--soft-watermark")?);
            }
            "--hard-watermark" => {
                i += 1;
                base.overload.hard_watermark_pct = Some(num(args, i, "--hard-watermark")?);
            }
            "--breaker-threshold" => {
                i += 1;
                base.overload.breaker_threshold = num(args, i, "--breaker-threshold")?;
            }
            "--breaker-cooldown" => {
                i += 1;
                base.overload.breaker_cooldown = num(args, i, "--breaker-cooldown")?;
            }
            "--drain-after" => {
                i += 1;
                base.overload.drain_after = Some(num(args, i, "--drain-after")?);
            }
            "--runaway-every" => {
                i += 1;
                base.runaway_every = num(args, i, "--runaway-every")?;
            }
            other => return Err(usage(format!("serve: unknown option `{other}`"))),
        }
        i += 1;
    }
    if trace_path.is_some() && strategies.len() != 1 {
        return Err(usage(
            "serve: --trace needs a single --strategy (one trace per run)",
        ));
    }
    if base.pool == 0 {
        return Err(usage("serve: --pool must be at least 1"));
    }
    if serve_generational {
        // The nursery defaults to a quarter semispace — small enough
        // that minors actually fire under the default traffic.
        base.nursery_words = Some(serve_nursery.unwrap_or(base.heap_words / 4));
    }
    if base.runaway_every > 0
        && base.overload.deadline_quanta.is_none()
        && base.overload.fuel.is_none()
    {
        return Err(usage(
            "serve: --runaway-every needs --deadline-quanta or --fuel (a runaway \
             handler never terminates on its own)",
        ));
    }

    let mut runs = Vec::new();
    for s in &strategies {
        let mut cfg = base.clone();
        cfg.strategy = *s;
        runs.push(tfgc::serve(&cfg)?);
    }
    println!("{}", tfgc::serve_table(&runs).render());

    if let Some(path) = &json_path {
        // The exported document always carries the canonical overload
        // section: the burst scenario per strategy, gated on graceful
        // degradation (conservation, goodput floor, shed-rate ceiling).
        let (overload_section, overload_violations) = tfgc::bench_overload_json(base.seed)?;
        let mut doc = tfgc::serve_doc(base.seed, base.requests, base.pool, &runs);
        if let tfgc::obs::Json::Obj(fields) = &mut doc {
            fields.push(("overload".to_string(), overload_section));
        }
        std::fs::write(path, doc.to_json_pretty())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        if !overload_violations.is_empty() {
            return Err(CliError::Run(format!(
                "overload SLO violations:\n  {}",
                overload_violations.join("\n  ")
            )));
        }
        eprintln!("overload SLO: pass ({} strategies)", Strategy::ALL.len());
    }
    if let Some(path) = &trace_path {
        let events: Vec<GcEvent> = runs[0].rec.ring().events().iter().cloned().collect();
        std::fs::write(path, write_chrome_trace(&events))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }

    if slo_latency_ms.is_some() || slo_pause_ms.is_some() {
        let to_ns =
            |ms: Option<f64>| ms.map_or(u64::MAX, |v| (v * 1_000_000.0).max(0.0).round() as u64);
        let slo = tfgc::Slo {
            max_p99_latency_ns: to_ns(slo_latency_ms),
            max_p99_pause_ns: to_ns(slo_pause_ms),
        };
        let violations: Vec<String> = runs.iter().flat_map(|r| tfgc::check_slo(r, slo)).collect();
        if violations.is_empty() {
            eprintln!("SLO: pass ({} strategies)", runs.len());
        } else {
            return Err(CliError::Run(format!(
                "SLO violations:\n  {}",
                violations.join("\n  ")
            )));
        }
    }
    Ok(())
}

/// `tfml torture`: the fault-injection matrix, plus (with `--oracle`) a
/// tagged-replay differential sweep over the benchmark suite and (with
/// `--serve`) mid-traffic fault injection against the request server.
fn cmd_torture(args: &[String]) -> Result<(), CliError> {
    let mut n_seeds = 8u64;
    let mut oracle = false;
    let mut serve_mode = false;
    let mut overload = false;
    let mut generational = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                n_seeds = args
                    .get(i)
                    .ok_or_else(|| usage("--seeds needs a value"))?
                    .parse()
                    .map_err(|e| usage(format!("bad --seeds: {e}")))?;
            }
            "--oracle" => oracle = true,
            "--serve" => serve_mode = true,
            "--overload" => overload = true,
            "--generational" => generational = true,
            other => return Err(usage(format!("torture: unknown option `{other}`"))),
        }
        i += 1;
    }
    let seeds: Vec<u64> = (0..n_seeds).collect();
    if overload && !serve_mode {
        return Err(usage("torture: --overload needs --serve"));
    }
    if generational && !serve_mode {
        return Err(usage("torture: --generational needs --serve"));
    }
    if serve_mode && overload {
        let cases = tfgc::torture_overload(&seeds);
        let mut bad = 0;
        for c in &cases {
            let status = if c.violations.is_empty() {
                "ok"
            } else {
                "FAIL"
            };
            println!(
                "overload {status}: {} under {} seed {} completed {} failed {} shed {}",
                c.scenario, c.strategy, c.seed, c.completed, c.failed, c.shed
            );
            for v in &c.violations {
                println!("  violation: {v}");
                bad += 1;
            }
        }
        println!(
            "{} overload cases ({} scenarios x {} seeds x 2 strategies)",
            cases.len(),
            tfgc::OVERLOAD_SCENARIOS.len(),
            seeds.len()
        );
        if bad > 0 {
            return Err(CliError::Run(format!(
                "{bad} overload-torture violation(s)"
            )));
        }
        return Ok(());
    }
    if serve_mode {
        let cases = tfgc::torture_serve(&seeds, generational);
        let mut bad = 0;
        for c in &cases {
            let status = if c.violations.is_empty() {
                "ok"
            } else {
                "FAIL"
            };
            println!(
                "serve {status}: {} seed {} ({}) completed {} failed {}",
                c.strategy,
                c.seed,
                c.plan.describe(),
                c.completed,
                c.failed
            );
            for v in &c.violations {
                println!("  violation: {v}");
                bad += 1;
            }
        }
        if bad > 0 {
            return Err(CliError::Run(format!("{bad} serve-torture violation(s)")));
        }
        return Ok(());
    }
    let report = tfgc::torture(&seeds);
    println!("{}", report.summary());
    for case in report.raw_panics() {
        println!(
            "RAW PANIC: {} under {} seed {} ({}): {:?}",
            case.workload,
            case.strategy,
            case.seed,
            case.plan.describe(),
            case.outcome
        );
    }
    if oracle {
        for (name, src) in tfgc::workloads::suite() {
            let compiled =
                Compiled::compile(&src).map_err(|e| CliError::Run(format!("{name}: {e}")))?;
            for s in Strategy::ALL {
                let rep = tfgc::oracle_check(&compiled, s, 1 << 16, 64)
                    .map_err(|e| CliError::Run(format!("oracle: {name} under {s}: {e}")))?;
                println!(
                    "oracle ok: {name} under {s} ({} collections)",
                    rep.collections
                );
            }
        }
    }
    if report.ok() {
        Ok(())
    } else {
        Err(CliError::Run(format!(
            "{} case(s) ended in a raw panic",
            report.raw_panics().len()
        )))
    }
}

fn cmd_fuzz(args: &[String]) -> Result<(), CliError> {
    let mut cfg = tfgc_fuzz::CampaignConfig::default();
    let mut json: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let val = |i: usize, flag: &str| -> Result<&String, CliError> {
            args.get(i)
                .ok_or_else(|| usage(format!("{flag} needs a value")))
        };
        let num = |i: usize, flag: &str| -> Result<u64, CliError> {
            val(i, flag)?
                .parse()
                .map_err(|e| usage(format!("bad {flag}: {e}")))
        };
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                cfg.seeds = num(i, "--seeds")?;
            }
            "--seed-start" => {
                i += 1;
                cfg.seed_start = num(i, "--seed-start")?;
            }
            "--shrink" => cfg.shrink = true,
            "--shrink-budget" => {
                i += 1;
                cfg.shrink_budget = num(i, "--shrink-budget")?;
            }
            "--json" => {
                i += 1;
                json = Some(val(i, "--json")?.clone());
            }
            "--depth" => {
                i += 1;
                cfg.gen.max_depth = num(i, "--depth")? as u32;
            }
            "--funs" => {
                i += 1;
                cfg.gen.n_funs = num(i, "--funs")? as usize;
            }
            "--fuel" => {
                i += 1;
                cfg.gen.fuel = num(i, "--fuel")? as u32;
            }
            "--datatypes" => {
                i += 1;
                cfg.gen.n_datatypes = num(i, "--datatypes")? as usize;
            }
            "--max-rec" => {
                i += 1;
                cfg.gen.max_recursion = num(i, "--max-rec")? as u32;
            }
            "--no-higher-order" => cfg.gen.higher_order = false,
            "--no-polymorphism" => cfg.gen.polymorphism = false,
            other => return Err(usage(format!("fuzz: unknown option `{other}`"))),
        }
        i += 1;
    }
    let report = tfgc_fuzz::run_campaign(&cfg);
    let doc = tfgc_fuzz::report_json(&cfg, &report);
    let digest = tfgc::obs::json::parse(&doc)
        .ok()
        .and_then(|d| match d.get("digest") {
            Some(tfgc::obs::Json::Str(s)) => Some(s.clone()),
            _ => None,
        })
        .unwrap_or_default();
    println!(
        "fuzz: {} seeds from {}: {} cases ({} completed, {} structured errors, {}/{} faults graceful), {} finding(s), digest {digest}",
        report.seeds_run,
        report.seed_start,
        report.cases_executed,
        report.completed,
        report.structured_errors,
        report.faults_graceful,
        report.seeds_run * 5,
        report.findings.len(),
    );
    for f in &report.findings {
        println!(
            "FINDING {} (seed {}, x{}): {}",
            f.fingerprint, f.seed, f.count, f.detail
        );
        if cfg.shrink {
            println!(
                "  shrunk {} -> {} nodes in {} evals; reproducer:",
                f.orig_nodes, f.shrunk_nodes, f.shrink_evals
            );
            for line in f.source.trim().lines() {
                println!("  | {line}");
            }
        }
    }
    if let Some(path) = json {
        std::fs::write(&path, &doc).map_err(|e| CliError::Run(format!("write {path}: {e}")))?;
        println!("wrote {path}");
    }
    if report.ok() {
        Ok(())
    } else {
        Err(CliError::Run(format!(
            "{} differential finding(s)",
            report.findings.len()
        )))
    }
}

fn cmd_compare(compiled: &Compiled, opts: &Opts) -> Result<(), String> {
    let mut t = Table::new(&[
        "strategy", "result", "words", "GCs", "copied", "tag-ops", "meta B",
    ]);
    for s in Strategy::ALL {
        let mut cfg = VmConfig::new(s)
            .heap_words(opts.heap)
            .trace_plans(opts.trace_plans);
        if let Some(n) = opts.force_gc {
            cfg = cfg.force_gc_every(n);
        }
        if opts.generational {
            cfg = cfg.generational(
                opts.nursery_words.unwrap_or(opts.heap / 4),
                opts.promote_after,
            );
        }
        let out = compiled.run_with(cfg).map_err(|e| format!("{s}: {e}"))?;
        t.row(vec![
            s.to_string(),
            out.result.clone(),
            out.heap.words_allocated.to_string(),
            out.heap.collections.to_string(),
            out.heap.words_copied.to_string(),
            out.mutator.tag_ops.to_string(),
            out.metadata_bytes.to_string(),
        ]);
    }
    println!("{}", t.render());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_usage(r: Result<(), CliError>) -> bool {
        matches!(r, Err(CliError::Usage(_)))
    }

    #[test]
    fn malformed_numeric_values_are_usage_errors() {
        for bad in [
            vec!["run", "--heap", "x", "-e", "1"],
            vec!["run", "--heap", "-e"],
            vec!["run", "--force-gc", "ten", "-e", "1"],
            vec!["run", "--events", "1.5", "-e", "1"],
            vec!["serve", "--requests", "many"],
            vec!["serve", "--pool", "0"],
            vec!["serve", "--soft-watermark", "ninety"],
            vec!["serve", "--breaker-threshold", "-3"],
            vec!["torture", "--seeds", "NaN"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(
                is_usage(run(args)),
                "`tfml {}` must be a usage error (exit 2)",
                bad.join(" ")
            );
        }
    }

    #[test]
    fn malformed_compound_values_are_usage_errors() {
        for bad in [
            vec!["serve", "--admission", "backoff:A:B"],
            vec!["serve", "--admission", "backoff:3"],
            vec!["serve", "--admission", "degrade:low"],
            vec!["serve", "--admission", "lottery"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(
                is_usage(run(args)),
                "`tfml {}` must be a usage error (exit 2)",
                bad.join(" ")
            );
        }
    }

    #[test]
    fn unknown_flags_and_commands_are_usage_errors() {
        for bad in [
            vec!["run", "--frobnicate", "-e", "1"],
            vec!["serve", "--what"],
            vec!["torture", "--loud"],
            vec!["conquer"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(is_usage(run(args)), "`tfml {}` must exit 2", bad.join(" "));
        }
        assert!(
            is_usage(run(vec![])),
            "no arguments at all is a usage error"
        );
    }

    #[test]
    fn well_formed_admission_values_parse() {
        assert!(parse_admission("reject").is_ok());
        assert!(parse_admission("backoff").is_ok());
        assert!(parse_admission("backoff:4:32").is_ok());
        assert!(parse_admission("degrade").is_ok());
        assert!(parse_admission("degrade:1").is_ok());
    }

    #[test]
    fn missing_program_is_a_usage_error() {
        assert!(is_usage(run(vec!["run".to_string()])));
    }

    #[test]
    fn runtime_failures_stay_exit_1() {
        // A well-formed invocation of a program that does not exist is a
        // run error, not a usage error.
        let r = run(vec![
            "run".to_string(),
            "/nonexistent/definitely-not-here.tfml".to_string(),
        ]);
        assert!(matches!(r, Err(CliError::Run(_))));
    }
}
