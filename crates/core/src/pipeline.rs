//! The end-to-end pipeline: source → typed AST → bytecode → analyses →
//! GC metadata → execution under a strategy.

use std::fmt;
use std::time::Instant;
use tfgc_gc::{Analyses, GcMeta, Strategy};
use tfgc_ir::{lower_full, IrProgram, RttiInfo};
use tfgc_obs::{GcEvent, Obs};
use tfgc_syntax::parse_program;
use tfgc_types::{elaborate, is_monomorphic, TProgram};
use tfgc_vm::{run_program, RunOutcome, VmConfig, VmError};

/// A front-end error from any stage.
#[derive(Debug, Clone)]
pub enum CompileError {
    Parse(tfgc_syntax::ParseError),
    Type(tfgc_types::TypeError),
    Lower(tfgc_ir::LowerError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Type(e) => write!(f, "{e}"),
            CompileError::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<tfgc_syntax::ParseError> for CompileError {
    fn from(e: tfgc_syntax::ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<tfgc_types::TypeError> for CompileError {
    fn from(e: tfgc_types::TypeError) -> Self {
        CompileError::Type(e)
    }
}

impl From<tfgc_ir::LowerError> for CompileError {
    fn from(e: tfgc_ir::LowerError) -> Self {
        CompileError::Lower(e)
    }
}

/// A compiled program with its analyses, ready to run under any strategy.
#[derive(Debug, Clone)]
pub struct Compiled {
    pub typed: TProgram,
    pub program: IrProgram,
    pub rtti: RttiInfo,
    pub analyses: Analyses,
    /// Per-stage compile timings as [`GcEvent::Phase`] events
    /// (parse / elaborate / lower / analyses), with `start_ns` relative
    /// to the start of compilation. Trace exporters prepend these to the
    /// runtime event stream.
    pub phases: Vec<GcEvent>,
}

impl Compiled {
    /// Runs the full front end on TFML source, timing each stage.
    ///
    /// # Errors
    ///
    /// Returns the first parse, type, or lowering error.
    pub fn compile(src: &str) -> Result<Compiled, CompileError> {
        let t0 = Instant::now();
        let parsed = parse_program(src)?;
        let t1 = Instant::now();
        let typed = elaborate(&parsed)?;
        let t2 = Instant::now();
        let (program, rtti) = lower_full(&typed)?;
        let t3 = Instant::now();
        let analyses = Analyses::compute(&program);
        let t4 = Instant::now();
        let ns = |a: Instant, b: Instant| (b - a).as_nanos() as u64;
        let phases = vec![
            GcEvent::Phase {
                name: "parse",
                start_ns: 0,
                dur_ns: ns(t0, t1),
            },
            GcEvent::Phase {
                name: "elaborate",
                start_ns: ns(t0, t1),
                dur_ns: ns(t1, t2),
            },
            GcEvent::Phase {
                name: "lower",
                start_ns: ns(t0, t2),
                dur_ns: ns(t2, t3),
            },
            GcEvent::Phase {
                name: "analyses",
                start_ns: ns(t0, t3),
                dur_ns: ns(t3, t4),
            },
        ];
        Ok(Compiled {
            typed,
            program,
            rtti,
            analyses,
            phases,
        })
    }

    /// Is the program fully monomorphic (§2's setting)?
    pub fn is_monomorphic(&self) -> bool {
        is_monomorphic(&self.typed)
    }

    /// Builds GC metadata for a strategy (reusing the analyses).
    pub fn metadata(&self, strategy: Strategy) -> GcMeta {
        GcMeta::build(&self.program, &self.analyses, strategy)
    }

    /// Builds GC metadata with the higher-order (closure-flow-refined)
    /// GC-point analysis — §5.1's suggested extension. Omits strictly
    /// more gc_words.
    pub fn metadata_refined(&self, strategy: Strategy) -> GcMeta {
        let an = Analyses::compute_refined(&self.program);
        GcMeta::build(&self.program, &an, strategy)
    }

    /// Runs with explicit, possibly refined, metadata.
    ///
    /// # Errors
    ///
    /// Propagates VM runtime errors.
    pub fn run_with_meta(&self, cfg: VmConfig, meta: GcMeta) -> Result<RunOutcome, VmError> {
        let mut vm = tfgc_vm::Vm::with_meta(&self.program, cfg, meta);
        vm.run()
    }

    /// Runs with explicit metadata and an attached event sink; the sink
    /// comes back with everything it recorded during the run.
    ///
    /// # Errors
    ///
    /// Propagates VM runtime errors (the sink's recordings are lost).
    pub fn run_observed(
        &self,
        cfg: VmConfig,
        meta: GcMeta,
        obs: Obs,
    ) -> Result<(RunOutcome, Obs), VmError> {
        let mut vm = tfgc_vm::Vm::with_meta(&self.program, cfg, meta);
        vm.obs = obs;
        let out = vm.run()?;
        Ok((out, std::mem::take(&mut vm.obs)))
    }

    /// Runs under `cfg`'s strategy with a [`tfgc_obs::RingRecorder`] of
    /// `ring_capacity` raw events attached, returning the outcome and
    /// the recorder (histograms, allocation-site profile, per-collection
    /// summaries).
    ///
    /// # Errors
    ///
    /// Propagates VM runtime errors.
    pub fn run_profiled(
        &self,
        cfg: VmConfig,
        ring_capacity: usize,
    ) -> Result<(RunOutcome, tfgc_obs::RingRecorder), VmError> {
        let meta = self.metadata(cfg.strategy);
        let (out, obs) = self.run_observed(cfg, meta, Obs::ring(ring_capacity))?;
        let rec = obs.into_recorder().expect("ring sink survives the run");
        Ok((out, rec))
    }

    /// Runs under a strategy with default VM settings.
    ///
    /// # Errors
    ///
    /// Propagates VM runtime errors.
    pub fn run(&self, strategy: Strategy) -> Result<RunOutcome, VmError> {
        run_program(&self.program, VmConfig::new(strategy))
    }

    /// Runs with a custom VM configuration.
    ///
    /// # Errors
    ///
    /// Propagates VM runtime errors.
    pub fn run_with(&self, cfg: VmConfig) -> Result<RunOutcome, VmError> {
        run_program(&self.program, cfg)
    }

    /// Runs under every strategy, asserting identical observable output;
    /// returns the outcomes keyed by strategy.
    ///
    /// # Errors
    ///
    /// Propagates the first VM error.
    ///
    /// # Panics
    ///
    /// Panics if two strategies disagree on the result or printed output
    /// — that would be a collector soundness bug.
    pub fn run_all_strategies(
        &self,
        heap_words: usize,
    ) -> Result<Vec<(Strategy, RunOutcome)>, VmError> {
        let mut outs = Vec::new();
        for s in Strategy::ALL {
            let out = self.run_with(VmConfig::new(s).heap_words(heap_words))?;
            outs.push((s, out));
        }
        for (s, o) in &outs[1..] {
            assert_eq!(
                o.result, outs[0].1.result,
                "strategy {s} disagrees with {} on the result",
                outs[0].0
            );
            assert_eq!(
                o.printed, outs[0].1.printed,
                "strategy {s} disagrees with {} on printed output",
                outs[0].0
            );
        }
        Ok(outs)
    }
}

/// One-call convenience: compile and run under a strategy.
///
/// # Errors
///
/// Returns a rendered message for both compile- and run-time failures.
pub fn compile_and_run(src: &str, strategy: Strategy) -> Result<RunOutcome, String> {
    let c = Compiled::compile(src).map_err(|e| e.to_string())?;
    c.run(strategy).map_err(|e| e.to_string())
}
