//! Torture harness and tagged-oracle differential checking.
//!
//! The torture matrix runs seeded workloads under every collection
//! strategy with a seed-derived [`FaultPlan`], heap verification on, and
//! a deliberately tight (but growable) heap. The robustness contract it
//! enforces: **every run ends in a completed result, a structured
//! [`VmError`], or a structured fail-fast panic — never a raw panic.** A
//! raw panic means an injected fault was mistraced instead of detected.
//!
//! [`oracle_check`] is the differential half: the same program replayed
//! under the fully tagged collector with an identical forced-collection
//! schedule must observe byte-for-byte identical canonical reachable
//! graphs at every collection (§6's argument that tag-free tracing loses
//! no information the tags carried).

use crate::pipeline::Compiled;
use tfgc_gc::Strategy;
use tfgc_vm::{capture_panics_mut, diff, with_quiet_panics, FaultPlan, Vm, VmConfig, VmError};
use tfgc_workloads::{generate, programs, GenConfig};

/// How one torture case ended.
#[derive(Debug, Clone)]
pub enum TortureOutcome {
    /// Ran to completion (the injected fault was absorbed or never fired).
    Completed(String),
    /// Surfaced a structured [`VmError`] — graceful degradation.
    Error(VmError),
    /// Hit a structured fail-fast panic (heap corruption, torn stack
    /// map): the fault was *detected*, not silently mistraced.
    FailFast(String),
    /// An unstructured panic — always a harness failure.
    RawPanic(String),
}

impl TortureOutcome {
    /// Everything except a raw panic satisfies the robustness contract.
    pub fn is_graceful(&self) -> bool {
        !matches!(self, TortureOutcome::RawPanic(_))
    }

    /// Short class name for report tables.
    pub fn class(&self) -> &'static str {
        match self {
            TortureOutcome::Completed(_) => "completed",
            TortureOutcome::Error(_) => "error",
            TortureOutcome::FailFast(_) => "fail-fast",
            TortureOutcome::RawPanic(_) => "RAW PANIC",
        }
    }
}

/// One (workload, strategy, fault schedule) run of the matrix.
#[derive(Debug, Clone)]
pub struct TortureCase {
    /// Workload name (`generated` for the seed-derived random program).
    pub workload: String,
    pub strategy: Strategy,
    /// Seed the fault plan (and any generated program) derives from.
    pub seed: u64,
    pub plan: FaultPlan,
    pub outcome: TortureOutcome,
}

/// Results of a whole torture matrix.
#[derive(Debug, Default)]
pub struct TortureReport {
    pub cases: Vec<TortureCase>,
}

impl TortureReport {
    /// Cases that violated the contract (raw panics).
    pub fn raw_panics(&self) -> Vec<&TortureCase> {
        self.cases
            .iter()
            .filter(|c| !c.outcome.is_graceful())
            .collect()
    }

    /// Did every case end gracefully?
    pub fn ok(&self) -> bool {
        self.raw_panics().is_empty()
    }

    /// Count of cases in the given outcome class.
    pub fn count(&self, class: &str) -> usize {
        self.cases
            .iter()
            .filter(|c| c.outcome.class() == class)
            .count()
    }

    /// One-line summary: `N cases: a completed, b error, c fail-fast, d raw`.
    pub fn summary(&self) -> String {
        format!(
            "{} cases: {} completed, {} structured errors, {} fail-fast, {} raw panics",
            self.cases.len(),
            self.count("completed"),
            self.count("error"),
            self.count("fail-fast"),
            self.count("RAW PANIC"),
        )
    }
}

/// Fixed allocation-heavy workloads for the matrix — small enough that a
/// seeds × strategies sweep stays fast, varied enough to cover lists,
/// trees, closures, and polymorphic frames. `shapes` uses a datatype
/// with two *boxed* constructors because only those store a
/// discriminant word — without it the corruption fault class could
/// never fire.
fn torture_workloads() -> Vec<(&'static str, String)> {
    vec![
        ("churn", programs::churn(40, 20)),
        ("naive_rev", programs::naive_rev(24)),
        ("tree_insert", programs::tree_insert(40)),
        ("pipeline", programs::pipeline(40)),
        (
            "shapes",
            "datatype shape = Circle of int | Rect of int * int ;
             fun build n = if n = 0 then []
                 else (if n mod 2 = 0 then Circle n else Rect (n, n)) :: build (n - 1) ;
             fun area s = case s of Circle r => r * r | Rect (w, h) => w * h ;
             fun total xs = case xs of [] => 0 | s :: r => area s + total r ;
             total (build 30)"
                .to_string(),
        ),
    ]
}

/// Runs one case: tight growable heap, verifier on, fault plan armed.
/// Panic capture and classification live in the shared
/// [`tfgc_vm::capture_panics_mut`] helper (also used by the fuzz
/// campaign workers).
fn run_case(compiled: &Compiled, strategy: Strategy, plan: FaultPlan) -> TortureOutcome {
    let meta = compiled.metadata(strategy);
    let cfg = VmConfig::new(strategy)
        .heap_words(1 << 10)
        .heap_max_words(1 << 14)
        .verify_heap(true)
        .fault_plan(plan);
    let context = format!("{strategy} ({})", plan.describe());
    match capture_panics_mut(&context, || compiled.run_with_meta(cfg, meta)) {
        Ok(Ok(out)) => TortureOutcome::Completed(out.result),
        Ok(Err(e)) => TortureOutcome::Error(e),
        Err(p) if p.structured => TortureOutcome::FailFast(p.message),
        Err(p) => TortureOutcome::RawPanic(p.describe()),
    }
}

/// Runs the torture matrix: for each seed, the fixed workloads plus one
/// seed-generated program, each under all five strategies with the
/// seed's fault plan. Panic output from expected fail-fast cases is
/// suppressed for the duration (the hook is restored before returning).
pub fn torture(seeds: &[u64]) -> TortureReport {
    let fixed: Vec<(String, Compiled)> = torture_workloads()
        .into_iter()
        .map(|(name, src)| {
            let c = Compiled::compile(&src).expect("torture workload compiles");
            (name.to_string(), c)
        })
        .collect();

    with_quiet_panics(|| {
        let mut report = TortureReport::default();
        for &seed in seeds {
            let plan = FaultPlan::from_seed(seed);
            let gen_src = generate(seed, &GenConfig::default());
            let generated = Compiled::compile(&gen_src).expect("generated program compiles");
            let mut programs: Vec<(&str, &Compiled)> =
                fixed.iter().map(|(n, c)| (n.as_str(), c)).collect();
            programs.push(("generated", &generated));
            for (name, compiled) in programs {
                for s in Strategy::ALL {
                    let outcome = run_case(compiled, s, plan);
                    report.cases.push(TortureCase {
                        workload: name.to_string(),
                        strategy: s,
                        seed,
                        plan,
                        outcome,
                    });
                }
            }
        }
        report
    })
}

/// Summary of a successful oracle run.
#[derive(Debug, Clone)]
pub struct OracleReport {
    pub strategy: Strategy,
    /// Collections compared (snapshots are taken before every collection).
    pub collections: usize,
    pub result: String,
}

/// Differential oracle: runs `compiled` under `strategy` and again under
/// the fully tagged collector with the same heap size and forced-GC
/// schedule, then asserts the two runs observed identical canonical
/// reachable graphs at every collection, and identical results/output.
///
/// The tagged replay receives the tag-free run's metadata purely to
/// locate root slots; everything below the roots is traced by tags
/// alone, so agreement shows the type-driven walk reconstructed exactly
/// the reachable set the tags describe.
///
/// # Errors
///
/// A human-readable description of the first divergence (or of a VM
/// error in either run).
pub fn oracle_check(
    compiled: &Compiled,
    strategy: Strategy,
    heap_words: usize,
    force_gc_every: u64,
) -> Result<OracleReport, String> {
    let meta = compiled.metadata(strategy);
    // Snapshot root enumeration always follows a *tag-free* metadata
    // set. For the tagged strategy itself (whose own metadata omits
    // every gc_word) borrow the no-liveness build, which keeps all of
    // them.
    let root_meta = if strategy == Strategy::Tagged {
        compiled.metadata(Strategy::CompiledNoLiveness)
    } else {
        meta.clone()
    };
    let cfg = VmConfig::new(strategy)
        .heap_words(heap_words)
        .force_gc_every(force_gc_every);
    let mut vm = Vm::with_meta(&compiled.program, cfg, meta);
    vm.enable_snapshots(root_meta.clone());
    let out = vm.run().map_err(|e| format!("{strategy}: {e}"))?;
    let snaps = vm.take_snapshots();

    let tagged_cfg = VmConfig::new(Strategy::Tagged)
        .heap_words(heap_words)
        .force_gc_every(force_gc_every);
    let mut tagged_vm = Vm::with_meta(
        &compiled.program,
        tagged_cfg,
        compiled.metadata(Strategy::Tagged),
    );
    tagged_vm.enable_snapshots(root_meta);
    let tagged_out = tagged_vm.run().map_err(|e| format!("tagged oracle: {e}"))?;
    let tagged_snaps = tagged_vm.take_snapshots();

    if out.result != tagged_out.result {
        return Err(format!(
            "result differs: {} ({strategy}) vs {} (tagged)",
            out.result, tagged_out.result
        ));
    }
    if out.printed != tagged_out.printed {
        return Err(format!(
            "printed output differs ({} lines vs {})",
            out.printed.len(),
            tagged_out.printed.len()
        ));
    }
    if snaps.len() != tagged_snaps.len() {
        return Err(format!(
            "collection count differs: {} ({strategy}) vs {} (tagged)",
            snaps.len(),
            tagged_snaps.len()
        ));
    }
    for (i, (a, b)) in snaps.iter().zip(&tagged_snaps).enumerate() {
        if let Some(d) = diff(a, b) {
            return Err(format!(
                "collection {i}: reachable graphs differ ({strategy} vs tagged): {d}"
            ));
        }
    }
    Ok(OracleReport {
        strategy,
        collections: snaps.len(),
        result: out.result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torture_matrix_ends_gracefully() {
        let report = torture(&[1, 2, 3, 4]);
        assert!(!report.cases.is_empty());
        let raw: Vec<String> = report
            .raw_panics()
            .iter()
            .map(|c| {
                format!(
                    "{} / {} / seed {} ({}): {:?}",
                    c.workload,
                    c.strategy,
                    c.seed,
                    c.plan.describe(),
                    c.outcome
                )
            })
            .collect();
        assert!(report.ok(), "raw panics:\n{}", raw.join("\n"));
        // The seeds above cover several fault classes; at least one case
        // must have degraded (structured error or fail-fast) rather than
        // every fault silently missing its trigger.
        assert!(
            report.count("error") + report.count("fail-fast") > 0,
            "no fault ever fired: {}",
            report.summary()
        );
    }

    #[test]
    fn oracle_agrees_under_all_strategies() {
        let compiled = Compiled::compile(&programs::naive_rev(40)).unwrap();
        for s in Strategy::ALL {
            let rep =
                oracle_check(&compiled, s, 1 << 14, 32).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert!(rep.collections > 0, "{s}: no collections compared");
            assert_eq!(rep.result, "40", "{s}");
        }
    }

    #[test]
    fn oracle_agrees_on_polymorphic_closures() {
        let compiled = Compiled::compile(&programs::poly_capture(60)).unwrap();
        for s in Strategy::ALL {
            let rep =
                oracle_check(&compiled, s, 1 << 14, 24).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert!(rep.collections > 0, "{s}: no collections compared");
        }
    }

    #[test]
    fn alloc_failure_fault_is_absorbed_by_collect_and_retry() {
        let compiled = Compiled::compile(&programs::churn(30, 10)).unwrap();
        let clean = compiled
            .run_with(VmConfig::new(Strategy::Compiled).heap_words(1 << 12))
            .unwrap();
        let plan = FaultPlan {
            alloc_fail_at: Some(5),
            ..FaultPlan::none()
        };
        let cfg = VmConfig::new(Strategy::Compiled)
            .heap_words(1 << 12)
            .verify_heap(true)
            .fault_plan(plan);
        let out = compiled
            .run_with_meta(cfg, compiled.metadata(Strategy::Compiled))
            .unwrap();
        assert_eq!(out.result, clean.result);
        // The forced failure must have driven at least one collection the
        // clean run never needed.
        assert!(out.heap.collections > clean.heap.collections);
    }

    #[test]
    fn exhaustion_fault_surfaces_structured_out_of_memory() {
        // Needs ~2n words live; growth is refused from the first
        // allocation, so the run must end in a structured OOM.
        let compiled = Compiled::compile(
            "fun build n = if n = 0 then [] else n :: build (n - 1) ;
             fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ;
             len (build 2000)",
        )
        .unwrap();
        let plan = FaultPlan {
            exhaust_at: Some(1),
            ..FaultPlan::none()
        };
        let cfg = VmConfig::new(Strategy::Compiled)
            .heap_words(1 << 9)
            .heap_max_words(1 << 15)
            .fault_plan(plan);
        let err = compiled
            .run_with_meta(cfg, compiled.metadata(Strategy::Compiled))
            .unwrap_err();
        assert!(
            matches!(
                err,
                VmError::OutOfMemory {
                    strategy: "compiled",
                    ..
                }
            ),
            "{err}"
        );
        // Without the fault the same configuration is rescued by growth.
        let cfg = VmConfig::new(Strategy::Compiled)
            .heap_words(1 << 9)
            .heap_max_words(1 << 15)
            .verify_heap(true);
        let out = compiled
            .run_with_meta(cfg, compiled.metadata(Strategy::Compiled))
            .unwrap();
        assert_eq!(out.result, "2000");
        assert!(out.heap.grows > 0);
    }

    #[test]
    fn corrupted_discriminant_is_detected_not_mistraced() {
        // Only datatypes with several boxed constructors store a
        // discriminant word (single-pointer-constructor types like cons
        // elide it), so the fault needs a shape-like type. Allocation
        // order puts the first 30 allocations on `shape` objects.
        let compiled = Compiled::compile(
            "datatype shape = Circle of int | Rect of int * int ;
             fun build n = if n = 0 then []
                 else (if n mod 2 = 0 then Circle n else Rect (n, n)) :: build (n - 1) ;
             fun area s = case s of Circle r => r * r | Rect (w, h) => w * h ;
             fun total xs = case xs of [] => 0 | s :: r => area s + total r ;
             total (build 30)",
        )
        .unwrap();
        let plan = FaultPlan {
            corrupt_discriminant_at: Some(5),
            ..FaultPlan::none()
        };
        let outcomes: Vec<(Strategy, TortureOutcome)> = with_quiet_panics(|| {
            Strategy::ALL
                .into_iter()
                .map(|s| {
                    let meta = compiled.metadata(s);
                    let cfg = VmConfig::new(s)
                        .heap_words(1 << 12)
                        .force_gc_every(8)
                        .verify_heap(true)
                        .fault_plan(plan);
                    let outcome = match capture_panics_mut(&s.to_string(), || {
                        compiled.run_with_meta(cfg, meta)
                    }) {
                        Ok(Ok(out)) => TortureOutcome::Completed(out.result),
                        Ok(Err(e)) => TortureOutcome::Error(e),
                        Err(p) if p.structured => TortureOutcome::FailFast(p.message),
                        Err(p) => TortureOutcome::RawPanic(p.describe()),
                    };
                    (s, outcome)
                })
                .collect()
        });
        for (s, outcome) in outcomes {
            assert!(
                matches!(
                    outcome,
                    TortureOutcome::Error(_) | TortureOutcome::FailFast(_)
                ),
                "{s}: corruption not detected: {outcome:?}"
            );
        }
    }

    #[test]
    fn truncated_stack_map_fails_fast_on_polymorphic_frames() {
        // A torn stack map only bites when a collection traces a frame
        // whose routine reads one of the missing type parameters, so try
        // every polymorphic function as the victim under frequent forced
        // collections: at least one must trip the fail-fast path, and no
        // victim may cause an unstructured panic. The Interpreted
        // strategy resolves parameters through byte descriptors (a
        // separate lookup path the torture matrix once caught raw-
        // panicking), so both tracers are exercised.
        let compiled = Compiled::compile(&programs::poly_deep_alloc(60)).unwrap();
        let meta = compiled.metadata(Strategy::Compiled);
        let victims: Vec<u32> = meta
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.frame_param_src.is_empty())
            .map(|(i, _)| i as u32)
            .collect();
        assert!(
            !victims.is_empty(),
            "poly_deep_alloc has polymorphic frames"
        );
        let mut panics: Vec<(Strategy, u32, tfgc_vm::CapturedPanic)> = Vec::new();
        let mut detected = [0usize; 2];
        with_quiet_panics(|| {
            for (si, s) in [Strategy::Compiled, Strategy::Interpreted]
                .into_iter()
                .enumerate()
            {
                for &victim in &victims {
                    let plan = FaultPlan {
                        truncate_frame_params_of: Some(victim),
                        ..FaultPlan::none()
                    };
                    let cfg = VmConfig::new(s)
                        .heap_words(1 << 12)
                        .force_gc_every(2)
                        .fault_plan(plan);
                    let res = capture_panics_mut(&format!("{s} fn {victim}"), || {
                        compiled.run_with_meta(cfg, compiled.metadata(s))
                    });
                    if let Err(p) = res {
                        detected[si] += 1;
                        panics.push((s, victim, p));
                    }
                }
            }
        });
        for (s, victim, p) in &panics {
            assert!(p.structured, "{s} fn {victim}: raw panic: {}", p.message);
        }
        assert!(
            detected.iter().all(|&n| n > 0),
            "a strategy never tripped the torn-stack-map check: {detected:?}"
        );
    }

    #[test]
    fn single_thread_heap_growth_is_bounded_and_counted() {
        let compiled = Compiled::compile(
            "fun build n = if n = 0 then [] else n :: build (n - 1) ;
             fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ;
             len (build 1500)",
        )
        .unwrap();
        let cfg = VmConfig::new(Strategy::Compiled)
            .heap_words(1 << 9)
            .heap_max_words(1 << 13)
            .verify_heap(true);
        let out = compiled
            .run_with_meta(cfg, compiled.metadata(Strategy::Compiled))
            .unwrap();
        assert_eq!(out.result, "1500");
        assert!(out.heap.grows > 0, "heap never grew");
        // The cap itself: a live set beyond the bound is a structured OOM.
        let cfg = VmConfig::new(Strategy::Compiled)
            .heap_words(1 << 7)
            .heap_max_words(1 << 9);
        let err = compiled
            .run_with_meta(cfg, compiled.metadata(Strategy::Compiled))
            .unwrap_err();
        assert!(matches!(err, VmError::OutOfMemory { .. }), "{err}");
    }

    #[test]
    fn verifier_passes_on_gc_heavy_runs_across_strategies() {
        for (name, src) in [
            ("naive_rev", programs::naive_rev(30)),
            ("tree_insert", programs::tree_insert(50)),
            ("pipeline", programs::pipeline(50)),
        ] {
            let compiled = Compiled::compile(&src).unwrap();
            for s in Strategy::ALL {
                let cfg = VmConfig::new(s)
                    .heap_words(1 << 12)
                    .force_gc_every(16)
                    .verify_heap(true);
                compiled
                    .run_with_meta(cfg, compiled.metadata(s))
                    .unwrap_or_else(|e| panic!("{name} under {s}: {e}"));
            }
        }
    }
}
