//! `tfml serve` — a request-server harness over the cooperative task
//! pool.
//!
//! The paper's experiments are batch runs: one program, one heap, one
//! exit. A server is the opposite regime — a persistent heap serving an
//! open-ended stream of small computations — and it is the regime where
//! pause behavior (E6) and suspension latency (E7) actually bite. This
//! module drives a deterministic, seeded traffic mix of handler
//! invocations through [`tfgc_tasking::serve_requests`] against one
//! shared heap per strategy and reports steady-state telemetry:
//!
//! * per-request latency and GC pause histograms (log₂ buckets),
//! * windowed rates (allocations, collections, completions per window),
//! * a heap-occupancy timeline sampled at deterministic scheduler
//!   points, and
//! * minimum-mutator-utilization figures derived from pause intervals.
//!
//! Everything wall-clock lives under the `"timing"` key of the exported
//! JSON; everything under `"deterministic"` is a pure function of
//! `(seed, requests, pool, strategy)` and is diffed byte-for-byte in CI.
//! [`check_slo`] is the gate: p99 request latency and p99 pause under
//! fixed thresholds, zero failed requests.
//!
//! Overload is a first-class regime, not a failure: [`ServeConfig`]
//! embeds an [`OverloadConfig`] (deadline/fuel budgets, bounded-queue
//! admission with backpressure, heap-pressure watermarks, per-kind
//! circuit breakers) and `runaway_every` injects handlers that never
//! terminate on their own — the budgets must catch them. The
//! degradation contract is checked two ways: [`check_overload_slo`]
//! gates the canonical burst scenario ([`overload_scenario`]) on
//! conservation, goodput, and shed rate, and [`torture_overload`] races
//! the mechanisms through seeded burst / deadline-storm / runaway-hog /
//! watermark-flap cases that must never raw-panic.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::pipeline::Compiled;
use crate::report::Table;
use tfgc_gc::Strategy;
use tfgc_obs::{Json, Obs, ServeRecorder};
use tfgc_tasking::{
    find_fn, serve_requests_overload, AdmissionPolicy, OverloadConfig, Request, ServeReport,
    SuspendPolicy, TaskConfig,
};
use tfgc_vm::{FaultPlan, VmError};
use tfgc_workloads::SmallRng;

/// The service program: a persistent global table (the shared heap
/// state every request sees) plus one handler per traffic class. Each
/// handler takes exactly one int argument — the request engine's
/// calling convention.
pub const SERVICE_SRC: &str = "
    datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree ;
    fun build n = if n = 0 then [] else n :: build (n - 1) ;
    fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
    fun map f xs = case xs of [] => [] | x :: r => f x :: map f r ;
    fun insert t x = case t of
        Leaf => Node (Leaf, x, Leaf)
      | Node (l, v, r) => if x < v then Node (insert l x, v, r)
                          else Node (l, v, insert r x) ;
    fun tbuild lo hi t = if lo > hi then t else tbuild (lo + 1) hi (insert t ((lo * 37) mod hi)) ;
    fun tsize t = case t of Leaf => 0 | Node (l, _, r) => 1 + tsize l + tsize r ;
    fun spin n = if n = 0 then 0 else (let val x = n * n in spin (n - 1) end) ;
    val table = build 48 ;
    fun req_churn n = sum (build n) ;
    fun req_scan n = sum table + n ;
    fun req_tree n = tsize (tbuild 1 n Leaf) ;
    fun req_close n = sum (map (fn x => x * 2) (build n)) ;
    fun req_spin n = (spin (n * 4); n) ;
    fun req_hog n = sum (build (n * 32)) ;
    fun req_runaway n = if n = 0 then 0 else req_runaway (n + 1) ;
    0";

/// One traffic class in the service mix.
#[derive(Debug, Clone, Copy)]
pub struct MixEntry {
    /// Class name (JSON key in the exported mix counts).
    pub name: &'static str,
    /// Handler function in [`SERVICE_SRC`].
    pub entry: &'static str,
    /// Relative weight in the seeded draw.
    pub weight: u64,
    /// Argument range `[lo, hi)` drawn per request.
    pub lo: i64,
    pub hi: i64,
}

/// The default traffic mix: allocation churn dominates, with steady
/// shared-table scans, tree builds, closure pipelines, and a
/// low-allocation compute class that stresses suspension latency.
pub const MIX: [MixEntry; 5] = [
    MixEntry {
        name: "churn",
        entry: "req_churn",
        weight: 4,
        lo: 8,
        hi: 40,
    },
    MixEntry {
        name: "scan",
        entry: "req_scan",
        weight: 3,
        lo: 1,
        hi: 100,
    },
    MixEntry {
        name: "tree",
        entry: "req_tree",
        weight: 2,
        lo: 4,
        hi: 16,
    },
    MixEntry {
        name: "close",
        entry: "req_close",
        weight: 2,
        lo: 4,
        hi: 24,
    },
    MixEntry {
        name: "spin",
        entry: "req_spin",
        weight: 1,
        lo: 16,
        hi: 64,
    },
];

/// Service-run configuration (`tfml serve` flags map 1:1 onto this).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    pub strategy: Strategy,
    /// Total requests to drain.
    pub requests: usize,
    /// Concurrent pool slots.
    pub pool: usize,
    /// Traffic-mix seed (same seed → same request sequence).
    pub seed: u64,
    pub heap_words: usize,
    pub heap_max_words: Option<usize>,
    pub quantum: u64,
    /// Steady-state metrics window, in milliseconds of wall clock.
    pub window_ms: u64,
    /// Raw-event ring capacity.
    pub ring: usize,
    /// Heap-occupancy sample period, in scheduling quanta (0 = off).
    pub sample_every: u64,
    /// Fault schedule for torture runs.
    pub fault_plan: Option<FaultPlan>,
    /// Flattened trace-plan execution (`--no-trace-plans` turns it off
    /// for the plans≡closures serve differential).
    pub trace_plans: bool,
    /// Bump-pointer nursery size in words (`--generational`): `Some`
    /// runs minor/major generational collection, `None` the classic
    /// single-generation semispace.
    pub nursery_words: Option<usize>,
    /// Survival count after which a nursery object is promoted to the
    /// tenured generation (0 = promote on first survival).
    pub promote_after: u32,
    /// Replace every `hog_every`-th request with a `req_hog` whose live
    /// set dwarfs a torture-sized heap (0 = no hogs). Hogs report as
    /// kind [`MIX`]`.len()` ("hog" in the exported mix counts).
    pub hog_every: usize,
    /// Replace every `runaway_every`-th request with a `req_runaway`
    /// that never terminates on its own (0 = no runaways). Pair it with
    /// a deadline or fuel budget in [`ServeConfig::overload`] — without
    /// one the run only ends at the whole-machine step limit. Runaways
    /// report as kind [`MIX`]`.len() + 1` ("runaway" in the exported mix
    /// counts).
    pub runaway_every: usize,
    /// Overload management: budgets, bounded-queue admission,
    /// watermarks, circuit breakers, drain. [`OverloadConfig::none`]
    /// reproduces the plain engine exactly. The jitter seed is
    /// overridden with [`ServeConfig::seed`] at run time so one seed
    /// determines the whole run.
    pub overload: OverloadConfig,
}

impl ServeConfig {
    /// Defaults: 400 requests over 4 slots, seed 1, 2Ki-word semispaces
    /// growable to 64Ki words (tight enough that steady-state traffic
    /// collects repeatedly — a server that never collects measures
    /// nothing), every-call suspension, 10 ms windows, occupancy sampled
    /// every 32 quanta.
    pub fn new(strategy: Strategy) -> ServeConfig {
        ServeConfig {
            strategy,
            requests: 400,
            pool: 4,
            seed: 1,
            heap_words: 1 << 11,
            heap_max_words: Some(1 << 16),
            quantum: 64,
            window_ms: 10,
            ring: 1 << 14,
            sample_every: 32,
            fault_plan: None,
            trace_plans: true,
            hog_every: 0,
            runaway_every: 0,
            nursery_words: None,
            promote_after: 0,
            overload: OverloadConfig::none(),
        }
    }
}

/// Draws `n` requests from `mix` with the seeded generator: class by
/// weight, argument uniform in the class range. `kind` is the mix
/// index. Pure function of `(seed, n, mix)`.
pub fn build_traffic(
    prog: &tfgc_ir::IrProgram,
    seed: u64,
    n: usize,
    mix: &[MixEntry],
) -> Vec<Request> {
    let entries: Vec<_> = mix
        .iter()
        .map(|m| find_fn(prog, m.entry).unwrap_or_else(|| panic!("no handler {}", m.entry)))
        .collect();
    let total: u64 = mix.iter().map(|m| m.weight).sum();
    assert!(total > 0, "traffic mix needs at least one positive weight");
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut draw = rng.gen_range(0, total as i64) as u64;
            let mut k = 0;
            while draw >= mix[k].weight {
                draw -= mix[k].weight;
                k += 1;
            }
            Request::new(entries[k], rng.gen_range(mix[k].lo, mix[k].hi), k as u32)
        })
        .collect()
}

/// One completed service run: the engine's report plus the serve-mode
/// recorder and the per-class request counts of the generated traffic.
#[derive(Debug)]
pub struct ServeRun {
    pub config: ServeConfig,
    pub report: ServeReport,
    pub rec: ServeRecorder,
    /// Requests drawn per mix class (index = kind).
    pub mix_counts: Vec<u64>,
}

/// Compiles [`SERVICE_SRC`], draws the seeded traffic, and drains it
/// through the request engine with a [`ServeRecorder`] attached.
///
/// # Errors
///
/// Compile errors and whole-machine VM errors render as strings.
pub fn serve(cfg: &ServeConfig) -> Result<ServeRun, String> {
    let c = Compiled::compile(SERVICE_SRC).map_err(|e| format!("service program: {e}"))?;
    let mut traffic = build_traffic(&c.program, cfg.seed, cfg.requests, &MIX);
    if cfg.hog_every > 0 {
        let hog = find_fn(&c.program, "req_hog").expect("service program has req_hog");
        for (i, r) in traffic.iter_mut().enumerate() {
            if (i + 1) % cfg.hog_every == 0 {
                // ~64-96 * 32 live cons cells: far past a torture-sized
                // heap ceiling, deterministic per (seed, position).
                let arg = 64 + ((cfg.seed + i as u64) % 32) as i64;
                *r = Request::new(hog, arg, MIX.len() as u32);
            }
        }
    }
    if cfg.runaway_every > 0 {
        let runaway = find_fn(&c.program, "req_runaway").expect("service program has req_runaway");
        for (i, r) in traffic.iter_mut().enumerate() {
            if (i + 1) % cfg.runaway_every == 0 {
                *r = Request::new(runaway, 1, MIX.len() as u32 + 1);
            }
        }
    }
    let mut mix_counts = vec![0u64; MIX.len() + 2];
    for r in &traffic {
        mix_counts[r.kind as usize] += 1;
    }
    let mut tc = TaskConfig::new(cfg.strategy);
    tc.heap_words = cfg.heap_words;
    tc.heap_max_words = cfg.heap_max_words;
    tc.policy = SuspendPolicy::EveryCall;
    tc.quantum = cfg.quantum;
    tc.fault_plan = cfg.fault_plan;
    tc.trace_plans = cfg.trace_plans;
    tc.nursery_words = cfg.nursery_words;
    tc.promote_after = cfg.promote_after;
    let obs = Obs::serve(cfg.ring, cfg.window_ms.max(1) * 1_000_000);
    let mut overload = cfg.overload;
    overload.seed = cfg.seed;
    let (report, obs) = serve_requests_overload(
        &c.program,
        &traffic,
        cfg.pool,
        cfg.sample_every,
        tc,
        overload,
        obs,
    )
    .map_err(|e| format!("{} serve: {e}", cfg.strategy))?;
    let rec = obs.into_serve_recorder().expect("serve sink attached");
    Ok(ServeRun {
        config: cfg.clone(),
        report,
        rec,
        mix_counts,
    })
}

/// FNV-1a over the rendered outcomes (kind, result, error text): one
/// order-sensitive digest standing for the full response stream.
fn results_digest(report: &ServeReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for o in &report.outcomes {
        eat(&o.kind.to_le_bytes());
        eat(o.result.as_bytes());
        eat(&[0]);
    }
    h
}

/// Per-strategy JSON: a `"deterministic"` block (a pure function of
/// seed and config; CI diffs it byte-for-byte) and a `"timing"` block
/// (wall-clock histograms, windows, utilization).
pub fn serve_json(run: &ServeRun) -> Json {
    let r = &run.report;
    // The digest is a hex *string*: JSON numbers are f64 and would
    // silently round a 64-bit hash above 2^53.
    let digest = format!("{:016x}", results_digest(r));
    let mix = Json::Obj(
        MIX.iter()
            .map(|m| m.name)
            .chain(["hog", "runaway"])
            .zip(&run.mix_counts)
            .map(|(name, n)| (name.to_string(), Json::Num(*n as f64)))
            .collect(),
    );
    // Goodput/shed-rate are ratios of deterministic counters; the
    // breaker/backlog folds come from quantum-clocked events — all of it
    // diffs clean across same-seed runs.
    let overload = Json::obj([
        ("shed", Json::Num(r.shed as f64)),
        (
            "shed_by_reason",
            Json::Obj(
                run.rec
                    .shed_by_reason()
                    .iter()
                    .map(|(reason, n)| (reason.to_string(), Json::Num(*n as f64)))
                    .collect(),
            ),
        ),
        (
            "deadline_exceeded",
            Json::Num(run.rec.deadline_exceeded() as f64),
        ),
        ("breaker_trips", Json::Num(r.breaker_trips as f64)),
        (
            "breaker_final",
            Json::arr(r.breaker_final.iter().map(|(kind, state)| {
                Json::obj([
                    ("kind", Json::Num(f64::from(*kind))),
                    ("state", Json::str(*state)),
                ])
            })),
        ),
        ("goodput", Json::Num(run.rec.goodput())),
        ("shed_rate", Json::Num(run.rec.shed_rate())),
        (
            "conservation",
            Json::Bool(r.completed + r.failed + r.shed == r.outcomes.len() as u64),
        ),
    ]);
    let deterministic = Json::obj([
        (
            "requests",
            Json::obj([
                ("total", Json::Num(r.outcomes.len() as f64)),
                ("completed", Json::Num(r.completed as f64)),
                ("failed", Json::Num(r.failed as f64)),
                ("shed", Json::Num(r.shed as f64)),
            ]),
        ),
        ("mix", mix),
        ("results_digest", Json::str(digest)),
        ("collections", Json::Num(r.heap.collections as f64)),
        (
            "minor_collections",
            Json::Num(r.gc.minor_collections as f64),
        ),
        (
            "major_collections",
            Json::Num(r.gc.major_collections as f64),
        ),
        ("promoted_words", Json::Num(r.gc.promoted_words as f64)),
        ("died_young_words", Json::Num(r.gc.died_young_words as f64)),
        ("allocations", Json::Num(r.heap.allocations as f64)),
        ("words_allocated", Json::Num(r.heap.words_allocated as f64)),
        ("words_copied", Json::Num(r.heap.words_copied as f64)),
        ("peak_live_words", Json::Num(r.heap.peak_live_words as f64)),
        ("heap_grows", Json::Num(r.heap.grows as f64)),
        (
            "peak_heap_words_sampled",
            Json::Num(run.rec.peak_heap_words() as f64),
        ),
        (
            "peak_live_words_sampled",
            Json::Num(run.rec.peak_live_words() as f64),
        ),
        (
            "max_in_flight",
            Json::Num(f64::from(run.rec.max_in_flight())),
        ),
        ("suspension_checks", Json::Num(r.suspension_checks as f64)),
        ("suspension_events", Json::Num(r.suspension_events as f64)),
        (
            "max_suspension_latency",
            Json::Num(r.max_suspension_latency as f64),
        ),
        ("overload", overload),
    ]);
    Json::obj([
        ("strategy", Json::str(run.config.strategy.name())),
        ("deterministic", deterministic),
        ("timing", run.rec.serve_json()),
    ])
}

/// Assembles the `BENCH_SERVE.json` document from completed runs.
pub fn serve_doc(seed: u64, requests: usize, pool: usize, runs: &[ServeRun]) -> Json {
    Json::obj([
        (
            "doc",
            Json::obj([
                ("experiment", Json::str("SERVE")),
                (
                    "title",
                    Json::str("steady-state request service: latency, pauses, utilization"),
                ),
                (
                    "workload",
                    Json::str("seeded traffic mix over a persistent shared heap"),
                ),
                (
                    "note",
                    Json::str(
                        "the `deterministic` block of each strategy is a pure function \
                         of (seed, requests, pool); `timing` is wall-clock",
                    ),
                ),
            ]),
        ),
        ("seed", Json::Num(seed as f64)),
        ("requests", Json::Num(requests as f64)),
        ("pool", Json::Num(pool as f64)),
        ("strategies", Json::arr(runs.iter().map(serve_json))),
    ])
}

/// The full `BENCH_SERVE.json` document: one seeded service run per
/// strategy under the default configuration.
///
/// # Errors
///
/// Propagates the first failing strategy's error.
pub fn bench_serve_json(seed: u64, requests: usize, pool: usize) -> Result<Json, String> {
    let mut runs = Vec::new();
    for s in Strategy::ALL {
        let mut cfg = ServeConfig::new(s);
        cfg.seed = seed;
        cfg.requests = requests;
        cfg.pool = pool;
        runs.push(serve(&cfg)?);
    }
    Ok(serve_doc(seed, requests, pool, &runs))
}

/// Service-level objectives for the CI gate.
#[derive(Debug, Clone, Copy)]
pub struct Slo {
    /// Ceiling on p99 request latency, nanoseconds.
    pub max_p99_latency_ns: u64,
    /// Ceiling on p99 GC pause, nanoseconds.
    pub max_p99_pause_ns: u64,
}

/// Checks one run against the objectives. Empty = pass. Beyond the two
/// latency ceilings, service integrity itself is an objective: every
/// request resolved exactly one way (`completed + failed + shed ==
/// total`), and none failed — except that when the run configures a
/// deadline or fuel budget, budget breaches are the mechanism working
/// as intended and do not count as failures.
pub fn check_slo(run: &ServeRun, slo: Slo) -> Vec<String> {
    let name = run.config.strategy.name();
    let mut violations = Vec::new();
    let r = &run.report;
    if r.outcomes.len() != run.config.requests {
        violations.push(format!(
            "{name}: {} of {} requests resolved",
            r.outcomes.len(),
            run.config.requests
        ));
    }
    if r.completed + r.failed + r.shed != r.outcomes.len() as u64 {
        violations.push(format!(
            "{name}: conservation violated: {} completed + {} failed + {} shed != {} total",
            r.completed,
            r.failed,
            r.shed,
            r.outcomes.len()
        ));
    }
    if r.completed == 0 {
        violations.push(format!("{name}: zero requests completed"));
    }
    let budgeted =
        run.config.overload.deadline_quanta.is_some() || run.config.overload.fuel.is_some();
    let unexpected_failures = r
        .outcomes
        .iter()
        .filter(|o| match &o.error {
            None => false,
            Some(VmError::DeadlineExceeded { .. }) => !budgeted,
            Some(_) => true,
        })
        .count();
    if unexpected_failures > 0 {
        violations.push(format!("{name}: {unexpected_failures} requests failed"));
    }
    let p99_latency = run.rec.latency_hist().p99();
    if p99_latency > slo.max_p99_latency_ns {
        violations.push(format!(
            "{name}: p99 request latency {p99_latency}ns > {}ns",
            slo.max_p99_latency_ns
        ));
    }
    let p99_pause = run.rec.pause_hist().p99();
    if p99_pause > slo.max_p99_pause_ns {
        violations.push(format!(
            "{name}: p99 pause {p99_pause}ns > {}ns",
            slo.max_p99_pause_ns
        ));
    }
    violations
}

/// Objectives for a run that is *supposed* to be overloaded: the
/// service must degrade (shed, quarantine) without collapsing.
#[derive(Debug, Clone, Copy)]
pub struct OverloadSlo {
    /// Ceiling on the shed fraction of submitted work.
    pub max_shed_rate: f64,
    /// Floor on goodput (completed / submitted).
    pub min_goodput: f64,
}

impl OverloadSlo {
    /// The CI gate for [`overload_scenario`]: bounded shedding, nonzero
    /// goodput. Deliberately loose — the gate is about degradation shape
    /// (conserve every request, keep completing work), not throughput.
    pub fn gate() -> OverloadSlo {
        OverloadSlo {
            max_shed_rate: 0.9,
            min_goodput: 0.05,
        }
    }
}

/// Checks an overload run: every request resolved, conservation holds,
/// goodput above the floor, shed rate below the ceiling. Empty = pass.
pub fn check_overload_slo(run: &ServeRun, slo: OverloadSlo) -> Vec<String> {
    let name = run.config.strategy.name();
    let mut violations = Vec::new();
    let r = &run.report;
    if r.outcomes.len() != run.config.requests {
        violations.push(format!(
            "{name}: {} of {} requests resolved",
            r.outcomes.len(),
            run.config.requests
        ));
    }
    if r.completed + r.failed + r.shed != r.outcomes.len() as u64 {
        violations.push(format!(
            "{name}: conservation violated: {} completed + {} failed + {} shed != {} total",
            r.completed,
            r.failed,
            r.shed,
            r.outcomes.len()
        ));
    }
    let goodput = run.rec.goodput();
    if goodput < slo.min_goodput {
        violations.push(format!(
            "{name}: goodput {goodput:.3} < {:.3}",
            slo.min_goodput
        ));
    }
    let shed_rate = run.rec.shed_rate();
    if shed_rate > slo.max_shed_rate {
        violations.push(format!(
            "{name}: shed rate {shed_rate:.3} > {:.3}",
            slo.max_shed_rate
        ));
    }
    violations
}

/// The canonical overload scenario for the benchmark document: a burst
/// of 160 requests (every 16th a runaway) against 3 slots behind a
/// bounded queue with backoff, watermarks, and a circuit breaker over
/// the runaway kind. Deadlines catch the runaways; the breaker
/// fast-rejects the kind once it proves itself hostile.
pub fn overload_scenario(strategy: Strategy, seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::new(strategy);
    cfg.seed = seed;
    cfg.requests = 160;
    cfg.pool = 3;
    cfg.runaway_every = 16;
    cfg.overload = OverloadConfig {
        queue_cap: 8,
        admission: AdmissionPolicy::RetryBackoff {
            max_attempts: 8,
            base: 16,
        },
        deadline_quanta: Some(1_500),
        fuel: None,
        soft_watermark_pct: Some(70),
        hard_watermark_pct: Some(95),
        breaker_threshold: 3,
        breaker_cooldown: 384,
        drain_after: None,
        seed,
    };
    cfg
}

/// Runs [`overload_scenario`] under every strategy and assembles the
/// `"overload"` section of `BENCH_SERVE.json`, returning it together
/// with any [`OverloadSlo::gate`] violations (CI fails on any).
///
/// # Errors
///
/// Propagates the first failing strategy's whole-machine error.
pub fn bench_overload_json(seed: u64) -> Result<(Json, Vec<String>), String> {
    let slo = OverloadSlo::gate();
    let mut entries = Vec::new();
    let mut violations = Vec::new();
    for s in Strategy::ALL {
        let run = serve(&overload_scenario(s, seed))?;
        violations.extend(check_overload_slo(&run, slo));
        entries.push(serve_json(&run));
    }
    let section = Json::obj([
        (
            "doc",
            Json::obj([
                (
                    "scenario",
                    Json::str("burst: 160 requests (every 16th a runaway) over 3 slots"),
                ),
                (
                    "gate",
                    Json::str(
                        "conservation holds, goodput above floor, shed rate below \
                         ceiling, per strategy",
                    ),
                ),
            ]),
        ),
        ("seed", Json::Num(seed as f64)),
        ("strategies", Json::Arr(entries)),
    ]);
    Ok((section, violations))
}

/// One overload-torture case.
#[derive(Debug)]
pub struct OverloadTortureCase {
    pub strategy: Strategy,
    pub seed: u64,
    /// Scenario name (`burst`, `deadline-storm`, `runaway-hog`,
    /// `watermark-flap`).
    pub scenario: &'static str,
    pub completed: u64,
    pub failed: u64,
    pub shed: u64,
    /// Invariant violations (empty = graceful degradation held).
    pub violations: Vec<String>,
}

/// Seeded overload-torture configurations. Every scenario keeps the
/// torture-sized heap of [`torture_serve`]; each stresses one mechanism:
///
/// * `burst` — 60 requests hit a 4-deep queue at once; backoff must
///   either drain or shed them, never lose one.
/// * `deadline-storm` — a service-wide deadline tight enough to kill the
///   long tail of the mix while short requests still complete.
/// * `runaway-hog` — runaways and heap hogs interleaved; deadlines
///   quarantine the former, the breaker learns to fast-reject the kind.
/// * `watermark-flap` — a heap squeezed by hogs and a refused-growth
///   fault, with watermarks throttling and degrading admissions as
///   occupancy crosses the thresholds both ways.
fn overload_torture_config(scenario: &'static str, strategy: Strategy, seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::new(strategy);
    cfg.seed = seed;
    cfg.requests = 60;
    cfg.pool = 3;
    cfg.heap_words = 1 << 10;
    cfg.heap_max_words = Some(1 << 14);
    cfg.sample_every = 16;
    match scenario {
        "burst" => {
            cfg.overload.queue_cap = 4;
            cfg.overload.admission = AdmissionPolicy::RetryBackoff {
                max_attempts: 4,
                base: 8 + seed % 8,
            };
        }
        "deadline-storm" => {
            // Unbounded queue: the deadline is the only mechanism under
            // test, and it must kill the mix's long tail while short
            // requests still complete.
            cfg.overload.deadline_quanta = Some(60 + seed % 90);
        }
        "runaway-hog" => {
            cfg.runaway_every = 6;
            cfg.hog_every = 7;
            cfg.overload.deadline_quanta = Some(800);
            cfg.overload.breaker_threshold = 2;
            cfg.overload.breaker_cooldown = 200 + seed % 200;
            cfg.overload.queue_cap = 6;
            cfg.overload.admission = AdmissionPolicy::RetryBackoff {
                max_attempts: 6,
                base: 16,
            };
        }
        "watermark-flap" => {
            cfg.heap_max_words = Some(1 << 12);
            cfg.hog_every = 5;
            cfg.overload.soft_watermark_pct = Some(50);
            cfg.overload.hard_watermark_pct = Some(85);
            cfg.overload.queue_cap = 4;
            cfg.overload.admission = AdmissionPolicy::Degrade { low_kind_min: 2 };
            cfg.overload.deadline_quanta = Some(4_000);
            cfg.fault_plan = Some(FaultPlan {
                exhaust_at: Some(300 + seed % 300),
                ..FaultPlan::none()
            });
        }
        other => unreachable!("unknown overload scenario {other}"),
    }
    cfg
}

/// Scenario names for [`torture_overload`].
pub const OVERLOAD_SCENARIOS: [&str; 4] =
    ["burst", "deadline-storm", "runaway-hog", "watermark-flap"];

/// Races the overload mechanisms: for each seed, every scenario under
/// the compiled and tagged strategies. The contract per case: no panic
/// of any kind escapes, every request resolves exactly one way
/// (conservation), and the service keeps completing work. Panic output
/// is suppressed for the duration (the hook is restored before
/// returning).
pub fn torture_overload(seeds: &[u64]) -> Vec<OverloadTortureCase> {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut cases = Vec::new();
    for &seed in seeds {
        for scenario in OVERLOAD_SCENARIOS {
            for strategy in [Strategy::Compiled, Strategy::Tagged] {
                let cfg = overload_torture_config(scenario, strategy, seed);
                let mut violations = Vec::new();
                let (completed, failed, shed) = match catch_unwind(AssertUnwindSafe(|| serve(&cfg)))
                {
                    Ok(Ok(run)) => {
                        let r = &run.report;
                        if r.outcomes.len() != cfg.requests {
                            violations.push(format!(
                                "{} of {} requests resolved",
                                r.outcomes.len(),
                                cfg.requests
                            ));
                        }
                        if r.completed + r.failed + r.shed != r.outcomes.len() as u64 {
                            violations.push(format!(
                                "conservation violated: {} + {} + {} != {}",
                                r.completed,
                                r.failed,
                                r.shed,
                                r.outcomes.len()
                            ));
                        }
                        if r.completed == 0 {
                            violations.push("service collapsed: nothing completed".to_string());
                        }
                        (r.completed, r.failed, r.shed)
                    }
                    Ok(Err(e)) => {
                        violations.push(format!("service dropped: {e}"));
                        (0, 0, 0)
                    }
                    Err(payload) => {
                        violations.push(format!("raw panic: {}", panic_text(payload.as_ref())));
                        (0, 0, 0)
                    }
                };
                cases.push(OverloadTortureCase {
                    strategy,
                    seed,
                    scenario,
                    completed,
                    failed,
                    shed,
                    violations,
                });
            }
        }
    }
    std::panic::set_hook(prev_hook);
    cases
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Human summary across runs: one row per strategy.
pub fn serve_table(runs: &[ServeRun]) -> Table {
    let mut t = Table::new(&[
        "strategy",
        "completed",
        "failed",
        "shed",
        "collections",
        "lat p50",
        "lat p99",
        "pause p99",
        "util",
        "mmu 1ms",
        "peak heap",
    ]);
    for run in runs {
        let lat = run.rec.latency_hist();
        t.row(vec![
            run.config.strategy.name().to_string(),
            run.report.completed.to_string(),
            run.report.failed.to_string(),
            run.report.shed.to_string(),
            run.report.heap.collections.to_string(),
            format!("{}us", lat.p50() / 1_000),
            format!("{}us", lat.p99() / 1_000),
            format!("{}us", run.rec.pause_hist().p99() / 1_000),
            format!("{:.3}", run.rec.utilization()),
            format!("{:.3}", run.rec.mmu(1_000_000)),
            format!("{}w", run.rec.peak_heap_words()),
        ]);
    }
    t
}

/// One serve-mode torture case: mid-traffic heap exhaustion.
#[derive(Debug)]
pub struct ServeTortureCase {
    pub strategy: Strategy,
    pub seed: u64,
    pub plan: FaultPlan,
    pub completed: u64,
    pub failed: u64,
    /// Invariant violations (empty = graceful degradation held).
    pub violations: Vec<String>,
}

/// Runs the service under seeded mid-traffic fault injection: a tight
/// heap whose growth is refused partway through the run. The graceful-
/// degradation contract is that faults quarantine individual requests —
/// they never drop the service: every request resolves, and requests
/// *behind* a quarantined one still complete on the recycled slot.
/// `generational` reruns the matrix with a quarter-semispace nursery:
/// refused growth must quarantine just as gracefully when minors are
/// absorbing the churn.
pub fn torture_serve(seeds: &[u64], generational: bool) -> Vec<ServeTortureCase> {
    let mut cases = Vec::new();
    for &seed in seeds {
        for strategy in [Strategy::Compiled, Strategy::Tagged] {
            let mut cfg = ServeConfig::new(strategy);
            cfg.seed = seed;
            cfg.requests = 60;
            cfg.pool = 3;
            cfg.heap_words = 1 << 10;
            cfg.heap_max_words = Some(1 << 12);
            cfg.sample_every = 16;
            cfg.hog_every = 7;
            if generational {
                cfg.nursery_words = Some(cfg.heap_words / 4);
            }
            // Exhaustion strikes mid-traffic at a seed-determined
            // allocation count; growth is refused from then on.
            cfg.fault_plan = Some(FaultPlan {
                exhaust_at: Some(200 + seed % 400),
                ..FaultPlan::none()
            });
            let mut violations = Vec::new();
            let (completed, failed) = match serve(&cfg) {
                Ok(run) => {
                    let r = &run.report;
                    if r.outcomes.len() != cfg.requests {
                        violations.push(format!(
                            "{} of {} requests resolved",
                            r.outcomes.len(),
                            cfg.requests
                        ));
                    }
                    if r.completed + r.failed != r.outcomes.len() as u64 {
                        violations.push("completed + failed != total".to_string());
                    }
                    if r.completed == 0 {
                        violations.push("service dropped: nothing completed".to_string());
                    }
                    for (i, o) in r.outcomes.iter().enumerate() {
                        if let Some(e) = &o.error {
                            if !matches!(e, tfgc_vm::VmError::OutOfMemory { .. }) {
                                violations.push(format!("request {i}: non-OOM error {e}"));
                            }
                        }
                    }
                    (r.completed, r.failed)
                }
                Err(e) => {
                    violations.push(format!("service dropped: {e}"));
                    (0, 0)
                }
            };
            cases.push(ServeTortureCase {
                strategy,
                seed,
                plan: cfg.fault_plan.unwrap(),
                completed,
                failed,
                violations,
            });
        }
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_is_seeded_and_weighted() {
        let c = Compiled::compile(SERVICE_SRC).unwrap();
        let a = build_traffic(&c.program, 7, 500, &MIX);
        let b = build_traffic(&c.program, 7, 500, &MIX);
        assert_eq!(a, b, "same seed, same traffic");
        let other = build_traffic(&c.program, 8, 500, &MIX);
        assert_ne!(a, other, "different seed, different traffic");
        let churn = a.iter().filter(|r| r.kind == 0).count();
        let spin = a.iter().filter(|r| r.kind == 4).count();
        assert!(churn > spin, "weight 4 class must outdraw weight 1");
        for r in &a {
            let m = &MIX[r.kind as usize];
            assert!((m.lo..m.hi).contains(&r.arg));
        }
    }

    #[test]
    fn serve_runs_deterministically_per_seed() {
        let mut cfg = ServeConfig::new(Strategy::Compiled);
        cfg.requests = 40;
        cfg.pool = 3;
        cfg.seed = 11;
        let a = serve(&cfg).unwrap();
        let b = serve(&cfg).unwrap();
        assert_eq!(a.report.outcomes, b.report.outcomes);
        assert_eq!(a.report.heap, b.report.heap);
        assert_eq!(a.mix_counts, b.mix_counts);
        assert_eq!(
            results_digest(&a.report),
            results_digest(&b.report),
            "digest is a pure function of the outcomes"
        );
        // Sampled peaks come from deterministic sample points.
        assert_eq!(a.rec.peak_heap_words(), b.rec.peak_heap_words());
        assert_eq!(a.rec.max_in_flight(), b.rec.max_in_flight());
    }

    #[test]
    fn all_strategies_serve_the_same_responses() {
        let mut digests = Vec::new();
        for s in Strategy::ALL {
            let mut cfg = ServeConfig::new(s);
            cfg.requests = 40;
            cfg.pool = 3;
            let run = serve(&cfg).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(run.report.completed, 40, "{s}");
            assert_eq!(run.report.failed, 0, "{s}");
            digests.push(results_digest(&run.report));
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "strategies must agree on every response: {digests:x?}"
        );
    }

    #[test]
    fn serve_json_separates_deterministic_from_timing() {
        let mut cfg = ServeConfig::new(Strategy::Compiled);
        cfg.requests = 30;
        let run = serve(&cfg).unwrap();
        let j = serve_json(&run);
        let det = j.get("deterministic").expect("deterministic block");
        assert_eq!(
            det.get("requests")
                .and_then(|r| r.get("completed"))
                .and_then(Json::as_f64),
            Some(30.0)
        );
        let digest = det.get("results_digest").expect("digest");
        assert!(
            matches!(digest, Json::Str(s) if s.len() == 16),
            "digest must be a 16-hex-char string, got {digest:?}"
        );
        assert!(j.get("timing").and_then(|t| t.get("utilization")).is_some());
        let a = serve(&cfg).unwrap();
        assert_eq!(
            serve_json(&a).get("deterministic"),
            j.get("deterministic"),
            "deterministic block must diff clean across same-seed runs"
        );
    }

    #[test]
    fn generational_serve_matches_baseline_responses() {
        let mut base = ServeConfig::new(Strategy::Compiled);
        base.requests = 40;
        base.pool = 3;
        let a = serve(&base).unwrap();
        let mut generational = base.clone();
        generational.nursery_words = Some(base.heap_words / 4);
        let b = serve(&generational).unwrap();
        assert_eq!(
            a.report.outcomes, b.report.outcomes,
            "generational collection must not change any response"
        );
        assert_eq!(results_digest(&a.report), results_digest(&b.report));
        assert!(
            b.report.gc.minor_collections > 0,
            "a tight serve heap must trigger minors: {:?}",
            b.report.gc
        );
        assert!(
            b.report.gc.promoted_words > 0,
            "the persistent table must survive into the tenured generation"
        );
        assert_eq!(
            a.report.gc.minor_collections, 0,
            "the baseline heap has no nursery"
        );
        let j = serve_json(&b);
        let det = j.get("deterministic").expect("deterministic block");
        assert!(det.get("minor_collections").and_then(Json::as_f64).unwrap() > 0.0);
        let again = serve(&generational).unwrap();
        assert_eq!(
            serve_json(&again).get("deterministic"),
            j.get("deterministic"),
            "generational runs must diff clean across same-seed runs"
        );
    }

    #[test]
    fn slo_gate_passes_sane_runs_and_fails_absurd_ones() {
        let mut cfg = ServeConfig::new(Strategy::Compiled);
        cfg.requests = 30;
        let run = serve(&cfg).unwrap();
        let lenient = Slo {
            max_p99_latency_ns: u64::MAX,
            max_p99_pause_ns: u64::MAX,
        };
        assert!(check_slo(&run, lenient).is_empty());
        let absurd = Slo {
            max_p99_latency_ns: 0,
            max_p99_pause_ns: 0,
        };
        let v = check_slo(&run, absurd);
        assert!(v.iter().any(|s| s.contains("p99 request latency")), "{v:?}");
    }

    #[test]
    fn runaways_are_quarantined_by_deadline_while_siblings_complete() {
        let mut cfg = ServeConfig::new(Strategy::Compiled);
        cfg.requests = 32;
        cfg.pool = 3;
        cfg.runaway_every = 8;
        cfg.overload.deadline_quanta = Some(1_200);
        let run = serve(&cfg).unwrap();
        let r = &run.report;
        let runaway_kind = MIX.len() as u32 + 1;
        assert_eq!(run.mix_counts[runaway_kind as usize], 4);
        for (i, o) in r.outcomes.iter().enumerate() {
            if o.kind == runaway_kind {
                assert!(
                    matches!(o.error, Some(VmError::DeadlineExceeded { .. })),
                    "runaway {i} must breach its deadline: {o:?}"
                );
            }
        }
        assert_eq!(r.failed, 4, "exactly the runaways fail");
        assert_eq!(r.completed, 28, "every sibling completes");
        assert_eq!(r.completed + r.failed + r.shed, r.outcomes.len() as u64);
    }

    #[test]
    fn overload_scenario_degrades_without_collapsing() {
        let run = serve(&overload_scenario(Strategy::Compiled, 1)).unwrap();
        let v = check_overload_slo(&run, OverloadSlo::gate());
        assert!(v.is_empty(), "{v:?}");
        assert!(run.report.failed > 0, "no runaway was ever quarantined");
        assert!(
            run.rec.deadline_exceeded() > 0,
            "deadline events must reach the recorder"
        );
        let again = serve(&overload_scenario(Strategy::Compiled, 1)).unwrap();
        assert_eq!(
            serve_json(&run).get("deterministic"),
            serve_json(&again).get("deterministic"),
            "the overload block must diff clean across same-seed runs"
        );
    }

    #[test]
    fn overload_torture_conserves_every_request() {
        let cases = torture_overload(&[0, 1, 2]);
        assert_eq!(cases.len(), 3 * OVERLOAD_SCENARIOS.len() * 2);
        for c in &cases {
            assert!(
                c.violations.is_empty(),
                "{} under {} seed {}: {:?}",
                c.scenario,
                c.strategy,
                c.seed,
                c.violations
            );
        }
        // The matrix proves nothing unless the mechanisms actually bit.
        assert!(cases.iter().any(|c| c.shed > 0), "no case ever shed");
        assert!(
            cases.iter().any(|c| c.failed > 0),
            "no case ever quarantined"
        );
    }

    #[test]
    fn generational_torture_quarantines_gracefully() {
        let cases = torture_serve(&[0, 1], true);
        assert_eq!(cases.len(), 4);
        for c in &cases {
            assert!(
                c.violations.is_empty(),
                "{} seed {} ({}): {:?}",
                c.strategy,
                c.seed,
                c.plan.describe(),
                c.violations
            );
            assert!(c.completed > 0, "{} seed {}", c.strategy, c.seed);
        }
    }

    #[test]
    fn torture_survives_mid_traffic_exhaustion() {
        let cases = torture_serve(&[0, 1, 2], false);
        assert_eq!(cases.len(), 6);
        for c in &cases {
            assert!(
                c.violations.is_empty(),
                "{} seed {} ({}): {:?}",
                c.strategy,
                c.seed,
                c.plan.describe(),
                c.violations
            );
            assert!(c.completed > 0, "{} seed {}", c.strategy, c.seed);
        }
        // The tight heap with refused growth must actually bite
        // somewhere in the matrix, or the case proves nothing.
        assert!(
            cases.iter().any(|c| c.failed > 0),
            "no case exercised quarantine: {cases:?}"
        );
    }
}
