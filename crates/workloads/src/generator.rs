//! Seeded random program generator (fuzzing substrate for the
//! differential and property tests).
//!
//! Generates *well-typed by construction* TFML programs over a small type
//! universe (`int`, `bool`, `int list`, pairs and lists thereof), heavy on
//! allocation, pattern matching, and higher-order functions — the
//! behaviors the collectors must agree on.

use crate::rng::SmallRng;
use std::fmt::Write as _;

/// Generator settings.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum expression depth.
    pub max_depth: u32,
    /// Number of top-level helper functions.
    pub n_funs: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 4,
            n_funs: 3,
        }
    }
}

/// The closed type universe of generated expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GTy {
    Int,
    Bool,
    IntList,
    Pair, // int * int list
}

/// Generates a deterministic random program for `seed`.
pub fn generate(seed: u64, cfg: &GenConfig) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = String::new();
    // A fixed prelude of helpers the generator can call.
    out.push_str(
        "fun build n = if n = 0 then [] else (n mod 17) :: build (n - 1) ;\n\
         fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;\n\
         fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ;\n\
         fun app2 [] ys = ys | app2 (x :: xs) ys = x :: app2 xs ys ;\n",
    );
    let mut g = Gen {
        rng: &mut rng,
        fuel: 300,
    };
    for i in 0..cfg.n_funs {
        let body = g.expr(GTy::Int, cfg.max_depth, &format!("p{i}"));
        let _ = writeln!(out, "fun helper{i} p{i} = {body} ;");
    }
    // Main combines the helpers so everything is reachable.
    let mut main = String::from("0");
    for i in 0..cfg.n_funs {
        main = format!("{main} + helper{i} {}", g.rng.gen_range(1, 10));
    }
    let _ = writeln!(out, "{main}");
    out
}

struct Gen<'r> {
    rng: &'r mut SmallRng,
    fuel: u32,
}

impl Gen<'_> {
    fn expr(&mut self, ty: GTy, depth: u32, var: &str) -> String {
        if depth == 0 || self.fuel == 0 {
            return self.leaf(ty, var);
        }
        self.fuel = self.fuel.saturating_sub(1);
        match ty {
            GTy::Int => match self.rng.gen_range(0, 8) {
                0 | 1 => self.leaf(ty, var),
                2 => format!(
                    "({} + {})",
                    self.expr(GTy::Int, depth - 1, var),
                    self.expr(GTy::Int, depth - 1, var)
                ),
                3 => format!("sum {}", self.atom_list(depth - 1, var)),
                4 => format!("len {}", self.atom_list(depth - 1, var)),
                5 => format!(
                    "(if {} then {} else {})",
                    self.expr(GTy::Bool, depth - 1, var),
                    self.expr(GTy::Int, depth - 1, var),
                    self.expr(GTy::Int, depth - 1, var)
                ),
                6 => format!(
                    "(case {} of [] => {} | x :: _ => x + {})",
                    self.expr(GTy::IntList, depth - 1, var),
                    self.expr(GTy::Int, depth - 1, var),
                    self.expr(GTy::Int, depth - 1, var),
                ),
                _ => format!(
                    "(case {} of (a, b) => a + len b)",
                    self.expr(GTy::Pair, depth - 1, var)
                ),
            },
            GTy::Bool => match self.rng.gen_range(0, 3) {
                0 => "true".to_string(),
                1 => format!(
                    "({} < {})",
                    self.expr(GTy::Int, depth - 1, var),
                    self.expr(GTy::Int, depth - 1, var)
                ),
                _ => format!("({} mod 2 = 0)", self.expr(GTy::Int, depth - 1, var)),
            },
            GTy::IntList => match self.rng.gen_range(0, 5) {
                0 => "[]".to_string(),
                1 => format!("build ({var} mod 7 + 1)"),
                2 => format!(
                    "({} :: {})",
                    self.expr(GTy::Int, depth - 1, var),
                    self.expr(GTy::IntList, depth - 1, var)
                ),
                3 => format!(
                    "app2 {} {}",
                    self.atom_list(depth - 1, var),
                    self.atom_list(depth - 1, var)
                ),
                _ => format!(
                    "(let val h = fn z => z + {} in (case {} of [] => [] | q :: qs => h q :: qs) end)",
                    self.rng.gen_range(0, 5),
                    self.expr(GTy::IntList, depth - 1, var)
                ),
            },
            GTy::Pair => format!(
                "({}, {})",
                self.expr(GTy::Int, depth - 1, var),
                self.expr(GTy::IntList, depth - 1, var)
            ),
        }
    }

    fn atom_list(&mut self, depth: u32, var: &str) -> String {
        format!("({})", self.expr(GTy::IntList, depth, var))
    }

    fn leaf(&mut self, ty: GTy, var: &str) -> String {
        match ty {
            GTy::Int => match self.rng.gen_range(0, 3) {
                0 => self.rng.gen_range(0, 100).to_string(),
                1 => var.to_string(),
                _ => format!("({var} * {})", self.rng.gen_range(1, 5)),
            },
            GTy::Bool => if self.rng.gen_bool() { "true" } else { "false" }.to_string(),
            GTy::IntList => match self.rng.gen_range(0, 2) {
                0 => "[]".to_string(),
                _ => format!("[{var}, 2, 3]"),
            },
            GTy::Pair => format!("({var}, [1])"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_ir::lower;
    use tfgc_syntax::parse_program;
    use tfgc_types::elaborate;

    #[test]
    fn generated_programs_compile() {
        for seed in 0..40u64 {
            let src = generate(seed, &GenConfig::default());
            let parsed = parse_program(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            let typed = elaborate(&parsed).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            let prog = lower(&typed).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            prog.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(7, &GenConfig::default());
        let b = generate(7, &GenConfig::default());
        assert_eq!(a, b);
    }
}
