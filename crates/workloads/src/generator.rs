//! Seeded random program generator (the fuzzing substrate for the
//! differential campaign in `tfgc-fuzz` and for the property tests).
//!
//! Generates *well-typed by construction* TFML programs as a typed
//! expression tree ([`GExpr`] inside a [`GProgram`]) that renders to
//! source. Working on a tree rather than text is what makes typed
//! delta-debugging possible: the shrinker can drop helpers, replace any
//! subexpression with a minimal leaf *of the same type*, and shrink
//! literals, and the result is still well-typed by construction.
//!
//! The type universe covers the corners where tag-free and tagged
//! representations can disagree: nested lists and pairs, higher-order
//! closures and partial application, let-polymorphism (top-level
//! polymorphic helpers instantiated at several types, plus generalized
//! `let val` identities), user-declared polymorphic datatypes that are
//! *fresh per seed* (random variant counts, field shapes, and
//! declaration order, so GC-time type reconstruction sees novel
//! descriptors and discriminant tables on every seed), and tunable deep
//! structural recursion.

use crate::rng::SmallRng;
use std::fmt::Write as _;

/// Generator settings. Every field is a pure input to the deterministic
/// generation function: same seed + same config ⇒ byte-identical source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenConfig {
    /// Maximum expression depth.
    pub max_depth: u32,
    /// Number of top-level helper functions.
    pub n_funs: usize,
    /// Node budget per program (was a hard-coded 300 before the fuzz
    /// campaign needed to scale it): when exhausted, generation falls
    /// back to leaves, bounding program size.
    pub fuel: u32,
    /// Fresh polymorphic datatypes declared per program (each with a
    /// seed-random variant/field shape plus builder/size/fold helpers).
    pub n_datatypes: usize,
    /// Ceiling for generated structural-recursion sizes (list lengths,
    /// datatype spine depths). Raising it makes collections strike with
    /// deeper stacks and longer spines.
    pub max_recursion: u32,
    /// Generate higher-order material: closure literals, partial
    /// application, composition, `map`/`twice` calls.
    pub higher_order: bool,
    /// Generate polymorphic material: `pdup`/`plen` instantiations,
    /// generalized `let val` identities, bool-instantiated datatype
    /// sizes.
    pub polymorphism: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 4,
            n_funs: 3,
            fuel: 300,
            n_datatypes: 2,
            max_recursion: 48,
            higher_order: true,
            polymorphism: true,
        }
    }
}

/// The closed type universe of generated expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GTy {
    Int,
    Bool,
    /// `int list`.
    IntList,
    /// `int list list`.
    ListList,
    /// `int * int list`.
    Pair,
    /// `int -> int`.
    Fun,
    /// The `n`th generated datatype, instantiated at `int`.
    Data(usize),
}

/// One field of a generated datatype variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VField {
    /// The type parameter `'a`.
    TVar,
    /// The datatype itself, `'a g{d}` (a recursive spine field).
    Rec,
    /// A ground `int` field.
    Int,
}

/// One variant of a generated datatype (empty `fields` = nullary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DtVariant {
    pub name: String,
    pub fields: Vec<VField>,
}

/// A seed-fresh polymorphic datatype declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DtDecl {
    /// Type name (`g0`, `g1`, …).
    pub name: String,
    pub variants: Vec<DtVariant>,
}

impl DtDecl {
    /// Index of the first nullary variant (the recursion base case; the
    /// generator always emits at least one).
    pub fn nullary(&self) -> usize {
        self.variants
            .iter()
            .position(|v| v.fields.is_empty())
            .expect("generated datatypes always carry a nullary variant")
    }

    /// Index of the first variant with a recursive field.
    pub fn recursive(&self) -> usize {
        self.variants
            .iter()
            .position(|v| v.fields.contains(&VField::Rec))
            .expect("generated datatypes always carry a recursive variant")
    }

    fn builder_name(&self) -> String {
        format!("mk{}", self.name)
    }
    fn bool_builder_name(&self) -> String {
        format!("mb{}", self.name)
    }
    fn size_name(&self) -> String {
        format!("sz{}", self.name)
    }
    fn fold_name(&self) -> String {
        format!("fd{}", self.name)
    }
}

/// A typed generated expression. Every node's type is intrinsic
/// ([`GExpr::ty`]), so a shrinker can substitute any node with a leaf of
/// the same type and stay well-typed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GExpr {
    // ---- Int ----
    Lit(i64),
    /// The enclosing helper's `int` parameter (never generated in main).
    Param,
    /// `(p * k)`.
    ParamScaled(i64),
    Add(Box<GExpr>, Box<GExpr>),
    /// `(e * k)`.
    Mul(Box<GExpr>, i64),
    /// `(if b then e1 else e2)` at `int`.
    If(Box<GExpr>, Box<GExpr>, Box<GExpr>),
    /// `sum (l)`.
    Sum(Box<GExpr>),
    /// `len (l)`.
    Len(Box<GExpr>),
    /// `plen (e)` — the polymorphic length, instantiated at the
    /// argument's element type (`int` or `int list`).
    PLen(Box<GExpr>),
    /// `(case l of [] => e1 | x :: _ => x + e2)`.
    CaseList(Box<GExpr>, Box<GExpr>, Box<GExpr>),
    /// `(case ll of [] => e | h :: _ => sum h + e2)`.
    CaseLL(Box<GExpr>, Box<GExpr>, Box<GExpr>),
    /// `(case p of (a, b) => a + len b)`.
    CasePair(Box<GExpr>),
    /// `(f) (e)`.
    Apply(Box<GExpr>, Box<GExpr>),
    /// `twice (f) (e)`.
    Twice(Box<GExpr>, Box<GExpr>),
    /// `(let val vN = e1 in e2 + vN end)`.
    LetVal(Box<GExpr>, Box<GExpr>),
    /// `(let val idN = fn z => z in idN (e) + (if idN true then 1 else 0) end)`
    /// — a generalized binding used at two instantiations.
    LetPolyId(Box<GExpr>),
    /// `(print (e1); e2)`.
    PrintThen(Box<GExpr>, Box<GExpr>),
    /// `helper{i} (e)`.
    CallHelper(usize, Box<GExpr>),
    /// `fd{d} (e)` — int fold over the `d`th datatype.
    DtFold(usize, Box<GExpr>),
    /// `sz{d} (e)` — polymorphic size at the `int` instantiation.
    DtSize(usize, Box<GExpr>),
    /// `sz{d} (mb{d} (e mod K + 1))` — polymorphic size at the `bool`
    /// instantiation (a second instantiation of the same routine).
    DtSizeBool(usize, Box<GExpr>),
    // ---- Bool ----
    BoolLit(bool),
    Lt(Box<GExpr>, Box<GExpr>),
    /// `((e) mod k = 0)`.
    ModZero(Box<GExpr>, i64),
    // ---- IntList ----
    NilList,
    /// `build ((e) mod 7 + 1)`.
    Build(Box<GExpr>),
    /// `build K` — the tunable deep-recursion knob.
    BuildDeep(u32),
    Cons(Box<GExpr>, Box<GExpr>),
    /// `app2 (a) (b)`.
    Append(Box<GExpr>, Box<GExpr>),
    /// `map1 (f) (l)`.
    MapList(Box<GExpr>, Box<GExpr>),
    /// `pdup (e)` at `int`.
    PdupInt(Box<GExpr>),
    /// `[e1, e2]`.
    ListLit2(Box<GExpr>, Box<GExpr>),
    // ---- ListList ----
    NilLL,
    /// `pdup (l)` at `int list`.
    PdupList(Box<GExpr>),
    /// `[l1, l2]`.
    LLLit(Box<GExpr>, Box<GExpr>),
    // ---- Pair ----
    MkPair(Box<GExpr>, Box<GExpr>),
    // ---- Fun ----
    /// `(fn z => z + k)`.
    MkFun(i64),
    /// `(add2 (e))` — partial application.
    PartialAdd(Box<GExpr>),
    /// `(comp2 (f) (g))`.
    Compose(Box<GExpr>, Box<GExpr>),
    // ---- Data ----
    /// `mk{d} ((e) mod K + 1)`.
    DtBuild(usize, Box<GExpr>),
    /// `mk{d} K` — deep datatype spine.
    DtBuildDeep(usize, u32),
    /// The first nullary constructor of datatype `d`.
    DtConLeaf(usize),
    /// Variant `v` of datatype `d` applied to minimal leaf arguments.
    DtConApp(usize, usize),
}

impl GExpr {
    /// The node's type — intrinsic, so typed substitution needs no
    /// context.
    pub fn ty(&self) -> GTy {
        use GExpr::*;
        match self {
            Lit(_) | Param | ParamScaled(_) | Add(..) | Mul(..) | If(..) | Sum(_) | Len(_)
            | PLen(_) | CaseList(..) | CaseLL(..) | CasePair(_) | Apply(..) | Twice(..)
            | LetVal(..) | LetPolyId(_) | PrintThen(..) | CallHelper(..) | DtFold(..)
            | DtSize(..) | DtSizeBool(..) => GTy::Int,
            BoolLit(_) | Lt(..) | ModZero(..) => GTy::Bool,
            NilList | Build(_) | BuildDeep(_) | Cons(..) | Append(..) | MapList(..)
            | PdupInt(_) | ListLit2(..) => GTy::IntList,
            NilLL | PdupList(_) | LLLit(..) => GTy::ListList,
            MkPair(..) => GTy::Pair,
            MkFun(_) | PartialAdd(_) | Compose(..) => GTy::Fun,
            DtBuild(d, _) | DtBuildDeep(d, _) | DtConLeaf(d) | DtConApp(d, _) => GTy::Data(*d),
        }
    }

    /// The minimal closed leaf of a type (the shrinker's substitution
    /// target; `Param`-free so it is valid in any context).
    pub fn leaf_of(ty: GTy) -> GExpr {
        match ty {
            GTy::Int => GExpr::Lit(0),
            GTy::Bool => GExpr::BoolLit(false),
            GTy::IntList => GExpr::NilList,
            GTy::ListList => GExpr::NilLL,
            GTy::Pair => GExpr::MkPair(Box::new(GExpr::Lit(0)), Box::new(GExpr::NilList)),
            GTy::Fun => GExpr::MkFun(0),
            GTy::Data(d) => GExpr::DtConLeaf(d),
        }
    }

    /// Immutable children, in rendering order.
    pub fn children(&self) -> Vec<&GExpr> {
        use GExpr::*;
        match self {
            Lit(_) | Param | ParamScaled(_) | BoolLit(_) | NilList | NilLL | BuildDeep(_)
            | MkFun(_) | DtConLeaf(_) | DtConApp(..) | DtBuildDeep(..) => vec![],
            Sum(a)
            | Len(a)
            | PLen(a)
            | CasePair(a)
            | LetPolyId(a)
            | Mul(a, _)
            | ModZero(a, _)
            | Build(a)
            | PdupInt(a)
            | PdupList(a)
            | PartialAdd(a)
            | CallHelper(_, a)
            | DtFold(_, a)
            | DtSize(_, a)
            | DtSizeBool(_, a)
            | DtBuild(_, a) => vec![a],
            Add(a, b)
            | Lt(a, b)
            | Cons(a, b)
            | Append(a, b)
            | MapList(a, b)
            | ListLit2(a, b)
            | LLLit(a, b)
            | MkPair(a, b)
            | Compose(a, b)
            | Apply(a, b)
            | Twice(a, b)
            | LetVal(a, b)
            | PrintThen(a, b) => {
                vec![a, b]
            }
            If(a, b, c) | CaseList(a, b, c) | CaseLL(a, b, c) => vec![a, b, c],
        }
    }

    /// Mutable children, in rendering order.
    pub fn children_mut(&mut self) -> Vec<&mut GExpr> {
        use GExpr::*;
        match self {
            Lit(_) | Param | ParamScaled(_) | BoolLit(_) | NilList | NilLL | BuildDeep(_)
            | MkFun(_) | DtConLeaf(_) | DtConApp(..) | DtBuildDeep(..) => vec![],
            Sum(a)
            | Len(a)
            | PLen(a)
            | CasePair(a)
            | LetPolyId(a)
            | Mul(a, _)
            | ModZero(a, _)
            | Build(a)
            | PdupInt(a)
            | PdupList(a)
            | PartialAdd(a)
            | CallHelper(_, a)
            | DtFold(_, a)
            | DtSize(_, a)
            | DtSizeBool(_, a)
            | DtBuild(_, a) => vec![a],
            Add(a, b)
            | Lt(a, b)
            | Cons(a, b)
            | Append(a, b)
            | MapList(a, b)
            | ListLit2(a, b)
            | LLLit(a, b)
            | MkPair(a, b)
            | Compose(a, b)
            | Apply(a, b)
            | Twice(a, b)
            | LetVal(a, b)
            | PrintThen(a, b) => {
                vec![a, b]
            }
            If(a, b, c) | CaseList(a, b, c) | CaseLL(a, b, c) => vec![a, b, c],
        }
    }

    /// Total node count (the shrinker's size metric).
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }
}

/// A generated program as a typed tree: seed-fresh datatype declarations,
/// helper-function bodies (slot `i` is `fun helper{i} p{i} = …`; `None`
/// marks a helper the shrinker dropped), and the main expression.
///
/// Rendering is *usage-driven*: prelude functions, datatype declarations,
/// and per-datatype helpers are emitted only when the rendered bodies
/// reference them, so shrunk programs stay minimal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GProgram {
    pub datatypes: Vec<Option<DtDecl>>,
    pub helpers: Vec<Option<GExpr>>,
    pub main: GExpr,
}

/// The fixed prelude: each entry is (name, source line). None of them
/// reference each other, so usage-driven emission is a per-line decision.
const PRELUDE: &[(&str, &str)] = &[
    (
        "build",
        "fun build n = if n = 0 then [] else (n mod 17) :: build (n - 1) ;",
    ),
    (
        "sum",
        "fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;",
    ),
    (
        "len",
        "fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ;",
    ),
    (
        "app2",
        "fun app2 [] ys = ys | app2 (x :: xs) ys = x :: app2 xs ys ;",
    ),
    (
        "map1",
        "fun map1 f xs = case xs of [] => [] | x :: r => f x :: map1 f r ;",
    ),
    ("add2", "fun add2 a b = a + b ;"),
    ("twice", "fun twice f x = f (f x) ;"),
    ("comp2", "fun comp2 f g = fn z => f (g z) ;"),
    ("pdup", "fun pdup x = [x, x] ;"),
    (
        "plen",
        "fun plen xs = case xs of [] => 0 | _ :: t => 1 + plen t ;",
    ),
];

/// Does `text` contain `name` as a standalone identifier (not as a
/// substring of a longer identifier like `len` inside `plen`)?
fn uses_ident(text: &str, name: &str) -> bool {
    let bytes = text.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(pos) = text[from..].find(name) {
        let start = from + pos;
        let end = start + name.len();
        let before_ok = start == 0 || !is_ident(bytes[start - 1]);
        let after_ok = end == bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

impl GProgram {
    /// Renders the program to TFML source. Deterministic: a pure function
    /// of the tree.
    pub fn render(&self) -> String {
        let mut bodies = String::new();
        let mut fun_lines: Vec<String> = Vec::new();
        let mut counter = 0u32;
        for (i, h) in self.helpers.iter().enumerate() {
            if let Some(body) = h {
                let p = format!("p{i}");
                let line = format!(
                    "fun helper{i} {p} = {} ;",
                    render_expr(body, Some(&p), &self.datatypes, &mut counter)
                );
                bodies.push_str(&line);
                bodies.push('\n');
                fun_lines.push(line);
            }
        }
        let main_line = render_expr(&self.main, None, &self.datatypes, &mut counter);
        bodies.push_str(&main_line);

        let mut out = String::new();
        // Datatype declarations + their helper functions, usage-driven.
        for dt in self.datatypes.iter().flatten() {
            let used_directly = dt.variants.iter().any(|v| uses_ident(&bodies, &v.name));
            let mk = uses_ident(&bodies, &dt.builder_name());
            let mb = uses_ident(&bodies, &dt.bool_builder_name());
            let sz = uses_ident(&bodies, &dt.size_name());
            let fd = uses_ident(&bodies, &dt.fold_name());
            if !(used_directly || mk || mb || sz || fd) {
                continue;
            }
            let _ = writeln!(out, "{}", render_dt_decl(dt));
            if mk {
                let _ = writeln!(out, "{}", render_dt_builder(dt, false));
            }
            if mb {
                let _ = writeln!(out, "{}", render_dt_builder(dt, true));
            }
            if sz {
                let _ = writeln!(out, "{}", render_dt_size(dt));
            }
            if fd {
                let _ = writeln!(out, "{}", render_dt_fold(dt));
            }
        }
        // Prelude, usage-driven.
        for (name, line) in PRELUDE {
            if uses_ident(&bodies, name) {
                let _ = writeln!(out, "{line}");
            }
        }
        for line in &fun_lines {
            let _ = writeln!(out, "{line}");
        }
        out.push_str(&main_line);
        out.push('\n');
        out
    }

    /// Total expression-node count across helpers and main.
    pub fn size(&self) -> usize {
        self.helpers
            .iter()
            .flatten()
            .map(GExpr::size)
            .sum::<usize>()
            + self.main.size()
    }

    /// Every live expression root (helper bodies then main), mutable.
    pub fn roots_mut(&mut self) -> Vec<&mut GExpr> {
        let mut v: Vec<&mut GExpr> = self.helpers.iter_mut().flatten().collect();
        v.push(&mut self.main);
        v
    }
}

fn render_dt_decl(dt: &DtDecl) -> String {
    let mut s = format!("datatype 'a {} = ", dt.name);
    let vs: Vec<String> = dt
        .variants
        .iter()
        .map(|v| {
            if v.fields.is_empty() {
                v.name.clone()
            } else {
                let fs: Vec<&str> = v
                    .fields
                    .iter()
                    .map(|f| match f {
                        VField::TVar => "'a",
                        VField::Rec => "REC",
                        VField::Int => "int",
                    })
                    .collect();
                let fs: Vec<String> = fs
                    .iter()
                    .map(|f| {
                        if *f == "REC" {
                            format!("'a {}", dt.name)
                        } else {
                            (*f).to_string()
                        }
                    })
                    .collect();
                format!("{} of {}", v.name, fs.join(" * "))
            }
        })
        .collect();
    s.push_str(&vs.join(" | "));
    s.push_str(" ;");
    s
}

/// `fun mk{d} n = if n = 0 then <nullary> else <rec variant>(…)` — the
/// spine builder at the `int` (or, for `bool_inst`, the `bool`)
/// instantiation. Only the first recursive field recurses; later
/// recursive fields get the nullary leaf, keeping construction linear.
fn render_dt_builder(dt: &DtDecl, bool_inst: bool) -> String {
    let name = if bool_inst {
        dt.bool_builder_name()
    } else {
        dt.builder_name()
    };
    let nullary = &dt.variants[dt.nullary()].name;
    let rec = &dt.variants[dt.recursive()];
    let mut recursed = false;
    let args: Vec<String> = rec
        .fields
        .iter()
        .map(|f| match f {
            VField::Rec if !recursed => {
                recursed = true;
                format!("{name} (n - 1)")
            }
            VField::Rec => nullary.clone(),
            VField::TVar if bool_inst => "(n mod 2 = 0)".to_string(),
            VField::TVar => "n".to_string(),
            VField::Int => "(n * 2)".to_string(),
        })
        .collect();
    format!(
        "fun {name} n = if n = 0 then {nullary} else {} ({}) ;",
        rec.name,
        args.join(", ")
    )
}

/// `fun sz{d} t = case t of …` — the polymorphic (`'a g -> int`) size:
/// type-parameter fields are wildcards, so it stays polymorphic.
fn render_dt_size(dt: &DtDecl) -> String {
    let name = dt.size_name();
    let arms: Vec<String> = dt
        .variants
        .iter()
        .map(|v| {
            if v.fields.is_empty() {
                return format!("{} => 1", v.name);
            }
            let mut pats = Vec::new();
            let mut body = String::from("1");
            for (k, f) in v.fields.iter().enumerate() {
                match f {
                    VField::Rec => {
                        pats.push(format!("t{k}"));
                        let _ = write!(body, " + {name} t{k}");
                    }
                    _ => pats.push("_".to_string()),
                }
            }
            format!("{} ({}) => {}", v.name, pats.join(", "), body)
        })
        .collect();
    format!("fun {name} t = case t of {} ;", arms.join(" | "))
}

/// `fun fd{d} t = case t of …` — the `int`-instantiated fold: every
/// field contributes (type-parameter and int fields add, recursive
/// fields fold), so GC-visible payloads feed the result.
fn render_dt_fold(dt: &DtDecl) -> String {
    let name = dt.fold_name();
    let arms: Vec<String> = dt
        .variants
        .iter()
        .enumerate()
        .map(|(vi, v)| {
            if v.fields.is_empty() {
                return format!("{} => {}", v.name, vi + 1);
            }
            let mut pats = Vec::new();
            let mut body = format!("{}", vi + 1);
            for (k, f) in v.fields.iter().enumerate() {
                match f {
                    VField::Rec => {
                        pats.push(format!("t{k}"));
                        let _ = write!(body, " + {name} t{k}");
                    }
                    VField::TVar | VField::Int => {
                        pats.push(format!("x{k}"));
                        let _ = write!(body, " + x{k}");
                    }
                }
            }
            format!("{} ({}) => {}", v.name, pats.join(", "), body)
        })
        .collect();
    format!("fun {name} t = case t of {} ;", arms.join(" | "))
}

/// Minimal leaf arguments for a direct constructor application.
fn dt_con_leaf_args(dt: &DtDecl, vi: usize) -> String {
    let v = &dt.variants[vi];
    if v.fields.is_empty() {
        return v.name.clone();
    }
    let nullary = &dt.variants[dt.nullary()].name;
    let args: Vec<String> = v
        .fields
        .iter()
        .map(|f| match f {
            VField::Rec => nullary.clone(),
            VField::TVar => "3".to_string(),
            VField::Int => "5".to_string(),
        })
        .collect();
    format!("{} ({})", v.name, args.join(", "))
}

fn render_expr(
    e: &GExpr,
    param: Option<&str>,
    dts: &[Option<DtDecl>],
    counter: &mut u32,
) -> String {
    use GExpr::*;
    let mut r = |e: &GExpr| render_expr(e, param, dts, counter);
    match e {
        Lit(n) => n.to_string(),
        Param => param.unwrap_or("0").to_string(),
        ParamScaled(k) => format!("({} * {k})", param.unwrap_or("1")),
        Add(a, b) => format!("({} + {})", r(a), r(b)),
        Mul(a, k) => format!("({} * {k})", r(a)),
        If(c, t, f) => format!("(if {} then {} else {})", r(c), r(t), r(f)),
        Sum(l) => format!("sum ({})", r(l)),
        Len(l) => format!("len ({})", r(l)),
        PLen(l) => format!("plen ({})", r(l)),
        CaseList(l, n, c) => format!("(case {} of [] => {} | x :: _ => x + {})", r(l), r(n), r(c)),
        CaseLL(ll, n, c) => format!(
            "(case {} of [] => {} | h :: _ => sum h + {})",
            r(ll),
            r(n),
            r(c)
        ),
        CasePair(p) => format!("(case {} of (a, b) => a + len b)", r(p)),
        Apply(f, e) => format!("({}) ({})", r(f), r(e)),
        Twice(f, e) => format!("twice ({}) ({})", r(f), r(e)),
        LetVal(rhs, body) => {
            let rhs_s = render_expr(rhs, param, dts, counter);
            let body_s = render_expr(body, param, dts, counter);
            let id = *counter;
            *counter += 1;
            format!("(let val v{id} = {rhs_s} in {body_s} + v{id} end)")
        }
        LetPolyId(e) => {
            let e_s = render_expr(e, param, dts, counter);
            let id = *counter;
            *counter += 1;
            format!("(let val id{id} = fn z => z in id{id} ({e_s}) + (if id{id} true then 1 else 0) end)")
        }
        PrintThen(v, e) => format!("(print ({}); {})", r(v), r(e)),
        CallHelper(i, e) => format!("helper{i} ({})", r(e)),
        DtFold(d, e) => format!("fdg{d} ({})", r(e)),
        DtSize(d, e) => format!("szg{d} ({})", r(e)),
        DtSizeBool(d, e) => format!("szg{d} (mbg{d} (({}) mod 9 + 1))", r(e)),
        BoolLit(b) => b.to_string(),
        Lt(a, b) => format!("({} < {})", r(a), r(b)),
        ModZero(e, k) => format!("(({}) mod {k} = 0)", r(e)),
        NilList | NilLL => "[]".to_string(),
        Build(e) => format!("build (({}) mod 7 + 1)", r(e)),
        BuildDeep(k) => format!("build {k}"),
        Cons(h, t) => format!("({} :: {})", r(h), r(t)),
        Append(a, b) => format!("app2 ({}) ({})", r(a), r(b)),
        MapList(f, l) => format!("map1 ({}) ({})", r(f), r(l)),
        PdupInt(e) | PdupList(e) => format!("pdup ({})", r(e)),
        ListLit2(a, b) | LLLit(a, b) => format!("[{}, {}]", r(a), r(b)),
        MkPair(a, b) => format!("({}, {})", r(a), r(b)),
        MkFun(k) => format!("(fn z => z + {k})"),
        PartialAdd(e) => format!("(add2 ({}))", r(e)),
        Compose(f, g) => format!("(comp2 ({}) ({}))", r(f), r(g)),
        DtBuild(d, e) => format!("mkg{d} (({}) mod 11 + 1)", r(e)),
        DtBuildDeep(d, k) => format!("mkg{d} {k}"),
        // A constructor reference needs the declaration. If the shrinker
        // dropped the declaration while a reference survives (an internal
        // invariant break), render a name that cannot compile — the case
        // becomes a loud CompileFailure instead of a silent panic.
        DtConLeaf(d) => match dts.get(*d).and_then(Option::as_ref) {
            Some(dt) => dt.variants[dt.nullary()].name.clone(),
            None => format!("MISSING_DT{d}"),
        },
        DtConApp(d, vi) => match dts.get(*d).and_then(Option::as_ref) {
            Some(dt) => dt_con_leaf_args(dt, (*vi).min(dt.variants.len() - 1)),
            None => format!("MISSING_DT{d}"),
        },
    }
}

/// Generates a deterministic random program for `seed` as source text.
pub fn generate(seed: u64, cfg: &GenConfig) -> String {
    generate_program(seed, cfg).render()
}

/// Generates the typed program tree for `seed` (the fuzz campaign's
/// shrinkable form; [`generate`] is `generate_program(..).render()`).
pub fn generate_program(seed: u64, cfg: &GenConfig) -> GProgram {
    let mut rng = SmallRng::seed_from_u64(seed);
    let datatypes: Vec<Option<DtDecl>> = (0..cfg.n_datatypes)
        .map(|d| Some(gen_datatype(&mut rng, d)))
        .collect();
    let mut g = Gen {
        rng: &mut rng,
        fuel: cfg.fuel,
        cfg,
        n_dts: cfg.n_datatypes,
    };
    let mut helpers = Vec::new();
    for i in 0..cfg.n_funs {
        let body = g.expr(
            GTy::Int,
            cfg.max_depth,
            Ctx {
                has_param: true,
                helpers_below: i,
            },
        );
        helpers.push(Some(body));
    }
    // Main: reach every helper and every datatype, then one free-form
    // expression; a trailing print makes the printed-output divergence
    // channel meaningful.
    let ctx = Ctx {
        has_param: false,
        helpers_below: cfg.n_funs,
    };
    let mut main = GExpr::Lit(0);
    for i in 0..cfg.n_funs {
        let arg = GExpr::Lit(g.rng.gen_range(1, 10));
        main = GExpr::Add(
            Box::new(main),
            Box::new(GExpr::CallHelper(i, Box::new(arg))),
        );
    }
    for d in 0..cfg.n_datatypes {
        let depth = g.deep();
        main = GExpr::Add(
            Box::new(main),
            Box::new(GExpr::DtFold(d, Box::new(GExpr::DtBuildDeep(d, depth)))),
        );
        if cfg.polymorphism {
            main = GExpr::Add(
                Box::new(main),
                Box::new(GExpr::DtSize(d, Box::new(GExpr::DtBuildDeep(d, depth / 2)))),
            );
        }
    }
    let extra = g.expr(GTy::Int, cfg.max_depth, ctx);
    main = GExpr::Add(Box::new(main), Box::new(extra));
    main = GExpr::PrintThen(
        Box::new(GExpr::Lit(g.rng.gen_range(0, 100))),
        Box::new(main),
    );
    GProgram {
        datatypes,
        helpers,
        main,
    }
}

/// A fresh polymorphic datatype: 1–2 nullary variants, 0–2 payload
/// variants, 1–2 recursive variants, in seed-shuffled declaration order
/// (the order fixes discriminant assignment, so shuffling yields novel
/// discriminant tables).
fn gen_datatype(rng: &mut SmallRng, d: usize) -> DtDecl {
    let prefix = format!("G{d}");
    let mut variants = Vec::new();
    let n_nullary = 1 + rng.gen_range(0, 2);
    for k in 0..n_nullary {
        variants.push(DtVariant {
            name: format!("{prefix}N{k}"),
            fields: vec![],
        });
    }
    let payload_shapes: [&[VField]; 4] = [
        &[VField::TVar],
        &[VField::TVar, VField::Int],
        &[VField::Int],
        &[VField::TVar, VField::TVar],
    ];
    let n_payload = rng.gen_range(0, 3);
    for k in 0..n_payload {
        let shape = payload_shapes[rng.gen_range(0, payload_shapes.len() as i64) as usize];
        variants.push(DtVariant {
            name: format!("{prefix}A{k}"),
            fields: shape.to_vec(),
        });
    }
    let rec_shapes: [&[VField]; 4] = [
        &[VField::Rec, VField::TVar],
        &[VField::TVar, VField::Rec],
        &[VField::Rec, VField::Int],
        &[VField::Rec, VField::Rec, VField::TVar],
    ];
    let n_rec = 1 + rng.gen_range(0, 2);
    for k in 0..n_rec {
        let shape = rec_shapes[rng.gen_range(0, rec_shapes.len() as i64) as usize];
        variants.push(DtVariant {
            name: format!("{prefix}R{k}"),
            fields: shape.to_vec(),
        });
    }
    // Seed-shuffled declaration order (Fisher–Yates).
    for i in (1..variants.len()).rev() {
        let j = rng.gen_range(0, (i + 1) as i64) as usize;
        variants.swap(i, j);
    }
    DtDecl {
        name: format!("g{d}"),
        variants,
    }
}

#[derive(Clone, Copy)]
struct Ctx {
    /// May the expression mention `Param`?
    has_param: bool,
    /// Helpers with index `< helpers_below` may be called (so helper
    /// bodies only call *earlier* helpers — no accidental mutual
    /// recursion).
    helpers_below: usize,
}

struct Gen<'r, 'c> {
    rng: &'r mut SmallRng,
    fuel: u32,
    cfg: &'c GenConfig,
    n_dts: usize,
}

impl Gen<'_, '_> {
    fn pick_dt(&mut self) -> usize {
        self.rng.gen_range(0, self.n_dts as i64) as usize
    }

    fn deep(&mut self) -> u32 {
        let hi = 1 + i64::from(self.cfg.max_recursion.max(1));
        1 + self.rng.gen_range(1, hi) as u32
    }

    fn expr(&mut self, ty: GTy, depth: u32, ctx: Ctx) -> GExpr {
        if depth == 0 || self.fuel == 0 {
            return self.leaf(ty, ctx);
        }
        self.fuel = self.fuel.saturating_sub(1);
        let d = depth - 1;
        let ho = self.cfg.higher_order;
        let poly = self.cfg.polymorphism;
        let dts = self.n_dts > 0;
        match ty {
            GTy::Int => {
                let mut prods: Vec<u8> = vec![0, 0, 1, 2, 3, 4, 5, 6, 15, 16];
                if ho {
                    prods.extend([7, 8]);
                }
                if poly {
                    prods.extend([9, 14]);
                }
                if dts {
                    prods.extend([10, 11]);
                    if poly {
                        prods.push(12);
                    }
                }
                if ctx.helpers_below > 0 {
                    prods.push(13);
                }
                let tag = prods[self.rng.gen_range(0, prods.len() as i64) as usize];
                match tag {
                    0 => self.leaf(ty, ctx),
                    1 => GExpr::Add(
                        Box::new(self.expr(GTy::Int, d, ctx)),
                        Box::new(self.expr(GTy::Int, d, ctx)),
                    ),
                    2 => GExpr::Sum(Box::new(self.expr(GTy::IntList, d, ctx))),
                    3 => GExpr::Len(Box::new(self.expr(GTy::IntList, d, ctx))),
                    4 => GExpr::If(
                        Box::new(self.expr(GTy::Bool, d, ctx)),
                        Box::new(self.expr(GTy::Int, d, ctx)),
                        Box::new(self.expr(GTy::Int, d, ctx)),
                    ),
                    5 => GExpr::CaseList(
                        Box::new(self.expr(GTy::IntList, d, ctx)),
                        Box::new(self.expr(GTy::Int, d, ctx)),
                        Box::new(self.expr(GTy::Int, d, ctx)),
                    ),
                    6 => GExpr::CasePair(Box::new(self.expr(GTy::Pair, d, ctx))),
                    7 => GExpr::Apply(
                        Box::new(self.expr(GTy::Fun, d, ctx)),
                        Box::new(self.expr(GTy::Int, d, ctx)),
                    ),
                    8 => GExpr::Twice(
                        Box::new(self.expr(GTy::Fun, d, ctx)),
                        Box::new(self.expr(GTy::Int, d, ctx)),
                    ),
                    9 => {
                        let arg = if self.rng.gen_bool() {
                            self.expr(GTy::IntList, d, ctx)
                        } else {
                            self.expr(GTy::ListList, d, ctx)
                        };
                        GExpr::PLen(Box::new(arg))
                    }
                    10 => {
                        let dt = self.pick_dt();
                        GExpr::DtFold(dt, Box::new(self.expr(GTy::Data(dt), d, ctx)))
                    }
                    11 => {
                        let dt = self.pick_dt();
                        GExpr::DtSize(dt, Box::new(self.expr(GTy::Data(dt), d, ctx)))
                    }
                    12 => {
                        let dt = self.pick_dt();
                        GExpr::DtSizeBool(dt, Box::new(self.expr(GTy::Int, d, ctx)))
                    }
                    13 => {
                        let i = self.rng.gen_range(0, ctx.helpers_below as i64) as usize;
                        GExpr::CallHelper(i, Box::new(self.expr(GTy::Int, d, ctx)))
                    }
                    14 => GExpr::LetPolyId(Box::new(self.expr(GTy::Int, d, ctx))),
                    15 => GExpr::LetVal(
                        Box::new(self.expr(GTy::Int, d, ctx)),
                        Box::new(self.expr(GTy::Int, d, ctx)),
                    ),
                    _ => GExpr::CaseLL(
                        Box::new(self.expr(GTy::ListList, d, ctx)),
                        Box::new(self.expr(GTy::Int, d, ctx)),
                        Box::new(self.expr(GTy::Int, d, ctx)),
                    ),
                }
            }
            GTy::Bool => match self.rng.gen_range(0, 3) {
                0 => GExpr::BoolLit(self.rng.gen_bool()),
                1 => GExpr::Lt(
                    Box::new(self.expr(GTy::Int, d, ctx)),
                    Box::new(self.expr(GTy::Int, d, ctx)),
                ),
                _ => GExpr::ModZero(
                    Box::new(self.expr(GTy::Int, d, ctx)),
                    2 + self.rng.gen_range(0, 3),
                ),
            },
            GTy::IntList => {
                let mut prods: Vec<u8> = vec![0, 1, 2, 3, 4];
                if ho {
                    prods.push(5);
                }
                if poly {
                    prods.push(6);
                }
                let tag = prods[self.rng.gen_range(0, prods.len() as i64) as usize];
                match tag {
                    0 => self.leaf(ty, ctx),
                    1 => GExpr::Build(Box::new(self.expr(GTy::Int, d, ctx))),
                    2 => GExpr::BuildDeep(self.deep()),
                    3 => GExpr::Cons(
                        Box::new(self.expr(GTy::Int, d, ctx)),
                        Box::new(self.expr(GTy::IntList, d, ctx)),
                    ),
                    4 => GExpr::Append(
                        Box::new(self.expr(GTy::IntList, d, ctx)),
                        Box::new(self.expr(GTy::IntList, d, ctx)),
                    ),
                    5 => GExpr::MapList(
                        Box::new(self.expr(GTy::Fun, d, ctx)),
                        Box::new(self.expr(GTy::IntList, d, ctx)),
                    ),
                    _ => GExpr::PdupInt(Box::new(self.expr(GTy::Int, d, ctx))),
                }
            }
            GTy::ListList => match self.rng.gen_range(0, 3) {
                0 if self.cfg.polymorphism => {
                    GExpr::PdupList(Box::new(self.expr(GTy::IntList, d, ctx)))
                }
                1 => GExpr::LLLit(
                    Box::new(self.expr(GTy::IntList, d, ctx)),
                    Box::new(self.expr(GTy::IntList, d, ctx)),
                ),
                _ => GExpr::NilLL,
            },
            GTy::Pair => GExpr::MkPair(
                Box::new(self.expr(GTy::Int, d, ctx)),
                Box::new(self.expr(GTy::IntList, d, ctx)),
            ),
            GTy::Fun => match self.rng.gen_range(0, 3) {
                0 => GExpr::MkFun(self.rng.gen_range(0, 9)),
                1 => GExpr::PartialAdd(Box::new(self.expr(GTy::Int, d, ctx))),
                _ => GExpr::Compose(
                    Box::new(self.expr(GTy::Fun, d, ctx)),
                    Box::new(self.expr(GTy::Fun, d, ctx)),
                ),
            },
            GTy::Data(dt) => match self.rng.gen_range(0, 4) {
                0 => GExpr::DtConLeaf(dt),
                1 => GExpr::DtConApp(dt, 0),
                2 => GExpr::DtBuildDeep(dt, self.deep().min(24)),
                _ => GExpr::DtBuild(dt, Box::new(self.expr(GTy::Int, d, ctx))),
            },
        }
    }

    fn leaf(&mut self, ty: GTy, ctx: Ctx) -> GExpr {
        match ty {
            GTy::Int => match self.rng.gen_range(0, 3) {
                0 => GExpr::Lit(self.rng.gen_range(0, 100)),
                1 if ctx.has_param => GExpr::Param,
                _ if ctx.has_param => GExpr::ParamScaled(self.rng.gen_range(1, 5)),
                _ => GExpr::Lit(self.rng.gen_range(0, 100)),
            },
            GTy::Bool => GExpr::BoolLit(self.rng.gen_bool()),
            GTy::IntList => match self.rng.gen_range(0, 2) {
                0 => GExpr::NilList,
                _ => GExpr::ListLit2(
                    Box::new(if ctx.has_param {
                        GExpr::Param
                    } else {
                        GExpr::Lit(1)
                    }),
                    Box::new(GExpr::Lit(self.rng.gen_range(0, 10))),
                ),
            },
            GTy::ListList => GExpr::NilLL,
            GTy::Pair => GExpr::MkPair(
                Box::new(if ctx.has_param {
                    GExpr::Param
                } else {
                    GExpr::Lit(2)
                }),
                Box::new(GExpr::NilList),
            ),
            GTy::Fun => GExpr::MkFun(self.rng.gen_range(0, 9)),
            GTy::Data(d) => {
                if self.rng.gen_bool() {
                    GExpr::DtConLeaf(d)
                } else {
                    GExpr::DtConApp(d, 0)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::fnv1a64;
    use tfgc_ir::lower;
    use tfgc_syntax::parse_program;
    use tfgc_types::elaborate;

    #[test]
    fn generated_programs_compile() {
        for seed in 0..60u64 {
            let src = generate(seed, &GenConfig::default());
            let parsed = parse_program(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            let typed = elaborate(&parsed).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            let prog = lower(&typed).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            prog.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn generated_programs_compile_at_extreme_knobs() {
        for (seed, cfg) in [
            (
                3,
                GenConfig {
                    max_depth: 7,
                    n_funs: 6,
                    fuel: 900,
                    n_datatypes: 4,
                    max_recursion: 200,
                    ..GenConfig::default()
                },
            ),
            (
                11,
                GenConfig {
                    higher_order: false,
                    polymorphism: false,
                    n_datatypes: 0,
                    ..GenConfig::default()
                },
            ),
            (
                17,
                GenConfig {
                    max_depth: 1,
                    fuel: 5,
                    ..GenConfig::default()
                },
            ),
        ] {
            let src = generate(seed, &cfg);
            let parsed = parse_program(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            let typed = elaborate(&parsed).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            lower(&typed).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(7, &GenConfig::default());
        let b = generate(7, &GenConfig::default());
        assert_eq!(a, b);
        let pa = generate_program(7, &GenConfig::default());
        let pb = generate_program(7, &GenConfig::default());
        assert_eq!(pa, pb);
        assert_eq!(pa.render(), a);
    }

    /// Golden hashes: fixed seeds must render byte-identical source on
    /// every machine, or campaign reports stop being reproducible. If a
    /// deliberate generator change breaks these, regenerate the
    /// constants (printed on failure) and note the change in the PR.
    #[test]
    fn generation_matches_golden_hashes() {
        let cfg = GenConfig::default();
        let got: Vec<(u64, u64)> = [0u64, 1, 7, 42, 1999]
            .into_iter()
            .map(|seed| (seed, fnv1a64(generate(seed, &cfg).as_bytes())))
            .collect();
        let expected: &[(u64, u64)] = &GOLDEN_HASHES;
        assert_eq!(
            got, expected,
            "golden generator hashes changed; new values: {got:?}"
        );
    }

    /// Computed from the current generator; see
    /// `generation_matches_golden_hashes`.
    const GOLDEN_HASHES: [(u64, u64); 5] = [
        (0, 7221828405201908571),
        (1, 5252143447534574642),
        (7, 1371223546943766931),
        (42, 16874661579907619660),
        (1999, 47971331167041827),
    ];

    #[test]
    fn fuel_caps_program_size() {
        let big = GenConfig {
            fuel: 600,
            max_depth: 8,
            ..GenConfig::default()
        };
        let small = GenConfig {
            fuel: 10,
            max_depth: 8,
            ..GenConfig::default()
        };
        let sizes =
            |cfg: &GenConfig| -> usize { (0..8u64).map(|s| generate_program(s, cfg).size()).sum() };
        assert!(
            sizes(&small) < sizes(&big),
            "fuel must bound generated size"
        );
    }

    #[test]
    fn datatypes_are_fresh_per_seed() {
        let a = generate_program(1, &GenConfig::default());
        let b = generate_program(2, &GenConfig::default());
        assert_ne!(
            a.datatypes, b.datatypes,
            "datatype shapes must vary by seed"
        );
    }

    #[test]
    fn leaves_match_their_type() {
        for ty in [
            GTy::Int,
            GTy::Bool,
            GTy::IntList,
            GTy::ListList,
            GTy::Pair,
            GTy::Fun,
            GTy::Data(0),
        ] {
            assert_eq!(GExpr::leaf_of(ty).ty(), ty);
        }
    }

    #[test]
    fn rendering_skips_unused_prelude_and_datatypes() {
        let p = GProgram {
            datatypes: vec![Some(DtDecl {
                name: "g0".to_string(),
                variants: vec![
                    DtVariant {
                        name: "G0N0".to_string(),
                        fields: vec![],
                    },
                    DtVariant {
                        name: "G0R0".to_string(),
                        fields: vec![VField::Rec, VField::TVar],
                    },
                ],
            })],
            helpers: vec![None],
            main: GExpr::Lit(7),
        };
        let src = p.render();
        assert_eq!(src.trim(), "7");
    }

    #[test]
    fn ident_boundary_scan_rejects_substrings() {
        assert!(uses_ident("plen xs + 1", "plen"));
        assert!(!uses_ident("plen xs + 1", "len"));
        assert!(uses_ident("len (plen xs)", "len"));
        assert!(!uses_ident("mylen 3", "len"));
    }
}
