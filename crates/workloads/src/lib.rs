//! # tfgc-workloads — benchmark programs
//!
//! TFML sources for the experiment suite: the paper's own worked examples
//! ([`paper_examples`]), realistic list/tree/closure workloads
//! ([`programs`]), and a seeded well-typed-by-construction random program
//! generator ([`generator`]) for differential fuzzing.

pub mod generator;
pub mod paper_examples;
pub mod programs;
pub mod rng;

pub use generator::{
    generate, generate_program, DtDecl, DtVariant, GExpr, GProgram, GTy, GenConfig, VField,
};
pub use programs::suite;
pub use rng::{fnv1a64, SmallRng};

use tfgc_ir::{lower, IrProgram};
use tfgc_syntax::parse_program;
use tfgc_types::elaborate;

/// Compiles TFML source all the way to bytecode.
///
/// # Panics
///
/// Panics on any front-end error: workload sources are fixed and correct
/// by construction.
pub fn compile(src: &str) -> IrProgram {
    let parsed = parse_program(src).expect("workload parses");
    let typed = elaborate(&parsed).expect("workload type-checks");
    let prog = lower(&typed).expect("workload lowers");
    debug_assert_eq!(prog.validate(), Ok(()));
    prog
}
