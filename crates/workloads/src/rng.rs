//! A tiny deterministic PRNG (SplitMix64 core).
//!
//! The program generator and property tests only need reproducible,
//! well-mixed streams — not cryptographic quality — and the build must
//! work without network access, so this replaces the external `rand`
//! crate. SplitMix64 passes BigCrush and is the standard seeder for
//! xoshiro-family generators.

/// A seeded deterministic generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        // Debiased via rejection sampling on the top of the range.
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + (v % span) as i64;
            }
        }
    }

    /// A uniform bool.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// FNV-1a over `bytes` — the repo's standard content fingerprint for
/// deterministic reports and golden tests (stable across platforms and
/// Rust versions, unlike `DefaultHasher`).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_everything() {
        let mut r = SmallRng::seed_from_u64(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(3, 13);
            assert!((3..13).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all values of a small range occur");
    }

    #[test]
    fn bools_are_mixed() {
        let mut r = SmallRng::seed_from_u64(1);
        let trues = (0..1000).filter(|_| r.gen_bool()).count();
        assert!((300..700).contains(&trues), "about half: {trues}");
    }
}
