//! The paper's own example programs, transliterated to TFML.

/// §2.4's monomorphic `append` on `int list` — the worked example whose
/// activation records never need tracing: "garbage collection never needs
/// to trace the elements of an append activation record!"
pub fn append_mono(n: usize) -> String {
    format!(
        "fun append [] (ys : int list) = ys
           | append (x :: xs) ys = x :: append xs ys ;
         fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ;
         len (append (build {n}) (build {n}))"
    )
}

/// §3's polymorphic `append`, used at two instantiations.
pub fn append_poly(n: usize) -> String {
    format!(
        "fun append [] ys = ys | append (x :: xs) ys = x :: append xs ys ;
         fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun bools n = if n = 0 then [] else true :: bools (n - 1) ;
         fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ;
         len (append (build {n}) (build {n})) + len (append (bools {n}) (bools {n}))"
    )
}

/// §2.2's `map` over an `int list` with a non-trivial closure.
pub fn map_closure(n: usize) -> String {
    format!(
        "fun map f xs = case xs of [] => [] | x :: r => f x :: map f r ;
         fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
         let val offset = 100 in sum (map (fn x => x + offset) (build {n})) end"
    )
}

/// §3's `f`/`main` pair: `fun f x = let val y = [x, x] in (y, [3]) end`
/// applied at `bool list` and `int`.
pub fn poly_f_main() -> &'static str {
    "fun f x = let val y = [x, x] in (y, [3]) end ;
     (f [true], f 7)"
}

/// §2.3's variant records (an Ada/Pascal-flavored shape type).
pub fn variant_records(n: usize) -> String {
    format!(
        "datatype shape = Circle of int | Rect of int * int | Point ;
         fun area s = case s of Circle r => 3 * r * r | Rect (w, h) => w * h | Point => 0 ;
         fun shapes n = if n = 0 then []
                        else (if n mod 3 = 0 then Circle n
                              else if n mod 3 = 1 then Rect (n, n + 1)
                              else Point) :: shapes (n - 1) ;
         fun total xs = case xs of [] => 0 | s :: r => area s + total r ;
         total (shapes {n})"
    )
}

/// §3's higher-order polymorphic example shape:
/// `fun f g (x :: xs) = let val y = g x in (y, 1) end`.
pub fn higher_order_poly(n: usize) -> String {
    format!(
        "fun f g xs = case xs of [] => ([], 0) | x :: _ => let val y = g x in (y, 1) end ;
         fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun loop n acc = if n = 0 then acc
                          else case f (fn v => [v, v]) (build 3) of (_, k) => loop (n - 1) (acc + k) ;
         loop {n} 0"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_ir::lower;
    use tfgc_syntax::parse_program;
    use tfgc_types::elaborate;

    fn compiles(src: &str) {
        let p =
            lower(&elaborate(&parse_program(src).expect("parse")).expect("types")).expect("lower");
        p.validate().expect("valid");
    }

    #[test]
    fn all_paper_examples_compile() {
        compiles(&append_mono(10));
        compiles(&append_poly(10));
        compiles(&map_closure(10));
        compiles(poly_f_main());
        compiles(&variant_records(10));
        compiles(&higher_order_poly(5));
    }
}
