//! Realistic TFML workloads used across the experiments.

/// Pure arithmetic: Fibonacci (no allocation at all — every gc_word in
/// `fib` is omitted by §5.1).
pub fn fib(n: usize) -> String {
    format!("fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) ; fib {n}")
}

/// Arithmetic over a preallocated list (tag-op heavy, low GC pressure).
pub fn sumlist(n: usize, rounds: usize) -> String {
    format!(
        "fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
         fun rounds k xs = if k = 0 then 0 else sum xs + rounds (k - 1) xs ;
         rounds {rounds} (build {n})"
    )
}

/// Allocation churn with a small live set: repeated list building and
/// discarding (post-order so no strategy pins the garbage in frames).
pub fn churn(rounds: usize, size: usize) -> String {
    format!(
        "fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun churn n = if n = 0 then 0 else (churn (n - 1); (build {size}; 0)) ;
         churn {rounds}"
    )
}

/// List reversal via append: quadratic allocation, linear live set.
pub fn naive_rev(n: usize) -> String {
    format!(
        "fun append [] ys = ys | append (x :: xs) ys = x :: append xs ys ;
         fun rev xs = case xs of [] => [] | x :: r => append (rev r) [x] ;
         fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ;
         len (rev (build {n}))"
    )
}

/// Binary search tree build + fold (polymorphic datatype, deep recursion).
pub fn tree_insert(n: usize) -> String {
    format!(
        "datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree ;
         fun insert t x = case t of
             Leaf => Node (Leaf, x, Leaf)
           | Node (l, v, r) => if x < v then Node (insert l x, v, r)
                               else Node (l, v, insert r x) ;
         fun build i n t = if i > n then t else build (i + 1) n (insert t ((i * 37) mod n)) ;
         fun size t = case t of Leaf => 0 | Node (l, _, r) => 1 + size l + size r ;
         size (build 1 {n} Leaf)"
    )
}

/// Higher-order pipeline: map/filter composition through closures.
pub fn pipeline(n: usize) -> String {
    format!(
        "fun map f xs = case xs of [] => [] | x :: r => f x :: map f r ;
         fun filter p xs = case xs of [] => []
           | x :: r => if p x then x :: filter p r else filter p r ;
         fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
         sum (map (fn x => x * 2) (filter (fn x => x mod 3 = 0) (map (fn x => x + 1) (build {n}))))"
    )
}

/// N-queens: backtracking search with short-lived list allocation.
pub fn nqueens(n: usize) -> String {
    format!(
        "fun abs x = if x < 0 then ~x else x ;
         fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ;
         fun safe q qs d = case qs of [] => true
           | x :: r => x <> q andalso abs (x - q) <> d andalso safe q r (d + 1) ;
         fun range i n = if i > n then [] else i :: range (i + 1) n ;
         fun count qs n =
           if len qs = n then 1
           else let fun try cols = case cols of [] => 0
                      | c :: rest => (if safe c qs 1 then count (c :: qs) n else 0) + try rest
                in try (range 1 n) end ;
         count [] {n}"
    )
}

/// Deep polymorphic recursion (stresses §3's per-frame type propagation):
/// a polymorphic `len` over a deep list, plus polymorphic rebuilding.
pub fn poly_depth(depth: usize) -> String {
    format!(
        "fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun plen xs = case xs of [] => 0 | _ :: t => 1 + plen t ;
         fun pcopy xs = case xs of [] => [] | x :: t => x :: pcopy t ;
         plen (pcopy (build {depth}))"
    )
}

/// Deep *pre-order* polymorphic recursion that allocates on the way
/// down, so collections strike with the polymorphic frames at maximum
/// depth (E5's stress shape: Appel's backward resolution goes quadratic).
pub fn poly_deep_alloc(depth: usize) -> String {
    format!(
        "fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun pdown xs acc = case xs of [] => acc | x :: t => pdown t ((x, x) :: acc) ;
         fun plen xs = case xs of [] => 0 | _ :: t => 1 + plen t ;
         plen (pdown (build {depth}) [])"
    )
}

/// The 1991 scheme's completeness gap: a closure whose capture type is
/// invisible in its own arrow type (needs a hidden runtime descriptor).
pub fn poly_capture(rounds: usize) -> String {
    format!(
        "fun konst x = fn u => (let val probe = [x, x] in u + 1 end) ;
         fun spin f n = if n = 0 then f 1 else let val r = spin f (n - 1) in ((n, n); r) end ;
         let val f = konst [41] in (spin f {rounds}; f 1) end"
    )
}

/// Long-lived structure with ongoing churn — the generational-style
/// pattern where liveness precision matters most.
pub fn live_and_dead(live: usize, rounds: usize, dead: usize) -> String {
    format!(
        "fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ;
         fun churn n = if n = 0 then 0 else (churn (n - 1); (build {dead}; 0)) ;
         let val keep = build {live}
             val d = build {live}
             val dl = len d in
           (churn {rounds}; len keep + dl)
         end"
    )
}

/// Closure-heavy workload: a list of counter closures applied repeatedly.
pub fn closure_farm(n: usize, rounds: usize) -> String {
    format!(
        "fun map f xs = case xs of [] => [] | x :: r => f x :: map f r ;
         fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun appall fs x = case fs of [] => 0 | f :: r => f x + appall r x ;
         fun spin k fs = if k = 0 then 0 else appall fs k + spin (k - 1) fs ;
         spin {rounds} (map (fn a => fn b => a * b + 1) (build {n}))"
    )
}

/// Higher-order call of a *pure* closure in a program that also creates
/// an allocating closure: the paper's first-order approximation poisons
/// every closure call; the closure-flow refinement proves the pure one
/// collection-free (E6b).
pub fn ho_pure(rounds: usize) -> String {
    format!(
        "fun apply f x = f x ;
         fun pure n = if n = 0 then 0 else apply (fn z => z + 1) n + pure (n - 1) ;
         fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ;
         fun grow xs = (fn z => z :: xs) ;
         pure {rounds} + len ((grow [1, 2]) 3)"
    )
}

/// Bottom-up mergesort over int lists (split/merge recursion with
/// medium-lived intermediate lists).
pub fn mergesort(n: usize) -> String {
    format!(
        "fun split xs = case xs of [] => ([], [])
           | x :: [] => ([x], [])
           | x :: y :: rest => (case split rest of (a, b) => (x :: a, y :: b)) ;
         fun merge xs ys = case xs of [] => ys
           | x :: xr => (case ys of [] => xs
               | y :: yr => if x <= y then x :: merge xr ys else y :: merge xs yr) ;
         fun msort xs = case xs of [] => [] | x :: [] => [x]
           | _ => (case split xs of (a, b) => merge (msort a) (msort b)) ;
         fun gen n = if n = 0 then [] else ((n * 73) mod 997) :: gen (n - 1) ;
         fun sorted xs = case xs of [] => true | _ :: [] => true
           | x :: (y :: r) => x <= y andalso sorted (y :: r) ;
         if sorted (msort (gen {n})) then 1 else 0"
    )
}

/// Sieve of Eratosthenes over lists (filter-heavy allocation).
pub fn sieve(n: usize) -> String {
    format!(
        "fun range i n = if i > n then [] else i :: range (i + 1) n ;
         fun filter p xs = case xs of [] => []
           | x :: r => if p x then x :: filter p r else filter p r ;
         fun sieve xs = case xs of [] => []
           | p :: rest => p :: sieve (filter (fn x => x mod p <> 0) rest) ;
         fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ;
         len (sieve (range 2 {n}))"
    )
}

/// Church numerals: higher-order stress with closures as data.
pub fn church(n: usize) -> String {
    format!(
        "fun zero f x = x ;
         fun succ c f x = f (c f x) ;
         fun iter k = if k = 0 then zero else succ (iter (k - 1)) ;
         iter {n} (fn v => v + 1) 0"
    )
}

/// A small expression interpreter written *in* TFML: recursive
/// datatypes, environments as assoc lists, heavy short-lived allocation —
/// the "realistic compiler workload" shape.
pub fn interp(n: usize) -> String {
    format!(
        "datatype expr = Num of int | Var of int | Add of expr * expr
                       | Mul of expr * expr | Let of int * expr * expr ;
         fun lookup env k = case env of [] => 0
           | (i, v) :: r => if i = k then v else lookup r k ;
         fun eval env e = case e of
             Num n => n
           | Var k => lookup env k
           | Add (a, b) => eval env a + eval env b
           | Mul (a, b) => eval env a * eval env b
           | Let (k, rhs, body) => eval ((k, eval env rhs) :: env) body ;
         fun mk d = if d = 0 then Num 1
                    else Let (d, Add (Num d, Var (d + 1)),
                              Mul (Var d, Add (mk (d - 1), Num 2))) ;
         fun loop k acc = if k = 0 then acc
                          else loop (k - 1) (acc + eval [(100, 1)] (mk {n}) mod 1000) ;
         loop 20 0"
    )
}

/// All named workloads at default sizes, for sweep-style experiments.
pub fn suite() -> Vec<(&'static str, String)> {
    vec![
        ("fib", fib(18)),
        ("sumlist", sumlist(200, 50)),
        ("churn", churn(150, 30)),
        ("naive_rev", naive_rev(60)),
        ("tree_insert", tree_insert(150)),
        ("pipeline", pipeline(150)),
        ("nqueens", nqueens(6)),
        ("poly_depth", poly_depth(200)),
        ("live_and_dead", live_and_dead(100, 100, 25)),
        ("closure_farm", closure_farm(20, 40)),
        ("poly_deep", poly_deep_alloc(120)),
        ("poly_capture", poly_capture(150)),
        ("ho_pure", ho_pure(50)),
        ("mergesort", mergesort(120)),
        ("sieve", sieve(80)),
        ("church", church(30)),
        ("interp", interp(8)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_ir::lower;
    use tfgc_syntax::parse_program;
    use tfgc_types::elaborate;

    #[test]
    fn whole_suite_compiles() {
        for (name, src) in suite() {
            let p = lower(
                &elaborate(&parse_program(&src).unwrap_or_else(|e| panic!("{name}: {e}")))
                    .unwrap_or_else(|e| panic!("{name}: {e}")),
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"));
            p.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
