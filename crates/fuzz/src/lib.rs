//! # tfgc-fuzz — differential fuzzing campaign for the tag-free GC
//!
//! The collectors' contract is behavioral equivalence: a well-typed
//! program must produce the same result, the same printed output, and
//! (versus the tagged oracle) the same reachable graph under every
//! collection strategy and every metadata configuration, and every
//! injected fault must degrade gracefully. This crate turns that
//! contract into a campaign:
//!
//! 1. [`generate_program`](tfgc_workloads::generate_program) produces a
//!    seeded well-typed-by-construction program over a rich universe
//!    (fresh polymorphic datatypes per seed, nested lists/pairs,
//!    closures and partial application, let-polymorphism, deep
//!    recursion).
//! 2. [`campaign::run_campaign`] executes it across every strategy ×
//!    {trace plans on/off} × {rt cache on/off} × {tiny forced-GC heap,
//!    default heap} with the heap verifier on, replays it against the
//!    tagged oracle with node-identity snapshots, and runs it under a
//!    seeded fault plan. Any divergence, verifier/oracle failure, raw
//!    panic, or non-graceful fault becomes a [`campaign::Finding`].
//! 3. [`shrink::shrink`] reduces a finding's program by typed
//!    delta-debugging — dropping helpers and datatypes, replacing
//!    subexpressions with leaves of the same type, halving literals —
//!    to a fixpoint that still reproduces the same fingerprint.
//! 4. [`report::report_json`] renders the whole campaign as a
//!    bit-deterministic JSON document (same seeds ⇒ identical bytes,
//!    FNV-1a digest included), the artifact CI gates on.
//!
//! The crate deliberately sits *below* `tfgc` (the driver) so the `tfml
//! fuzz` subcommand can call into it; it rebuilds the thin front-end
//! pipeline from the same public pieces instead of importing the
//! driver's.

pub mod campaign;
pub mod report;
pub mod shrink;

pub use campaign::{
    run_campaign, CampaignConfig, CampaignReport, DivergenceKind, Finding, PlantedBug,
};
pub use report::report_json;
pub use shrink::{shrink, ShrinkResult};

use tfgc_gc::{Analyses, GcMeta, Strategy};
use tfgc_ir::IrProgram;

/// A compiled program plus its analyses — the fuzz crate's slice of the
/// driver pipeline (parse → elaborate → lower → analyses).
#[derive(Debug, Clone)]
pub struct FuzzCompiled {
    pub program: IrProgram,
    pub analyses: Analyses,
}

impl FuzzCompiled {
    /// Builds GC metadata for a strategy, reusing the analyses.
    pub fn metadata(&self, strategy: Strategy) -> GcMeta {
        GcMeta::build(&self.program, &self.analyses, strategy)
    }
}

/// Runs the front end on TFML source.
///
/// # Errors
///
/// `(stage, message)` for the first failing stage — `parse`, `type`, or
/// `lower`. The stage name feeds compile-failure fingerprints.
pub fn compile_src(src: &str) -> Result<FuzzCompiled, (&'static str, String)> {
    let parsed = tfgc_syntax::parse_program(src).map_err(|e| ("parse", e.to_string()))?;
    let typed = tfgc_types::elaborate(&parsed).map_err(|e| ("type", e.to_string()))?;
    let program = tfgc_ir::lower(&typed).map_err(|e| ("lower", e.to_string()))?;
    let analyses = Analyses::compute(&program);
    Ok(FuzzCompiled { program, analyses })
}
