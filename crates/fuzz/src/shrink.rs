//! Typed delta-debugging for campaign findings.
//!
//! The generator emits programs as typed trees ([`GProgram`]), so
//! shrinking never has to guess at syntax: every transformation below
//! preserves well-typedness by construction, and a candidate is kept iff
//! re-running the full per-seed check still produces the finding's
//! fingerprint. Passes, applied to a fixpoint under an evaluation
//! budget:
//!
//! 1. **Drop helpers** (last to first): the helper slot becomes `None`
//!    and every surviving `helper i` call site becomes the literal `1`.
//! 2. **Drop datatypes**: every fold/size entry point over the datatype
//!    becomes the literal `1`, removing all references, and the
//!    declaration slot becomes `None`.
//! 3. **Subexpression → typed leaf**: any non-leaf node is replaced by
//!    the minimal closed expression of its own type, largest subtrees
//!    first.
//! 4. **Literal halving**: integer literals and recursion depths halve
//!    until they stop mattering.

use crate::campaign::{fingerprints_of, PlantedBug};
use tfgc_workloads::{GExpr, GProgram};

/// Outcome of a shrink: the smallest program found that still reproduces
/// the fingerprint, and the predicate evaluations spent.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    pub program: GProgram,
    pub evals: u64,
}

struct Shrinker<'a> {
    target: &'a str,
    seed: u64,
    planted: Option<PlantedBug>,
    budget: u64,
    evals: u64,
}

impl Shrinker<'_> {
    /// Does `candidate` still produce the target fingerprint? Each call
    /// re-runs the whole per-seed check matrix on the candidate.
    fn reproduces(&mut self, candidate: &GProgram) -> bool {
        if self.evals >= self.budget {
            return false;
        }
        self.evals += 1;
        fingerprints_of(candidate, self.seed, self.planted)
            .iter()
            .any(|fp| fp == self.target)
    }

    fn out_of_budget(&self) -> bool {
        self.evals >= self.budget
    }
}

/// Replaces every node matching `rewrite` (pre-order; matched subtrees
/// are not descended into).
fn replace_nodes(e: &mut GExpr, rewrite: &dyn Fn(&GExpr) -> Option<GExpr>) {
    if let Some(n) = rewrite(e) {
        *e = n;
        return;
    }
    for c in e.children_mut() {
        replace_nodes(c, rewrite);
    }
}

/// All paths to descendants of the roots, as (root index, child-index
/// path), paired with the subtree size at that path.
fn collect_paths(prog: &GProgram) -> Vec<(usize, Vec<usize>, usize)> {
    fn walk(
        e: &GExpr,
        root: usize,
        path: &mut Vec<usize>,
        out: &mut Vec<(usize, Vec<usize>, usize)>,
    ) {
        out.push((root, path.clone(), e.size()));
        for (i, c) in e.children().into_iter().enumerate() {
            path.push(i);
            walk(c, root, path, out);
            path.pop();
        }
    }
    let mut out = Vec::new();
    let roots: Vec<&GExpr> = prog.helpers.iter().flatten().collect();
    for (r, e) in roots.iter().enumerate() {
        walk(e, r, &mut Vec::new(), &mut out);
    }
    walk(&prog.main, roots.len(), &mut Vec::new(), &mut out);
    out
}

/// The mutable roots in the same order `collect_paths` numbered them.
fn root_mut(prog: &mut GProgram, root: usize) -> &mut GExpr {
    let n_helpers = prog.helpers.iter().flatten().count();
    if root < n_helpers {
        prog.helpers
            .iter_mut()
            .flatten()
            .nth(root)
            .expect("root index in range")
    } else {
        &mut prog.main
    }
}

fn node_at_mut<'a>(root: &'a mut GExpr, path: &[usize]) -> &'a mut GExpr {
    let mut cur = root;
    for &i in path {
        cur = cur
            .children_mut()
            .into_iter()
            .nth(i)
            .expect("path stays valid");
    }
    cur
}

/// One pass of helper dropping (last to first). Returns true on any
/// progress.
fn drop_helpers(prog: &mut GProgram, sh: &mut Shrinker<'_>) -> bool {
    let mut progress = false;
    for i in (0..prog.helpers.len()).rev() {
        if sh.out_of_budget() || prog.helpers[i].is_none() {
            continue;
        }
        let mut cand = prog.clone();
        cand.helpers[i] = None;
        for root in cand.roots_mut() {
            replace_nodes(root, &|e| match e {
                GExpr::CallHelper(j, _) if *j == i => Some(GExpr::Lit(1)),
                _ => None,
            });
        }
        if sh.reproduces(&cand) {
            *prog = cand;
            progress = true;
        }
    }
    progress
}

/// One pass of datatype dropping. All references to a datatype enter
/// through its `Int`-typed fold/size nodes (datatype-typed subtrees only
/// occur beneath them), so rewriting those to `1` severs the type from
/// the program.
fn drop_datatypes(prog: &mut GProgram, sh: &mut Shrinker<'_>) -> bool {
    let mut progress = false;
    for d in 0..prog.datatypes.len() {
        if sh.out_of_budget() || prog.datatypes[d].is_none() {
            continue;
        }
        let mut cand = prog.clone();
        for root in cand.roots_mut() {
            replace_nodes(root, &|e| match e {
                GExpr::DtFold(j, _) | GExpr::DtSize(j, _) | GExpr::DtSizeBool(j, _) if *j == d => {
                    Some(GExpr::Lit(1))
                }
                _ => None,
            });
        }
        cand.datatypes[d] = None;
        if sh.reproduces(&cand) {
            *prog = cand;
            progress = true;
        }
    }
    progress
}

/// One pass of subexpression-to-leaf substitution, largest subtrees
/// first; restarts path collection after every success (the tree
/// changed).
fn leafify(prog: &mut GProgram, sh: &mut Shrinker<'_>) -> bool {
    let mut progress = false;
    loop {
        if sh.out_of_budget() {
            return progress;
        }
        let mut paths = collect_paths(prog);
        paths.sort_by_key(|p| std::cmp::Reverse(p.2));
        let mut improved = false;
        for (root, path, _size) in paths {
            if sh.out_of_budget() {
                break;
            }
            let mut cand = prog.clone();
            let node = node_at_mut(root_mut(&mut cand, root), &path);
            let leaf = GExpr::leaf_of(node.ty());
            if *node == leaf {
                continue;
            }
            *node = leaf;
            if sh.reproduces(&cand) {
                *prog = cand;
                progress = true;
                improved = true;
                break; // paths are stale; re-collect
            }
        }
        if !improved {
            return progress;
        }
    }
}

/// One global literal-halving round. Returns true on progress.
fn halve_literals(prog: &mut GProgram, sh: &mut Shrinker<'_>) -> bool {
    let mut progress = false;
    loop {
        if sh.out_of_budget() {
            return progress;
        }
        let mut cand = prog.clone();
        for root in cand.roots_mut() {
            replace_nodes(root, &|e| match e {
                GExpr::Lit(n) if *n > 0 => Some(GExpr::Lit(n / 2)),
                GExpr::BuildDeep(k) if *k > 1 => Some(GExpr::BuildDeep(k / 2)),
                GExpr::DtBuildDeep(d, k) if *k > 1 => Some(GExpr::DtBuildDeep(*d, k / 2)),
                GExpr::MkFun(k) if *k > 0 => Some(GExpr::MkFun(k / 2)),
                _ => None,
            });
        }
        // `replace_nodes` has no change signal; detect via equality.
        if cand == *prog {
            return progress;
        }
        if sh.reproduces(&cand) {
            *prog = cand;
            progress = true;
        } else {
            return progress;
        }
    }
}

/// Shrinks `prog` to a fixpoint (or until `budget` predicate evaluations
/// are spent) while `fingerprint` keeps reproducing under the same seed
/// and planted-bug mode the finding came from.
pub fn shrink(
    prog: &GProgram,
    fingerprint: &str,
    seed: u64,
    planted: Option<PlantedBug>,
    budget: u64,
) -> ShrinkResult {
    let mut sh = Shrinker {
        target: fingerprint,
        seed,
        planted,
        budget,
        evals: 0,
    };
    let mut best = prog.clone();
    // Confirm the finding reproduces at all before spending budget; a
    // flaky fingerprint (it should never be — everything is seeded)
    // returns the original untouched.
    if !sh.reproduces(&best) {
        return ShrinkResult {
            program: best,
            evals: sh.evals,
        };
    }
    loop {
        let mut progress = false;
        progress |= drop_helpers(&mut best, &mut sh);
        progress |= drop_datatypes(&mut best, &mut sh);
        progress |= leafify(&mut best, &mut sh);
        progress |= halve_literals(&mut best, &mut sh);
        if !progress || sh.out_of_budget() {
            break;
        }
    }
    ShrinkResult {
        program: best,
        evals: sh.evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig, DivergenceKind};
    use tfgc_workloads::GenConfig;

    /// Satellite: the planted-divergence drill. A lying oracle on
    /// datatype g0 must be found, and the shrinker must reduce the
    /// reproducer to a harness-committable handful of lines that still
    /// references the datatype.
    #[test]
    fn planted_divergence_shrinks_to_minimal_reproducer() {
        let cfg = CampaignConfig {
            seeds: 1,
            seed_start: 5,
            shrink: true,
            shrink_budget: 400,
            planted: Some(crate::PlantedBug::OracleLiesOnDatatype(0)),
            gen: GenConfig::default(),
        };
        let report = run_campaign(&cfg);
        assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
        let f = &report.findings[0];
        assert_eq!(f.kind, DivergenceKind::OracleFailure);
        assert!(f.shrink_evals > 0, "shrinker never ran");
        assert!(
            f.shrunk_nodes < f.orig_nodes,
            "no reduction: {} -> {}",
            f.orig_nodes,
            f.shrunk_nodes
        );
        let lines = f.source.trim().lines().count();
        assert!(
            lines <= 15,
            "reproducer should be <= 15 lines, got {lines}:\n{}",
            f.source
        );
        // Still references the planted datatype (otherwise it would not
        // reproduce).
        assert!(
            f.source.contains("g0"),
            "shrunk reproducer lost the datatype:\n{}",
            f.source
        );
    }

    #[test]
    fn leafify_respects_types() {
        use tfgc_workloads::{GExpr, GProgram};
        // A program whose main is `sum (build (3 mod 7 + 1))`-ish; the
        // shrinker must only ever substitute same-type leaves, so any
        // reachable candidate still compiles.
        let prog = GProgram {
            datatypes: vec![],
            helpers: vec![],
            main: GExpr::Sum(Box::new(GExpr::Build(Box::new(GExpr::Lit(3))))),
        };
        for (root, path, _) in collect_paths(&prog) {
            let mut cand = prog.clone();
            let node = node_at_mut(root_mut(&mut cand, root), &path);
            *node = GExpr::leaf_of(node.ty());
            let src = cand.render();
            assert!(
                crate::compile_src(&src).is_ok(),
                "typed leaf substitution broke compilation:\n{src}"
            );
        }
    }
}
