//! Bit-deterministic JSON rendering of a campaign (the `BENCH_E14.json`
//! artifact CI gates on).
//!
//! Determinism rules: no wall-clock or environment data, insertion-
//! ordered objects only, findings pre-sorted by the campaign, and a
//! trailing FNV-1a digest of the document-without-digest so a replayed
//! campaign can be compared byte-for-byte by comparing one line.

use crate::campaign::{CampaignConfig, CampaignReport};
use tfgc_obs::Json;
use tfgc_workloads::fnv1a64;

/// Renders the campaign report as a deterministic JSON document string
/// (pretty-printed, trailing newline, digest included).
pub fn report_json(cfg: &CampaignConfig, report: &CampaignReport) -> String {
    let n = |v: u64| Json::Num(v as f64);
    let findings = Json::arr(report.findings.iter().map(|f| {
        Json::obj([
            ("seed", n(f.seed)),
            ("kind", Json::str(f.kind.name())),
            ("fingerprint", Json::str(f.fingerprint.clone())),
            ("count", n(f.count)),
            ("detail", Json::str(f.detail.clone())),
            ("orig_nodes", Json::Num(f.orig_nodes as f64)),
            ("shrunk_nodes", Json::Num(f.shrunk_nodes as f64)),
            ("shrink_evals", n(f.shrink_evals)),
            (
                "source_lines",
                Json::Num(f.source.trim().lines().count() as f64),
            ),
            ("source", Json::str(f.source.clone())),
        ])
    }));
    let mut doc = Json::obj([
        ("experiment", Json::str("E14")),
        (
            "description",
            Json::str("differential fuzzing campaign: strategies x plans x cache x heap tiers, tagged oracle, seeded faults"),
        ),
        ("seeds", n(report.seeds_run)),
        ("seed_start", n(report.seed_start)),
        (
            "gen_config",
            Json::obj([
                ("max_depth", Json::Num(f64::from(cfg.gen.max_depth))),
                ("n_funs", Json::Num(cfg.gen.n_funs as f64)),
                ("fuel", Json::Num(f64::from(cfg.gen.fuel))),
                ("n_datatypes", Json::Num(cfg.gen.n_datatypes as f64)),
                (
                    "max_recursion",
                    Json::Num(f64::from(cfg.gen.max_recursion)),
                ),
                ("higher_order", Json::Bool(cfg.gen.higher_order)),
                ("polymorphism", Json::Bool(cfg.gen.polymorphism)),
            ]),
        ),
        ("shrink", Json::Bool(cfg.shrink)),
        ("cases_executed", n(report.cases_executed)),
        ("completed", n(report.completed)),
        ("structured_errors", n(report.structured_errors)),
        ("faults_graceful", n(report.faults_graceful)),
        ("finding_count", Json::Num(report.findings.len() as f64)),
        ("findings", findings),
    ]);
    let digest = fnv1a64(doc.to_json().as_bytes());
    if let Json::Obj(pairs) = &mut doc {
        pairs.push(("digest".to_string(), Json::str(format!("{digest:016x}"))));
    }
    let mut s = doc.to_json_pretty();
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};

    #[test]
    fn report_is_deterministic_and_carries_digest() {
        let cfg = CampaignConfig {
            seeds: 2,
            seed_start: 30,
            ..CampaignConfig::default()
        };
        let r1 = report_json(&cfg, &run_campaign(&cfg));
        let r2 = report_json(&cfg, &run_campaign(&cfg));
        assert_eq!(r1, r2);
        assert!(r1.contains("\"digest\""));
        assert!(r1.contains("\"experiment\": \"E14\""));
        let parsed = tfgc_obs::json::parse(&r1).expect("report parses");
        assert_eq!(
            parsed.get("cases_executed").and_then(Json::as_f64),
            Some(2.0 * 71.0)
        );
        assert_eq!(
            parsed.get("finding_count").and_then(Json::as_f64),
            Some(0.0)
        );
    }
}
