//! The campaign runner: one seed → one generated program → a matrix of
//! differential cells, an oracle pass, and a fault pass; any contract
//! violation becomes a fingerprinted [`Finding`].

use std::collections::BTreeMap;

use crate::{compile_src, shrink::shrink, FuzzCompiled};
use tfgc_gc::Strategy;
use tfgc_vm::{
    capture_panics_mut, diff, with_quiet_panics, CanonHeap, FaultPlan, Vm, VmConfig, VmError,
};
use tfgc_workloads::{generate_program, GProgram, GenConfig};

/// Campaign settings (all deterministic inputs).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of seeds to run.
    pub seeds: u64,
    /// First seed (campaigns are resumable/shardable by offsetting this).
    pub seed_start: u64,
    /// Generator knobs for every seed.
    pub gen: GenConfig,
    /// Shrink each new finding's program by typed delta-debugging.
    pub shrink: bool,
    /// Predicate-evaluation budget per shrink (each evaluation re-runs
    /// the full per-seed check on a candidate).
    pub shrink_budget: u64,
    /// Test-only planted bug, to prove the pipeline detects and shrinks.
    pub planted: Option<PlantedBug>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seeds: 50,
            seed_start: 0,
            gen: GenConfig::default(),
            shrink: false,
            shrink_budget: 300,
            planted: None,
        }
    }
}

/// A deliberately planted divergence, used by tests to prove the
/// campaign detects findings and the shrinker minimizes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlantedBug {
    /// The oracle pass "lies" — reports a divergence — whenever the
    /// program references the given generated datatype. The minimal
    /// reproducer is therefore the smallest program still touching that
    /// datatype.
    OracleLiesOnDatatype(usize),
}

/// What kind of contract violation a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DivergenceKind {
    /// The generated program failed to compile (a generator bug — the
    /// universe is supposed to be well-typed by construction).
    CompileFailure,
    /// Two cells disagree on the final result (or on outcome class).
    ResultMismatch,
    /// Two cells disagree on printed output.
    PrintedMismatch,
    /// Two same-strategy cells disagree on a canonical heap snapshot.
    SnapshotMismatch,
    /// The post-collection heap verifier rejected a heap.
    VerifierFailure,
    /// The tagged-oracle node-identity pass diverged.
    OracleFailure,
    /// An unstructured panic in a clean (no-fault) cell.
    RawPanic,
    /// The seeded fault pass ended in something other than a completed
    /// run, structured error, or structured fail-fast panic.
    NonGracefulFault,
}

impl DivergenceKind {
    /// Stable slug for fingerprints and JSON.
    pub fn name(self) -> &'static str {
        match self {
            DivergenceKind::CompileFailure => "compile-failure",
            DivergenceKind::ResultMismatch => "result-mismatch",
            DivergenceKind::PrintedMismatch => "printed-mismatch",
            DivergenceKind::SnapshotMismatch => "snapshot-mismatch",
            DivergenceKind::VerifierFailure => "verifier-failure",
            DivergenceKind::OracleFailure => "oracle-failure",
            DivergenceKind::RawPanic => "raw-panic",
            DivergenceKind::NonGracefulFault => "non-graceful-fault",
        }
    }
}

/// One deduplicated finding: the first seed that produced a fingerprint,
/// with its (possibly shrunk) reproducer source.
#[derive(Debug, Clone)]
pub struct Finding {
    pub seed: u64,
    pub kind: DivergenceKind,
    /// `kind|error-class|strategy-pair` — the dedup key.
    pub fingerprint: String,
    pub detail: String,
    /// Reproducer source (shrunk when shrinking is enabled).
    pub source: String,
    /// Expression-node count before shrinking.
    pub orig_nodes: usize,
    /// Expression-node count after shrinking (equals `orig_nodes` when
    /// shrinking is off or made no progress).
    pub shrunk_nodes: usize,
    /// Seeds that reproduced this fingerprint (first one included).
    pub count: u64,
    /// Predicate evaluations the shrinker spent on this finding.
    pub shrink_evals: u64,
}

/// Whole-campaign results.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    pub seeds_run: u64,
    pub seed_start: u64,
    /// Individual VM executions (cells + oracle runs + fault runs).
    pub cases_executed: u64,
    /// Clean cells that ran to completion.
    pub completed: u64,
    /// Clean cells that ended in a structured [`VmError`].
    pub structured_errors: u64,
    /// Fault-pass runs that degraded gracefully.
    pub faults_graceful: u64,
    /// Deduplicated findings, ordered by first appearance then
    /// fingerprint.
    pub findings: Vec<Finding>,
}

impl CampaignReport {
    /// Zero findings — the campaign's pass criterion.
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }
}

/// A not-yet-deduplicated violation from one seed's check.
#[derive(Debug, Clone)]
pub(crate) struct RawFinding {
    pub kind: DivergenceKind,
    pub fingerprint: String,
    pub detail: String,
}

fn error_class(e: &VmError) -> &'static str {
    match e {
        VmError::OutOfMemory { .. } => "oom",
        VmError::MatchFailure { .. } => "match-failure",
        VmError::DivideByZero { .. } => "divide-by-zero",
        VmError::StepLimit { .. } => "step-limit",
        VmError::StackOverflow { .. } => "stack-overflow",
        VmError::VerificationFailed { .. } => "verification-failed",
        VmError::DeadlineExceeded { .. } => "deadline",
        VmError::Internal { .. } => "internal",
    }
}

/// How one clean cell ended.
#[derive(Debug, Clone)]
enum CellOutcome {
    Done {
        result: String,
        printed: Vec<i64>,
        snaps: Option<Vec<CanonHeap>>,
    },
    Err {
        class: &'static str,
        msg: String,
    },
    FailFast(String),
    RawPanic(String),
}

impl CellOutcome {
    /// Outcome class used for cross-cell agreement checks.
    fn class(&self) -> String {
        match self {
            CellOutcome::Done { .. } => "completed".to_string(),
            CellOutcome::Err { class, .. } => format!("error:{class}"),
            CellOutcome::FailFast(_) => "fail-fast".to_string(),
            CellOutcome::RawPanic(_) => "raw-panic".to_string(),
        }
    }
}

/// The per-strategy heap tiers: a tiny growable heap with a forced-GC
/// schedule (collections strike early and often, at allocation counts
/// that are identical across cells), and the default heap (collections
/// only where pressure puts them). The growth ceiling is sized so no
/// generated program legitimately exhausts it — any OOM divergence is a
/// real retention bug, not noise.
const TINY_HEAP: usize = 1 << 10;
const HEAP_CEILING: usize = 1 << 16;
const FORCED_GC_PERIOD: u64 = 7;

fn run_cell(
    compiled: &FuzzCompiled,
    strategy: Strategy,
    plans: bool,
    cache: bool,
    tiny: bool,
    generational: bool,
    seed: u64,
) -> CellOutcome {
    let meta = compiled.metadata(strategy);
    // Snapshot roots always follow a tag-free metadata set; the tagged
    // strategy's own metadata omits every gc_word, so borrow the
    // no-liveness build (same rule as the torture oracle).
    let root_meta = if strategy == Strategy::Tagged {
        compiled.metadata(Strategy::CompiledNoLiveness)
    } else {
        meta.clone()
    };
    let mut cfg = VmConfig::new(strategy)
        .heap_words(if tiny { TINY_HEAP } else { HEAP_CEILING })
        .heap_max_words(HEAP_CEILING)
        .verify_heap(true)
        .rt_cache(cache)
        .trace_plans(plans);
    if tiny {
        cfg = cfg.force_gc_every(FORCED_GC_PERIOD);
    }
    if generational {
        // A deliberately tiny nursery: minors fire constantly, promotion
        // and survivor aging churn on every program in the universe.
        cfg = cfg.generational(TINY_HEAP / 4, 1);
    }
    // Snapshots ride only on the single-generation tiny tier: the
    // generational tier interleaves pressure-driven minors with the
    // forced majors, so its collection sequence is not comparable
    // across cells that allocate at identical counts but collect at
    // nursery-relative ones.
    let snapshots = tiny && !generational;
    let context = format!(
        "seed {seed} / {strategy} / plans={} cache={} heap={}{}",
        plans,
        cache,
        if tiny { "tiny" } else { "default" },
        if generational { "-gen" } else { "" }
    );
    let res = capture_panics_mut(&context, || {
        let mut vm = Vm::with_meta(&compiled.program, cfg, meta);
        if snapshots {
            vm.enable_snapshots(root_meta);
        }
        let out = vm.run();
        let snaps = vm.take_snapshots();
        (out, snaps)
    });
    match res {
        Ok((Ok(out), snaps)) => CellOutcome::Done {
            result: out.result,
            printed: out.printed,
            snaps: if snapshots { Some(snaps) } else { None },
        },
        Ok((Err(e), _)) => CellOutcome::Err {
            class: error_class(&e),
            msg: e.to_string(),
        },
        Err(p) if p.structured => CellOutcome::FailFast(p.message),
        Err(p) => CellOutcome::RawPanic(p.describe()),
    }
}

/// The tagged-oracle node-identity pass for one strategy: same program,
/// same heap, same forced-collection schedule, replayed under the tagged
/// collector; the canonical reachable graphs at every collection must be
/// byte-for-byte identical.
fn oracle_pass(compiled: &FuzzCompiled, strategy: Strategy, seed: u64) -> Result<(), String> {
    let heap_words = 1 << 14;
    let force_every = 16;
    let meta = compiled.metadata(strategy);
    let root_meta = if strategy == Strategy::Tagged {
        compiled.metadata(Strategy::CompiledNoLiveness)
    } else {
        meta.clone()
    };
    let context = format!("seed {seed} / oracle / {strategy}");
    let run = |s: Strategy, m, roots: tfgc_gc::GcMeta| {
        capture_panics_mut(&context, || {
            let cfg = VmConfig::new(s)
                .heap_words(heap_words)
                .force_gc_every(force_every);
            let mut vm = Vm::with_meta(&compiled.program, cfg, m);
            vm.enable_snapshots(roots);
            let out = vm.run();
            let snaps = vm.take_snapshots();
            (out, snaps)
        })
        .map_err(|p| p.describe())
    };
    let (out, snaps) = run(strategy, meta, root_meta.clone())?;
    let out = out.map_err(|e| format!("{strategy}: {e}"))?;
    let (tagged_out, tagged_snaps) = run(
        Strategy::Tagged,
        compiled.metadata(Strategy::Tagged),
        root_meta,
    )?;
    let tagged_out = tagged_out.map_err(|e| format!("tagged oracle: {e}"))?;

    if out.result != tagged_out.result {
        return Err(format!(
            "result differs: {} ({strategy}) vs {} (tagged)",
            out.result, tagged_out.result
        ));
    }
    if out.printed != tagged_out.printed {
        return Err(format!(
            "printed output differs ({} lines vs {})",
            out.printed.len(),
            tagged_out.printed.len()
        ));
    }
    if snaps.len() != tagged_snaps.len() {
        return Err(format!(
            "collection count differs: {} ({strategy}) vs {} (tagged)",
            snaps.len(),
            tagged_snaps.len()
        ));
    }
    for (i, (a, b)) in snaps.iter().zip(&tagged_snaps).enumerate() {
        if let Some(d) = diff(a, b) {
            return Err(format!(
                "collection {i}: reachable graphs differ ({strategy} vs tagged): {d}"
            ));
        }
    }
    Ok(())
}

/// Per-seed statistics folded into the campaign totals.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SeedStats {
    pub cases: u64,
    pub completed: u64,
    pub structured_errors: u64,
    pub faults_graceful: u64,
}

/// Runs the full check matrix on one program: 40 differential cells
/// (5 strategies × plans × cache × heap tier), 5 oracle passes, and
/// 5 seeded-fault runs. Pure function of `(prog, seed, planted)`.
pub(crate) fn check_program(
    prog: &GProgram,
    seed: u64,
    planted: Option<PlantedBug>,
) -> (SeedStats, Vec<RawFinding>) {
    let mut stats = SeedStats::default();
    let mut findings = Vec::new();
    let src = prog.render();

    stats.cases += 1; // the compile attempt
    let compiled = match compile_src(&src) {
        Ok(c) => c,
        Err((stage, msg)) => {
            findings.push(RawFinding {
                kind: DivergenceKind::CompileFailure,
                fingerprint: format!("compile-failure|{stage}|-"),
                detail: msg,
            });
            return (stats, findings);
        }
    };

    // --- Differential cells ---------------------------------------
    // Outcomes keyed (strategy-index, plans, cache) per heap tier, in a
    // fixed iteration order so comparisons and fingerprints are
    // deterministic.
    let mut tiny_ref: Option<CellOutcome> = None;
    for (tiny, generational) in [(true, false), (true, true), (false, false)] {
        let tier = match (tiny, generational) {
            (true, false) => "tiny",
            (true, true) => "tiny-gen",
            _ => "default",
        };
        let mut cells: Vec<(Strategy, bool, bool, CellOutcome)> = Vec::new();
        for s in Strategy::ALL {
            for plans in [true, false] {
                for cache in [true, false] {
                    let out = run_cell(&compiled, s, plans, cache, tiny, generational, seed);
                    stats.cases += 1;
                    match &out {
                        CellOutcome::Done { .. } => stats.completed += 1,
                        CellOutcome::Err { class, msg } => {
                            stats.structured_errors += 1;
                            if *class == "verification-failed" {
                                findings.push(RawFinding {
                                    kind: DivergenceKind::VerifierFailure,
                                    fingerprint: format!("verifier-failure|{class}|{s}"),
                                    detail: format!("{tier} plans={plans} cache={cache}: {msg}"),
                                });
                            }
                        }
                        CellOutcome::FailFast(msg) => {
                            // No fault plan is armed in clean cells, so a
                            // fail-fast panic means the runtime detected
                            // corruption it produced itself.
                            findings.push(RawFinding {
                                kind: DivergenceKind::VerifierFailure,
                                fingerprint: format!("verifier-failure|fail-fast|{s}"),
                                detail: format!("{tier} plans={plans} cache={cache}: {msg}"),
                            });
                        }
                        CellOutcome::RawPanic(msg) => {
                            findings.push(RawFinding {
                                kind: DivergenceKind::RawPanic,
                                fingerprint: format!("raw-panic|panic|{s}"),
                                detail: msg.clone(),
                            });
                        }
                    }
                    cells.push((s, plans, cache, out));
                }
            }
        }

        // Cross-cell agreement within the tier: every cell must match
        // the reference cell's outcome class, result, and printed output.
        let (ref_s, _, _, ref_out) = &cells[0];
        for (s, plans, cache, out) in &cells[1..] {
            if out.class() != ref_out.class() {
                findings.push(RawFinding {
                    kind: DivergenceKind::ResultMismatch,
                    fingerprint: format!(
                        "result-mismatch|class:{}-vs-{}|{ref_s}-vs-{s}",
                        ref_out.class(),
                        out.class()
                    ),
                    detail: format!(
                        "{tier}: {ref_s} plans=true cache=true ended {} but {s} plans={plans} cache={cache} ended {}",
                        ref_out.class(),
                        out.class()
                    ),
                });
                continue;
            }
            if let (
                CellOutcome::Done {
                    result: r0,
                    printed: p0,
                    ..
                },
                CellOutcome::Done {
                    result: r1,
                    printed: p1,
                    ..
                },
            ) = (ref_out, out)
            {
                if r0 != r1 {
                    findings.push(RawFinding {
                        kind: DivergenceKind::ResultMismatch,
                        fingerprint: format!("result-mismatch|result|{ref_s}-vs-{s}"),
                        detail: format!(
                            "{tier}: {ref_s} got {r0} but {s} plans={plans} cache={cache} got {r1}"
                        ),
                    });
                } else if p0 != p1 {
                    findings.push(RawFinding {
                        kind: DivergenceKind::PrintedMismatch,
                        fingerprint: format!("printed-mismatch|printed|{ref_s}-vs-{s}"),
                        detail: format!(
                            "{tier}: printed output differs between {ref_s} and {s} plans={plans} cache={cache} ({} vs {} lines)",
                            p0.len(),
                            p1.len()
                        ),
                    });
                }
            }
        }

        // Cross-tier agreement: the generational tier must agree with
        // the single-generation tiny tier on class, result, and printed
        // output — nursery evacuation, survivor aging, and promotion
        // are pure copying-plumbing and must never change semantics.
        match (tiny, generational) {
            (true, false) => tiny_ref = Some(ref_out.clone()),
            (true, true) => {
                if let Some(base) = &tiny_ref {
                    if base.class() != ref_out.class() {
                        findings.push(RawFinding {
                            kind: DivergenceKind::ResultMismatch,
                            fingerprint: format!(
                                "result-mismatch|generational-class:{}-vs-{}|{ref_s}",
                                base.class(),
                                ref_out.class()
                            ),
                            detail: format!(
                                "tiny ended {} but tiny-gen ended {} ({ref_s})",
                                base.class(),
                                ref_out.class()
                            ),
                        });
                    } else if let (
                        CellOutcome::Done {
                            result: r0,
                            printed: p0,
                            ..
                        },
                        CellOutcome::Done {
                            result: r1,
                            printed: p1,
                            ..
                        },
                    ) = (base, ref_out)
                    {
                        if r0 != r1 {
                            findings.push(RawFinding {
                                kind: DivergenceKind::ResultMismatch,
                                fingerprint: format!("result-mismatch|generational|{ref_s}"),
                                detail: format!("tiny got {r0} but tiny-gen got {r1} ({ref_s})"),
                            });
                        } else if p0 != p1 {
                            findings.push(RawFinding {
                                kind: DivergenceKind::PrintedMismatch,
                                fingerprint: format!("printed-mismatch|generational|{ref_s}"),
                                detail: format!(
                                    "printed output differs between tiny and tiny-gen ({} vs {} lines)",
                                    p0.len(),
                                    p1.len()
                                ),
                            });
                        }
                    }
                }
            }
            _ => {}
        }

        // Snapshot identity within each strategy (tiny tier only): the
        // metadata is fixed, so trace plans and the rt-cache must not
        // change what a collection observes as reachable.
        if tiny && !generational {
            for s in Strategy::ALL {
                let strat_cells: Vec<&(Strategy, bool, bool, CellOutcome)> =
                    cells.iter().filter(|(cs, ..)| *cs == s).collect();
                let base = match &strat_cells[0].3 {
                    CellOutcome::Done {
                        snaps: Some(sn), ..
                    } => sn,
                    _ => continue,
                };
                for (_, plans, cache, out) in &strat_cells[1..] {
                    let other = match out {
                        CellOutcome::Done {
                            snaps: Some(sn), ..
                        } => sn,
                        _ => continue,
                    };
                    if base.len() != other.len() {
                        findings.push(RawFinding {
                            kind: DivergenceKind::SnapshotMismatch,
                            fingerprint: format!("snapshot-mismatch|count|{s}"),
                            detail: format!(
                                "{s}: {} collections with plans/cache on but {} with plans={plans} cache={cache}",
                                base.len(),
                                other.len()
                            ),
                        });
                        continue;
                    }
                    for (i, (a, b)) in base.iter().zip(other.iter()).enumerate() {
                        if let Some(d) = diff(a, b) {
                            findings.push(RawFinding {
                                kind: DivergenceKind::SnapshotMismatch,
                                fingerprint: format!("snapshot-mismatch|graph|{s}"),
                                detail: format!(
                                    "{s} collection {i} (plans={plans} cache={cache}): {d}"
                                ),
                            });
                            break;
                        }
                    }
                }
            }
        }
    }

    // --- Oracle passes ---------------------------------------------
    for s in Strategy::ALL {
        stats.cases += 1;
        if let Err(e) = oracle_pass(&compiled, s, seed) {
            findings.push(RawFinding {
                kind: DivergenceKind::OracleFailure,
                fingerprint: format!("oracle-failure|oracle|{s}"),
                detail: e,
            });
        }
    }
    if let Some(PlantedBug::OracleLiesOnDatatype(d)) = planted {
        let touched = prog
            .datatypes
            .get(d)
            .and_then(Option::as_ref)
            .is_some_and(|dt| dt.variants.iter().any(|v| src.contains(&v.name)));
        if touched {
            findings.push(RawFinding {
                kind: DivergenceKind::OracleFailure,
                fingerprint: format!("oracle-failure|planted|g{d}"),
                detail: format!(
                    "planted oracle lie: divergence reported whenever datatype g{d} is referenced"
                ),
            });
        }
    }

    // --- Seeded fault pass -----------------------------------------
    let plan = FaultPlan::from_seed(seed);
    for s in Strategy::ALL {
        stats.cases += 1;
        let meta = compiled.metadata(s);
        let cfg = VmConfig::new(s)
            .heap_words(TINY_HEAP)
            .heap_max_words(1 << 14)
            .verify_heap(true)
            .fault_plan(plan);
        let context = format!("seed {seed} / fault {} / {s}", plan.describe());
        let res = capture_panics_mut(&context, || {
            let mut vm = Vm::with_meta(&compiled.program, cfg, meta);
            vm.run()
        });
        match res {
            Ok(_) => stats.faults_graceful += 1,
            Err(p) if p.structured => stats.faults_graceful += 1,
            Err(p) => findings.push(RawFinding {
                kind: DivergenceKind::NonGracefulFault,
                fingerprint: format!("non-graceful-fault|panic|{s}"),
                detail: format!("fault {}: {}", plan.describe(), p.describe()),
            }),
        }
    }

    (stats, findings)
}

/// The fingerprint set a program produces — the shrinker's predicate
/// substrate.
pub(crate) fn fingerprints_of(
    prog: &GProgram,
    seed: u64,
    planted: Option<PlantedBug>,
) -> Vec<String> {
    check_program(prog, seed, planted)
        .1
        .into_iter()
        .map(|f| f.fingerprint)
        .collect()
}

/// Runs the campaign. Deterministic: the report (and its JSON rendering)
/// is a pure function of the configuration.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    with_quiet_panics(|| {
        let mut report = CampaignReport {
            seed_start: cfg.seed_start,
            ..CampaignReport::default()
        };
        // fingerprint → index into report.findings
        let mut seen: BTreeMap<String, usize> = BTreeMap::new();
        for seed in cfg.seed_start..cfg.seed_start + cfg.seeds {
            report.seeds_run += 1;
            let prog = generate_program(seed, &cfg.gen);
            let (stats, raw) = check_program(&prog, seed, cfg.planted);
            report.cases_executed += stats.cases;
            report.completed += stats.completed;
            report.structured_errors += stats.structured_errors;
            report.faults_graceful += stats.faults_graceful;
            for rf in raw {
                if let Some(&i) = seen.get(&rf.fingerprint) {
                    report.findings[i].count += 1;
                    continue;
                }
                let orig_nodes = prog.size();
                let mut finding = Finding {
                    seed,
                    kind: rf.kind,
                    fingerprint: rf.fingerprint.clone(),
                    detail: rf.detail,
                    source: prog.render(),
                    orig_nodes,
                    shrunk_nodes: orig_nodes,
                    count: 1,
                    shrink_evals: 0,
                };
                if cfg.shrink {
                    let r = shrink(&prog, &rf.fingerprint, seed, cfg.planted, cfg.shrink_budget);
                    finding.shrunk_nodes = r.program.size();
                    finding.source = r.program.render();
                    finding.shrink_evals = r.evals;
                }
                seen.insert(rf.fingerprint, report.findings.len());
                report.findings.push(finding);
            }
        }
        report.findings.sort_by(|a, b| {
            (a.kind, &a.fingerprint, a.seed).cmp(&(b.kind, &b.fingerprint, b.seed))
        });
        report
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_campaign_has_no_findings() {
        let cfg = CampaignConfig {
            seeds: 6,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg);
        assert_eq!(report.seeds_run, 6);
        // 1 compile + 60 cells + 5 oracle + 5 fault per seed.
        assert_eq!(report.cases_executed, 6 * 71);
        assert!(
            report.ok(),
            "unexpected findings: {:#?}",
            report
                .findings
                .iter()
                .map(|f| (&f.fingerprint, &f.detail))
                .collect::<Vec<_>>()
        );
        assert!(report.completed > 0);
        assert_eq!(report.faults_graceful, 6 * 5);
    }

    #[test]
    fn campaign_reports_are_deterministic() {
        let cfg = CampaignConfig {
            seeds: 3,
            seed_start: 11,
            ..CampaignConfig::default()
        };
        let a = crate::report_json(&cfg, &run_campaign(&cfg));
        let b = crate::report_json(&cfg, &run_campaign(&cfg));
        assert_eq!(a, b, "same seeds must produce bit-identical reports");
    }

    #[test]
    fn planted_oracle_lie_is_detected() {
        let cfg = CampaignConfig {
            seeds: 1,
            seed_start: 2,
            planted: Some(PlantedBug::OracleLiesOnDatatype(0)),
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg);
        assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
        let f = &report.findings[0];
        assert_eq!(f.kind, DivergenceKind::OracleFailure);
        assert_eq!(f.fingerprint, "oracle-failure|planted|g0");
    }
}
