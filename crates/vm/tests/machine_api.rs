//! Tests of the VM's thread/step API and value rendering.

use tfgc_gc::Strategy;
use tfgc_ir::{lower, IrProgram};
use tfgc_syntax::parse_program;
use tfgc_types::elaborate;
use tfgc_vm::{StepEvent, Vm, VmConfig};

fn compile(src: &str) -> IrProgram {
    lower(&elaborate(&parse_program(src).unwrap()).unwrap()).unwrap()
}

#[test]
fn single_stepping_reaches_done() {
    let prog = compile("1 + 2");
    let mut vm = Vm::new(&prog, VmConfig::new(Strategy::Compiled));
    let mut steps = 0;
    loop {
        match vm.step().unwrap() {
            StepEvent::Done(w) => {
                assert_eq!(vm.decode_int(w), 3);
                break;
            }
            StepEvent::Continue => steps += 1,
            StepEvent::AllocBlocked(_) => unreachable!(),
        }
        assert!(steps < 100, "tiny program must finish quickly");
    }
    assert!(vm.is_done());
}

#[test]
fn spawned_threads_run_independently() {
    let prog = compile(
        "fun work n = if n = 0 then 0 else n + work (n - 1) ;
         0",
    );
    let work = tfgc_ir::FnId(0);
    let mut vm = Vm::new(&prog, VmConfig::new(Strategy::Compiled));
    // Finish main (thread 0) first.
    loop {
        if let StepEvent::Done(_) = vm.step().unwrap() {
            break;
        }
    }
    let a1 = vm.encode_int(3);
    let a2 = vm.encode_int(5);
    let t1 = vm.spawn_thread(work, &[a1]);
    let t2 = vm.spawn_thread(work, &[a2]);
    assert_eq!(vm.thread_count(), 3);
    // Interleave them manually.
    let mut done = [false, false];
    while !done[0] || !done[1] {
        for (k, t) in [t1, t2].into_iter().enumerate() {
            if done[k] {
                continue;
            }
            vm.set_current_thread(t);
            for _ in 0..5 {
                if let StepEvent::Done(_) = vm.step().unwrap() {
                    done[k] = true;
                    break;
                }
            }
        }
    }
    assert_eq!(vm.decode_int(vm.thread_result(t1).unwrap()), 6);
    assert_eq!(vm.decode_int(vm.thread_result(t2).unwrap()), 15);
}

#[test]
fn cooperative_alloc_block_reexecutes_cleanly() {
    let prog = compile(
        "fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun churn n = if n = 0 then 0 else (churn (n - 1); (build 10; 0)) ;
         churn 30",
    );
    let mut cfg = VmConfig::new(Strategy::Compiled).heap_words(256);
    cfg.cooperative = true;
    let mut vm = Vm::new(&prog, cfg);
    let mut blocks = 0;
    loop {
        match vm.step().unwrap() {
            StepEvent::Done(w) => {
                assert_eq!(vm.decode_int(w), 0);
                break;
            }
            StepEvent::AllocBlocked(site) => {
                blocks += 1;
                assert!(blocks < 10_000, "must make progress");
                vm.collect_parked(site).unwrap();
            }
            StepEvent::Continue => {}
        }
    }
    assert!(blocks > 0, "tiny heap must block at least once");
    assert_eq!(vm.gc_stats.collections, blocks);
}

#[test]
fn render_deep_and_cyclic_free_structures() {
    let prog = compile(
        "fun build n = if n = 0 then [] else n :: build (n - 1) ;
         build 5",
    );
    let mut vm = Vm::new(&prog, VmConfig::new(Strategy::Compiled));
    let out = vm.run().unwrap();
    assert_eq!(out.result, "[5, 4, 3, 2, 1]");
}

#[test]
fn render_truncates_very_deep_nesting() {
    // Nested tuples beyond the render depth print "..." instead of
    // overflowing.
    let mut src = String::from("1");
    for _ in 0..80 {
        src = format!("({src}, 2)");
    }
    let prog = compile(&src);
    let mut vm = Vm::new(&prog, VmConfig::new(Strategy::Compiled));
    let out = vm.run().unwrap();
    assert!(out.result.contains("..."));
}

#[test]
fn max_stack_words_bounds_recursion() {
    let prog = compile("fun down n = if n = 0 then 0 else down (n - 1) ; down 100000");
    let mut cfg = VmConfig::new(Strategy::Compiled);
    cfg.max_stack_words = 4096;
    let mut vm = Vm::new(&prog, cfg);
    let err = vm.run().unwrap_err();
    assert!(matches!(err, tfgc_vm::VmError::StackOverflow { .. }));
}

#[test]
fn stats_track_calls_and_closure_calls() {
    let prog = compile(
        "fun apply f x = f x ;
         fun inc n = n + 1 ;
         apply (fn z => inc z) 1 + apply (fn z => z) 2",
    );
    let mut vm = Vm::new(&prog, VmConfig::new(Strategy::Compiled));
    let out = vm.run().unwrap();
    assert!(out.mutator.calls >= 3, "apply x2 + inc");
    assert_eq!(out.mutator.closure_calls, 2);
}

#[test]
fn desc_arena_stats_surface_in_outcome() {
    let src = "fun konst x = fn u => (let val probe = [x] in u end) ;
               (konst [1]) 5";
    let prog = compile(src);
    let mut vm = Vm::new(&prog, VmConfig::new(Strategy::Compiled));
    let out = vm.run().unwrap();
    assert!(out.descs_interned > 0, "hidden descriptors were interned");
    assert!(out.mutator.desc_evals > 0);
}
