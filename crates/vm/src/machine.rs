//! The TFML virtual machine.
//!
//! Executes the bytecode of [`tfgc_ir`] over the heap of
//! [`tfgc_runtime`], triggering the configured collector at allocation
//! sites — and only there: "garbage collection can only be initiated by a
//! call to a procedure that allocates memory" (§2.1). Activation records
//! live in one word array per thread, laid out per [`tfgc_gc::stack`]
//! (Figure 1); the return word pushed at each call is the gc_word key the
//! collector uses.
//!
//! The machine supports multiple threads of control over one shared heap
//! (§4's tasks); the cooperative scheduler lives in `tfgc-tasking`. A
//! single-task program uses thread 0 only.

use crate::error::{VmError, VmResult};
use crate::render::render_value;
use crate::stats::MutatorStats;
use tfgc_gc::{
    collect, pack_ret, Analyses, DescArena, GcMeta, GcStats, MachineRoots, StackRoots, Strategy,
    FRAME_HDR, MAIN_RET, NO_FP,
};
use tfgc_ir::{ArithOp, CallSiteId, CmpOp, CtorRep, FnId, Instr, IrProgram, Slot};
use tfgc_obs::{GcEvent, Obs};
use tfgc_runtime::{ArithKind, Encoding, Heap, HeapStats, Word, HEAP_BASE};
use tfgc_types::ParamId;
use tfgc_verify::{
    snapshot_tagfree, snapshot_tagged, verify_tagfree, verify_tagged, CanonHeap, FaultPlan,
    RootsView, StackView,
};

/// VM configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Collection strategy (decides heap encoding and metadata).
    pub strategy: Strategy,
    /// Words per semispace.
    pub heap_words: usize,
    /// Force a collection every `n` allocations (used by the liveness
    /// precision experiment to compare retained bytes at identical
    /// program points).
    pub force_gc_every: Option<u64>,
    /// Instruction budget (`None` = unlimited).
    pub max_steps: Option<u64>,
    /// Maximum stack size in words (per thread).
    pub max_stack_words: usize,
    /// Cooperative mode (§4 tasking): an exhausted heap does not collect
    /// inline; the step reports [`StepEvent::AllocBlocked`] and the
    /// scheduler decides when every task is suspended.
    pub cooperative: bool,
    /// GC-time metadata cache (memoized template evaluation). On by
    /// default; disable for the unmemoized differential baseline.
    pub rt_cache: bool,
    /// Trace-plan execution: lower routines and descriptors into flat
    /// op arrays and trace via the plan interpreter. On by default;
    /// disable for the plans≡closures differential baseline.
    pub trace_plans: bool,
    /// Walk and check the whole reachable graph after every collection
    /// (`tfml run --verify-heap`).
    pub verify_heap: bool,
    /// Deterministic fault schedule (`None` = no faults).
    pub fault_plan: Option<FaultPlan>,
    /// Bounded growth policy: grow each semispace up to this many words
    /// when a collection cannot satisfy an allocation (`None` = fixed
    /// heap, the historical behavior).
    pub heap_max_words: Option<usize>,
    /// Growth factor in percent (200 = double). Values ≤ 100 are treated
    /// as the minimum useful step.
    pub heap_growth_pct: u32,
    /// Generational tier: bump-pointer nursery size in words (`None` =
    /// classic single-generation semispace heap). Nursery exhaustion
    /// triggers a *minor* collection — roots only, tenured untouched —
    /// which is sound without write barriers because the heap is
    /// immutable (no tenured→nursery edge can exist).
    pub nursery_words: Option<usize>,
    /// Minor collections an object survives in the nursery before being
    /// promoted to tenured space (0 = promote on first survival; the
    /// nursery then has no survivor half).
    pub promote_after: u32,
}

impl VmConfig {
    /// A configuration with sensible defaults for `strategy`.
    pub fn new(strategy: Strategy) -> VmConfig {
        VmConfig {
            strategy,
            heap_words: 1 << 16,
            force_gc_every: None,
            max_steps: Some(200_000_000),
            max_stack_words: 1 << 22,
            cooperative: false,
            rt_cache: true,
            trace_plans: true,
            verify_heap: false,
            fault_plan: None,
            heap_max_words: None,
            heap_growth_pct: 200,
            nursery_words: None,
            promote_after: 0,
        }
    }

    /// Enables the generational tier: a `nursery_words` bump-pointer
    /// nursery with minor collections, promoting survivors after
    /// `promote_after` survivals (0 = first survival).
    pub fn generational(mut self, nursery_words: usize, promote_after: u32) -> VmConfig {
        self.nursery_words = Some(nursery_words);
        self.promote_after = promote_after;
        self
    }

    /// Sets the semispace size.
    pub fn heap_words(mut self, words: usize) -> VmConfig {
        self.heap_words = words;
        self
    }

    /// Forces a collection every `n` allocations.
    pub fn force_gc_every(mut self, n: u64) -> VmConfig {
        self.force_gc_every = Some(n);
        self
    }

    /// Enables or disables the GC-time metadata cache.
    pub fn rt_cache(mut self, on: bool) -> VmConfig {
        self.rt_cache = on;
        self
    }

    /// Enables or disables flattened trace-plan execution.
    pub fn trace_plans(mut self, on: bool) -> VmConfig {
        self.trace_plans = on;
        self
    }

    /// Enables the post-collection heap verifier.
    pub fn verify_heap(mut self, on: bool) -> VmConfig {
        self.verify_heap = on;
        self
    }

    /// Installs a deterministic fault schedule.
    pub fn fault_plan(mut self, plan: FaultPlan) -> VmConfig {
        self.fault_plan = Some(plan);
        self
    }

    /// Allows the heap to grow up to `words` per semispace.
    pub fn heap_max_words(mut self, words: usize) -> VmConfig {
        self.heap_max_words = Some(words);
        self
    }
}

/// Everything observable about a finished run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Values printed by `print`, in order.
    pub printed: Vec<i64>,
    /// The main expression's value, rendered.
    pub result: String,
    pub heap: HeapStats,
    pub gc: GcStats,
    pub mutator: MutatorStats,
    /// Distinct runtime type descriptors interned (RTTI completion cost).
    pub descs_interned: usize,
    /// Metadata footprint of the strategy, in bytes.
    pub metadata_bytes: usize,
}

/// Compiles metadata and runs a program to completion (single thread).
///
/// # Errors
///
/// Returns a [`VmError`] on OOM, match failure, division by zero, or
/// exceeded limits.
pub fn run_program(prog: &IrProgram, config: VmConfig) -> VmResult<RunOutcome> {
    let mut vm = Vm::new(prog, config);
    vm.run()
}

/// One step's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Keep going.
    Continue,
    /// The current thread's bottom frame returned this word.
    Done(Word),
    /// Cooperative mode only: the heap is exhausted; the current thread
    /// is suspended at the allocation site and will re-execute the
    /// instruction after a collection.
    AllocBlocked(CallSiteId),
}

/// One thread of control (§4's task).
#[derive(Debug, Clone)]
struct ThreadState {
    stack: Vec<Word>,
    fp: usize,
    fn_id: FnId,
    pc: u32,
    result: Option<Word>,
    /// Where the scheduler parked this thread (valid while suspended).
    parked_site: Option<CallSiteId>,
    /// Runaway fault ([`FaultPlan::stall_at`]): the thread spins — every
    /// step burns an instruction without advancing — until a budget ends
    /// it.
    stalled: bool,
}

/// The virtual machine.
#[derive(Debug)]
pub struct Vm<'p> {
    prog: &'p IrProgram,
    pub meta: GcMeta,
    pub heap: Heap,
    enc: Encoding,
    threads: Vec<ThreadState>,
    cur: usize,
    globals: Vec<Word>,
    pub descs: DescArena,
    pub printed: Vec<i64>,
    pub gc_stats: GcStats,
    pub mutator: MutatorStats,
    /// Event sink: [`Obs::null`] by default (one branch per emission
    /// site); swap in [`Obs::ring`] to record.
    pub obs: Obs,
    cfg: VmConfig,
    allocs_since_force: u64,
    /// Monotone allocation sequence number (fault-plan trigger key).
    alloc_seq: u64,
    /// Largest request a parked task is blocked on that a minor
    /// collection cannot satisfy (exceeds eden); forces the scheduler's
    /// next collection to be a major. Cleared by every major.
    pending_oversize: usize,
    /// Differential-oracle state, when snapshots are enabled.
    oracle: Option<Box<OracleState>>,
}

/// Pre-collection snapshots for the tagged-oracle differential check.
#[derive(Debug)]
struct OracleState {
    /// The tag-free strategy's metadata whose routine positions define
    /// the root set. The tagged run walks the *same* slots by tags.
    root_meta: GcMeta,
    snapshots: Vec<CanonHeap>,
}

impl<'p> Vm<'p> {
    /// Creates a VM for `prog`, compiling the strategy's metadata. Thread
    /// 0 is set up to run `main`.
    pub fn new(prog: &'p IrProgram, cfg: VmConfig) -> Vm<'p> {
        let analyses = Analyses::compute(prog);
        // Cooperative (multi-task) machines must keep every gc_word:
        // another task can trigger a collection anywhere.
        let meta = if cfg.cooperative {
            GcMeta::build_multi_task(prog, &analyses, cfg.strategy)
        } else {
            GcMeta::build(prog, &analyses, cfg.strategy)
        };
        Vm::with_meta(prog, cfg, meta)
    }

    /// Creates a VM with precompiled metadata (benchmarks reuse metadata
    /// across runs).
    pub fn with_meta(prog: &'p IrProgram, cfg: VmConfig, mut meta: GcMeta) -> Vm<'p> {
        meta.rt_cache.enabled = cfg.rt_cache;
        meta.rt_cache.plans.enabled = cfg.trace_plans;
        // Truncated-stack-map fault: drop the function's frame
        // type-parameter sources so the first collection through one of
        // its polymorphic frames hits the fail-fast "type parameter N out
        // of range" panic instead of silently mistracing.
        if let Some(f) = cfg
            .fault_plan
            .as_ref()
            .and_then(|p| p.truncate_frame_params_of)
        {
            if let Some(fm) = meta.fns.get_mut(f as usize) {
                fm.frame_param_src.clear();
            }
        }
        let enc = Encoding::new(cfg.strategy.heap_mode());
        let heap = match cfg.nursery_words {
            Some(n) => Heap::new_generational(cfg.heap_words, n, cfg.promote_after),
            None => Heap::new(cfg.heap_words),
        };
        let globals = vec![enc.int(0); prog.globals.len()];
        let mut vm = Vm {
            prog,
            meta,
            heap,
            enc,
            threads: Vec::new(),
            cur: 0,
            globals,
            descs: DescArena::new(),
            printed: Vec::new(),
            gc_stats: GcStats::default(),
            mutator: MutatorStats::default(),
            obs: Obs::null(),
            cfg,
            allocs_since_force: 0,
            alloc_seq: 0,
            pending_oversize: 0,
            oracle: None,
        };
        vm.spawn_thread(prog.main, &[]);
        vm
    }

    /// Enables pre-collection canonical snapshots for the differential
    /// oracle. `root_meta` must be the *tag-free* strategy's metadata
    /// whose run this one is compared against (for a tag-free run, pass a
    /// clone of its own metadata).
    pub fn enable_snapshots(&mut self, root_meta: GcMeta) {
        self.oracle = Some(Box::new(OracleState {
            root_meta,
            snapshots: Vec::new(),
        }));
    }

    /// Takes the snapshots captured so far (empty if snapshots were never
    /// enabled).
    pub fn take_snapshots(&mut self) -> Vec<CanonHeap> {
        self.oracle
            .as_mut()
            .map(|o| std::mem::take(&mut o.snapshots))
            .unwrap_or_default()
    }

    /// Builds a fresh bottom frame running `f` with `args` already in
    /// its first slots (shared by spawn and respawn; accounts the frame
    /// init stores identically in both).
    fn make_thread(&mut self, f: FnId, args: &[Word]) -> ThreadState {
        let fun = self.prog.fun(f);
        let mut stack = Vec::with_capacity(FRAME_HDR + fun.slots.len());
        stack.push(NO_FP);
        stack.push(MAIN_RET);
        let init = self.frame_fill();
        for i in 0..fun.slots.len() {
            stack.push(if i < args.len() { args[i] } else { init });
        }
        if self.cfg.strategy.requires_frame_init() {
            self.mutator.frame_init_stores += (fun.slots.len() - args.len()) as u64;
        }
        ThreadState {
            stack,
            fp: 0,
            fn_id: f,
            pc: 0,
            result: None,
            parked_site: None,
            stalled: false,
        }
    }

    /// Spawns a new thread whose bottom frame runs `f` with `args` already
    /// in its first slots. Returns the thread index.
    pub fn spawn_thread(&mut self, f: FnId, args: &[Word]) -> usize {
        let t = self.make_thread(f, args);
        self.threads.push(t);
        self.threads.len() - 1
    }

    /// Reuses thread slot `i` for a fresh run of `f` (the serve
    /// scheduler's request-lifecycle hook): the previous request's stack
    /// and result are replaced in place, so the collector's root scan
    /// stays proportional to the pool size rather than the total request
    /// count, and the thread vector never grows during a service run.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the slot still holds a live
    /// (unfinished, unkilled) computation.
    pub fn respawn_thread(&mut self, i: usize, f: FnId, args: &[Word]) {
        assert!(i < self.threads.len(), "no thread {i}");
        let old = &self.threads[i];
        assert!(
            old.result.is_some() || old.stack.is_empty(),
            "thread {i} is still running; respawn would drop live frames"
        );
        self.threads[i] = self.make_thread(f, args);
    }

    /// Number of threads (including finished ones).
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Switches execution to thread `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_current_thread(&mut self, i: usize) {
        assert!(i < self.threads.len(), "no thread {i}");
        self.cur = i;
    }

    /// The currently executing thread.
    pub fn current_thread(&self) -> usize {
        self.cur
    }

    /// The result of thread `i`, if it finished.
    pub fn thread_result(&self, i: usize) -> Option<Word> {
        self.threads[i].result
    }

    /// Records where the scheduler parked thread `i` (§4: tasks suspend
    /// only at procedure calls / allocation sites).
    pub fn park_thread(&mut self, i: usize, site: CallSiteId) {
        self.threads[i].parked_site = Some(site);
    }

    /// Clears a thread's parked state (on resume).
    pub fn unpark_thread(&mut self, i: usize) {
        self.threads[i].parked_site = None;
    }

    /// Quarantines a failed thread: clears its stack so the collector
    /// stops tracing it (its heap data dies at the next collection) and
    /// drops its parked state. The scheduler uses this to let sibling
    /// tasks run on after one task errors.
    pub fn kill_thread(&mut self, i: usize) {
        let t = &mut self.threads[i];
        t.stack.clear();
        t.parked_site = None;
        t.stalled = false;
    }

    /// True while thread `i` is spinning under the `stall_at` runaway
    /// fault.
    pub fn thread_stalled(&self, i: usize) -> bool {
        self.threads[i].stalled
    }

    /// The configured strategy's name (for error reporting).
    pub fn strategy_name(&self) -> &'static str {
        self.cfg.strategy.name()
    }

    fn frame_fill(&self) -> Word {
        if self.cfg.strategy.requires_frame_init() {
            // Safe value under either encoding (tagged: int 0 is odd).
            self.enc.int(0)
        } else {
            // Never traced (live ⊆ assigned is validated at compile
            // time); zero keeps runs deterministic.
            0
        }
    }

    fn th(&self) -> &ThreadState {
        &self.threads[self.cur]
    }

    fn th_mut(&mut self) -> &mut ThreadState {
        &mut self.threads[self.cur]
    }

    fn get(&self, s: Slot) -> Word {
        let t = self.th();
        t.stack[t.fp + FRAME_HDR + s.0 as usize]
    }

    fn set(&mut self, s: Slot, w: Word) {
        let t = self.th_mut();
        let i = t.fp + FRAME_HDR + s.0 as usize;
        t.stack[i] = w;
    }

    fn fn_name(&self) -> String {
        self.prog.fun(self.th().fn_id).name.clone()
    }

    /// Runs thread 0 to completion.
    pub fn run(&mut self) -> VmResult<RunOutcome> {
        loop {
            match self.step()? {
                StepEvent::Done(w) => {
                    let result =
                        render_value(self.prog, &self.heap, self.enc, w, &self.prog.main_ty);
                    return Ok(RunOutcome {
                        printed: std::mem::take(&mut self.printed),
                        result,
                        heap: self.heap.stats,
                        gc: self.gc_stats,
                        mutator: self.mutator,
                        descs_interned: self.descs.len(),
                        metadata_bytes: self.meta.metadata_bytes(),
                    });
                }
                StepEvent::AllocBlocked(_) => {
                    unreachable!("non-cooperative mode collects inline")
                }
                StepEvent::Continue => {}
            }
        }
    }

    /// Executes one instruction of the current thread.
    pub fn step(&mut self) -> VmResult<StepEvent> {
        if let Some(limit) = self.cfg.max_steps {
            if self.mutator.instructions >= limit {
                return Err(VmError::StepLimit { limit });
            }
        }
        self.mutator.instructions += 1;
        // A stalled (runaway-fault) thread burns its instruction without
        // making progress; only a deadline/fuel budget or the step limit
        // above can end it.
        if self.th().stalled {
            return Ok(StepEvent::Continue);
        }
        let prog = self.prog;
        let (fn_id, pc) = {
            let t = self.th();
            (t.fn_id, t.pc)
        };
        let ins = &prog.fun(fn_id).code[pc as usize];
        match ins {
            Instr::LoadInt(d, n) => {
                let w = self.enc.int(*n);
                self.set(*d, w);
            }
            Instr::LoadBool(d, b) => {
                let w = self.enc.bool(*b);
                self.set(*d, w);
            }
            Instr::LoadUnit(d) => {
                let w = self.enc.unit();
                self.set(*d, w);
            }
            Instr::LoadGlobal(d, g) => {
                let w = self.globals[g.0 as usize];
                self.set(*d, w);
            }
            Instr::StoreGlobal(g, s) => {
                self.globals[g.0 as usize] = self.get(*s);
            }
            Instr::Move(d, s) => {
                let w = self.get(*s);
                self.set(*d, w);
            }
            Instr::Arith(d, op, a, b) => {
                let x = self.enc.int_of(self.get(*a));
                let y = self.enc.int_of(self.get(*b));
                let (kind, val) = match op {
                    ArithOp::Add => (ArithKind::Add, Some(x.wrapping_add(y))),
                    ArithOp::Sub => (ArithKind::Sub, Some(x.wrapping_sub(y))),
                    ArithOp::Mul => (ArithKind::Mul, Some(x.wrapping_mul(y))),
                    ArithOp::Div => (ArithKind::Div, x.checked_div(y)),
                    ArithOp::Mod => (ArithKind::Mod, x.checked_rem(y)),
                };
                let val = val.ok_or_else(|| VmError::DivideByZero {
                    function: self.fn_name(),
                })?;
                self.mutator.tag_ops += self.enc.arith_tag_ops(kind);
                let w = self.enc.int(val);
                self.set(*d, w);
            }
            Instr::Cmp(d, op, a, b) => {
                let x = self.enc.int_of(self.get(*a));
                let y = self.enc.int_of(self.get(*b));
                let r = match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                };
                self.mutator.tag_ops += self.enc.arith_tag_ops(ArithKind::Cmp);
                let w = self.enc.bool(r);
                self.set(*d, w);
            }
            Instr::Neg(d, a) => {
                let x = self.enc.int_of(self.get(*a));
                self.mutator.tag_ops += self.enc.arith_tag_ops(ArithKind::Neg);
                let w = self.enc.int(x.wrapping_neg());
                self.set(*d, w);
            }
            Instr::Not(d, a) => {
                let x = self.enc.bool_of(self.get(*a));
                let w = self.enc.bool(!x);
                self.set(*d, w);
            }
            Instr::Jump(t) => {
                self.th_mut().pc = *t;
                return Ok(StepEvent::Continue);
            }
            Instr::BranchFalse(s, t) => {
                if !self.enc.bool_of(self.get(*s)) {
                    self.th_mut().pc = *t;
                    return Ok(StepEvent::Continue);
                }
            }
            Instr::BranchIntNe(s, n, t) => {
                if self.enc.int_of(self.get(*s)) != *n {
                    self.th_mut().pc = *t;
                    return Ok(StepEvent::Continue);
                }
            }
            Instr::BranchTagNe {
                obj,
                data,
                ctor,
                target,
            } => {
                let w = self.get(*obj);
                let rep = prog.ctor_rep(*data, *ctor);
                if !self.value_matches_ctor(w, rep) {
                    self.th_mut().pc = *target;
                    return Ok(StepEvent::Continue);
                }
            }
            Instr::GetField(d, o, i) => {
                let w = self.get(*o);
                let v = self.heap_field(w, *i);
                self.set(*d, v);
            }
            Instr::MakeTuple { dst, elems, site } => {
                let mut words: Vec<Word> = elems.iter().map(|s| self.get(*s)).collect();
                match self.alloc_object(*site, None, &mut words, false)? {
                    Some(ptr) => self.set(*dst, ptr),
                    None => return Ok(StepEvent::AllocBlocked(*site)),
                }
            }
            Instr::MakeData {
                dst,
                data,
                ctor,
                fields,
                site,
            } => {
                let rep = prog.ctor_rep(*data, *ctor);
                let tag_word = match rep {
                    CtorRep::Ptr { tag: Some(t), .. } => Some(self.encode_tag(t)),
                    CtorRep::Ptr { tag: None, .. } => None,
                    CtorRep::Imm(_) => {
                        unreachable!("immediate constructors lower to LoadInt")
                    }
                };
                let mut words: Vec<Word> = fields.iter().map(|s| self.get(*s)).collect();
                match self.alloc_object(*site, tag_word, &mut words, tag_word.is_some())? {
                    Some(ptr) => self.set(*dst, ptr),
                    None => return Ok(StepEvent::AllocBlocked(*site)),
                }
            }
            Instr::MakeClosure {
                dst,
                f,
                captures,
                site,
            } => {
                let fn_word = self.encode_fn_id(*f);
                let mut words: Vec<Word> = captures.iter().map(|s| self.get(*s)).collect();
                match self.alloc_object(*site, Some(fn_word), &mut words, false)? {
                    Some(ptr) => self.set(*dst, ptr),
                    None => return Ok(StepEvent::AllocBlocked(*site)),
                }
            }
            Instr::EvalDesc { dst, template } => {
                self.mutator.desc_evals += 1;
                let ty = prog.desc_template(*template).clone();
                let f = prog.fun(fn_id);
                // Resolve parameter descriptors from this frame's
                // descriptor slots.
                let lookup_pairs: Vec<(ParamId, Word)> = f
                    .desc_param_slots
                    .iter()
                    .map(|(q, s)| (*q, self.get(*s)))
                    .collect();
                let enc = self.enc;
                let id = self.descs.eval_type(&ty, &|p| {
                    lookup_pairs
                        .iter()
                        .find(|(q, _)| *q == p)
                        .map(|(_, w)| tfgc_gc::DescId(decode_desc_word(enc, *w)))
                });
                let w = self.encode_desc_word(id.0);
                self.set(*dst, w);
            }
            Instr::CallDirect { dst, f, args, site } => {
                self.mutator.calls += 1;
                let words: Vec<Word> = args.iter().map(|s| self.get(*s)).collect();
                self.push_frame(*f, *site, *dst, &words)?;
                return Ok(StepEvent::Continue);
            }
            Instr::CallClosure {
                dst,
                clos,
                arg,
                site,
            } => {
                self.mutator.closure_calls += 1;
                let cw = self.get(*clos);
                let aw = self.get(*arg);
                let f = FnId(self.decode_fn_id(self.heap_field(cw, 0)));
                self.push_frame(f, *site, *dst, &[cw, aw])?;
                return Ok(StepEvent::Continue);
            }
            Instr::Return(s) => {
                let w = self.get(*s);
                return self.do_return(w);
            }
            Instr::Print(s) => {
                let v = self.enc.int_of(self.get(*s));
                self.printed.push(v);
            }
            Instr::MatchFail => {
                return Err(VmError::MatchFailure {
                    function: self.fn_name(),
                })
            }
        }
        self.th_mut().pc += 1;
        Ok(StepEvent::Continue)
    }

    /// Pushes a callee frame: dynamic link, return word (the gc_word key),
    /// slots. The first `args.len()` slots receive the arguments.
    fn push_frame(
        &mut self,
        callee: FnId,
        site: CallSiteId,
        dst: Slot,
        args: &[Word],
    ) -> VmResult<()> {
        let f = self.prog.fun(callee);
        let init = self.frame_fill();
        let max = self.cfg.max_stack_words;
        let init_frames = self.cfg.strategy.requires_frame_init();
        let n_slots = f.slots.len();
        let t = self.th_mut();
        let new_fp = t.stack.len();
        if new_fp + FRAME_HDR + n_slots > max {
            return Err(VmError::StackOverflow {
                words: t.stack.len(),
            });
        }
        let old_fp = t.fp as Word;
        t.stack.push(old_fp);
        t.stack.push(pack_ret(site, dst));
        for i in 0..n_slots {
            t.stack.push(if i < args.len() { args[i] } else { init });
        }
        t.fp = new_fp;
        t.fn_id = callee;
        t.pc = 0;
        let depth = t.stack.len() as u64;
        if init_frames {
            self.mutator.frame_init_stores += (n_slots - args.len()) as u64;
        }
        self.mutator.max_stack_words = self.mutator.max_stack_words.max(depth);
        Ok(())
    }

    fn do_return(&mut self, w: Word) -> VmResult<StepEvent> {
        let prog = self.prog;
        let t = self.th_mut();
        let saved = t.stack[t.fp];
        let ret = t.stack[t.fp + 1];
        if saved == NO_FP {
            t.result = Some(w);
            t.stack.clear();
            return Ok(StepEvent::Done(w));
        }
        let (site, dst) = tfgc_gc::unpack_ret(ret);
        t.stack.truncate(t.fp);
        t.fp = saved as usize;
        let cs = prog.site(site);
        t.fn_id = cs.fn_id;
        // Resume after the call — the paper's `jmpl %o7+12` skipping the
        // gc_word (ours lives in a side table keyed by the site).
        t.pc = cs.pc + 1;
        self.set(dst, w);
        Ok(StepEvent::Continue)
    }

    /// Allocates a heap object with optional head word (discriminant or
    /// closure code pointer) and the given payload. In cooperative mode an
    /// exhausted heap yields `Ok(None)` (the scheduler collects); otherwise
    /// it collects inline, growing under the bounded policy if configured.
    /// `operands` may be relocated by the collector.
    fn alloc_object(
        &mut self,
        site: CallSiteId,
        head: Option<Word>,
        operands: &mut [Word],
        head_is_discriminant: bool,
    ) -> VmResult<Option<Word>> {
        let payload = operands.len() + usize::from(head.is_some());
        let total = payload + self.enc.mode.header_words();
        self.alloc_seq += 1;
        let seq = self.alloc_seq;

        // Runaway fault: the task thread that performs this allocation
        // starts spinning right after it completes. Task threads only —
        // stalling the main/globals phase (thread 0) or the batch
        // pipeline would hang setup instead of modeling a runaway
        // request handler.
        if self.cfg.cooperative
            && self.cur != 0
            && self.cfg.fault_plan.is_some_and(|p| p.stall_at == Some(seq))
        {
            self.threads[self.cur].stalled = true;
            self.obs.emit(|t_ns| GcEvent::FaultInjected {
                t_ns,
                kind: "stall",
                seq,
            });
        }

        if !self.cfg.cooperative {
            if let Some(n) = self.cfg.force_gc_every {
                self.allocs_since_force += 1;
                if self.allocs_since_force >= n {
                    self.allocs_since_force = 0;
                    // Forced collections are always full: the liveness
                    // experiments compare retained bytes at identical
                    // program points, which a nursery-only cycle would
                    // understate.
                    self.collect_now(site, operands, false)?;
                }
            }
        }
        // Transient-failure fault: this allocation reports an exhausted
        // heap once even though space remains, forcing the
        // collect-and-retry path.
        let forced_fail = self
            .cfg
            .fault_plan
            .is_some_and(|p| p.alloc_fail_at == Some(seq));
        if forced_fail {
            self.obs.emit(|t_ns| GcEvent::FaultInjected {
                t_ns,
                kind: "alloc-fail",
                seq,
            });
        }
        let first = if forced_fail {
            None
        } else {
            self.heap.alloc(total)
        };
        let addr = match first {
            Some(a) => a,
            None if self.cfg.cooperative => {
                if self.heap.generational() && total > self.heap.eden_capacity() {
                    // A minor cannot satisfy this request (it exceeds
                    // the eden); the scheduler's next collection must
                    // be a full one.
                    self.pending_oversize = self.pending_oversize.max(total);
                }
                return Ok(None);
            }
            None => {
                let minor = self.next_collection_is_minor(total);
                self.collect_now(site, operands, minor)?;
                match self.alloc_with_growth(site, operands, total, minor)? {
                    Some(a) => a,
                    None => {
                        return Err(VmError::OutOfMemory {
                            requested: total,
                            live: self.heap.used(),
                            site: site.0,
                            strategy: self.cfg.strategy.name(),
                        })
                    }
                }
            }
        };
        let mut off = 0u16;
        if self.enc.mode.header_words() == 1 {
            self.heap.write(addr, 0, payload as Word);
            off = 1;
        }
        if let Some(h) = head {
            self.heap.write(addr, off, h);
            off += 1;
        }
        for (i, w) in operands.iter().enumerate() {
            self.heap.write(addr, off + i as u16, *w);
        }
        // Discriminant-corruption fault: overwrite the freshly written
        // variant tag with a value matching no constructor. The next
        // trace through this object must fail fast, never mistrace.
        if head_is_discriminant
            && self
                .cfg
                .fault_plan
                .is_some_and(|p| p.corrupt_discriminant_at == Some(seq))
        {
            let tag_off = self.enc.mode.header_words() as u16;
            let bogus = self.encode_tag(u32::MAX);
            self.heap.write(addr, tag_off, bogus);
            self.obs.emit(|t_ns| GcEvent::FaultInjected {
                t_ns,
                kind: "corrupt-discriminant",
                seq,
            });
        }
        self.obs.emit(|t_ns| GcEvent::Alloc {
            t_ns,
            site: site.0,
            words: total as u32,
            addr: addr.0,
        });
        Ok(Some(self.enc.ptr(addr)))
    }

    /// True when the next collection can be a nursery-only (minor)
    /// cycle: the heap is generational, the blocked request fits the
    /// eden (a minor empties it), and tenured from-space has headroom
    /// for the worst case where every nursery word is promoted.
    fn next_collection_is_minor(&self, requested: usize) -> bool {
        self.heap.generational()
            && requested <= self.heap.eden_capacity()
            && self.heap.available() >= self.heap.nursery_used()
    }

    /// Retries a post-collection allocation under the bounded growth
    /// policy: grow the to-space, collect again (the flip relocates into
    /// the larger space — growth itself never moves an object), bring the
    /// new to-space up to the same capacity, retry. `after_minor` says
    /// the preceding collection was a nursery-only cycle: if the retry
    /// still fails, escalate to a full collection before growing.
    fn alloc_with_growth(
        &mut self,
        site: CallSiteId,
        operands: &mut [Word],
        total: usize,
        after_minor: bool,
    ) -> VmResult<Option<tfgc_runtime::Addr>> {
        if let Some(a) = self.heap.alloc(total) {
            return Ok(Some(a));
        }
        if after_minor {
            self.collect_now(site, operands, false)?;
            if let Some(a) = self.heap.alloc(total) {
                return Ok(Some(a));
            }
        }
        while self.try_grow(total) {
            self.collect_now(site, operands, false)?;
            let cap = self.heap.capacity();
            self.heap.reserve_to_space(cap);
            if let Some(a) = self.heap.alloc(total) {
                return Ok(Some(a));
            }
        }
        Ok(None)
    }

    /// One step of the bounded growth policy. Refused when growth is not
    /// configured, the hard cap is reached, or the exhaustion fault is
    /// active.
    fn try_grow(&mut self, needed: usize) -> bool {
        let Some(max) = self.cfg.heap_max_words else {
            return false;
        };
        let seq = self.alloc_seq;
        if self
            .cfg
            .fault_plan
            .is_some_and(|p| p.exhaust_at.is_some_and(|n| seq >= n))
        {
            self.obs.emit(|t_ns| GcEvent::FaultInjected {
                t_ns,
                kind: "exhaust",
                seq,
            });
            return false;
        }
        let cur = self.heap.capacity();
        if cur >= max {
            return false;
        }
        let pct = u128::from(self.cfg.heap_growth_pct.max(101));
        let mut target = ((cur as u128 * pct) / 100) as usize;
        target = target.clamp(cur + 1, max);
        let want = self.heap.used() + needed;
        if target < want {
            target = want.min(max);
        }
        if !self.heap.reserve_to_space(target) {
            return false;
        }
        self.heap.stats.grows += 1;
        self.obs.emit(|t_ns| GcEvent::HeapGrown {
            t_ns,
            from_words: cur as u64,
            to_words: target as u64,
        });
        true
    }

    /// Invokes the collector with every thread's stack as roots; captures
    /// an oracle snapshot first and verifies the heap afterwards when
    /// configured.
    ///
    /// # Errors
    ///
    /// [`VmError::VerificationFailed`] when a snapshot or post-collection
    /// walk finds a heap-invariant violation.
    ///
    /// # Panics
    ///
    /// Panics (structured: "collection while task …") if another live
    /// task is not parked at a call site — a scheduler invariant
    /// violation, not a recoverable error.
    fn collect_now(
        &mut self,
        site: CallSiteId,
        operands: &mut [Word],
        minor: bool,
    ) -> VmResult<()> {
        self.capture_snapshot(site, operands)?;
        self.run_collection(site, operands, minor);
        let mut major_ran = !minor;
        if minor && self.heap.minor_survivor_overflowed() {
            // The survivor half overflowed and a young object was
            // tenured out of age order, which can leave tenured→nursery
            // edges behind. Restore the barrier-free invariant before
            // the mutator (and the verifier) sees the heap: a full
            // collection in the same pause evacuates the whole nursery.
            self.run_collection(site, operands, false);
            major_ran = true;
        }
        if major_ran {
            // A major emptied the nursery; any blocked oversize request
            // can now take the direct-tenured path.
            self.pending_oversize = 0;
        }
        self.verify_now(site, operands)
    }

    /// Gathers every live thread's stack as roots and runs one
    /// collection cycle. Factored out of [`Vm::collect_now`] so a minor
    /// whose survivor half overflowed can escalate to a major within
    /// the same pause.
    fn run_collection(&mut self, site: CallSiteId, operands: &mut [Word], minor: bool) {
        let prog = self.prog;
        let cur = self.cur;
        let mut stacks = Vec::new();
        let mut operand_stack = 0;
        for (i, t) in self.threads.iter_mut().enumerate() {
            if t.result.is_some() || t.stack.is_empty() {
                continue;
            }
            let current_site = if i == cur {
                site
            } else {
                match t.parked_site {
                    Some(s) => s,
                    None => panic!(
                        "collection while task {i} (fn {} `{}`, pc {}) is not parked at a \
                         call site — scheduler invariant violated (trigger site {})",
                        t.fn_id.0,
                        prog.fun(t.fn_id).name,
                        t.pc,
                        site.0
                    ),
                }
            };
            if i == cur {
                operand_stack = stacks.len();
            }
            stacks.push(StackRoots {
                stack: &mut t.stack,
                top_fp: t.fp,
                current_site,
            });
        }
        collect(
            &mut self.meta,
            self.prog,
            &mut self.heap,
            &self.descs,
            &mut self.gc_stats,
            &mut self.obs,
            MachineRoots {
                stacks,
                globals: &mut self.globals,
                operands,
                operand_stack,
            },
            minor,
        );
    }

    /// Oracle hook: renders everything reachable from the collector's
    /// roots as a canonical snapshot *before* the collection mutates
    /// anything.
    fn capture_snapshot(&mut self, site: CallSiteId, operands: &[Word]) -> VmResult<()> {
        if self.oracle.is_none() {
            return Ok(());
        }
        let roots = build_roots_view(&self.threads, &self.globals, operands, self.cur, site);
        let snap = if self.cfg.strategy == Strategy::Tagged {
            let o = self.oracle.as_ref().expect("oracle checked above");
            snapshot_tagged(&o.root_meta, self.prog, &self.heap, &roots)
        } else {
            snapshot_tagfree(&mut self.meta, self.prog, &self.heap, &self.descs, &roots)
        };
        match snap {
            Ok(s) => {
                self.oracle
                    .as_mut()
                    .expect("oracle checked above")
                    .snapshots
                    .push(s);
                Ok(())
            }
            Err(e) => Err(VmError::VerificationFailed {
                collection: self.gc_stats.collections,
                strategy: self.cfg.strategy.name(),
                detail: e.to_string(),
            }),
        }
    }

    /// Post-collection verifier: walks the surviving reachable graph from
    /// the same roots the collector used, checking every heap invariant.
    fn verify_now(&mut self, site: CallSiteId, operands: &[Word]) -> VmResult<()> {
        if !self.cfg.verify_heap {
            return Ok(());
        }
        let seq = self.gc_stats.collections.saturating_sub(1);
        // Cheap structural invariants first (bump bounds, survivor-to
        // empty, no leaked forwarding state); the walk below then checks
        // every surviving pointer, including that no tenured object
        // points into the nursery.
        if let Err(detail) = self.heap.check_generational_invariants() {
            return Err(VmError::VerificationFailed {
                collection: seq,
                strategy: self.cfg.strategy.name(),
                detail,
            });
        }
        let roots = build_roots_view(&self.threads, &self.globals, operands, self.cur, site);
        let res = if self.cfg.strategy == Strategy::Tagged {
            verify_tagged(self.prog, &self.heap, &roots)
        } else {
            verify_tagfree(&mut self.meta, self.prog, &self.heap, &self.descs, &roots)
        };
        let strategy = self.cfg.strategy.name();
        match res {
            Ok(r) => {
                self.obs.emit(|t_ns| GcEvent::VerificationEnd {
                    t_ns,
                    seq,
                    strategy,
                    objects: r.objects,
                    words: r.words,
                    ok: true,
                });
                Ok(())
            }
            Err(e) => {
                self.obs.emit(|t_ns| GcEvent::VerificationEnd {
                    t_ns,
                    seq,
                    strategy,
                    objects: 0,
                    words: 0,
                    ok: false,
                });
                Err(VmError::VerificationFailed {
                    collection: seq,
                    strategy,
                    detail: e.to_string(),
                })
            }
        }
    }

    /// Runs a collection with the current thread suspended at `site`
    /// (tasking: all tasks parked).
    ///
    /// # Errors
    ///
    /// Propagates [`VmError::VerificationFailed`] from the verifier or
    /// oracle, when enabled.
    pub fn collect_parked(&mut self, site: CallSiteId) -> VmResult<()> {
        let minor = self.pending_oversize == 0 && self.next_collection_is_minor(0);
        self.collect_now(site, &mut [], minor)
    }

    /// Tasking: one growth step with every task parked — grow the
    /// to-space, collect into it, then level the new to-space. Returns
    /// `Ok(false)` when the growth policy refuses (no cap configured, cap
    /// reached, or exhaustion fault active).
    pub fn grow_parked(&mut self, site: CallSiteId) -> VmResult<bool> {
        if !self.try_grow(0) {
            return Ok(false);
        }
        self.collect_now(site, &mut [], false)?;
        let cap = self.heap.capacity();
        self.heap.reserve_to_space(cap);
        Ok(true)
    }

    // ---- encoding helpers ----------------------------------------------

    fn heap_field(&self, w: Word, i: u16) -> Word {
        let a = self.enc.addr_of(w);
        let hdr = self.enc.mode.header_words() as u16;
        self.heap.read(a, i + hdr)
    }

    fn value_matches_ctor(&self, w: Word, rep: CtorRep) -> bool {
        let imm = match self.enc.mode {
            tfgc_runtime::HeapMode::TagFree => {
                if w < HEAP_BASE {
                    Some(w as u32)
                } else {
                    None
                }
            }
            tfgc_runtime::HeapMode::Tagged => {
                if self.enc.is_tagged_ptr(w) {
                    None
                } else {
                    Some(self.enc.int_of(w) as u32)
                }
            }
        };
        match (imm, rep) {
            (Some(k), CtorRep::Imm(i)) => k == i,
            (Some(_), CtorRep::Ptr { .. }) | (None, CtorRep::Imm(_)) => false,
            (None, CtorRep::Ptr { tag: None, .. }) => true,
            (None, CtorRep::Ptr { tag: Some(t), .. }) => {
                let stored = self.heap_field(w, 0);
                let raw = match self.enc.mode {
                    tfgc_runtime::HeapMode::TagFree => stored as u32,
                    tfgc_runtime::HeapMode::Tagged => self.enc.int_of(stored) as u32,
                };
                raw == t
            }
        }
    }

    fn encode_tag(&self, t: u32) -> Word {
        match self.enc.mode {
            tfgc_runtime::HeapMode::TagFree => Word::from(t),
            tfgc_runtime::HeapMode::Tagged => self.enc.int(i64::from(t)),
        }
    }

    fn encode_fn_id(&self, f: FnId) -> Word {
        match self.enc.mode {
            tfgc_runtime::HeapMode::TagFree => Word::from(f.0),
            tfgc_runtime::HeapMode::Tagged => self.enc.int(i64::from(f.0)),
        }
    }

    fn decode_fn_id(&self, w: Word) -> u32 {
        match self.enc.mode {
            tfgc_runtime::HeapMode::TagFree => w as u32,
            tfgc_runtime::HeapMode::Tagged => self.enc.int_of(w) as u32,
        }
    }

    fn encode_desc_word(&self, d: u32) -> Word {
        match self.enc.mode {
            tfgc_runtime::HeapMode::TagFree => Word::from(d),
            tfgc_runtime::HeapMode::Tagged => self.enc.int(i64::from(d)),
        }
    }

    /// Encodes an integer under the VM's value encoding (for spawning
    /// tasks with arguments).
    pub fn encode_int(&self, i: i64) -> Word {
        self.enc.int(i)
    }

    /// Decodes an integer result word.
    pub fn decode_int(&self, w: Word) -> i64 {
        self.enc.int_of(w)
    }

    /// Current thread's stack depth in words.
    pub fn stack_words(&self) -> usize {
        self.th().stack.len()
    }

    /// The current instruction of the current thread, if any.
    pub fn current_instr(&self) -> &Instr {
        let t = self.th();
        &self.prog.fun(t.fn_id).code[t.pc as usize]
    }

    /// The current instruction's call site, if it has one.
    pub fn current_site(&self) -> Option<CallSiteId> {
        self.current_instr().site()
    }

    /// True once the current thread has returned from its bottom frame.
    pub fn is_done(&self) -> bool {
        self.th().result.is_some()
    }

    /// Renders a result word at the given type (task results).
    pub fn render(&self, w: Word, ty: &tfgc_types::Type) -> String {
        render_value(self.prog, &self.heap, self.enc, w, ty)
    }
}

fn decode_desc_word(enc: Encoding, w: Word) -> u32 {
    match enc.mode {
        tfgc_runtime::HeapMode::TagFree => w as u32,
        tfgc_runtime::HeapMode::Tagged => enc.int_of(w) as u32,
    }
}

/// Builds the verifier's read-only view of the collector's roots — the
/// same thread filtering and operand attribution as `collect_now`.
fn build_roots_view<'t>(
    threads: &'t [ThreadState],
    globals: &'t [Word],
    operands: &'t [Word],
    cur: usize,
    site: CallSiteId,
) -> RootsView<'t> {
    let mut stacks = Vec::new();
    let mut operand_stack = 0;
    for (i, t) in threads.iter().enumerate() {
        if t.result.is_some() || t.stack.is_empty() {
            continue;
        }
        let current_site = if i == cur {
            site
        } else {
            match t.parked_site {
                Some(s) => s,
                None => panic!(
                    "collection while task {i} is not parked at a call site — scheduler \
                     invariant violated (trigger site {})",
                    site.0
                ),
            }
        };
        if i == cur {
            operand_stack = stacks.len();
        }
        stacks.push(StackView {
            stack: &t.stack,
            top_fp: t.fp,
            current_site,
        });
    }
    RootsView {
        stacks,
        globals,
        operands,
        operand_stack,
    }
}
