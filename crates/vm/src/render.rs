//! Rendering runtime values back to surface syntax (for program output
//! and differential testing across strategies).

use tfgc_ir::{CtorRep, IrProgram};
use tfgc_runtime::{Encoding, Heap, Word, HEAP_BASE};
use tfgc_types::{Type, CONS_TAG, LIST_DATA, NIL_TAG};

/// Renders `w` at type `ty` as TFML-ish text. Lists print as `[a, b]`,
/// datatypes as `Ctor (fields)`, functions as `<fn>`.
pub fn render_value(prog: &IrProgram, heap: &Heap, enc: Encoding, w: Word, ty: &Type) -> String {
    render(prog, heap, enc, w, ty, 64)
}

fn field(heap: &Heap, enc: Encoding, w: Word, i: u16) -> Word {
    let base = enc.addr_of(w);
    let hdr = enc.mode.header_words() as u16;
    heap.read(base, i + hdr)
}

fn render(prog: &IrProgram, heap: &Heap, enc: Encoding, w: Word, ty: &Type, depth: u32) -> String {
    if depth == 0 {
        return "...".to_string();
    }
    match ty {
        Type::Int => enc.int_of(w).to_string(),
        Type::Bool => enc.bool_of(w).to_string(),
        Type::Unit => "()".to_string(),
        Type::Var(_) | Type::Param(_) => "?".to_string(),
        Type::Arrow(_, _) => "<fn>".to_string(),
        Type::Tuple(ts) => {
            let parts: Vec<String> = ts
                .iter()
                .enumerate()
                .map(|(i, t)| render(prog, heap, enc, field(heap, enc, w, i as u16), t, depth - 1))
                .collect();
            format!("({})", parts.join(", "))
        }
        Type::Data(d, args) if *d == LIST_DATA => {
            // Lists print with bracket syntax.
            let mut items = Vec::new();
            let mut cur = w;
            let mut fuel = 1_000_000u32;
            loop {
                if is_imm(enc, cur) {
                    break;
                }
                items.push(render(
                    prog,
                    heap,
                    enc,
                    field(heap, enc, cur, 0),
                    &args[0],
                    depth - 1,
                ));
                cur = field(heap, enc, cur, 1);
                fuel -= 1;
                if fuel == 0 {
                    items.push("...".into());
                    break;
                }
            }
            let _ = (NIL_TAG, CONS_TAG);
            format!("[{}]", items.join(", "))
        }
        Type::Data(d, args) => {
            let def = prog.data_env.def(*d);
            let reps = &prog.ctor_reps[d.0 as usize];
            let ctor_idx = if is_imm(enc, w) {
                let k = imm_value(enc, w);
                reps.iter()
                    .position(|r| matches!(r, CtorRep::Imm(i) if *i == k))
                    .unwrap_or(0)
            } else if reps
                .iter()
                .any(|r| matches!(r, CtorRep::Ptr { tag: Some(_), .. }))
            {
                let t = raw_tag(heap, enc, w);
                reps.iter()
                    .position(|r| matches!(r, CtorRep::Ptr { tag: Some(tag), .. } if *tag == t))
                    .unwrap_or(0)
            } else {
                reps.iter()
                    .position(|r| matches!(r, CtorRep::Ptr { .. }))
                    .unwrap_or(0)
            };
            let ctor = &def.ctors[ctor_idx];
            let rep = reps[ctor_idx];
            match rep {
                CtorRep::Imm(_) => ctor.name.clone(),
                CtorRep::Ptr { .. } => {
                    let ftys = def.fields_at(*d, ctor.tag, args);
                    let parts: Vec<String> = ftys
                        .iter()
                        .enumerate()
                        .map(|(i, t)| {
                            render(
                                prog,
                                heap,
                                enc,
                                field(heap, enc, w, rep.field_offset(i as u16)),
                                t,
                                depth - 1,
                            )
                        })
                        .collect();
                    if parts.is_empty() {
                        ctor.name.clone()
                    } else {
                        format!("{} ({})", ctor.name, parts.join(", "))
                    }
                }
            }
        }
    }
}

fn is_imm(enc: Encoding, w: Word) -> bool {
    match enc.mode {
        tfgc_runtime::HeapMode::TagFree => w < HEAP_BASE,
        tfgc_runtime::HeapMode::Tagged => !enc.is_tagged_ptr(w),
    }
}

fn imm_value(enc: Encoding, w: Word) -> u32 {
    match enc.mode {
        tfgc_runtime::HeapMode::TagFree => w as u32,
        tfgc_runtime::HeapMode::Tagged => enc.int_of(w) as u32,
    }
}

fn raw_tag(heap: &Heap, enc: Encoding, w: Word) -> u32 {
    let t = field(heap, enc, w, 0);
    match enc.mode {
        tfgc_runtime::HeapMode::TagFree => t as u32,
        tfgc_runtime::HeapMode::Tagged => enc.int_of(t) as u32,
    }
}
