//! Virtual-machine errors.

use std::fmt;

/// A runtime error during TFML execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The heap is exhausted even after a collection (and any growth the
    /// bounded policy allowed).
    OutOfMemory {
        /// Words requested.
        requested: usize,
        /// Words live after the failed collection.
        live: usize,
        /// The allocation site whose request failed (`CallSiteId.0`).
        site: u32,
        /// The collection strategy in effect.
        strategy: &'static str,
    },
    /// No `case` arm (or refutable binding) matched.
    MatchFailure { function: String },
    /// Integer division or modulo by zero.
    DivideByZero { function: String },
    /// The configured instruction budget was exhausted.
    StepLimit { limit: u64 },
    /// The activation-record stack exceeded its configured size.
    StackOverflow { words: usize },
    /// The post-collection heap verifier (or a pre-collection oracle
    /// snapshot) found a heap-invariant violation.
    VerificationFailed {
        /// Which collection (0-based sequence number) exposed it.
        collection: u64,
        /// The collection strategy in effect.
        strategy: &'static str,
        /// The verifier's description of the violation.
        detail: String,
    },
    /// A request exceeded its deadline or instruction-fuel budget and was
    /// quarantined at a scheduler quantum boundary.
    DeadlineExceeded {
        /// Budget units spent when the breach was detected.
        spent: u64,
        /// The budget the request carried.
        budget: u64,
        /// What the budget counts: `"quanta"` or `"instructions"`.
        unit: &'static str,
    },
    /// A scheduler/engine invariant was violated — always a bug in the
    /// engine, never in the guest program; surfaced structurally so the
    /// service layer can report it instead of unwinding.
    Internal {
        /// Which invariant broke, with context.
        detail: String,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfMemory {
                requested,
                live,
                site,
                strategy,
            } => write!(
                f,
                "out of memory: {requested} words requested at site {site}, {live} live \
                 after collection ({strategy} strategy)"
            ),
            VmError::MatchFailure { function } => {
                write!(f, "match failure in `{function}`")
            }
            VmError::DivideByZero { function } => {
                write!(f, "division by zero in `{function}`")
            }
            VmError::StepLimit { limit } => write!(f, "instruction limit {limit} exhausted"),
            VmError::StackOverflow { words } => {
                write!(f, "stack overflow at {words} words")
            }
            VmError::VerificationFailed {
                collection,
                strategy,
                detail,
            } => write!(
                f,
                "heap verification failed after collection #{collection} \
                 ({strategy} strategy): {detail}"
            ),
            VmError::DeadlineExceeded {
                spent,
                budget,
                unit,
            } => write!(
                f,
                "deadline exceeded: {spent} {unit} spent of a {budget}-{unit} budget"
            ),
            VmError::Internal { detail } => {
                write!(f, "internal engine invariant violated: {detail}")
            }
        }
    }
}

impl std::error::Error for VmError {}

/// Result alias for VM operations.
pub type VmResult<T> = Result<T, VmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = VmError::OutOfMemory {
            requested: 3,
            live: 100,
            site: 12,
            strategy: "compiled",
        };
        assert!(e.to_string().contains("out of memory"));
        assert!(e.to_string().contains("site 12"));
        assert!(e.to_string().contains("compiled"));
        assert!(VmError::StepLimit { limit: 7 }.to_string().contains('7'));
        let v = VmError::VerificationFailed {
            collection: 4,
            strategy: "appel",
            detail: "pointer 0x10 is not in from-space".to_string(),
        };
        assert!(v.to_string().contains("collection #4"));
        assert!(v.to_string().contains("from-space"));
        let d = VmError::DeadlineExceeded {
            spent: 12,
            budget: 8,
            unit: "quanta",
        };
        assert!(d.to_string().contains("12 quanta"));
        assert!(d.to_string().contains("8-quanta budget"));
        let i = VmError::Internal {
            detail: "request 3 left unresolved".to_string(),
        };
        assert!(i.to_string().contains("internal engine invariant"));
        assert!(i.to_string().contains("request 3"));
    }
}
