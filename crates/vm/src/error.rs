//! Virtual-machine errors.

use std::fmt;

/// A runtime error during TFML execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The heap is exhausted even after a collection.
    OutOfMemory {
        /// Words requested.
        requested: usize,
        /// Words live after the failed collection.
        live: usize,
    },
    /// No `case` arm (or refutable binding) matched.
    MatchFailure { function: String },
    /// Integer division or modulo by zero.
    DivideByZero { function: String },
    /// The configured instruction budget was exhausted.
    StepLimit { limit: u64 },
    /// The activation-record stack exceeded its configured size.
    StackOverflow { words: usize },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfMemory { requested, live } => write!(
                f,
                "out of memory: {requested} words requested, {live} live after collection"
            ),
            VmError::MatchFailure { function } => {
                write!(f, "match failure in `{function}`")
            }
            VmError::DivideByZero { function } => {
                write!(f, "division by zero in `{function}`")
            }
            VmError::StepLimit { limit } => write!(f, "instruction limit {limit} exhausted"),
            VmError::StackOverflow { words } => {
                write!(f, "stack overflow at {words} words")
            }
        }
    }
}

impl std::error::Error for VmError {}

/// Result alias for VM operations.
pub type VmResult<T> = Result<T, VmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = VmError::OutOfMemory {
            requested: 3,
            live: 100,
        };
        assert!(e.to_string().contains("out of memory"));
        assert!(VmError::StepLimit { limit: 7 }.to_string().contains('7'));
    }
}
