//! Mutator-side statistics (experiment E2's tag-manipulation overhead,
//! plus RTTI and frame-initialization costs).

/// Counters maintained by the interpreter while the program runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MutatorStats {
    /// Bytecode instructions executed.
    pub instructions: u64,
    /// Extra ALU operations spent stripping/reinstating tags (tagged
    /// encoding only) — §1's second claimed advantage.
    pub tag_ops: u64,
    /// Direct calls executed.
    pub calls: u64,
    /// Closure calls executed.
    pub closure_calls: u64,
    /// Slot-initialization stores performed at frame entry (strategies
    /// that cannot prove initialization, §1.1.1).
    pub frame_init_stores: u64,
    /// `EvalDesc` instructions executed (RTTI completion cost).
    pub desc_evals: u64,
    /// High-water mark of the activation-record stack, in words.
    pub max_stack_words: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = MutatorStats::default();
        assert_eq!(s.instructions, 0);
        assert_eq!(s.tag_ops, 0);
    }
}
