//! Mutator-side statistics (experiment E2's tag-manipulation overhead,
//! plus RTTI and frame-initialization costs).

/// Counters maintained by the interpreter while the program runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MutatorStats {
    /// Bytecode instructions executed.
    pub instructions: u64,
    /// Extra ALU operations spent stripping/reinstating tags (tagged
    /// encoding only) — §1's second claimed advantage.
    pub tag_ops: u64,
    /// Direct calls executed.
    pub calls: u64,
    /// Closure calls executed.
    pub closure_calls: u64,
    /// Slot-initialization stores performed at frame entry (strategies
    /// that cannot prove initialization, §1.1.1).
    pub frame_init_stores: u64,
    /// `EvalDesc` instructions executed (RTTI completion cost).
    pub desc_evals: u64,
    /// High-water mark of the activation-record stack, in words.
    pub max_stack_words: u64,
}

impl MutatorStats {
    /// Accumulates another run's counters into `self` (multi-run
    /// profiling). Sums every counter; the stack high-water mark takes
    /// the maximum.
    pub fn merge(&mut self, other: &MutatorStats) {
        self.instructions += other.instructions;
        self.tag_ops += other.tag_ops;
        self.calls += other.calls;
        self.closure_calls += other.closure_calls;
        self.frame_init_stores += other.frame_init_stores;
        self.desc_evals += other.desc_evals;
        self.max_stack_words = self.max_stack_words.max(other.max_stack_words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = MutatorStats::default();
        assert_eq!(s.instructions, 0);
        assert_eq!(s.tag_ops, 0);
    }

    #[test]
    fn merge_sums_counters_and_maxes_stack() {
        let a = MutatorStats {
            instructions: 10,
            tag_ops: 1,
            calls: 2,
            closure_calls: 3,
            frame_init_stores: 4,
            desc_evals: 5,
            max_stack_words: 100,
        };
        let b = MutatorStats {
            instructions: 1,
            max_stack_words: 250,
            ..MutatorStats::default()
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.instructions, 11);
        assert_eq!(m.calls, 2);
        assert_eq!(m.max_stack_words, 250, "high-water mark is max, not sum");
    }
}
