//! # tfgc-vm — the TFML virtual machine
//!
//! Runs compiled TFML programs under any of the five collection
//! strategies. The machine is the paper's "implementation substrate":
//! explicit activation records with return words (Figure 1), collections
//! triggered only at allocation sites (§2.1), tag arithmetic performed
//! for real in the tagged encoding (§1), and per-run statistics for every
//! experiment.
//!
//! ```
//! use tfgc_syntax::parse_program;
//! use tfgc_types::elaborate;
//! use tfgc_ir::lower;
//! use tfgc_vm::{run_program, VmConfig};
//! use tfgc_gc::Strategy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prog = lower(&elaborate(&parse_program(
//!     "fun append [] ys = ys | append (x :: xs) ys = x :: append xs ys ;
//!      append [1, 2] [3]",
//! )?)?)?;
//! let out = run_program(&prog, VmConfig::new(Strategy::Compiled))?;
//! assert_eq!(out.result, "[1, 2, 3]");
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod machine;
pub mod render;
pub mod stats;

pub use error::{VmError, VmResult};
pub use machine::{run_program, RunOutcome, StepEvent, Vm, VmConfig};
pub use render::render_value;
pub use stats::MutatorStats;
/// Re-exported so VM embedders (scheduler, CLI, torture harness) can
/// configure fault schedules and consume oracle snapshots without a
/// direct tfgc-verify dependency.
pub use tfgc_verify::{
    capture_panics_mut, diff, is_structured_panic, with_quiet_panics, CanonHeap, CapturedPanic,
    FaultPlan,
};

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_gc::Strategy;
    use tfgc_ir::{lower, IrProgram};
    use tfgc_syntax::parse_program;
    use tfgc_types::elaborate;

    fn compile(src: &str) -> IrProgram {
        lower(&elaborate(&parse_program(src).expect("parse")).expect("types")).expect("lower")
    }

    fn run(src: &str, strategy: Strategy) -> RunOutcome {
        let prog = compile(src);
        run_program(&prog, VmConfig::new(strategy)).expect("run")
    }

    fn run_cfg(src: &str, cfg: VmConfig) -> RunOutcome {
        let prog = compile(src);
        run_program(&prog, cfg).expect("run")
    }

    /// Runs under every strategy and asserts identical observable output —
    /// the core differential-testing invariant.
    fn differential(src: &str) -> RunOutcome {
        let prog = compile(src);
        let mut outs = Vec::new();
        for s in Strategy::ALL {
            let out = run_program(&prog, VmConfig::new(s).heap_words(1 << 14))
                .unwrap_or_else(|e| panic!("{s}: {e}\nprogram:\n{src}"));
            outs.push((s, out));
        }
        let (first_s, first) = outs[0].clone();
        for (s, o) in &outs[1..] {
            assert_eq!(
                o.result, first.result,
                "result differs: {s} vs {first_s}\nprogram:\n{src}"
            );
            assert_eq!(
                o.printed, first.printed,
                "printed differs: {s} vs {first_s}\nprogram:\n{src}"
            );
        }
        outs.remove(0).1
    }

    #[test]
    fn arithmetic_runs() {
        let out = run("1 + 2 * 3", Strategy::Compiled);
        assert_eq!(out.result, "7");
    }

    #[test]
    fn append_from_the_paper() {
        let out = differential(
            "fun append [] ys = ys | append (x :: xs) ys = x :: append xs ys ;
             append [1, 2] [3, 4]",
        );
        assert_eq!(out.result, "[1, 2, 3, 4]");
    }

    #[test]
    fn printing_is_ordered() {
        let out = differential("(print 1; print 2; print 3; 0)");
        assert_eq!(out.printed, vec![1, 2, 3]);
    }

    #[test]
    fn factorial() {
        let out = differential("fun fact n = if n = 0 then 1 else n * fact (n - 1) ; fact 10");
        assert_eq!(out.result, "3628800");
    }

    #[test]
    fn higher_order_map() {
        let out = differential(
            "fun map f xs = case xs of [] => [] | x :: r => f x :: map f r ;
             map (fn x => x * x) [1, 2, 3, 4]",
        );
        assert_eq!(out.result, "[1, 4, 9, 16]");
    }

    #[test]
    fn partial_application() {
        let out = differential(
            "fun add x y = x + y ;
             fun map f xs = case xs of [] => [] | x :: r => f x :: map f r ;
             map (add 10) [1, 2, 3]",
        );
        assert_eq!(out.result, "[11, 12, 13]");
    }

    #[test]
    fn datatype_tree_sum() {
        let out = differential(
            "datatype tree = Leaf | Node of tree * int * tree ;
             fun sum t = case t of Leaf => 0 | Node (l, v, r) => sum l + v + sum r ;
             sum (Node (Node (Leaf, 1, Leaf), 2, Node (Leaf, 3, Leaf)))",
        );
        assert_eq!(out.result, "6");
    }

    #[test]
    fn polymorphic_f_from_section_3() {
        // §3's example: fun f x = let val y = [x, x] in (y, [3]) end.
        let out = differential(
            "fun f x = let val y = [x, x] in (y, [3]) end ;
             (f [true], f 7)",
        );
        assert_eq!(out.result, "(([[true], [true]], [3]), ([7, 7], [3]))");
    }

    #[test]
    fn gc_triggers_and_preserves_live_data() {
        let src = "fun build n = if n = 0 then [] else n :: build (n - 1) ;
             fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
             fun churn n = if n = 0 then 0 else (sum (build 50) + churn (n - 1)) - sum (build 50) ;
             let val keep = build 10 in (churn 50; sum keep) end";
        let prog = compile(src);
        for s in Strategy::ALL {
            // No-liveness strategies retain dead structures (that is the
            // measured effect), so they need headroom.
            let out = run_program(&prog, VmConfig::new(s).heap_words(1 << 13))
                .unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(out.result, "55", "{s}");
            assert!(out.heap.collections > 0, "{s}: expected collections");
        }
    }

    #[test]
    fn deep_list_survives_many_gcs() {
        let src = "fun build n = if n = 0 then [] else n :: build (n - 1) ;
             fun len xs = case xs of [] => 0 | _ :: r => 1 + len r ;
             fun churn n = if n = 0 then 0 else (churn (n - 1); (build 30; 0)) ;
             let val keep = build 200 in (churn 150; len keep) end";
        let prog = compile(src);
        for s in Strategy::ALL {
            let out = run_program(&prog, VmConfig::new(s).heap_words(1 << 11))
                .unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(out.result, "200", "{s}");
            assert!(out.heap.collections > 3, "{s}");
        }
    }

    #[test]
    fn closures_survive_collection() {
        // Post-order churn: garbage is created after the recursive call
        // returns, so even the Appel strategy cannot pin it in live
        // frames.
        let src = "fun build n = if n = 0 then [] else n :: build (n - 1) ;
             fun churn n = if n = 0 then 0 else (churn (n - 1); (build 40; 0)) ;
             let val base = build 5
                 fun sum xs = case xs of [] => 0 | x :: r => x + sum r
                 val f = fn y => sum base + y in
               (churn 60; f 100)
             end";
        let prog = compile(src);
        for s in Strategy::ALL {
            let out = run_program(&prog, VmConfig::new(s).heap_words(1 << 11))
                .unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(out.result, "115", "{s}");
            assert!(out.heap.collections > 0, "{s}");
        }
    }

    #[test]
    fn polymorphic_data_survives_forced_gcs() {
        // Force a collection at every allocation: the polymorphic frame
        // routines must reconstruct exact type information every time.
        let src = "fun append [] ys = ys | append (x :: xs) ys = x :: append xs ys ;
             fun rev xs = case xs of [] => [] | x :: r => append (rev r) [x] ;
             rev [1, 2, 3, 4, 5]";
        for s in Strategy::ALL {
            let prog = compile(src);
            let out = run_program(
                &prog,
                VmConfig::new(s).heap_words(1 << 12).force_gc_every(1),
            )
            .unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(out.result, "[5, 4, 3, 2, 1]", "{s}");
            assert!(out.heap.collections > 10, "{s}");
        }
    }

    #[test]
    fn hidden_descriptor_closure_survives_gc() {
        // The §3 gap case: an int -> int closure capturing an `'a list`.
        // Only the hidden descriptor lets the collector trace `x`.
        let src = "fun konst x = fn u => (case x of [] => u | y :: _ => y + u) ;
             fun spin f n = if n = 0 then f 1 else let val r = spin f (n - 1) in ((n, n); r) end ;
             let val f = konst [41] in (spin f 1200; f 1) end";
        for s in Strategy::ALL {
            let prog = compile(src);
            let out = run_program(&prog, VmConfig::new(s).heap_words(1 << 11))
                .unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(out.result, "42", "{s}");
            assert!(out.heap.collections > 0, "{s}");
        }
    }

    #[test]
    fn tagged_mode_counts_tag_ops() {
        let src = "fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) ; fib 15";
        let tagged = run(src, Strategy::Tagged);
        let tagfree = run(src, Strategy::Compiled);
        assert_eq!(tagged.result, tagfree.result);
        assert!(tagged.mutator.tag_ops > 0);
        assert_eq!(tagfree.mutator.tag_ops, 0);
    }

    #[test]
    fn tagged_heap_uses_more_words() {
        // §1's first advantage: headers cost a word per object.
        let src = "fun build n = if n = 0 then [] else n :: build (n - 1) ; build 100";
        let tagged = run(src, Strategy::Tagged);
        let tagfree = run(src, Strategy::Compiled);
        // Cons cells: exactly 2 words tag-free (the paper's cons_cell),
        // 3 words tagged (header + fields).
        assert_eq!(tagfree.heap.words_allocated, 200);
        assert_eq!(tagged.heap.words_allocated, 300);
    }

    #[test]
    fn liveness_reclaims_dead_structures() {
        // A large dead list exists during `churn`; the liveness-aware
        // collector must not retain it.
        let src = "fun build n = if n = 0 then [] else n :: build (n - 1) ;
             fun len xs = case xs of [] => 0 | _ :: r => 1 + len r ;
             fun churn n = if n = 0 then 0 else (churn (n - 1); (build 20; 0)) ;
             let val dead = build 100
                 val n = len dead in
               (churn 80; n)
             end";
        let prog = compile(src);
        let live = run_program(&prog, VmConfig::new(Strategy::Compiled).heap_words(1 << 11))
            .expect("compiled");
        let appel = run_program(
            &prog,
            VmConfig::new(Strategy::AppelPerFn).heap_words(1 << 11),
        )
        .expect("appel");
        assert_eq!(live.result, appel.result);
        assert!(live.heap.collections > 0);
        // The Appel collector drags the dead list through every
        // collection; the liveness-aware one does not.
        assert!(
            appel.heap.words_copied > live.heap.words_copied,
            "appel copied {} <= compiled copied {}",
            appel.heap.words_copied,
            live.heap.words_copied
        );
    }

    #[test]
    fn interpreted_reads_descriptor_bytes() {
        let src = "fun build n = if n = 0 then [] else n :: build (n - 1) ;
             fun hold (xs : int list) n = if n = 0 then xs else (build 10; hold xs (n - 1)) ;
             case hold (build 5) 30 of [] => 0 | x :: _ => x";
        let prog = compile(src);
        let out = run_program(
            &prog,
            VmConfig::new(Strategy::Interpreted).heap_words(1 << 9),
        )
        .expect("interpreted");
        assert_eq!(out.result, "5");
        assert!(out.gc.collections > 0);
        assert!(out.gc.desc_bytes_read > 0);
    }

    #[test]
    fn appel_counts_chain_steps() {
        // Deep polymorphic recursion: Appel's backward resolution visits
        // O(depth) frames per frame.
        let src = "fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ;
             fun build n = if n = 0 then [] else n :: build (n - 1) ;
             len (build 50)";
        let prog = compile(src);
        let fwd = run_program(
            &prog,
            VmConfig::new(Strategy::Compiled)
                .heap_words(1 << 9)
                .force_gc_every(40),
        )
        .expect("compiled");
        let bwd = run_program(
            &prog,
            VmConfig::new(Strategy::AppelPerFn)
                .heap_words(1 << 9)
                .force_gc_every(40),
        )
        .expect("appel");
        assert_eq!(fwd.result, bwd.result);
        assert_eq!(fwd.gc.chain_steps, 0);
        assert!(bwd.gc.chain_steps > bwd.gc.frames_visited);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let src = "fun build n = if n = 0 then [] else n :: build (n - 1) ; build 10000";
        let prog = compile(src);
        let err = run_program(&prog, VmConfig::new(Strategy::Compiled).heap_words(256))
            .expect_err("should exhaust heap");
        assert!(matches!(err, VmError::OutOfMemory { .. }));
    }

    #[test]
    fn match_failure_is_reported() {
        let src = "case [] of x :: _ => x";
        let prog = compile(src);
        let err = run_program(&prog, VmConfig::new(Strategy::Compiled)).expect_err("no arm");
        assert!(matches!(err, VmError::MatchFailure { .. }));
    }

    #[test]
    fn divide_by_zero_is_reported() {
        let prog = compile("1 div 0");
        let err = run_program(&prog, VmConfig::new(Strategy::Compiled)).expect_err("div0");
        assert!(matches!(err, VmError::DivideByZero { .. }));
    }

    #[test]
    fn globals_work_across_strategies() {
        let out = differential(
            "val table = [10, 20, 30] ;
             fun nth xs n = case xs of [] => 0 | x :: r => if n = 0 then x else nth r (n - 1) ;
             nth table 1 + nth table 2",
        );
        assert_eq!(out.result, "50");
    }

    #[test]
    fn globals_survive_collection() {
        let src = "val keep = [1, 2, 3] ;
             fun build n = if n = 0 then [] else n :: build (n - 1) ;
             fun churn n = if n = 0 then 0 else (churn (n - 1); (build 30; 0)) ;
             fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
             (churn 80; sum keep)";
        let prog = compile(src);
        for s in Strategy::ALL {
            let out = run_program(&prog, VmConfig::new(s).heap_words(1 << 11))
                .unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(out.result, "6", "{s}");
            assert!(out.heap.collections > 0, "{s}");
        }
    }

    #[test]
    fn variant_records_across_strategies() {
        let out = differential(
            "datatype shape = Circle of int | Rect of int * int | Point ;
             fun area s = case s of Circle r => 3 * r * r | Rect (w, h) => w * h | Point => 0 ;
             fun total xs = case xs of [] => 0 | s :: r => area s + total r ;
             total [Circle 2, Rect (3, 4), Point, Rect (1, 5)]",
        );
        assert_eq!(out.result, "29");
    }

    #[test]
    fn mutual_recursion_runs() {
        let out = differential(
            "fun even n = if n = 0 then true else odd (n - 1)
             and odd n = if n = 0 then false else even (n - 1) ;
             (even 10, odd 7)",
        );
        assert_eq!(out.result, "(true, true)");
    }

    #[test]
    fn nqueens_smoke() {
        let out = differential(
            "fun abs x = if x < 0 then ~x else x ;
             fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ;
             fun safe q qs d = case qs of [] => true
               | x :: r => x <> q andalso abs (x - q) <> d andalso safe q r (d + 1) ;
             fun range i n = if i > n then [] else i :: range (i + 1) n ;
             fun count qs n =
               if len qs = n then 1
               else let fun try cols = case cols of [] => 0
                          | c :: rest => (if safe c qs 1 then count (c :: qs) n else 0) + try rest
                    in try (range 1 n) end ;
             count [] 5",
        );
        assert_eq!(out.result, "10");
    }

    #[test]
    fn rendered_values_cover_shapes() {
        assert_eq!(run("()", Strategy::Compiled).result, "()");
        assert_eq!(
            run("(1, (true, [2]))", Strategy::Compiled).result,
            "(1, (true, [2]))"
        );
        assert_eq!(run("fn x => x", Strategy::Compiled).result, "<fn>");
        assert_eq!(
            run("datatype t = A of int | B ; A 5", Strategy::Compiled).result,
            "A (5)"
        );
        assert_eq!(
            run("datatype t = A of int | B ; B", Strategy::Compiled).result,
            "B"
        );
    }

    #[test]
    fn step_limit_enforced() {
        let src = "fun loop n = loop n ; loop 1";
        let prog = compile(src);
        let mut cfg = VmConfig::new(Strategy::Compiled);
        cfg.max_steps = Some(10_000);
        let err = run_program(&prog, cfg).expect_err("must not terminate");
        assert!(matches!(
            err,
            VmError::StepLimit { .. } | VmError::StackOverflow { .. }
        ));
    }

    #[test]
    fn force_gc_every_allocation_is_sound() {
        let out = run_cfg(
            "fun rev xs acc = case xs of [] => acc | x :: r => rev r (x :: acc) ;
             rev [1, 2, 3, 4] []",
            VmConfig::new(Strategy::Compiled).force_gc_every(1),
        );
        assert_eq!(out.result, "[4, 3, 2, 1]");
        assert!(out.heap.collections >= 4);
    }

    #[test]
    fn metadata_bytes_reported() {
        let src = "fun id x = x ; id [1]";
        let compiled = run(src, Strategy::Compiled);
        let tagged = run(src, Strategy::Tagged);
        assert!(compiled.metadata_bytes > 0);
        assert_eq!(tagged.metadata_bytes, 0);
    }
}
