//! The standard in-memory recorder: a bounded ring of raw events plus
//! exact cumulative aggregates.

use crate::event::GcEvent;
use crate::hist::Histogram;
use crate::json::Json;
use crate::sink::GcEventSink;
use crate::sites::SiteTable;
use std::collections::VecDeque;

/// Everything one collection did (kept for all collections — runs have
/// few of them, unlike allocations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectionSummary {
    pub seq: u64,
    /// True for a generational minor (nursery-only) collection.
    pub minor: bool,
    pub trigger_site: u32,
    pub heap_used_before: u64,
    pub heap_used_after: u64,
    pub words_copied: u64,
    pub pause_ns: u64,
    pub frames_visited: u64,
    pub routine_invocations: u64,
    pub rt_nodes_built: u64,
    pub rt_cache_hits: u64,
    pub rt_cache_misses: u64,
    pub plan_hits: u64,
    pub plan_misses: u64,
    pub plans_compiled: u64,
}

/// Records events into a bounded ring and maintains aggregates over the
/// complete event stream: a pause-time histogram, an allocation-size
/// histogram, per-call-site allocation/survivor profiles, and one
/// summary per collection.
#[derive(Debug, Clone, Default)]
pub struct RingRecorder {
    capacity: usize,
    events: VecDeque<GcEvent>,
    /// Events discarded because the ring was full.
    dropped: u64,
    pause_hist: Histogram,
    alloc_hist: Histogram,
    sites: SiteTable,
    collections: Vec<CollectionSummary>,
    /// Collection in progress (between Begin and End).
    open: Option<CollectionSummary>,
    strategy: Option<&'static str>,
}

impl RingRecorder {
    /// A recorder keeping at most `capacity` raw events.
    pub fn new(capacity: usize) -> RingRecorder {
        RingRecorder {
            capacity,
            ..RingRecorder::default()
        }
    }

    /// Maximum raw events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained raw events, oldest first.
    pub fn events(&self) -> &VecDeque<GcEvent> {
        &self.events
    }

    /// Events discarded because the ring was full. Aggregates still
    /// include them.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Pause-time distribution in nanoseconds, one sample per
    /// collection.
    pub fn pause_hist(&self) -> &Histogram {
        &self.pause_hist
    }

    /// Allocation-size distribution in words, one sample per allocation.
    pub fn alloc_hist(&self) -> &Histogram {
        &self.alloc_hist
    }

    /// Per-call-site allocation/survivor profiles.
    pub fn sites(&self) -> &SiteTable {
        &self.sites
    }

    /// One summary per completed collection, in order.
    pub fn collections(&self) -> &[CollectionSummary] {
        &self.collections
    }

    /// The strategy name seen on collection events, if any collection
    /// ran.
    pub fn strategy(&self) -> Option<&'static str> {
        self.strategy
    }

    fn aggregate(&mut self, ev: &GcEvent) {
        match *ev {
            GcEvent::CollectionBegin {
                seq,
                kind,
                strategy,
                trigger_site,
                heap_used_before,
                ..
            } => {
                self.strategy = Some(strategy);
                self.sites.on_collection_begin();
                self.open = Some(CollectionSummary {
                    seq,
                    minor: kind == crate::event::CollectionKind::Minor,
                    trigger_site,
                    heap_used_before,
                    ..CollectionSummary::default()
                });
            }
            GcEvent::CollectionEnd {
                seq,
                pause_ns,
                heap_used_after,
                words_copied,
                frames_visited,
                routine_invocations,
                rt_nodes_built,
                rt_cache_hits,
                rt_cache_misses,
                plan_hits,
                plan_misses,
                plans_compiled,
                ..
            } => {
                self.pause_hist.record(pause_ns);
                self.sites.on_collection_end();
                let mut s = self.open.take().unwrap_or(CollectionSummary {
                    seq,
                    ..CollectionSummary::default()
                });
                s.pause_ns = pause_ns;
                s.heap_used_after = heap_used_after;
                s.words_copied = words_copied;
                s.frames_visited = frames_visited;
                s.routine_invocations = routine_invocations;
                s.rt_nodes_built = rt_nodes_built;
                s.rt_cache_hits = rt_cache_hits;
                s.rt_cache_misses = rt_cache_misses;
                s.plan_hits = plan_hits;
                s.plan_misses = plan_misses;
                s.plans_compiled = plans_compiled;
                self.collections.push(s);
            }
            GcEvent::ObjectCopied {
                from, to, words, ..
            } => {
                self.sites.on_copy(from, to, words);
            }
            GcEvent::Alloc {
                site, words, addr, ..
            } => {
                self.alloc_hist.record(u64::from(words));
                self.sites.on_alloc(site, words, addr);
            }
            GcEvent::FrameVisit { .. }
            | GcEvent::RoutineRun { .. }
            | GcEvent::TaskParked { .. }
            | GcEvent::TaskResumed { .. }
            | GcEvent::Phase { .. }
            | GcEvent::VerificationEnd { .. }
            | GcEvent::FaultInjected { .. }
            | GcEvent::HeapGrown { .. }
            | GcEvent::RequestStart { .. }
            | GcEvent::RequestEnd { .. }
            | GcEvent::HeapSample { .. }
            | GcEvent::RequestShed { .. }
            | GcEvent::DeadlineExceeded { .. }
            | GcEvent::BreakerOpen { .. }
            | GcEvent::BreakerHalfOpen { .. }
            | GcEvent::BreakerClose { .. }
            | GcEvent::BacklogSample { .. } => {}
        }
    }

    /// Renders the aggregates as a metrics document: histograms
    /// (p50/p90/p99/max plus raw buckets), per-site profiles, and
    /// per-collection summaries. Site/function naming is left to the
    /// caller, which knows the program.
    pub fn metrics_json(&self) -> Json {
        Json::obj([
            ("strategy", self.strategy.map_or(Json::Null, Json::from)),
            ("pause_ns", hist_json(&self.pause_hist)),
            ("alloc_words", hist_json(&self.alloc_hist)),
            (
                "sites",
                Json::Arr(
                    self.sites
                        .profiles()
                        .map(|(site, p)| {
                            Json::obj([
                                ("site", Json::from(site)),
                                ("allocs", Json::from(p.allocs)),
                                ("words", Json::from(p.words)),
                                ("survivors", Json::from(p.survivors)),
                                ("survivor_words", Json::from(p.survivor_words)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "collections",
                Json::Arr(
                    self.collections
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("seq", Json::from(c.seq)),
                                ("kind", Json::from(if c.minor { "minor" } else { "major" })),
                                ("trigger_site", Json::from(c.trigger_site)),
                                ("heap_used_before", Json::from(c.heap_used_before)),
                                ("heap_used_after", Json::from(c.heap_used_after)),
                                ("words_copied", Json::from(c.words_copied)),
                                ("pause_ns", Json::from(c.pause_ns)),
                                ("frames_visited", Json::from(c.frames_visited)),
                                ("routine_invocations", Json::from(c.routine_invocations)),
                                ("rt_nodes_built", Json::from(c.rt_nodes_built)),
                                ("rt_cache_hits", Json::from(c.rt_cache_hits)),
                                ("rt_cache_misses", Json::from(c.rt_cache_misses)),
                                ("plan_hits", Json::from(c.plan_hits)),
                                ("plan_misses", Json::from(c.plan_misses)),
                                ("plans_compiled", Json::from(c.plans_compiled)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("events_retained", Json::from(self.events.len())),
            ("events_dropped", Json::from(self.dropped)),
        ])
    }
}

/// Histogram as JSON: summary percentiles plus the raw log₂ buckets.
/// `count`/`sum`/`mean` expose the exact accumulators so rate metrics
/// (pause time per window, utilization) need no parallel bookkeeping.
pub fn hist_json(h: &Histogram) -> Json {
    Json::obj([
        ("count", Json::from(h.count())),
        ("sum", Json::Num(h.sum() as f64)),
        ("p50", Json::from(h.p50())),
        ("p90", Json::from(h.p90())),
        ("p99", Json::from(h.p99())),
        ("max", Json::from(h.max())),
        ("mean", Json::from(h.mean())),
        (
            "buckets",
            Json::Arr(
                h.buckets()
                    .into_iter()
                    .map(|(le, n)| Json::obj([("le", Json::from(le)), ("count", Json::from(n))]))
                    .collect(),
            ),
        ),
    ])
}

impl GcEventSink for RingRecorder {
    fn record(&mut self, ev: GcEvent) {
        self.aggregate(&ev);
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(seq: u64) -> GcEvent {
        GcEvent::CollectionBegin {
            t_ns: 0,
            seq,
            kind: crate::event::CollectionKind::Major,
            strategy: "compiled",
            trigger_site: 1,
            heap_used_before: 100,
        }
    }

    fn end(seq: u64, pause_ns: u64) -> GcEvent {
        GcEvent::CollectionEnd {
            t_ns: 0,
            seq,
            kind: crate::event::CollectionKind::Major,
            pause_ns,
            heap_used_after: 40,
            words_copied: 40,
            frames_visited: 3,
            routine_invocations: 3,
            rt_nodes_built: 0,
            rt_cache_hits: 0,
            rt_cache_misses: 0,
            plan_hits: 0,
            plan_misses: 0,
            plans_compiled: 0,
        }
    }

    #[test]
    fn ring_drops_oldest_but_aggregates_all() {
        let mut r = RingRecorder::new(2);
        for i in 0..5u64 {
            r.record(GcEvent::Alloc {
                t_ns: i,
                site: 0,
                words: 2,
                addr: 0x1000 + i * 16,
            });
        }
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.dropped(), 3);
        assert_eq!(r.alloc_hist().count(), 5, "aggregates see every event");
        assert_eq!(r.sites().profile(0).allocs, 5);
    }

    #[test]
    fn collections_are_summarized_and_paused_histogrammed() {
        let mut r = RingRecorder::new(64);
        r.record(GcEvent::Alloc {
            t_ns: 0,
            site: 2,
            words: 4,
            addr: 0x1000,
        });
        r.record(begin(0));
        r.record(GcEvent::ObjectCopied {
            seq: 0,
            from: 0x1000,
            to: 0x9000,
            words: 4,
        });
        r.record(end(0, 1500));
        r.record(begin(1));
        r.record(end(1, 3000));

        assert_eq!(r.collections().len(), 2);
        assert_eq!(r.collections()[0].words_copied, 40);
        assert_eq!(r.pause_hist().count(), 2);
        assert_eq!(r.pause_hist().max(), 3000);
        assert_eq!(r.sites().profile(2).survivor_words, 4);
        assert_eq!(r.strategy(), Some("compiled"));
    }

    #[test]
    fn metrics_json_is_wellformed() {
        let mut r = RingRecorder::new(8);
        r.record(GcEvent::Alloc {
            t_ns: 0,
            site: 1,
            words: 3,
            addr: 0x1000,
        });
        r.record(begin(0));
        r.record(end(0, 2000));
        let doc = r.metrics_json();
        let text = doc.to_json_pretty();
        let back = crate::json::parse(&text).expect("metrics parse");
        assert_eq!(
            back.get("pause_ns").unwrap().get("count").unwrap().as_f64(),
            Some(1.0)
        );
        assert_eq!(back.get("sites").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn zero_capacity_keeps_aggregates_only() {
        let mut r = RingRecorder::new(0);
        r.record(begin(0));
        r.record(end(0, 10));
        assert_eq!(r.events().len(), 0);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.collections().len(), 1);
    }
}
