//! Chrome trace-event export.
//!
//! Produces the Trace Event JSON Array Format that `chrome://tracing`
//! and Perfetto load. Chrome's parser explicitly tolerates a missing
//! closing `]` and a trailing comma, so the writer emits the opening
//! bracket and then **one complete JSON object per line** — the file is
//! loadable as a trace and simultaneously consumable line-by-line
//! (strip the `[` header line and any trailing comma and each line
//! parses as JSON).
//!
//! Mapping:
//! * collections and pipeline phases → complete (`"ph": "X"`) duration
//!   events on the GC/compile tracks;
//! * allocations and task park/resume → instant (`"ph": "i"`) events;
//! * serve-mode heap samples → counter (`"ph": "C"`) events on the
//!   `heap_words`, `live_words`, and `in_flight_requests` tracks, so
//!   occupancy and load render as timelines under the duration events;
//! * serve-mode backlog samples → counter events on the
//!   `backlog_queued`, `backlog_waiting`, and `watermark_level` tracks;
//! * circuit-breaker transitions → a `breaker_state_k{kind}` counter
//!   track (0 = closed, 1 = half-open, 2 = open) plus an instant event
//!   per transition;
//! * request sheds and deadline breaches → instant events;
//! * serve-mode request start/end → async (`"ph": "b"`/`"e"`) events
//!   keyed by request id, so each request renders as a span;
//! * frame visits, routine runs, and object copies are deliberately not
//!   exported (volume) — their aggregates live in the metrics document.

use crate::event::GcEvent;
use crate::json::Json;
use std::collections::HashMap;

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn trace_line(
    name: &str,
    cat: &str,
    ph: &str,
    ts_us: f64,
    dur_us: Option<f64>,
    args: Json,
) -> Json {
    let mut pairs = vec![
        ("name".to_string(), Json::str(name)),
        ("cat".to_string(), Json::str(cat)),
        ("ph".to_string(), Json::str(ph)),
        ("ts".to_string(), Json::Num(ts_us)),
        ("pid".to_string(), Json::Num(1.0)),
        ("tid".to_string(), Json::Num(1.0)),
    ];
    if let Some(d) = dur_us {
        pairs.insert(4, ("dur".to_string(), Json::Num(d)));
    }
    if ph == "i" {
        // Instant events need a scope; thread scope keeps them small.
        pairs.push(("s".to_string(), Json::str("t")));
    }
    pairs.push(("args".to_string(), args));
    Json::Obj(pairs)
}

/// A counter (`"ph": "C"`) event: one named series with one value.
fn counter_line(name: &str, ts_us: f64, value: u64) -> Json {
    trace_line(
        name,
        "serve",
        "C",
        ts_us,
        None,
        Json::obj([("value", Json::Num(value as f64))]),
    )
}

/// An async (`"ph": "b"`/`"e"`) event; `id` pairs begins with ends.
fn async_line(name: &str, cat: &str, ph: &str, ts_us: f64, id: u64, args: Json) -> Json {
    let mut l = trace_line(name, cat, ph, ts_us, None, args);
    if let Json::Obj(pairs) = &mut l {
        pairs.insert(3, ("id".to_string(), Json::Num(id as f64)));
    }
    l
}

/// Renders `events` as a Chrome-loadable trace. Returns the full file
/// contents.
pub fn write_chrome_trace(events: &[GcEvent]) -> String {
    let mut out = String::from("[\n");
    // Collection begin timestamps, for pairing with their ends.
    let mut begins: HashMap<u64, (u64, &'static str)> = HashMap::new();
    for ev in events {
        // Heap samples expand to one counter line per series.
        if let GcEvent::HeapSample {
            t_ns,
            heap_words,
            live_words,
            nursery_words,
            in_flight,
        } = *ev
        {
            for (name, v) in [
                ("heap_words", heap_words),
                ("live_words", live_words),
                ("nursery_words", nursery_words),
                ("in_flight_requests", u64::from(in_flight)),
            ] {
                out.push_str(&counter_line(name, us(t_ns), v).to_json());
                out.push_str(",\n");
            }
            continue;
        }
        // Backlog samples likewise expand to one counter line per series.
        if let GcEvent::BacklogSample {
            t_ns,
            queued,
            waiting,
            watermark,
        } = *ev
        {
            for (name, v) in [
                ("backlog_queued", u64::from(queued)),
                ("backlog_waiting", u64::from(waiting)),
                ("watermark_level", u64::from(watermark)),
            ] {
                out.push_str(&counter_line(name, us(t_ns), v).to_json());
                out.push_str(",\n");
            }
            continue;
        }
        // Breaker transitions get a per-kind state counter track in
        // addition to the instant event the match below emits.
        if let Some((t_ns, kind, level)) = match *ev {
            GcEvent::BreakerOpen { t_ns, kind, .. } => Some((t_ns, kind, 2)),
            GcEvent::BreakerHalfOpen { t_ns, kind } => Some((t_ns, kind, 1)),
            GcEvent::BreakerClose { t_ns, kind } => Some((t_ns, kind, 0)),
            _ => None,
        } {
            let line = counter_line(&format!("breaker_state_k{kind}"), us(t_ns), level);
            out.push_str(&line.to_json());
            out.push_str(",\n");
        }
        let line = match *ev {
            GcEvent::CollectionBegin {
                t_ns,
                seq,
                strategy,
                ..
            } => {
                begins.insert(seq, (t_ns, strategy));
                None
            }
            GcEvent::CollectionEnd {
                t_ns,
                seq,
                kind,
                pause_ns,
                heap_used_after,
                words_copied,
                frames_visited,
                ..
            } => {
                let (start, strategy) = begins
                    .remove(&seq)
                    .unwrap_or((t_ns.saturating_sub(pause_ns), "?"));
                Some(trace_line(
                    &format!("gc #{seq}"),
                    "gc",
                    "X",
                    us(start),
                    Some(us(pause_ns)),
                    Json::obj([
                        ("strategy", Json::str(strategy)),
                        ("kind", Json::str(kind.name())),
                        ("words_copied", Json::from(words_copied)),
                        ("heap_used_after", Json::from(heap_used_after)),
                        ("frames_visited", Json::from(frames_visited)),
                    ]),
                ))
            }
            GcEvent::Alloc {
                t_ns, site, words, ..
            } => Some(trace_line(
                "alloc",
                "alloc",
                "i",
                us(t_ns),
                None,
                Json::obj([("site", Json::from(site)), ("words", Json::from(words))]),
            )),
            GcEvent::TaskParked { t_ns, task, site } => Some(trace_line(
                &format!("park t{task}"),
                "task",
                "i",
                us(t_ns),
                None,
                Json::obj([("task", Json::from(task)), ("site", Json::from(site))]),
            )),
            GcEvent::TaskResumed { t_ns, task } => Some(trace_line(
                &format!("resume t{task}"),
                "task",
                "i",
                us(t_ns),
                None,
                Json::obj([("task", Json::from(task))]),
            )),
            GcEvent::Phase {
                name,
                start_ns,
                dur_ns,
            } => Some(trace_line(
                name,
                "compile",
                "X",
                us(start_ns),
                Some(us(dur_ns)),
                Json::obj([]),
            )),
            GcEvent::VerificationEnd {
                t_ns,
                seq,
                strategy,
                objects,
                words,
                ok,
            } => Some(trace_line(
                &format!("verify #{seq}"),
                "verify",
                "i",
                us(t_ns),
                None,
                Json::obj([
                    ("strategy", Json::str(strategy)),
                    ("objects", Json::from(objects)),
                    ("words", Json::from(words)),
                    ("ok", Json::Bool(ok)),
                ]),
            )),
            GcEvent::FaultInjected { t_ns, kind, seq } => Some(trace_line(
                &format!("fault {kind}"),
                "fault",
                "i",
                us(t_ns),
                None,
                Json::obj([("kind", Json::str(kind)), ("seq", Json::from(seq))]),
            )),
            GcEvent::HeapGrown {
                t_ns,
                from_words,
                to_words,
            } => Some(trace_line(
                "heap grow",
                "gc",
                "i",
                us(t_ns),
                None,
                Json::obj([
                    ("from_words", Json::from(from_words)),
                    ("to_words", Json::from(to_words)),
                ]),
            )),
            GcEvent::RequestStart {
                t_ns, req, kind, ..
            } => Some(async_line(
                "req",
                "request",
                "b",
                us(t_ns),
                req,
                Json::obj([("req", Json::from(req)), ("kind", Json::from(kind))]),
            )),
            GcEvent::RequestEnd {
                t_ns,
                req,
                latency_ns,
                ok,
                ..
            } => Some(async_line(
                "req",
                "request",
                "e",
                us(t_ns),
                req,
                Json::obj([
                    ("latency_us", Json::Num(us(latency_ns))),
                    ("ok", Json::Bool(ok)),
                ]),
            )),
            GcEvent::RequestShed {
                t_ns, req, reason, ..
            } => Some(trace_line(
                "shed",
                "serve",
                "i",
                us(t_ns),
                None,
                Json::obj([("req", Json::from(req)), ("reason", Json::str(reason))]),
            )),
            GcEvent::DeadlineExceeded {
                t_ns,
                req,
                spent,
                budget,
                unit,
                ..
            } => Some(trace_line(
                "deadline exceeded",
                "serve",
                "i",
                us(t_ns),
                None,
                Json::obj([
                    ("req", Json::from(req)),
                    ("spent", Json::from(spent)),
                    ("budget", Json::from(budget)),
                    ("unit", Json::str(unit)),
                ]),
            )),
            GcEvent::BreakerOpen {
                t_ns,
                kind,
                consecutive,
            } => Some(trace_line(
                &format!("breaker open k{kind}"),
                "serve",
                "i",
                us(t_ns),
                None,
                Json::obj([
                    ("kind", Json::from(kind)),
                    ("consecutive", Json::from(consecutive)),
                ]),
            )),
            GcEvent::BreakerHalfOpen { t_ns, kind } => Some(trace_line(
                &format!("breaker half-open k{kind}"),
                "serve",
                "i",
                us(t_ns),
                None,
                Json::obj([("kind", Json::from(kind))]),
            )),
            GcEvent::BreakerClose { t_ns, kind } => Some(trace_line(
                &format!("breaker close k{kind}"),
                "serve",
                "i",
                us(t_ns),
                None,
                Json::obj([("kind", Json::from(kind))]),
            )),
            GcEvent::FrameVisit { .. }
            | GcEvent::RoutineRun { .. }
            | GcEvent::ObjectCopied { .. }
            | GcEvent::HeapSample { .. }
            | GcEvent::BacklogSample { .. } => None,
        };
        if let Some(l) = line {
            out.push_str(&l.to_json());
            out.push_str(",\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_events() -> Vec<GcEvent> {
        vec![
            GcEvent::Phase {
                name: "parse",
                start_ns: 0,
                dur_ns: 5_000,
            },
            GcEvent::Alloc {
                t_ns: 10_000,
                site: 3,
                words: 4,
                addr: 0x1000,
            },
            GcEvent::CollectionBegin {
                t_ns: 20_000,
                seq: 0,
                kind: crate::event::CollectionKind::Major,
                strategy: "compiled",
                trigger_site: 3,
                heap_used_before: 64,
            },
            GcEvent::ObjectCopied {
                seq: 0,
                from: 0x1000,
                to: 0x9000,
                words: 4,
            },
            GcEvent::CollectionEnd {
                t_ns: 45_000,
                seq: 0,
                kind: crate::event::CollectionKind::Major,
                pause_ns: 25_000,
                heap_used_after: 4,
                words_copied: 4,
                frames_visited: 2,
                routine_invocations: 2,
                rt_nodes_built: 0,
                rt_cache_hits: 0,
                rt_cache_misses: 0,
                plan_hits: 0,
                plan_misses: 0,
                plans_compiled: 0,
            },
            GcEvent::TaskParked {
                t_ns: 50_000,
                task: 1,
                site: 3,
            },
            GcEvent::TaskResumed {
                t_ns: 60_000,
                task: 1,
            },
        ]
    }

    #[test]
    fn every_line_is_json_and_the_array_loads() {
        let text = write_chrome_trace(&sample_events());
        assert!(text.starts_with("[\n"));
        // Line-wise: each non-bracket line is a complete JSON object.
        let mut n = 0;
        for line in text.lines().skip(1) {
            let line = line.trim_end_matches(',');
            if line.is_empty() {
                continue;
            }
            let v = json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            assert!(v.get("ph").is_some());
            assert!(v.get("ts").is_some());
            n += 1;
        }
        // Phase + alloc + gc + park + resume (copies/frames not emitted).
        assert_eq!(n, 5);
        // Whole-file: closing the array makes it strict JSON, as
        // Chrome's tolerant parser effectively does.
        let closed = format!("{}]", text.trim_end().trim_end_matches(','));
        let doc = json::parse(&closed).expect("array form parses");
        assert_eq!(doc.as_arr().unwrap().len(), 5);
    }

    /// Counter events: each heap sample expands to the three counter
    /// series, every counter line is well-formed `"ph": "C"` with a
    /// numeric value, and counters appear in non-decreasing timestamp
    /// order (the loading-order contract — Chrome sorts by `ts`, but a
    /// monotone file round-trips bit-identically and diffs cleanly).
    #[test]
    fn counter_events_are_ordered_and_complete() {
        let evs = vec![
            GcEvent::HeapSample {
                t_ns: 10_000,
                heap_words: 512,
                live_words: 128,
                nursery_words: 32,
                in_flight: 4,
            },
            GcEvent::RequestStart {
                t_ns: 12_000,
                req: 0,
                task: 1,
                kind: 2,
            },
            GcEvent::HeapSample {
                t_ns: 20_000,
                heap_words: 640,
                live_words: 130,
                nursery_words: 48,
                in_flight: 4,
            },
            GcEvent::RequestEnd {
                t_ns: 26_000,
                req: 0,
                task: 1,
                latency_ns: 14_000,
                ok: true,
            },
            GcEvent::HeapSample {
                t_ns: 30_000,
                heap_words: 64,
                live_words: 64,
                nursery_words: 0,
                in_flight: 3,
            },
        ];
        let text = write_chrome_trace(&evs);
        let mut counters: Vec<(String, f64, f64)> = Vec::new();
        let mut asyncs = 0;
        for line in text.lines().skip(1) {
            let line = line.trim_end_matches(',');
            if line.is_empty() {
                continue;
            }
            let v = json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            match v.get("ph") {
                Some(Json::Str(ph)) if ph == "C" => {
                    let name = match v.get("name") {
                        Some(Json::Str(n)) => n.clone(),
                        other => panic!("counter without name: {other:?}"),
                    };
                    let ts = v.get("ts").unwrap().as_f64().unwrap();
                    let value = v
                        .get("args")
                        .and_then(|a| a.get("value"))
                        .and_then(Json::as_f64)
                        .expect("counter value is numeric");
                    counters.push((name, ts, value));
                }
                Some(Json::Str(ph)) if ph == "b" || ph == "e" => {
                    assert!(v.get("id").is_some(), "async events carry an id");
                    asyncs += 1;
                }
                _ => {}
            }
        }
        // Four series per sample, three samples.
        assert_eq!(counters.len(), 12);
        for series in [
            "heap_words",
            "live_words",
            "nursery_words",
            "in_flight_requests",
        ] {
            let ts: Vec<f64> = counters
                .iter()
                .filter(|(n, _, _)| n == series)
                .map(|(_, t, _)| *t)
                .collect();
            assert_eq!(ts.len(), 3, "{series}");
            assert!(
                ts.windows(2).all(|w| w[0] <= w[1]),
                "{series} counters out of loading order: {ts:?}"
            );
        }
        // The last sample's values made it through.
        let last_heap = counters
            .iter()
            .rfind(|(n, _, _)| n == "heap_words")
            .unwrap();
        assert_eq!(last_heap.2, 64.0);
        assert_eq!(asyncs, 2, "request start + end exported as async pair");
    }

    /// Overload tracks: backlog samples expand to their three counter
    /// series in loading order, breaker transitions produce both a
    /// per-kind state counter and an instant event, and sheds/deadline
    /// breaches export as instants.
    #[test]
    fn overload_counter_tracks_are_ordered_and_complete() {
        let evs = vec![
            GcEvent::BacklogSample {
                t_ns: 10_000,
                queued: 2,
                waiting: 4,
                watermark: 0,
            },
            GcEvent::RequestShed {
                t_ns: 12_000,
                req: 7,
                kind: 1,
                reason: "queue-full",
            },
            GcEvent::BreakerOpen {
                t_ns: 14_000,
                kind: 1,
                consecutive: 3,
            },
            GcEvent::BacklogSample {
                t_ns: 20_000,
                queued: 5,
                waiting: 1,
                watermark: 2,
            },
            GcEvent::DeadlineExceeded {
                t_ns: 22_000,
                req: 3,
                task: 0,
                spent: 40,
                budget: 32,
                unit: "quanta",
            },
            GcEvent::BreakerHalfOpen {
                t_ns: 24_000,
                kind: 1,
            },
            GcEvent::BreakerClose {
                t_ns: 26_000,
                kind: 1,
            },
            GcEvent::BacklogSample {
                t_ns: 30_000,
                queued: 0,
                waiting: 0,
                watermark: 0,
            },
        ];
        let text = write_chrome_trace(&evs);
        let mut counters: Vec<(String, f64, f64)> = Vec::new();
        let mut instants: Vec<String> = Vec::new();
        for line in text.lines().skip(1) {
            let line = line.trim_end_matches(',');
            if line.is_empty() {
                continue;
            }
            let v = json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            let name = match v.get("name") {
                Some(Json::Str(n)) => n.clone(),
                other => panic!("line without name: {other:?}"),
            };
            match v.get("ph") {
                Some(Json::Str(ph)) if ph == "C" => {
                    let ts = v.get("ts").unwrap().as_f64().unwrap();
                    let value = v
                        .get("args")
                        .and_then(|a| a.get("value"))
                        .and_then(Json::as_f64)
                        .expect("counter value is numeric");
                    counters.push((name, ts, value));
                }
                Some(Json::Str(ph)) if ph == "i" => instants.push(name),
                _ => {}
            }
        }
        // Three series per backlog sample, three samples, plus three
        // breaker-state counter points.
        for series in ["backlog_queued", "backlog_waiting", "watermark_level"] {
            let pts: Vec<(f64, f64)> = counters
                .iter()
                .filter(|(n, _, _)| n == series)
                .map(|(_, t, v)| (*t, *v))
                .collect();
            assert_eq!(pts.len(), 3, "{series}");
            assert!(
                pts.windows(2).all(|w| w[0].0 <= w[1].0),
                "{series} counters out of loading order: {pts:?}"
            );
        }
        let breaker: Vec<(f64, f64)> = counters
            .iter()
            .filter(|(n, _, _)| n == "breaker_state_k1")
            .map(|(_, t, v)| (*t, *v))
            .collect();
        assert_eq!(
            breaker,
            vec![(14.0, 2.0), (24.0, 1.0), (26.0, 0.0)],
            "open → half-open → closed renders as 2 → 1 → 0"
        );
        // Watermark values survived the expansion.
        let wm: Vec<f64> = counters
            .iter()
            .filter(|(n, _, _)| n == "watermark_level")
            .map(|(_, _, v)| *v)
            .collect();
        assert_eq!(wm, vec![0.0, 2.0, 0.0]);
        for inst in [
            "shed",
            "deadline exceeded",
            "breaker open k1",
            "breaker half-open k1",
            "breaker close k1",
        ] {
            assert!(
                instants.iter().any(|n| n == inst),
                "missing instant {inst}: {instants:?}"
            );
        }
    }

    #[test]
    fn gc_duration_event_pairs_begin_end() {
        let text = write_chrome_trace(&sample_events());
        let gc_line = text
            .lines()
            .find(|l| l.contains("\"gc #0\""))
            .expect("gc event present");
        let v = json::parse(gc_line.trim_end_matches(',')).unwrap();
        assert_eq!(v.get("ph").unwrap(), &Json::str("X"));
        assert_eq!(v.get("ts").unwrap().as_f64(), Some(20.0)); // µs
        assert_eq!(v.get("dur").unwrap().as_f64(), Some(25.0)); // µs
    }
}
