//! Structured runtime events.
//!
//! Identifiers are raw integers (`CallSiteId.0`, `FnId.0`, thread
//! indexes) so this crate sits below every runtime crate in the
//! dependency graph. Timestamps are nanoseconds since the owning
//! [`crate::Obs`] was created; they never feed back into program
//! behavior, only into exported traces.

/// Whether a collection was a generational nursery cycle or a full
/// semispace flip. Single-generation heaps only ever run `Major`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectionKind {
    /// Nursery-only cycle: roots traced, survivors evacuated to the
    /// survivor half or promoted to tenured; tenured space untouched.
    Minor,
    /// Full semispace flip (the nursery, if any, is evacuated too).
    Major,
}

impl CollectionKind {
    /// A short stable name (trace/export labels).
    pub fn name(self) -> &'static str {
        match self {
            CollectionKind::Minor => "minor",
            CollectionKind::Major => "major",
        }
    }
}

/// One observable runtime occurrence.
#[derive(Debug, Clone, PartialEq)]
pub enum GcEvent {
    /// A collection is starting. `seq` numbers collections from 0 within
    /// a run; `strategy` is the collector's display name.
    CollectionBegin {
        t_ns: u64,
        seq: u64,
        kind: CollectionKind,
        strategy: &'static str,
        /// The call/allocation site the triggering task is suspended at.
        trigger_site: u32,
        /// From-space words in use when the collection started.
        heap_used_before: u64,
    },
    /// The matching end of `CollectionBegin { seq }`.
    CollectionEnd {
        t_ns: u64,
        seq: u64,
        kind: CollectionKind,
        pause_ns: u64,
        /// Live words after the flip.
        heap_used_after: u64,
        /// Words copied by this collection alone.
        words_copied: u64,
        /// Activation records visited by this collection alone.
        frames_visited: u64,
        /// Frame-routine invocations by this collection alone.
        routine_invocations: u64,
        /// type_gc_routine closure nodes built by this collection alone
        /// (§3's metadata-construction cost).
        rt_nodes_built: u64,
        /// GC-time metadata cache hits by this collection alone.
        rt_cache_hits: u64,
        /// GC-time metadata cache misses by this collection alone.
        rt_cache_misses: u64,
        /// Trace-plan lookups resolved from the plan store by this
        /// collection alone.
        plan_hits: u64,
        /// Trace-plan lookups that had to lower a new plan by this
        /// collection alone.
        plan_misses: u64,
        /// Trace plans lowered by this collection alone.
        plans_compiled: u64,
    },
    /// The collector visited one activation record.
    FrameVisit { seq: u64, fn_id: u32, site: u32 },
    /// The collector ran the frame routine selected by a site's gc_word.
    RoutineRun { seq: u64, site: u32, ops: u32 },
    /// The collector copied one object to to-space. `from`/`to` are
    /// absolute heap addresses; `words` is the copied size including any
    /// header/discriminant words.
    ObjectCopied {
        seq: u64,
        from: u64,
        to: u64,
        words: u32,
    },
    /// The mutator allocated an object. `words` is the total footprint
    /// (payload plus header words, where the encoding has them); `addr`
    /// is the object's absolute address, used for survivor attribution.
    Alloc {
        t_ns: u64,
        site: u32,
        words: u32,
        addr: u64,
    },
    /// A task parked at a safe point for a pending collection (§4).
    TaskParked { t_ns: u64, task: u32, site: u32 },
    /// A parked task resumed after a collection.
    TaskResumed { t_ns: u64, task: u32 },
    /// A front-end pipeline phase (parse, elaborate, lower, analyze) or
    /// metadata build, with its start offset and duration.
    Phase {
        name: &'static str,
        start_ns: u64,
        dur_ns: u64,
    },
    /// The post-collection heap verifier finished its walk of collection
    /// `seq`'s surviving graph.
    VerificationEnd {
        t_ns: u64,
        seq: u64,
        strategy: &'static str,
        /// Reachable objects visited by the verifier.
        objects: u64,
        /// Reachable payload words visited by the verifier.
        words: u64,
        /// False = a heap-invariant violation was found (the run is about
        /// to surface a structured error).
        ok: bool,
    },
    /// A configured deterministic fault fired (`kind` names the fault
    /// class; `seq` is the allocation sequence number it keyed on).
    FaultInjected {
        t_ns: u64,
        kind: &'static str,
        seq: u64,
    },
    /// The heap grew under the bounded growth policy (semispace capacity
    /// in words, before and after).
    HeapGrown {
        t_ns: u64,
        from_words: u64,
        to_words: u64,
    },
    /// Serve mode: a request was dispatched into a task-pool slot. `req`
    /// numbers requests from 0 within a service run; `kind` is the
    /// traffic-mix class the driver assigned.
    RequestStart {
        t_ns: u64,
        req: u64,
        task: u32,
        kind: u32,
    },
    /// The matching completion of `RequestStart { req }`. `ok` is false
    /// when the request was quarantined with a per-task error.
    RequestEnd {
        t_ns: u64,
        req: u64,
        task: u32,
        latency_ns: u64,
        ok: bool,
    },
    /// Serve mode: a heap-occupancy sample, taken on the scheduler's
    /// deterministic cadence (quantum counts and request boundaries, not
    /// wall clock). `heap_words` is from-space in use, `live_words` the
    /// survivors of the most recent collection, `in_flight` the number
    /// of pool slots with an active request, `nursery_words` the
    /// generational nursery's bump position (0 in single-generation
    /// mode).
    HeapSample {
        t_ns: u64,
        heap_words: u64,
        live_words: u64,
        nursery_words: u64,
        in_flight: u32,
    },
    /// Overload management: a request was shed at admission instead of
    /// dispatched. `reason` is one of `queue-full`, `hard-watermark`,
    /// `soft-watermark`, `breaker-open`, `backoff-exhausted`, `degrade`,
    /// `drain`.
    RequestShed {
        t_ns: u64,
        req: u64,
        kind: u32,
        reason: &'static str,
    },
    /// A request exceeded its deadline (quanta) or fuel (instructions)
    /// budget and was quarantined at a quantum boundary.
    DeadlineExceeded {
        t_ns: u64,
        req: u64,
        task: u32,
        spent: u64,
        budget: u64,
        /// `"quanta"` or `"instructions"`.
        unit: &'static str,
    },
    /// A handler kind's circuit breaker opened after `consecutive`
    /// quarantines in a row; admissions of that kind fast-reject until
    /// the cooldown elapses.
    BreakerOpen {
        t_ns: u64,
        kind: u32,
        consecutive: u32,
    },
    /// The breaker's cooldown elapsed; one probe request is admitted.
    BreakerHalfOpen { t_ns: u64, kind: u32 },
    /// The half-open probe completed cleanly; the breaker closed.
    BreakerClose { t_ns: u64, kind: u32 },
    /// Overload management: a backlog sample on the same deterministic
    /// cadence as [`GcEvent::HeapSample`]. `queued` counts admitted
    /// requests waiting for a slot, `waiting` counts arrivals deferred by
    /// backoff/throttling, `watermark` is the heap-pressure level
    /// (0 = normal, 1 = soft, 2 = hard).
    BacklogSample {
        t_ns: u64,
        queued: u32,
        waiting: u32,
        watermark: u8,
    },
}

impl GcEvent {
    /// A short stable name for the event kind (trace/export labels).
    pub fn kind(&self) -> &'static str {
        match self {
            GcEvent::CollectionBegin { .. } => "collection_begin",
            GcEvent::CollectionEnd { .. } => "collection_end",
            GcEvent::FrameVisit { .. } => "frame_visit",
            GcEvent::RoutineRun { .. } => "routine_run",
            GcEvent::ObjectCopied { .. } => "object_copied",
            GcEvent::Alloc { .. } => "alloc",
            GcEvent::TaskParked { .. } => "task_parked",
            GcEvent::TaskResumed { .. } => "task_resumed",
            GcEvent::Phase { .. } => "phase",
            GcEvent::VerificationEnd { .. } => "verification_end",
            GcEvent::FaultInjected { .. } => "fault_injected",
            GcEvent::HeapGrown { .. } => "heap_grown",
            GcEvent::RequestStart { .. } => "request_start",
            GcEvent::RequestEnd { .. } => "request_end",
            GcEvent::HeapSample { .. } => "heap_sample",
            GcEvent::RequestShed { .. } => "request_shed",
            GcEvent::DeadlineExceeded { .. } => "deadline_exceeded",
            GcEvent::BreakerOpen { .. } => "breaker_open",
            GcEvent::BreakerHalfOpen { .. } => "breaker_half_open",
            GcEvent::BreakerClose { .. } => "breaker_close",
            GcEvent::BacklogSample { .. } => "backlog_sample",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        let evs = [
            GcEvent::FrameVisit {
                seq: 0,
                fn_id: 0,
                site: 0,
            },
            GcEvent::RoutineRun {
                seq: 0,
                site: 0,
                ops: 0,
            },
            GcEvent::TaskResumed { t_ns: 0, task: 0 },
        ];
        let mut kinds: Vec<&str> = evs.iter().map(|e| e.kind()).collect();
        kinds.dedup();
        assert_eq!(kinds.len(), evs.len());
    }
}
