//! Event sinks and the [`Obs`] handle the runtime threads through.

use crate::event::GcEvent;
use crate::ring::RingRecorder;
use crate::serve::ServeRecorder;
use std::time::Instant;

/// Where runtime events go.
///
/// Implementations must not assume anything about event ordering beyond:
/// `CollectionBegin { seq }` precedes every event of that collection,
/// which precede its `CollectionEnd { seq }`.
pub trait GcEventSink {
    /// Accepts one event.
    fn record(&mut self, ev: GcEvent);
}

/// Drops every event. Exists so code can be written against
/// [`GcEventSink`] uniformly; the runtime's disabled path uses
/// [`Obs::null`], which never even constructs the event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl GcEventSink for NullSink {
    fn record(&mut self, _ev: GcEvent) {}
}

enum SinkKind {
    /// No observation: `emit` is one branch, the event closure never
    /// runs.
    Null,
    /// The standard in-memory recorder.
    Ring(Box<RingRecorder>),
    /// The serve-mode recorder (a ring plus steady-state aggregates).
    Serve(Box<ServeRecorder>),
    /// A caller-provided sink.
    Custom(Box<dyn GcEventSink>),
}

impl std::fmt::Debug for SinkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SinkKind::Null => write!(f, "Null"),
            SinkKind::Ring(r) => write!(f, "Ring(cap {})", r.capacity()),
            SinkKind::Serve(s) => write!(f, "Serve(cap {})", s.ring().capacity()),
            SinkKind::Custom(_) => write!(f, "Custom"),
        }
    }
}

/// The observability handle owned by a VM (and lent to the collectors
/// and scheduler). Cheap to pass around; the null variant costs one
/// branch per emission site.
#[derive(Debug)]
pub struct Obs {
    sink: SinkKind,
    epoch: Instant,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::null()
    }
}

impl Obs {
    /// No observation (the default for every run that doesn't ask).
    pub fn null() -> Obs {
        Obs {
            sink: SinkKind::Null,
            epoch: Instant::now(),
        }
    }

    /// Records into a [`RingRecorder`] keeping at most `capacity` raw
    /// events (aggregates are unbounded and exact).
    pub fn ring(capacity: usize) -> Obs {
        Obs {
            sink: SinkKind::Ring(Box::new(RingRecorder::new(capacity))),
            epoch: Instant::now(),
        }
    }

    /// Records into a caller-provided sink.
    pub fn custom(sink: Box<dyn GcEventSink>) -> Obs {
        Obs {
            sink: SinkKind::Custom(sink),
            epoch: Instant::now(),
        }
    }

    /// Records into a [`ServeRecorder`] (serve-mode steady-state
    /// metrics layered over a ring of `capacity` raw events, windowed
    /// at `window_ns`).
    pub fn serve(capacity: usize, window_ns: u64) -> Obs {
        Obs {
            sink: SinkKind::Serve(Box::new(ServeRecorder::new(capacity, window_ns))),
            epoch: Instant::now(),
        }
    }

    /// Is any sink attached? Emission sites with nontrivial setup (e.g.
    /// assembling per-collection deltas) may skip it when disabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        !matches!(self.sink, SinkKind::Null)
    }

    /// Nanoseconds since this handle was created (the timestamp base of
    /// every emitted event).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Emits the event produced by `f`, which receives the current
    /// timestamp. When disabled, `f` is not called — emission is a
    /// single branch.
    #[inline]
    pub fn emit(&mut self, f: impl FnOnce(u64) -> GcEvent) {
        match &mut self.sink {
            SinkKind::Null => {}
            SinkKind::Ring(r) => {
                let t = self.epoch.elapsed().as_nanos() as u64;
                r.record(f(t));
            }
            SinkKind::Serve(s) => {
                let t = self.epoch.elapsed().as_nanos() as u64;
                s.record(f(t));
            }
            SinkKind::Custom(s) => {
                let t = self.epoch.elapsed().as_nanos() as u64;
                s.record(f(t));
            }
        }
    }

    /// The attached recorder, if this handle records into one (the
    /// serve sink exposes its wrapped ring).
    pub fn recorder(&self) -> Option<&RingRecorder> {
        match &self.sink {
            SinkKind::Ring(r) => Some(r),
            SinkKind::Serve(s) => Some(s.ring()),
            _ => None,
        }
    }

    /// Consumes the handle, returning its recorder if any (the serve
    /// sink yields its wrapped ring).
    pub fn into_recorder(self) -> Option<RingRecorder> {
        match self.sink {
            SinkKind::Ring(r) => Some(*r),
            SinkKind::Serve(s) => Some(s.into_ring()),
            _ => None,
        }
    }

    /// The attached serve recorder, if this is a serve-mode handle.
    pub fn serve_recorder(&self) -> Option<&ServeRecorder> {
        match &self.sink {
            SinkKind::Serve(s) => Some(s),
            _ => None,
        }
    }

    /// Consumes the handle, returning its serve recorder if any.
    pub fn into_serve_recorder(self) -> Option<ServeRecorder> {
        match self.sink {
            SinkKind::Serve(s) => Some(*s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn null_never_runs_the_closure() {
        let mut obs = Obs::null();
        assert!(!obs.enabled());
        let ran = Rc::new(Cell::new(false));
        let flag = ran.clone();
        obs.emit(move |_| {
            flag.set(true);
            GcEvent::TaskResumed { t_ns: 0, task: 0 }
        });
        assert!(!ran.get(), "disabled emit must not construct events");
        assert!(obs.recorder().is_none());
    }

    #[test]
    fn ring_records_events() {
        let mut obs = Obs::ring(16);
        assert!(obs.enabled());
        obs.emit(|t| GcEvent::TaskResumed { t_ns: t, task: 7 });
        let rec = obs.recorder().unwrap();
        assert_eq!(rec.events().len(), 1);
        assert!(matches!(
            rec.events()[0],
            GcEvent::TaskResumed { task: 7, .. }
        ));
    }

    #[test]
    fn custom_sink_receives_events() {
        struct Count(Rc<Cell<u32>>);
        impl GcEventSink for Count {
            fn record(&mut self, _ev: GcEvent) {
                self.0.set(self.0.get() + 1);
            }
        }
        let n = Rc::new(Cell::new(0));
        let mut obs = Obs::custom(Box::new(Count(n.clone())));
        obs.emit(|t| GcEvent::TaskResumed { t_ns: t, task: 0 });
        obs.emit(|t| GcEvent::TaskResumed { t_ns: t, task: 1 });
        assert_eq!(n.get(), 2);
    }
}
