//! Steady-state service metrics (serve mode).
//!
//! One-shot runs answer "how much did the whole run cost"; a request
//! server has to answer "what does the *mutator* experience while the
//! collector runs underneath it". This module aggregates the serve-mode
//! event stream into that shape:
//!
//! * a per-request latency [`Histogram`] (from `RequestEnd` events);
//! * windowed steady-state metrics — per fixed wall-clock window, the
//!   allocation rate, collection count, request completions, and the
//!   pause distribution inside the window;
//! * the heap-occupancy / live-words / in-flight timeline (from
//!   `HeapSample` events), with deterministic peaks;
//! * overload metrics — shed counts by reason, goodput and shed-rate,
//!   deadline breaches, circuit-breaker transition counts, and the
//!   admission-backlog / watermark timeline (from `RequestShed`,
//!   `DeadlineExceeded`, `Breaker*`, and `BacklogSample` events);
//! * a minimum-mutator-utilization (MMU) metric computed from the pause
//!   intervals: for a window size `w`, the smallest fraction of any
//!   length-`w` wall-clock interval the mutator got to run.
//!
//! [`ServeRecorder`] wraps a [`RingRecorder`], so everything the ring
//! offers (raw events for Chrome export, pause/alloc histograms, site
//! profiles, collection summaries) stays available; the serve-specific
//! aggregates layer on top. Like every sink it is passive: it only reads
//! the event stream, never feeds anything back into the run.

use crate::event::GcEvent;
use crate::hist::Histogram;
use crate::json::Json;
use crate::ring::{hist_json, RingRecorder};
use crate::sink::GcEventSink;
use std::collections::BTreeMap;

/// Windows tracked per run; later events fold into the last window so
/// the recorder stays bounded even under a clock anomaly.
const MAX_WINDOWS: usize = 1 << 14;

/// Aggregates for one fixed wall-clock window of a service run.
#[derive(Debug, Clone, Default)]
pub struct ServeWindow {
    /// Successful allocations in the window.
    pub allocs: u64,
    /// Words allocated in the window (allocation rate = words / window).
    pub alloc_words: u64,
    /// Collections that *ended* in the window.
    pub collections: u64,
    /// Requests completed (ok or failed) in the window.
    pub requests_completed: u64,
    /// Requests shed by admission control in the window.
    pub requests_shed: u64,
    /// Pause distribution of the window's collections.
    pub pause: Histogram,
}

/// One stop-the-world interval: the collection ended at `end_ns` having
/// paused every task for the preceding `pause_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PauseInterval {
    pub end_ns: u64,
    pub pause_ns: u64,
}

/// One point of the occupancy timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyPoint {
    pub t_ns: u64,
    pub heap_words: u64,
    pub live_words: u64,
    /// Generational nursery words in use (0 in single-generation mode).
    pub nursery_words: u64,
    pub in_flight: u32,
}

/// One point of the admission-backlog timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BacklogPoint {
    pub t_ns: u64,
    /// Admitted requests waiting for a pool slot.
    pub queued: u32,
    /// Arrivals deferred by backoff or throttling.
    pub waiting: u32,
    /// Heap-pressure level: 0 = normal, 1 = soft, 2 = hard.
    pub watermark: u8,
}

/// Circuit-breaker transition counts across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerCounts {
    pub opens: u64,
    pub half_opens: u64,
    pub closes: u64,
}

/// The serve-mode sink: a [`RingRecorder`] plus steady-state aggregates.
#[derive(Debug, Clone)]
pub struct ServeRecorder {
    ring: RingRecorder,
    window_ns: u64,
    windows: Vec<ServeWindow>,
    latency: Histogram,
    pauses: Vec<PauseInterval>,
    /// Pause distribution of minor (nursery-only) collections alone.
    minor_pause: Histogram,
    /// Pause distribution of major (full-flip) collections alone.
    major_pause: Histogram,
    samples: Vec<OccupancyPoint>,
    started: u64,
    completed: u64,
    failed: u64,
    shed: u64,
    shed_reasons: BTreeMap<&'static str, u64>,
    deadline_exceeded: u64,
    breaker: BreakerCounts,
    backlog: Vec<BacklogPoint>,
    max_queued: u32,
    max_waiting: u32,
    /// Backlog samples at each watermark level (`[normal, soft, hard]`).
    watermark_samples: [u64; 3],
    peak_heap_words: u64,
    peak_live_words: u64,
    peak_nursery_words: u64,
    max_in_flight: u32,
    /// Largest timestamp seen — the run's wall-clock extent.
    last_t_ns: u64,
}

impl ServeRecorder {
    /// A recorder retaining at most `ring_capacity` raw events and
    /// bucketing steady-state metrics into `window_ns` wall-clock
    /// windows.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is 0.
    pub fn new(ring_capacity: usize, window_ns: u64) -> ServeRecorder {
        assert!(window_ns > 0, "window_ns must be positive");
        ServeRecorder {
            ring: RingRecorder::new(ring_capacity),
            window_ns,
            windows: Vec::new(),
            latency: Histogram::new(),
            pauses: Vec::new(),
            minor_pause: Histogram::new(),
            major_pause: Histogram::new(),
            samples: Vec::new(),
            started: 0,
            completed: 0,
            failed: 0,
            shed: 0,
            shed_reasons: BTreeMap::new(),
            deadline_exceeded: 0,
            breaker: BreakerCounts::default(),
            backlog: Vec::new(),
            max_queued: 0,
            max_waiting: 0,
            watermark_samples: [0; 3],
            peak_heap_words: 0,
            peak_live_words: 0,
            peak_nursery_words: 0,
            max_in_flight: 0,
            last_t_ns: 0,
        }
    }

    /// The wrapped ring recorder (raw events and general aggregates).
    pub fn ring(&self) -> &RingRecorder {
        &self.ring
    }

    /// Consumes the recorder, returning the wrapped ring.
    pub fn into_ring(self) -> RingRecorder {
        self.ring
    }

    /// Per-request latency distribution in nanoseconds.
    pub fn latency_hist(&self) -> &Histogram {
        &self.latency
    }

    /// Whole-run pause distribution (delegates to the ring).
    pub fn pause_hist(&self) -> &Histogram {
        self.ring.pause_hist()
    }

    /// Pause distribution of minor (nursery-only) collections alone.
    /// Empty in single-generation runs.
    pub fn minor_pause_hist(&self) -> &Histogram {
        &self.minor_pause
    }

    /// Pause distribution of major (full-flip) collections alone.
    pub fn major_pause_hist(&self) -> &Histogram {
        &self.major_pause
    }

    /// The steady-state windows, oldest first. Window `i` covers
    /// `[i * window_ns, (i + 1) * window_ns)`.
    pub fn windows(&self) -> &[ServeWindow] {
        &self.windows
    }

    /// The configured window width in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// The stop-the-world intervals, in completion order.
    pub fn pauses(&self) -> &[PauseInterval] {
        &self.pauses
    }

    /// The occupancy timeline.
    pub fn samples(&self) -> &[OccupancyPoint] {
        &self.samples
    }

    /// Requests dispatched / completed / failed.
    pub fn requests(&self) -> (u64, u64, u64) {
        (self.started, self.completed, self.failed)
    }

    /// Requests shed by admission control.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Shed counts by reason, sorted by reason name.
    pub fn shed_by_reason(&self) -> &BTreeMap<&'static str, u64> {
        &self.shed_reasons
    }

    /// Requests quarantined for breaching a deadline or fuel budget.
    pub fn deadline_exceeded(&self) -> u64 {
        self.deadline_exceeded
    }

    /// Circuit-breaker transition counts.
    pub fn breaker_counts(&self) -> BreakerCounts {
        self.breaker
    }

    /// The admission-backlog timeline.
    pub fn backlog(&self) -> &[BacklogPoint] {
        &self.backlog
    }

    /// Deepest sampled admitted queue and deferred-arrival backlog.
    pub fn peak_backlog(&self) -> (u32, u32) {
        (self.max_queued, self.max_waiting)
    }

    /// Backlog samples taken at each watermark level
    /// (`[normal, soft, hard]`).
    pub fn watermark_samples(&self) -> [u64; 3] {
        self.watermark_samples
    }

    /// Completed requests as a fraction of all submitted work
    /// (completed + failed + shed) — the run's goodput. 1.0 with no
    /// traffic.
    pub fn goodput(&self) -> f64 {
        let submitted = self.completed + self.failed + self.shed;
        if submitted == 0 {
            return 1.0;
        }
        self.completed as f64 / submitted as f64
    }

    /// Shed requests as a fraction of all submitted work. 0.0 with no
    /// traffic.
    pub fn shed_rate(&self) -> f64 {
        let submitted = self.completed + self.failed + self.shed;
        if submitted == 0 {
            return 0.0;
        }
        self.shed as f64 / submitted as f64
    }

    /// Peak sampled from-space occupancy in words (deterministic: samples
    /// are taken at deterministic scheduler points).
    pub fn peak_heap_words(&self) -> u64 {
        self.peak_heap_words
    }

    /// Peak sampled live words.
    pub fn peak_live_words(&self) -> u64 {
        self.peak_live_words
    }

    /// Peak sampled nursery occupancy in words (0 in single-generation
    /// runs).
    pub fn peak_nursery_words(&self) -> u64 {
        self.peak_nursery_words
    }

    /// Most pool slots simultaneously holding an active request.
    pub fn max_in_flight(&self) -> u32 {
        self.max_in_flight
    }

    fn window_mut(&mut self, t_ns: u64) -> &mut ServeWindow {
        let ix = ((t_ns / self.window_ns) as usize).min(MAX_WINDOWS - 1);
        if ix >= self.windows.len() {
            self.windows.resize_with(ix + 1, ServeWindow::default);
        }
        &mut self.windows[ix]
    }

    fn touch(&mut self, t_ns: u64) {
        self.last_t_ns = self.last_t_ns.max(t_ns);
    }

    /// Overall mutator utilization: the fraction of the run's wall-clock
    /// extent not spent inside a stop-the-world pause. 1.0 for a run
    /// with no pauses (or no events at all).
    pub fn utilization(&self) -> f64 {
        if self.last_t_ns == 0 {
            return 1.0;
        }
        let paused: u128 = self.pauses.iter().map(|p| u128::from(p.pause_ns)).sum();
        let total = u128::from(self.last_t_ns);
        let frac = 1.0 - (paused.min(total) as f64 / total as f64);
        frac.clamp(0.0, 1.0)
    }

    /// Minimum mutator utilization for window size `w_ns`: over every
    /// wall-clock interval of length `w_ns` inside the run, the smallest
    /// fraction left to the mutator after subtracting pause overlap.
    /// The minimum is attained with a window edge on a pause boundary,
    /// so only those candidate placements are examined (O(P²) in the
    /// pause count, which is small). Returns 1.0 when there were no
    /// pauses; falls back to overall utilization when `w_ns` exceeds
    /// the run.
    pub fn mmu(&self, w_ns: u64) -> f64 {
        if self.pauses.is_empty() || self.last_t_ns == 0 || w_ns == 0 {
            return 1.0;
        }
        let total = self.last_t_ns;
        if w_ns >= total {
            return self.utilization();
        }
        let w = w_ns as f64;
        let mut min_util = 1.0f64;
        let mut consider = |start: u64| {
            let start = start.min(total - w_ns);
            let end = start + w_ns;
            let mut overlap = 0u64;
            for p in &self.pauses {
                let p_start = p.end_ns.saturating_sub(p.pause_ns);
                let lo = p_start.max(start);
                let hi = p.end_ns.min(end);
                if hi > lo {
                    overlap += hi - lo;
                }
            }
            let u = 1.0 - (overlap.min(w_ns) as f64 / w);
            if u < min_util {
                min_util = u;
            }
        };
        consider(0);
        for p in &self.pauses {
            let p_start = p.end_ns.saturating_sub(p.pause_ns);
            consider(p_start);
            consider(p.end_ns.saturating_sub(w_ns));
        }
        min_util.clamp(0.0, 1.0)
    }

    /// The serve metrics document. Every field here is wall-clock
    /// derived except the request counts and occupancy peaks; callers
    /// that need a diffable projection keep those separately.
    pub fn serve_json(&self) -> Json {
        let windows = Json::Arr(
            self.windows
                .iter()
                .enumerate()
                .filter(|(_, w)| {
                    w.allocs > 0
                        || w.collections > 0
                        || w.requests_completed > 0
                        || w.requests_shed > 0
                })
                .map(|(i, w)| {
                    Json::obj([
                        ("window", Json::from(i)),
                        ("allocs", Json::from(w.allocs)),
                        ("alloc_words", Json::from(w.alloc_words)),
                        ("collections", Json::from(w.collections)),
                        ("requests_completed", Json::from(w.requests_completed)),
                        ("requests_shed", Json::from(w.requests_shed)),
                        ("pause_p50", Json::from(w.pause.p50())),
                        ("pause_p90", Json::from(w.pause.p90())),
                        ("pause_p99", Json::from(w.pause.p99())),
                        ("pause_max", Json::from(w.pause.max())),
                    ])
                })
                .collect(),
        );
        Json::obj([
            (
                "requests",
                Json::obj([
                    ("started", Json::from(self.started)),
                    ("completed", Json::from(self.completed)),
                    ("failed", Json::from(self.failed)),
                    ("shed", Json::from(self.shed)),
                ]),
            ),
            (
                "overload",
                Json::obj([
                    ("goodput", Json::Num(self.goodput())),
                    ("shed_rate", Json::Num(self.shed_rate())),
                    ("deadline_exceeded", Json::from(self.deadline_exceeded)),
                    (
                        "shed_by_reason",
                        Json::Obj(
                            self.shed_reasons
                                .iter()
                                .map(|(r, n)| (r.to_string(), Json::from(*n)))
                                .collect(),
                        ),
                    ),
                    (
                        "breaker",
                        Json::obj([
                            ("opens", Json::from(self.breaker.opens)),
                            ("half_opens", Json::from(self.breaker.half_opens)),
                            ("closes", Json::from(self.breaker.closes)),
                        ]),
                    ),
                    (
                        "backlog",
                        Json::obj([
                            ("max_queued", Json::from(self.max_queued)),
                            ("max_waiting", Json::from(self.max_waiting)),
                            ("samples", Json::from(self.backlog.len())),
                            (
                                "watermark_samples",
                                Json::Arr(
                                    self.watermark_samples
                                        .iter()
                                        .map(|n| Json::from(*n))
                                        .collect(),
                                ),
                            ),
                        ]),
                    ),
                ]),
            ),
            ("latency_ns", hist_json(&self.latency)),
            ("pause_ns", hist_json(self.ring.pause_hist())),
            ("minor_pause_ns", hist_json(&self.minor_pause)),
            ("major_pause_ns", hist_json(&self.major_pause)),
            (
                "utilization",
                Json::obj([
                    ("overall", Json::Num(self.utilization())),
                    ("mmu_1ms", Json::Num(self.mmu(1_000_000))),
                    ("mmu_10ms", Json::Num(self.mmu(10_000_000))),
                    ("mmu_100ms", Json::Num(self.mmu(100_000_000))),
                ]),
            ),
            (
                "occupancy",
                Json::obj([
                    ("peak_heap_words", Json::from(self.peak_heap_words)),
                    ("peak_live_words", Json::from(self.peak_live_words)),
                    ("peak_nursery_words", Json::from(self.peak_nursery_words)),
                    ("max_in_flight", Json::from(self.max_in_flight)),
                    ("samples", Json::from(self.samples.len())),
                ]),
            ),
            ("window_ns", Json::from(self.window_ns)),
            ("windows", windows),
        ])
    }
}

impl GcEventSink for ServeRecorder {
    fn record(&mut self, ev: GcEvent) {
        match ev {
            GcEvent::Alloc { t_ns, words, .. } => {
                self.touch(t_ns);
                let w = self.window_mut(t_ns);
                w.allocs += 1;
                w.alloc_words += u64::from(words);
            }
            GcEvent::CollectionEnd {
                t_ns,
                kind,
                pause_ns,
                ..
            } => {
                self.touch(t_ns);
                let w = self.window_mut(t_ns);
                w.collections += 1;
                w.pause.record(pause_ns);
                match kind {
                    crate::event::CollectionKind::Minor => self.minor_pause.record(pause_ns),
                    crate::event::CollectionKind::Major => self.major_pause.record(pause_ns),
                }
                self.pauses.push(PauseInterval {
                    end_ns: t_ns,
                    pause_ns,
                });
            }
            GcEvent::RequestStart { t_ns, .. } => {
                self.touch(t_ns);
                self.started += 1;
            }
            GcEvent::RequestEnd {
                t_ns,
                latency_ns,
                ok,
                ..
            } => {
                self.touch(t_ns);
                if ok {
                    self.completed += 1;
                } else {
                    self.failed += 1;
                }
                self.latency.record(latency_ns);
                self.window_mut(t_ns).requests_completed += 1;
            }
            GcEvent::HeapSample {
                t_ns,
                heap_words,
                live_words,
                nursery_words,
                in_flight,
            } => {
                self.touch(t_ns);
                self.peak_heap_words = self.peak_heap_words.max(heap_words);
                self.peak_live_words = self.peak_live_words.max(live_words);
                self.peak_nursery_words = self.peak_nursery_words.max(nursery_words);
                self.max_in_flight = self.max_in_flight.max(in_flight);
                self.samples.push(OccupancyPoint {
                    t_ns,
                    heap_words,
                    live_words,
                    nursery_words,
                    in_flight,
                });
            }
            GcEvent::RequestShed { t_ns, reason, .. } => {
                self.touch(t_ns);
                self.shed += 1;
                *self.shed_reasons.entry(reason).or_insert(0) += 1;
                self.window_mut(t_ns).requests_shed += 1;
            }
            GcEvent::DeadlineExceeded { t_ns, .. } => {
                self.touch(t_ns);
                self.deadline_exceeded += 1;
            }
            GcEvent::BreakerOpen { t_ns, .. } => {
                self.touch(t_ns);
                self.breaker.opens += 1;
            }
            GcEvent::BreakerHalfOpen { t_ns, .. } => {
                self.touch(t_ns);
                self.breaker.half_opens += 1;
            }
            GcEvent::BreakerClose { t_ns, .. } => {
                self.touch(t_ns);
                self.breaker.closes += 1;
            }
            GcEvent::BacklogSample {
                t_ns,
                queued,
                waiting,
                watermark,
            } => {
                self.touch(t_ns);
                self.max_queued = self.max_queued.max(queued);
                self.max_waiting = self.max_waiting.max(waiting);
                self.watermark_samples[usize::from(watermark.min(2))] += 1;
                self.backlog.push(BacklogPoint {
                    t_ns,
                    queued,
                    waiting,
                    watermark,
                });
            }
            _ => {}
        }
        self.ring.record(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn end(t_ns: u64, pause_ns: u64) -> GcEvent {
        GcEvent::CollectionEnd {
            t_ns,
            seq: 0,
            kind: crate::event::CollectionKind::Major,
            pause_ns,
            heap_used_after: 0,
            words_copied: 0,
            frames_visited: 0,
            routine_invocations: 0,
            rt_nodes_built: 0,
            rt_cache_hits: 0,
            rt_cache_misses: 0,
            plan_hits: 0,
            plan_misses: 0,
            plans_compiled: 0,
        }
    }

    #[test]
    fn windows_bucket_by_timestamp() {
        let mut r = ServeRecorder::new(16, 1_000);
        r.record(GcEvent::Alloc {
            t_ns: 100,
            site: 0,
            words: 4,
            addr: 0x1000,
        });
        r.record(GcEvent::Alloc {
            t_ns: 2_500,
            site: 0,
            words: 2,
            addr: 0x1010,
        });
        r.record(end(2_700, 300));
        assert_eq!(r.windows().len(), 3);
        assert_eq!(r.windows()[0].allocs, 1);
        assert_eq!(r.windows()[0].alloc_words, 4);
        assert_eq!(r.windows()[1].allocs, 0);
        assert_eq!(r.windows()[2].allocs, 1);
        assert_eq!(r.windows()[2].collections, 1);
        assert_eq!(r.windows()[2].pause.max(), 300);
        // The ring saw everything too.
        assert_eq!(r.ring().alloc_hist().count(), 2);
        assert_eq!(r.pause_hist().count(), 1);
    }

    #[test]
    fn request_lifecycle_feeds_latency_and_counts() {
        let mut r = ServeRecorder::new(16, 1_000_000);
        r.record(GcEvent::RequestStart {
            t_ns: 0,
            req: 0,
            task: 0,
            kind: 1,
        });
        r.record(GcEvent::RequestStart {
            t_ns: 10,
            req: 1,
            task: 1,
            kind: 0,
        });
        r.record(GcEvent::RequestEnd {
            t_ns: 5_000,
            req: 0,
            task: 0,
            latency_ns: 5_000,
            ok: true,
        });
        r.record(GcEvent::RequestEnd {
            t_ns: 9_000,
            req: 1,
            task: 1,
            latency_ns: 8_990,
            ok: false,
        });
        assert_eq!(r.requests(), (2, 1, 1));
        assert_eq!(r.latency_hist().count(), 2);
        assert_eq!(r.latency_hist().max(), 8_990);
        assert_eq!(r.windows()[0].requests_completed, 2);
    }

    #[test]
    fn occupancy_peaks_track_samples() {
        let mut r = ServeRecorder::new(16, 1_000);
        for (t, heap, live, nur, inf) in [
            (10, 100, 40, 8, 2),
            (20, 400, 90, 16, 4),
            (30, 50, 50, 2, 1),
        ] {
            r.record(GcEvent::HeapSample {
                t_ns: t,
                heap_words: heap,
                live_words: live,
                nursery_words: nur,
                in_flight: inf,
            });
        }
        assert_eq!(r.peak_heap_words(), 400);
        assert_eq!(r.peak_live_words(), 90);
        assert_eq!(r.peak_nursery_words(), 16);
        assert_eq!(r.max_in_flight(), 4);
        assert_eq!(r.samples().len(), 3);
    }

    #[test]
    fn pause_histograms_split_by_collection_kind() {
        let mut r = ServeRecorder::new(16, 1_000);
        let minor_end = |t_ns, pause_ns| match end(t_ns, pause_ns) {
            GcEvent::CollectionEnd {
                t_ns,
                seq,
                pause_ns,
                heap_used_after,
                words_copied,
                frames_visited,
                routine_invocations,
                rt_nodes_built,
                rt_cache_hits,
                rt_cache_misses,
                plan_hits,
                plan_misses,
                plans_compiled,
                ..
            } => GcEvent::CollectionEnd {
                t_ns,
                seq,
                kind: crate::event::CollectionKind::Minor,
                pause_ns,
                heap_used_after,
                words_copied,
                frames_visited,
                routine_invocations,
                rt_nodes_built,
                rt_cache_hits,
                rt_cache_misses,
                plan_hits,
                plan_misses,
                plans_compiled,
            },
            _ => unreachable!(),
        };
        r.record(minor_end(100, 50));
        r.record(minor_end(200, 70));
        r.record(end(900, 400));
        assert_eq!(r.minor_pause_hist().count(), 2);
        assert_eq!(r.minor_pause_hist().max(), 70);
        assert_eq!(r.major_pause_hist().count(), 1);
        assert_eq!(r.major_pause_hist().max(), 400);
        assert_eq!(r.pause_hist().count(), 3);
        let back = crate::json::parse(&r.serve_json().to_json_pretty()).expect("parses");
        assert_eq!(
            back.get("minor_pause_ns")
                .unwrap()
                .get("count")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
        assert_eq!(
            back.get("major_pause_ns")
                .unwrap()
                .get("count")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
    }

    /// MMU on a constructed schedule: a 200ns pause ending at 500 inside
    /// a 1000ns run. Overall utilization is 0.8; a 200ns window placed
    /// exactly over the pause has utilization 0; a window as long as the
    /// run degenerates to the overall figure.
    #[test]
    fn mmu_finds_the_worst_window() {
        let mut r = ServeRecorder::new(4, 100);
        r.record(end(500, 200));
        r.record(GcEvent::Alloc {
            t_ns: 1_000,
            site: 0,
            words: 1,
            addr: 0x1000,
        });
        assert!((r.utilization() - 0.8).abs() < 1e-9);
        assert_eq!(r.mmu(200), 0.0);
        // A 400ns window can at best overlap the whole 200ns pause.
        assert!((r.mmu(400) - 0.5).abs() < 1e-9);
        assert!((r.mmu(1_000) - 0.8).abs() < 1e-9);
        // No pauses → fully utilized.
        let clean = ServeRecorder::new(4, 100);
        assert_eq!(clean.mmu(100), 1.0);
        assert_eq!(clean.utilization(), 1.0);
    }

    #[test]
    fn overload_events_fold_into_shed_breaker_and_backlog_metrics() {
        let mut r = ServeRecorder::new(32, 1_000);
        r.record(GcEvent::RequestStart {
            t_ns: 0,
            req: 0,
            task: 0,
            kind: 0,
        });
        r.record(GcEvent::RequestShed {
            t_ns: 100,
            req: 1,
            kind: 2,
            reason: "queue-full",
        });
        r.record(GcEvent::RequestShed {
            t_ns: 150,
            req: 2,
            kind: 2,
            reason: "queue-full",
        });
        r.record(GcEvent::RequestShed {
            t_ns: 200,
            req: 3,
            kind: 1,
            reason: "breaker-open",
        });
        r.record(GcEvent::DeadlineExceeded {
            t_ns: 300,
            req: 0,
            task: 0,
            spent: 40,
            budget: 32,
            unit: "quanta",
        });
        r.record(GcEvent::RequestEnd {
            t_ns: 350,
            req: 0,
            task: 0,
            latency_ns: 350,
            ok: false,
        });
        r.record(GcEvent::BreakerOpen {
            t_ns: 400,
            kind: 1,
            consecutive: 2,
        });
        r.record(GcEvent::BreakerHalfOpen { t_ns: 500, kind: 1 });
        r.record(GcEvent::BreakerClose { t_ns: 600, kind: 1 });
        r.record(GcEvent::BacklogSample {
            t_ns: 700,
            queued: 3,
            waiting: 5,
            watermark: 1,
        });
        r.record(GcEvent::BacklogSample {
            t_ns: 800,
            queued: 1,
            waiting: 0,
            watermark: 0,
        });
        assert_eq!(r.shed(), 3);
        assert_eq!(r.shed_by_reason().get("queue-full"), Some(&2));
        assert_eq!(r.shed_by_reason().get("breaker-open"), Some(&1));
        assert_eq!(r.deadline_exceeded(), 1);
        assert_eq!(
            r.breaker_counts(),
            BreakerCounts {
                opens: 1,
                half_opens: 1,
                closes: 1
            }
        );
        assert_eq!(r.peak_backlog(), (3, 5));
        assert_eq!(r.backlog().len(), 2);
        assert_eq!(r.watermark_samples(), [1, 1, 0]);
        // 0 completed, 1 failed, 3 shed.
        assert!((r.goodput() - 0.0).abs() < 1e-9);
        assert!((r.shed_rate() - 0.75).abs() < 1e-9);
        assert_eq!(r.windows()[0].requests_shed, 3);
        // The JSON document carries the overload section.
        let doc = r.serve_json();
        let back = crate::json::parse(&doc.to_json_pretty()).expect("parses");
        let over = back.get("overload").unwrap();
        assert_eq!(over.get("deadline_exceeded").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            over.get("shed_by_reason")
                .unwrap()
                .get("queue-full")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
        assert_eq!(
            over.get("breaker").unwrap().get("opens").unwrap().as_f64(),
            Some(1.0)
        );
        assert_eq!(
            over.get("backlog")
                .unwrap()
                .get("max_waiting")
                .unwrap()
                .as_f64(),
            Some(5.0)
        );
        assert_eq!(
            back.get("requests").unwrap().get("shed").unwrap().as_f64(),
            Some(3.0)
        );
    }

    #[test]
    fn serve_json_is_wellformed() {
        let mut r = ServeRecorder::new(16, 1_000);
        r.record(GcEvent::RequestStart {
            t_ns: 0,
            req: 0,
            task: 0,
            kind: 0,
        });
        r.record(end(700, 100));
        r.record(GcEvent::RequestEnd {
            t_ns: 900,
            req: 0,
            task: 0,
            latency_ns: 900,
            ok: true,
        });
        r.record(GcEvent::HeapSample {
            t_ns: 950,
            heap_words: 64,
            live_words: 32,
            nursery_words: 0,
            in_flight: 1,
        });
        let doc = r.serve_json();
        let back = crate::json::parse(&doc.to_json_pretty()).expect("parses");
        assert_eq!(
            back.get("requests")
                .unwrap()
                .get("completed")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        assert!(back.get("latency_ns").unwrap().get("sum").is_some());
        let util = back.get("utilization").unwrap();
        let overall = util.get("overall").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&overall));
        assert!(util.get("mmu_10ms").is_some());
        assert_eq!(
            back.get("occupancy")
                .unwrap()
                .get("peak_heap_words")
                .unwrap()
                .as_f64(),
            Some(64.0)
        );
        assert!(!back.get("windows").unwrap().as_arr().unwrap().is_empty());
    }
}
