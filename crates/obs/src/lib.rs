//! # tfgc-obs — observability for the tag-free GC runtime
//!
//! The paper's evaluation is a set of claims about runtime behavior
//! (heap words saved, frames visited, pause costs of compiled vs.
//! interpreted metadata). This crate records what actually happened, as
//! structured events, without perturbing the runs that don't ask for it:
//!
//! * [`GcEvent`] — one record per interesting runtime occurrence:
//!   collection begin/end, per-frame visit, frame-routine invocation,
//!   type-closure construction, per-call-site allocation, object copy,
//!   task park/resume, pipeline phase.
//! * [`GcEventSink`] — where events go. [`NullSink`] drops them;
//!   [`RingRecorder`] keeps a bounded ring of raw events plus cumulative
//!   aggregates (pause/alloc [`Histogram`]s, a per-call-site
//!   [`SiteProfile`] table with GC-survivor attribution).
//! * [`Obs`] — the handle the runtime threads through the VM, the
//!   collectors, and the scheduler. The disabled ([`Obs::null`]) path is
//!   one predictable branch per emission site: the event value is only
//!   constructed when a sink is attached (the closure passed to
//!   [`Obs::emit`] does not run otherwise). A differential test in the
//!   workspace proves a `NullSink` run is observably identical to a
//!   build without observability.
//! * [`ServeRecorder`] — the serve-mode sink: a ring plus steady-state
//!   service metrics (per-request latency histogram, windowed
//!   allocation/pause metrics, heap-occupancy timeline, and an
//!   MMU-style mutator-utilization figure from the pause intervals).
//! * [`json`] — a hand-rolled minimal JSON model (writer + parser); the
//!   workspace keeps its no-serde constraint (DESIGN.md §5).
//! * [`chrome`] — `chrome://tracing`-loadable trace output, one event
//!   per line (Chrome's JSON Array Format, which tolerates a missing
//!   closing bracket, so the file is simultaneously line-parseable).
//!
//! Event volume is bounded: the ring drops the oldest events past its
//! capacity (counting the drops), while histograms and site profiles
//! aggregate over *all* events ever recorded.

pub mod chrome;
pub mod event;
pub mod hist;
pub mod json;
pub mod ring;
pub mod serve;
pub mod sink;
pub mod sites;

pub use chrome::write_chrome_trace;
pub use event::{CollectionKind, GcEvent};
pub use hist::Histogram;
pub use json::Json;
pub use ring::{CollectionSummary, RingRecorder};
pub use serve::{OccupancyPoint, PauseInterval, ServeRecorder, ServeWindow};
pub use sink::{GcEventSink, NullSink, Obs};
pub use sites::{SiteProfile, SiteTable};
