//! Log₂-bucketed histograms.
//!
//! Replaces single-mean reporting (`GcStats::mean_pause_nanos`) with a
//! distribution: 65 buckets, where bucket 0 holds the value 0 and bucket
//! `k ≥ 1` holds values in `[2^(k-1), 2^k)`. Quantiles are resolved to a
//! bucket's upper bound, so p99 of nanosecond pauses is accurate to a
//! factor of two — enough to distinguish a 10µs pause regime from a 1ms
//! one, which is what the perf trajectory needs.

/// A fixed-size log₂ histogram of `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; 65],
    total: u64,
    max: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; 65],
            total: 0,
            max: 0,
            sum: 0,
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples in O(1) (bulk loads, large-count
    /// boundary tests).
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_of(v)] += n;
        self.total += n;
        self.max = self.max.max(v);
        self.sum += u128::from(v) * u128::from(n);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all recorded samples. Together with [`Histogram::count`]
    /// this lets callers derive rates (e.g. pause time per window,
    /// mutator utilization) without a parallel accumulator.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The non-zero buckets as `(upper_bound, count)` pairs. Bucket 0's
    /// upper bound is 0; bucket `k`'s is `2^k - 1`.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(k, c)| (upper_bound(k), *c))
            .collect()
    }

    /// The value below which a fraction `q` of samples fall, resolved to
    /// the containing bucket's upper bound (exact for the max). Returns 0
    /// for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `0.0..=1.0`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return 0;
        }
        let rank = ceil_rank(q, self.total).max(1);
        let mut seen = 0u64;
        for (k, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The top bucket's bound can exceed the true max; clamp.
                return upper_bound(k).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`Histogram::quantile`] for resolution).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Adds every sample of `other` into `self` (multi-run aggregation).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }
}

/// `⌈q · total⌉` computed exactly in integers. `f64` multiplication
/// rounds — at `total = 10^9`, `0.99 * total` can land on the wrong side
/// of an integer and shift the rank (and thus the reported percentile)
/// by one sample. Instead the quantile is decomposed exactly as the
/// dyadic rational `m · 2^e` every finite `f64` is, and the product is
/// ceiling-shifted in `u128`.
fn ceil_rank(q: f64, total: u64) -> u64 {
    debug_assert!((0.0..=1.0).contains(&q));
    if q == 0.0 {
        return 0;
    }
    let bits = q.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64;
    let frac = bits & ((1u64 << 52) - 1);
    // m · 2^e == q, exactly. Normal numbers carry the implicit leading
    // bit; subnormals (absurd quantiles, but total correctness is cheap)
    // do not.
    let (m, e) = if exp == 0 {
        (frac, -1074i64)
    } else {
        (frac | (1u64 << 52), exp - 1075)
    };
    let prod = u128::from(m) * u128::from(total);
    if e >= 0 {
        // q ≥ 1 with an exact product (q == 1.0 → m = 2^52, e = -52
        // never lands here; defensive all the same).
        (prod << e) as u64
    } else if e <= -128 {
        u64::from(prod > 0)
    } else {
        let shift = (-e) as u32;
        let floor = prod >> shift;
        let rem = prod & ((1u128 << shift) - 1);
        (floor + u128::from(rem != 0)) as u64
    }
}

fn upper_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= 64 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn buckets_split_at_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        // 0 | 1 | 2,3 | 4..7 | 8 | 1024 — six distinct buckets.
        assert_eq!(h.buckets().len(), 6);
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), 1024);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        assert!(h.p50() <= h.p90());
        assert!(h.p90() <= h.p99());
        assert!(h.p99() <= h.max());
        assert_eq!(h.quantile(1.0), 999);
    }

    #[test]
    fn single_sample_quantiles_hit_its_bucket() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        assert_eq!(h.p50(), 1_000_000); // clamped to max
        assert_eq!(h.max(), 1_000_000);
    }

    /// Regression: quantile at the domain boundaries. `q = 0.0` must
    /// resolve to the first non-empty bucket (rank is clamped to 1, not
    /// 0), `q = 1.0` to the max, and the empty histogram to 0 for every
    /// `q` — without panicking on the degenerate rank arithmetic.
    #[test]
    fn quantile_bucket_boundaries() {
        let empty = Histogram::new();
        assert_eq!(empty.quantile(0.0), 0);
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.quantile(1.0), 0);
        assert_eq!(empty.sum(), 0);

        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 4, 8, 1 << 20] {
            h.record(v);
        }
        // q=0.0: rank clamps to the first sample's bucket (value 0 here).
        assert_eq!(h.quantile(0.0), 0);
        // q=1.0: exactly the max, not the top bucket's upper bound.
        assert_eq!(h.quantile(1.0), 1 << 20);
        assert_eq!(h.sum(), (1 + 2 + 4 + 8 + (1 << 20)) as u128);

        // Samples exactly on a power-of-two boundary land in the bucket
        // whose upper bound is the next power minus one.
        let mut b = Histogram::new();
        b.record(8);
        assert_eq!(b.quantile(0.0), 8); // clamped to max within bucket
        assert_eq!(b.quantile(1.0), 8);
    }

    /// Regression for the float-rank bug: `⌈q · total⌉` must be exact at
    /// rank-rounding edges. With 100 samples, p99 is the 99th sample;
    /// with 101 it is the 100th (⌈99.99⌉); the f64 path was one sample
    /// off whenever the product rounded across an integer.
    #[test]
    fn quantile_rank_edges_small() {
        // 99 samples of 1, one sample of 1000: rank 99 is still a 1.
        let mut h = Histogram::new();
        h.record_n(1, 99);
        h.record(1000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.p99(), 1, "p99 of 100 = rank 99, inside the 1s");
        assert_eq!(h.quantile(1.0), 1000);

        // 100 samples of 1, one of 1000: ⌈0.99 · 101⌉ = 100 — still a 1.
        let mut h = Histogram::new();
        h.record_n(1, 100);
        h.record(1000);
        assert_eq!(h.p99(), 1, "p99 of 101 = rank 100, inside the 1s");

        // 98 of 1, three of 1000: ⌈0.99 · 101⌉ = 100 — second 1000.
        let mut h = Histogram::new();
        h.record_n(1, 98);
        h.record_n(1000, 3);
        assert_eq!(h.p99(), 1000, "rank 100 of 101 reaches the top bucket");
    }

    /// The same edge at 10⁹ samples, where `0.99 * total as f64` rounds.
    /// Exactly ⌈0.99 · 10⁹⌉ = 990_000_000 samples sit at value 1: rank
    /// 990_000_000 must land on the *last* 1, not the first 1000.
    #[test]
    fn quantile_rank_edges_billion() {
        const TOTAL: u64 = 1_000_000_000;
        const LOW: u64 = 990_000_000; // == ceil(0.99 * TOTAL)
        let mut h = Histogram::new();
        h.record_n(1, LOW);
        h.record_n(1000, TOTAL - LOW);
        assert_eq!(h.count(), TOTAL);
        assert_eq!(h.p99(), 1, "rank exactly at the 1/1000 boundary");

        // One fewer low sample: rank 990_000_000 crosses into the 1000s.
        let mut h = Histogram::new();
        h.record_n(1, LOW - 1);
        h.record_n(1000, TOTAL - LOW + 1);
        assert_eq!(h.p99(), 1000, "one sample short flips the bucket");
    }

    /// The rank helper agrees with exact rational arithmetic across
    /// awkward (q, total) pairs.
    #[test]
    fn ceil_rank_matches_exact_arithmetic() {
        for &total in &[1u64, 2, 3, 99, 100, 101, 1_000_000_007, u64::MAX] {
            assert_eq!(ceil_rank(0.0, total), 0);
            assert_eq!(ceil_rank(1.0, total), total);
            assert_eq!(ceil_rank(0.5, total), total / 2 + total % 2);
        }
        // 0.99 is not dyadic: its f64 is 0.9899999999999999911182…, so
        // the exact ceiling at total=100 is 99 (not the 100 a naive
        // reading of 0.99·100 suggests is borderline).
        assert_eq!(ceil_rank(0.99, 100), 99);
        assert_eq!(ceil_rank(0.99, 1_000_000_000), 990_000_000);
        // Subnormal q: any positive fraction of a non-empty set is rank 1.
        assert_eq!(ceil_rank(f64::MIN_POSITIVE / 2.0, u64::MAX), 1);
    }

    #[test]
    fn sum_survives_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(32);
        a.merge(&b);
        assert_eq!(a.sum(), 42);
        assert_eq!(a.mean(), 21.0);
    }

    #[test]
    fn merge_is_sum() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1, 2, 3] {
            a.record(v);
        }
        for v in [100, 200] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.max(), 200);
        let bucket_sum: u64 = a.buckets().iter().map(|(_, c)| c).sum();
        assert_eq!(bucket_sum, 5);
    }

    /// Property: for any sample set, bucket counts sum to the number of
    /// recorded events, and every sample lands in a bucket whose bound
    /// is >= the sample. Driven by a tiny deterministic LCG (external
    /// property-test crates are unavailable offline).
    #[test]
    fn prop_bucket_counts_sum_to_events() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _case in 0..200 {
            let n = (next() % 64) as usize;
            let mut h = Histogram::new();
            let mut samples = Vec::new();
            for _ in 0..n {
                // Mix magnitudes: shift by a random amount.
                let v = next() >> (next() % 64);
                h.record(v);
                samples.push(v);
            }
            assert_eq!(h.count(), n as u64);
            let bucket_sum: u64 = h.buckets().iter().map(|(_, c)| c).sum();
            assert_eq!(bucket_sum, n as u64, "bucket counts must sum to events");
            assert_eq!(h.max(), samples.iter().copied().max().unwrap_or(0));
            if n > 0 {
                assert!(h.quantile(1.0) <= h.max());
            }
        }
    }
}
