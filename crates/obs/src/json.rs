//! A minimal hand-rolled JSON model: builder, writer, and parser.
//!
//! The workspace has a no-external-dependency constraint (DESIGN.md §5),
//! so there is no serde; this module covers exactly what the exporters
//! and their tests need — building documents, rendering them, and
//! re-parsing to check well-formedness.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers render from `f64`; integer-valued numbers are written
    /// without a fractional part. Non-finite values render as `null`.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (stable output for diffs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// Renders compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders with two-space indentation (the exported metrics files).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_indented(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_indented(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(xs) if !xs.is_empty() => {
                out.push_str("[\n");
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    x.write_indented(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_str(k, out);
                    out.push_str(": ");
                    v.write_indented(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(f64::from(v))
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (used by tests to prove exports are
/// well-formed).
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let s = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let n = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{s}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let doc = Json::obj([
            ("name", Json::str("pause \"ns\"\n")),
            ("count", Json::from(42u64)),
            ("ratio", Json::from(1.5)),
            ("flags", Json::arr([Json::Bool(true), Json::Null])),
            ("empty", Json::obj([])),
        ]);
        for text in [doc.to_json(), doc.to_json_pretty()] {
            let back = parse(&text).expect("parses");
            assert_eq!(back, doc, "{text}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::from(3u64).to_json(), "3");
        assert_eq!(Json::from(-7i64).to_json(), "-7");
        assert_eq!(Json::from(2.5).to_json(), "2.5");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_json(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("\"abc").is_err());
    }

    #[test]
    fn get_and_as_helpers() {
        let doc = parse(r#"{"a": [1, 2], "b": {"c": 3}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_f64(), Some(3.0));
        assert!(doc.get("missing").is_none());
    }
}
