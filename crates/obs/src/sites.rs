//! Per-call-site allocation accounting.
//!
//! The gc_word mechanism already keys every allocation and call on a
//! `CallSiteId`; this table attributes allocation counts, allocated
//! words, and GC-survivor words back to those sites. Survivor
//! attribution works address-wise: every `Alloc` event registers the
//! object's address under its site, and every `ObjectCopied` event
//! during a collection migrates the registration to the new address
//! while crediting the copied words to the site. Objects that are not
//! copied died; their registrations are discarded when the collection
//! ends.

use std::collections::HashMap;

/// Cumulative per-site counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteProfile {
    /// Objects allocated at this site.
    pub allocs: u64,
    /// Words allocated at this site (headers included).
    pub words: u64,
    /// Words of this site's objects copied by collections (an object
    /// surviving N collections is counted N times — survivor *work*,
    /// the cost a generational collector would avoid).
    pub survivor_words: u64,
    /// Objects of this site copied by collections.
    pub survivors: u64,
}

/// Site-indexed profile table with address-based survivor attribution.
#[derive(Debug, Clone, Default)]
pub struct SiteTable {
    profiles: Vec<SiteProfile>,
    /// Live address → (site, words), maintained across collections.
    live: HashMap<u64, (u32, u32)>,
    /// Relocated registrations of the collection in progress.
    moved: HashMap<u64, (u32, u32)>,
    in_collection: bool,
}

impl SiteTable {
    /// An empty table.
    pub fn new() -> SiteTable {
        SiteTable::default()
    }

    fn slot(&mut self, site: u32) -> &mut SiteProfile {
        let i = site as usize;
        if i >= self.profiles.len() {
            self.profiles.resize(i + 1, SiteProfile::default());
        }
        &mut self.profiles[i]
    }

    /// Records an allocation of `words` at `site`, living at `addr`.
    pub fn on_alloc(&mut self, site: u32, words: u32, addr: u64) {
        let p = self.slot(site);
        p.allocs += 1;
        p.words += u64::from(words);
        self.live.insert(addr, (site, words));
    }

    /// A collection started: survivor registrations migrate into a fresh
    /// map as copies are observed.
    pub fn on_collection_begin(&mut self) {
        self.in_collection = true;
        self.moved.clear();
    }

    /// The collector copied `from` → `to`. Credits the owning site (if
    /// the allocation was observed) and re-registers the object at its
    /// new address.
    pub fn on_copy(&mut self, from: u64, to: u64, words: u32) {
        if !self.in_collection {
            return;
        }
        if let Some((site, w)) = self.live.remove(&from) {
            let p = self.slot(site);
            p.survivor_words += u64::from(words.max(w));
            p.survivors += 1;
            self.moved.insert(to, (site, w));
        }
    }

    /// A collection ended: addresses never copied belonged to dead
    /// objects and are dropped.
    pub fn on_collection_end(&mut self) {
        self.in_collection = false;
        self.live = std::mem::take(&mut self.moved);
    }

    /// The profile of `site` (zeroed if never seen).
    pub fn profile(&self, site: u32) -> SiteProfile {
        self.profiles
            .get(site as usize)
            .copied()
            .unwrap_or_default()
    }

    /// All `(site, profile)` pairs with any activity, ordered by site.
    pub fn profiles(&self) -> impl Iterator<Item = (u32, &SiteProfile)> {
        self.profiles
            .iter()
            .enumerate()
            .filter(|(_, p)| p.allocs > 0 || p.survivor_words > 0)
            .map(|(i, p)| (i as u32, p))
    }

    /// Sites ranked by allocated words, descending; ties by site id.
    pub fn top_by_words(&self, n: usize) -> Vec<(u32, SiteProfile)> {
        let mut v: Vec<(u32, SiteProfile)> = self.profiles().map(|(s, p)| (s, *p)).collect();
        v.sort_by(|a, b| b.1.words.cmp(&a.1.words).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Total allocations observed.
    pub fn total_allocs(&self) -> u64 {
        self.profiles.iter().map(|p| p.allocs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_then_survive_then_die() {
        let mut t = SiteTable::new();
        t.on_alloc(3, 4, 0x1000);
        t.on_alloc(3, 4, 0x2000);
        t.on_alloc(5, 2, 0x3000);

        // First collection: only the first object survives.
        t.on_collection_begin();
        t.on_copy(0x1000, 0x9000, 4);
        t.on_collection_end();

        assert_eq!(t.profile(3).allocs, 2);
        assert_eq!(t.profile(3).words, 8);
        assert_eq!(t.profile(3).survivor_words, 4);
        assert_eq!(t.profile(5).survivor_words, 0);

        // Second collection: the survivor moves again, credited again.
        t.on_collection_begin();
        t.on_copy(0x9000, 0x1100, 4);
        t.on_collection_end();
        assert_eq!(t.profile(3).survivor_words, 8);
        assert_eq!(t.profile(3).survivors, 2);

        // The dead objects' registrations are gone: copying their old
        // addresses credits nothing.
        t.on_collection_begin();
        t.on_copy(0x2000, 0x1200, 4);
        t.on_collection_end();
        assert_eq!(t.profile(3).survivor_words, 8);
    }

    #[test]
    fn copies_outside_collections_are_ignored() {
        let mut t = SiteTable::new();
        t.on_alloc(1, 2, 0x10);
        t.on_copy(0x10, 0x20, 2);
        assert_eq!(t.profile(1).survivor_words, 0);
    }

    #[test]
    fn top_by_words_ranks() {
        let mut t = SiteTable::new();
        t.on_alloc(1, 10, 0x10);
        t.on_alloc(2, 30, 0x20);
        t.on_alloc(3, 20, 0x30);
        let top = t.top_by_words(2);
        assert_eq!(top[0].0, 2);
        assert_eq!(top[1].0, 3);
        assert_eq!(t.total_allocs(), 3);
    }
}
