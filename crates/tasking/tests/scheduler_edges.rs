//! Scheduler edge cases.

use tfgc_gc::Strategy;
use tfgc_ir::lower;
use tfgc_syntax::parse_program;
use tfgc_tasking::{find_fn, run_tasks, SuspendPolicy, TaskConfig};
use tfgc_types::elaborate;

fn compile(src: &str) -> tfgc_ir::IrProgram {
    lower(&elaborate(&parse_program(src).unwrap()).unwrap()).unwrap()
}

#[test]
fn single_task_behaves_like_sequential() {
    let prog = compile(
        "fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ;
         fun taskf n = (build n; len (build n)) ;
         0",
    );
    let f = find_fn(&prog, "taskf").unwrap();
    let mut cfg = TaskConfig::new(Strategy::Compiled);
    cfg.heap_words = 1 << 9;
    let report = run_tasks(&prog, &[(f, 200)], cfg).unwrap();
    assert_eq!(report.results, vec!["200"]);
    assert!(report.suspension_events > 0);
}

#[test]
fn quantum_size_does_not_change_results() {
    let prog = compile(
        "fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
         fun worker n = if n = 0 then 0 else (sum (build 10) + worker (n - 1)) - sum (build 10) ;
         0",
    );
    let f = find_fn(&prog, "worker").unwrap();
    let entries = vec![(f, 15), (f, 10)];
    let mut results = Vec::new();
    for quantum in [1u64, 7, 64, 1000] {
        let mut cfg = TaskConfig::new(Strategy::Compiled);
        cfg.heap_words = 1 << 10;
        cfg.quantum = quantum;
        let r =
            run_tasks(&prog, &entries, cfg).unwrap_or_else(|e| panic!("quantum {quantum}: {e}"));
        results.push(r.results);
    }
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
}

#[test]
fn oom_detected_when_live_exceeds_heap() {
    let prog = compile(
        "fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun hold n = case build n of xs => (build n; case xs of [] => 0 | x :: _ => x) ;
         0",
    );
    let f = find_fn(&prog, "hold").unwrap();
    let mut cfg = TaskConfig::new(Strategy::Compiled);
    cfg.heap_words = 128;
    let report = run_tasks(&prog, &[(f, 500)], cfg).unwrap();
    let err = report.task_errors[0]
        .as_ref()
        .expect("starving task is quarantined");
    assert!(matches!(err, tfgc_vm::VmError::OutOfMemory { .. }), "{err}");
    assert!(
        report.results[0].starts_with("<error: out of memory"),
        "{}",
        report.results[0]
    );
}

#[test]
fn eight_tasks_complete() {
    let prog = compile(
        "fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ;
         fun taskf n = len (build n) ;
         0",
    );
    let f = find_fn(&prog, "taskf").unwrap();
    let entries: Vec<_> = (1..=8).map(|i| (f, i * 10)).collect();
    let mut cfg = TaskConfig::new(Strategy::Compiled);
    cfg.heap_words = 1 << 11;
    let report = run_tasks(&prog, &entries, cfg).unwrap();
    let want: Vec<String> = (1..=8).map(|i| (i * 10).to_string()).collect();
    assert_eq!(report.results, want);
}

#[test]
fn mixed_strategies_under_tasking_agree() {
    let prog = compile(
        "fun build n = if n = 0 then [] else n :: build (n - 1) ;
         fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
         fun worker n = if n = 0 then 0 else (sum (build 12) + worker (n - 1)) - sum (build 12) ;
         0",
    );
    let f = find_fn(&prog, "worker").unwrap();
    let entries = vec![(f, 12), (f, 18)];
    let mut base: Option<Vec<String>> = None;
    for s in Strategy::ALL {
        let mut cfg = TaskConfig::new(s);
        cfg.heap_words = 1 << 11;
        cfg.policy = SuspendPolicy::EveryCall;
        let r = run_tasks(&prog, &entries, cfg).unwrap_or_else(|e| panic!("{s}: {e}"));
        match &base {
            None => base = Some(r.results),
            Some(b) => assert_eq!(&r.results, b, "{s}"),
        }
    }
}
