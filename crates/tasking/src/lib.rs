//! # tfgc-tasking — tag-free GC for languages with tasking (§4)
//!
//! The paper's model: Ada-style tasks in shared memory, all suspended
//! during collection, with the invariant that "a process can only be
//! suspended for garbage collection purposes when the process makes a
//! procedure call". This crate provides the cooperative scheduler over
//! the multi-threaded [`tfgc_vm::Vm`]:
//!
//! * a deterministic round-robin scheduler with a configurable quantum,
//!   preempting only between instructions;
//! * heap exhaustion in any task raises a GC request; tasks then park at
//!   their next *safe point* per the chosen [`SuspendPolicy`] — §4's two
//!   situations ("the process calls an allocation routine" vs "the
//!   process makes any procedure call") plus the `Rgc` register variant
//!   that makes the every-call test free by folding it into the call's
//!   target address;
//! * when every live task is parked at a call/allocation site, the
//!   collector runs over all stacks, and everyone resumes.
//!
//! Experiment E7 reports the trade-off the paper describes: checking at
//! every call suspends the system quickly but pays a per-call test;
//! checking only at allocations is free until a collection is needed, but
//! lets allocation-free tasks "run for a long time while others are
//! suspended".
//!
//! The scheduler is a *request engine*: a fixed pool of thread slots
//! drains a queue of [`Request`]s against one persistent shared heap.
//! [`run_tasks`] is the one-request-per-slot special case (the original
//! batch mode); [`serve_requests`] is the service mode behind
//! `tfml serve`, which recycles each slot for the next queued request the
//! moment its current one completes and emits request-lifecycle and
//! heap-occupancy events into the attached [`Obs`] sink.

use std::fmt;
use tfgc_gc::{GcStats, Strategy};
use tfgc_ir::{CallSiteId, FnId, Instr, IrProgram};
use tfgc_obs::{GcEvent, Obs};
use tfgc_runtime::HeapStats;
use tfgc_vm::{FaultPlan, MutatorStats, StepEvent, Vm, VmConfig, VmError, VmResult};

/// When may a task be parked for collection? (§4.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspendPolicy {
    /// "The heap is exhausted and the process calls an allocation
    /// routine": only allocation sites are safe points. No per-call
    /// overhead, potentially long suspension latency.
    AllocationOnly,
    /// "The heap is exhausted and the process makes any procedure call":
    /// calls and allocations are safe points; a test executes at every
    /// call.
    EveryCall,
    /// Same protocol as [`SuspendPolicy::EveryCall`], but the test is the
    /// paper's `Rgc` register trick — the register is added to every call
    /// target, so the check costs nothing ("it may be possible to utilize
    /// the addressing modes of some processors to make the test
    /// inexpensive").
    EveryCallRgc,
}

impl fmt::Display for SuspendPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SuspendPolicy::AllocationOnly => "alloc-only",
            SuspendPolicy::EveryCall => "every-call",
            SuspendPolicy::EveryCallRgc => "every-call-rgc",
        };
        write!(f, "{s}")
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct TaskConfig {
    pub strategy: Strategy,
    pub heap_words: usize,
    pub policy: SuspendPolicy,
    /// Instructions per scheduling quantum.
    pub quantum: u64,
    /// Total instruction budget across all tasks.
    pub max_steps: u64,
    /// Bounded growth policy: grow each semispace up to this many words
    /// when a collection cannot satisfy an allocation (`None` = fixed
    /// heap).
    pub heap_max_words: Option<usize>,
    /// Run the post-collection heap verifier after every collection.
    pub verify_heap: bool,
    /// Deterministic fault schedule injected into the VM.
    pub fault_plan: Option<FaultPlan>,
}

impl TaskConfig {
    /// Defaults: 64Ki-word semispaces, every-call policy, quantum 64.
    pub fn new(strategy: Strategy) -> TaskConfig {
        TaskConfig {
            strategy,
            heap_words: 1 << 16,
            policy: SuspendPolicy::EveryCall,
            quantum: 64,
            max_steps: 500_000_000,
            heap_max_words: None,
            verify_heap: false,
            fault_plan: None,
        }
    }
}

/// Result of a multi-task run.
#[derive(Debug, Clone)]
pub struct TaskReport {
    /// Per task: the rendered result value, or `"<error: …>"` when the
    /// task was quarantined.
    pub results: Vec<String>,
    /// Per task: the error that quarantined it (`None` = finished
    /// normally). One failing task does not stop its siblings.
    pub task_errors: Vec<Option<VmError>>,
    /// Interleaved `print` output across tasks.
    pub printed: Vec<i64>,
    pub heap: HeapStats,
    pub gc: GcStats,
    pub mutator: MutatorStats,
    /// Suspension tests executed (per the policy's cost model; the Rgc
    /// variant counts zero).
    pub suspension_checks: u64,
    /// Collections performed with all tasks suspended.
    pub suspension_events: u64,
    /// Instructions executed between heap exhaustion and the moment all
    /// tasks were parked, summed over events.
    pub total_suspension_latency: u64,
    /// Worst single suspension latency.
    pub max_suspension_latency: u64,
}

/// One unit of service work: run `entry(arg)` to completion on some
/// pool slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    pub entry: FnId,
    pub arg: i64,
    /// Caller-assigned request class (e.g. an index into a traffic
    /// mix); carried through to the outcome and the `RequestStart`
    /// event, never interpreted by the engine.
    pub kind: u32,
}

/// What became of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestOutcome {
    /// The [`Request::kind`] it was submitted with.
    pub kind: u32,
    /// The rendered result value, or `"<error: …>"` when the request
    /// was quarantined. Rendered eagerly at completion: a finished
    /// thread's value is not a GC root, so the words behind it are only
    /// guaranteed intact until the next collection.
    pub result: String,
    /// The error that quarantined it (`None` = completed normally).
    pub error: Option<VmError>,
}

/// Result of a service run ([`serve_requests`]).
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per request, in submission order.
    pub outcomes: Vec<RequestOutcome>,
    /// Requests that completed normally.
    pub completed: u64,
    /// Requests quarantined with an error. `completed + failed` always
    /// equals `outcomes.len()`: the engine resolves every request.
    pub failed: u64,
    /// Interleaved `print` output across requests.
    pub printed: Vec<i64>,
    pub heap: HeapStats,
    pub gc: GcStats,
    pub mutator: MutatorStats,
    pub suspension_checks: u64,
    pub suspension_events: u64,
    pub total_suspension_latency: u64,
    pub max_suspension_latency: u64,
}

/// Looks up a top-level function by its source name (alpha renaming
/// appends `#u<n>`).
pub fn find_fn(prog: &IrProgram, name: &str) -> Option<FnId> {
    prog.funs
        .iter()
        .position(|f| f.name == name || f.name.split("#u").next() == Some(name))
        .map(|i| FnId(i as u32))
}

/// Runs `main` (initializing globals), then runs each `(function, arg)`
/// task to completion under the cooperative scheduler.
///
/// # Errors
///
/// Propagates VM errors; reports OOM when a collection frees nothing.
///
/// # Panics
///
/// Panics if an entry function does not take exactly one argument.
pub fn run_tasks(
    prog: &IrProgram,
    entries: &[(FnId, i64)],
    cfg: TaskConfig,
) -> VmResult<TaskReport> {
    run_tasks_with_obs(prog, entries, cfg, Obs::null()).map(|(report, _)| report)
}

/// [`run_tasks`] with an event sink attached: collection events, task
/// park/resume events, and allocations flow into `obs`, which is handed
/// back alongside the report.
///
/// # Errors
///
/// Propagates VM errors; reports OOM when a collection frees nothing.
///
/// # Panics
///
/// Panics if an entry function does not take exactly one argument.
pub fn run_tasks_with_obs(
    prog: &IrProgram,
    entries: &[(FnId, i64)],
    cfg: TaskConfig,
    obs: Obs,
) -> VmResult<(TaskReport, Obs)> {
    // Batch mode is the one-request-per-slot special case of the serve
    // engine: pool width = request count, so no slot is ever recycled.
    let requests: Vec<Request> = entries
        .iter()
        .enumerate()
        .map(|(i, (f, a))| Request {
            entry: *f,
            arg: *a,
            kind: i as u32,
        })
        .collect();
    let (report, obs) = serve_requests(prog, &requests, requests.len().max(1), 0, cfg, obs)?;
    let (results, task_errors) = report
        .outcomes
        .into_iter()
        .map(|o| (o.result, o.error))
        .unzip();
    Ok((
        TaskReport {
            results,
            task_errors,
            printed: report.printed,
            heap: report.heap,
            gc: report.gc,
            mutator: report.mutator,
            suspension_checks: report.suspension_checks,
            suspension_events: report.suspension_events,
            total_suspension_latency: report.total_suspension_latency,
            max_suspension_latency: report.max_suspension_latency,
        },
        obs,
    ))
}

/// Runs `main` (initializing globals), then drains `requests` through a
/// pool of `pool` cooperative thread slots sharing one persistent heap.
/// Each slot picks up the next queued request the moment its current one
/// completes (the stack is respawned in place, so the collector's root
/// scan stays proportional to the pool, not the request count). One
/// quarantined request does not stop service: its slot is recycled like
/// any other.
///
/// When `obs` is enabled, the engine emits `RequestStart`/`RequestEnd`
/// events (with wall-clock latency) at every request boundary, and —
/// when `sample_every > 0` — a `HeapSample` occupancy event every
/// `sample_every` scheduling quanta plus one at every request boundary
/// and collection. Sample *points* are deterministic (quantum counts),
/// so the sampled occupancy values are reproducible across runs.
///
/// # Errors
///
/// Propagates whole-machine VM errors (budget exhaustion, heap
/// verification); per-request errors are quarantined into the outcomes.
///
/// # Panics
///
/// Panics if `pool` is zero (with a non-empty queue) or a request entry
/// does not take exactly one argument.
pub fn serve_requests(
    prog: &IrProgram,
    requests: &[Request],
    pool: usize,
    sample_every: u64,
    cfg: TaskConfig,
    obs: Obs,
) -> VmResult<(ServeReport, Obs)> {
    let mut vm_cfg = VmConfig::new(cfg.strategy).heap_words(cfg.heap_words);
    vm_cfg.cooperative = true;
    vm_cfg.max_steps = Some(cfg.max_steps);
    vm_cfg.heap_max_words = cfg.heap_max_words;
    vm_cfg.verify_heap = cfg.verify_heap;
    vm_cfg.fault_plan = cfg.fault_plan;
    let mut vm = Vm::new(prog, vm_cfg);
    vm.obs = obs;

    // Phase 1: run main alone (it initializes globals — the persistent
    // shared heap the whole service runs against).
    run_single(&mut vm)?;

    if requests.is_empty() {
        let report = ServeReport {
            outcomes: Vec::new(),
            completed: 0,
            failed: 0,
            printed: std::mem::take(&mut vm.printed),
            heap: vm.heap.stats,
            gc: vm.gc_stats,
            mutator: vm.mutator,
            suspension_checks: 0,
            suspension_events: 0,
            total_suspension_latency: 0,
            max_suspension_latency: 0,
        };
        return Ok((report, std::mem::take(&mut vm.obs)));
    }
    assert!(pool > 0, "serve_requests needs at least one pool slot");
    let n = pool.min(requests.len());

    // Phase 2: fill the pool with the first requests.
    let mut task_ids = Vec::with_capacity(n);
    for req in &requests[..n] {
        let fun = prog.fun(req.entry);
        assert_eq!(
            fun.n_params, 1,
            "request entry `{}` must take exactly one int argument",
            fun.name
        );
        let w = vm.encode_int(req.arg);
        task_ids.push(vm.spawn_thread(req.entry, &[w]));
    }

    let mut sched = Scheduler {
        vm,
        prog,
        tasks: task_ids,
        requests: requests.to_vec(),
        slot_req: (0..n).collect(),
        next_req: n,
        outcomes: vec![None; requests.len()],
        started_ns: vec![0; n],
        sample_every,
        quanta: 0,
        policy: cfg.policy,
        quantum: cfg.quantum,
        gc_pending: false,
        parked: vec![false; n],
        done: vec![false; n],
        blocked_on_alloc: vec![None; n],
        latency: 0,
        allocs_at_last_gc: None,
        report_checks: 0,
        report_events: 0,
        report_total_latency: 0,
        report_max_latency: 0,
    };
    for i in 0..n {
        sched.announce_start(i);
    }
    sched.sample_heap();
    sched.run()?;

    let Scheduler {
        mut vm,
        outcomes,
        report_checks,
        report_events,
        report_total_latency,
        report_max_latency,
        ..
    } = sched;

    let outcomes: Vec<RequestOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("the engine resolves every request"))
        .collect();
    let failed = outcomes.iter().filter(|o| o.error.is_some()).count() as u64;
    let completed = outcomes.len() as u64 - failed;
    Ok((
        ServeReport {
            outcomes,
            completed,
            failed,
            printed: std::mem::take(&mut vm.printed),
            heap: vm.heap.stats,
            gc: vm.gc_stats,
            mutator: vm.mutator,
            suspension_checks: report_checks,
            suspension_events: report_events,
            total_suspension_latency: report_total_latency,
            max_suspension_latency: report_max_latency,
        },
        std::mem::take(&mut vm.obs),
    ))
}

/// Runs the current thread to completion, collecting inline when blocked
/// (single-task mode for the main/global phase).
fn run_single(vm: &mut Vm<'_>) -> VmResult<()> {
    let mut blocked_without_progress = false;
    loop {
        match vm.step()? {
            StepEvent::Done(_) => return Ok(()),
            StepEvent::AllocBlocked(site) => {
                if blocked_without_progress {
                    // The collection freed nothing and the allocation
                    // already retried once: growing is the only way
                    // forward.
                    if !vm.grow_parked(site)? {
                        return Err(VmError::OutOfMemory {
                            requested: 0,
                            live: vm.heap.used(),
                            site: site.0,
                            strategy: vm.strategy_name(),
                        });
                    }
                } else {
                    vm.collect_parked(site)?;
                    blocked_without_progress = true;
                }
            }
            StepEvent::Continue => blocked_without_progress = false,
        }
    }
}

/// The request engine: a fixed pool of thread slots (`tasks`) draining a
/// request queue. All per-slot vectors are indexed by pool slot, not by
/// request.
struct Scheduler<'p> {
    vm: Vm<'p>,
    prog: &'p IrProgram,
    /// Per slot: the VM thread index it owns (fixed for the whole run —
    /// the thread is respawned in place between requests).
    tasks: Vec<usize>,
    /// The full submission queue.
    requests: Vec<Request>,
    /// Per slot: index into `requests` of the request it is running.
    slot_req: Vec<usize>,
    /// Next queue index to hand to a freed slot.
    next_req: usize,
    /// Per request: its outcome, filled as requests resolve.
    outcomes: Vec<Option<RequestOutcome>>,
    /// Per slot: `Obs` timestamp when its current request started (only
    /// maintained while observation is enabled).
    started_ns: Vec<u64>,
    /// Emit a `HeapSample` every this many quanta (0 = never).
    sample_every: u64,
    /// Scheduling quanta executed (the deterministic sample clock).
    quanta: u64,
    policy: SuspendPolicy,
    quantum: u64,
    gc_pending: bool,
    parked: Vec<bool>,
    done: Vec<bool>,
    /// Per slot: the allocation site it is blocked on, while blocked.
    /// Distinguishes tasks starving for memory from tasks merely parked
    /// at a call so OOM can be pinned on the right tasks.
    blocked_on_alloc: Vec<Option<CallSiteId>>,
    /// Instructions executed since the pending collection was requested.
    latency: u64,
    /// Successful allocation count at the previous collection: if no
    /// allocation succeeds between two collections, the heap is
    /// genuinely exhausted.
    allocs_at_last_gc: Option<u64>,
    report_checks: u64,
    report_events: u64,
    report_total_latency: u64,
    report_max_latency: u64,
}

impl Scheduler<'_> {
    fn run(&mut self) -> VmResult<()> {
        let n = self.tasks.len();
        let mut rr = 0usize;
        while !self.done.iter().all(|d| *d) {
            for off in 0..n {
                let i = (rr + off) % n;
                if self.done[i] || (self.gc_pending && self.parked[i]) {
                    continue;
                }
                rr = (i + 1) % n;
                self.run_quantum(i)?;
                self.quanta += 1;
                if self.sample_every != 0 && self.quanta.is_multiple_of(self.sample_every) {
                    self.sample_heap();
                }
                break;
            }
            if self.gc_pending {
                let all_parked = (0..n).all(|i| self.done[i] || self.parked[i]);
                if all_parked {
                    self.do_collection()?;
                }
            }
        }
        Ok(())
    }

    /// Emits the `RequestStart` event (and stamps the latency clock) for
    /// the request currently in slot `i`.
    fn announce_start(&mut self, i: usize) {
        if !self.vm.obs.enabled() {
            return;
        }
        self.started_ns[i] = self.vm.obs.now_ns();
        let req_ix = self.slot_req[i];
        let kind = self.requests[req_ix].kind;
        let req = req_ix as u64;
        let task = i as u32;
        self.vm.obs.emit(|t_ns| GcEvent::RequestStart {
            t_ns,
            req,
            task,
            kind,
        });
    }

    /// Respawns slot `i`'s thread for request `req_ix`. The slot's
    /// previous request must already be resolved (its thread finished or
    /// killed).
    fn start_in_slot(&mut self, i: usize, req_ix: usize) {
        let req = self.requests[req_ix];
        let fun = self.prog.fun(req.entry);
        assert_eq!(
            fun.n_params, 1,
            "request entry `{}` must take exactly one int argument",
            fun.name
        );
        let w = self.vm.encode_int(req.arg);
        self.vm.respawn_thread(self.tasks[i], req.entry, &[w]);
        self.slot_req[i] = req_ix;
        self.done[i] = false;
        self.parked[i] = false;
        self.blocked_on_alloc[i] = None;
        self.announce_start(i);
    }

    /// Resolves slot `i`'s current request — rendering its result (or
    /// formatting its quarantine error), emitting `RequestEnd` — then
    /// recycles the slot for the next queued request or retires it.
    fn finish(&mut self, i: usize, error: Option<VmError>) {
        let req_ix = self.slot_req[i];
        let req = self.requests[req_ix];
        let result = match &error {
            Some(e) => format!("<error: {e}>"),
            None => {
                let w = self
                    .vm
                    .thread_result(self.tasks[i])
                    .expect("finished request has a result");
                self.vm.render(w, &self.prog.fun(req.entry).ret_ty)
            }
        };
        let ok = error.is_none();
        self.outcomes[req_ix] = Some(RequestOutcome {
            kind: req.kind,
            result,
            error,
        });
        if self.vm.obs.enabled() {
            let started = self.started_ns[i];
            let req = req_ix as u64;
            let task = i as u32;
            self.vm.obs.emit(|t_ns| GcEvent::RequestEnd {
                t_ns,
                req,
                task,
                latency_ns: t_ns.saturating_sub(started),
                ok,
            });
        }
        if self.next_req < self.requests.len() {
            let nx = self.next_req;
            self.next_req += 1;
            self.start_in_slot(i, nx);
        } else {
            self.done[i] = true;
            self.parked[i] = false;
            self.blocked_on_alloc[i] = None;
        }
        self.sample_heap();
    }

    /// Emits one heap-occupancy sample (a no-op unless sampling and
    /// observation are both on). The occupancy fields are functions of
    /// the instruction stream, so the sampled values are deterministic.
    fn sample_heap(&mut self) {
        if self.sample_every == 0 || !self.vm.obs.enabled() {
            return;
        }
        let occ = self.vm.heap.occupancy();
        let in_flight = self.done.iter().filter(|d| !**d).count() as u32;
        self.vm.obs.emit(|t_ns| GcEvent::HeapSample {
            t_ns,
            heap_words: occ.heap_words,
            live_words: occ.live_words,
            in_flight,
        });
    }

    /// Runs task `i` for up to a quantum, honoring safe-point parking.
    fn run_quantum(&mut self, i: usize) -> VmResult<()> {
        let thread = self.tasks[i];
        self.vm.set_current_thread(thread);
        if self.parked[i] {
            self.vm.unpark_thread(thread);
            self.parked[i] = false;
            // Resuming retries the blocked allocation; a fresh block
            // will re-mark the task.
            self.blocked_on_alloc[i] = None;
        }
        for _ in 0..self.quantum {
            // The suspension test (§4): executed per the policy's cost
            // model at each safe-point instruction.
            let at_call = matches!(
                self.vm.current_instr(),
                Instr::CallDirect { .. } | Instr::CallClosure { .. }
            );
            let at_alloc = matches!(
                self.vm.current_instr(),
                Instr::MakeTuple { .. } | Instr::MakeData { .. } | Instr::MakeClosure { .. }
            );
            match self.policy {
                SuspendPolicy::AllocationOnly => {
                    if at_alloc {
                        self.report_checks += 1;
                    }
                }
                SuspendPolicy::EveryCall => {
                    if at_call || at_alloc {
                        self.report_checks += 1;
                    }
                }
                SuspendPolicy::EveryCallRgc => {
                    // The Rgc register folds the test into the call's
                    // target address: zero extra operations.
                }
            }
            if self.gc_pending {
                let safe = match self.policy {
                    SuspendPolicy::AllocationOnly => at_alloc,
                    SuspendPolicy::EveryCall | SuspendPolicy::EveryCallRgc => at_call || at_alloc,
                };
                if safe {
                    let site = self
                        .vm
                        .current_site()
                        .expect("calls and allocations carry sites");
                    self.vm.park_thread(thread, site);
                    self.parked[i] = true;
                    let task = i as u32;
                    self.vm.obs.emit(|t_ns| GcEvent::TaskParked {
                        t_ns,
                        task,
                        site: site.0,
                    });
                    return Ok(());
                }
            }
            match self.vm.step() {
                Ok(StepEvent::Continue) => {
                    if self.gc_pending {
                        self.latency += 1;
                    }
                }
                Ok(StepEvent::Done(_)) => {
                    self.finish(i, None);
                    return Ok(());
                }
                Ok(StepEvent::AllocBlocked(site)) => {
                    self.gc_pending = true;
                    self.blocked_on_alloc[i] = Some(site);
                    self.vm.park_thread(thread, site);
                    self.parked[i] = true;
                    let task = i as u32;
                    self.vm.obs.emit(|t_ns| GcEvent::TaskParked {
                        t_ns,
                        task,
                        site: site.0,
                    });
                    return Ok(());
                }
                Err(e) => return self.quarantine(i, e),
            }
        }
        Ok(())
    }

    /// Records a per-request error, kills the slot's stack (its heap
    /// data dies at the next collection), and lets the siblings run on —
    /// the slot is recycled for the next queued request like any normal
    /// completion. Whole-machine errors — budget exhaustion and
    /// heap-verification failures — propagate instead: no task can make
    /// progress past them.
    fn quarantine(&mut self, i: usize, e: VmError) -> VmResult<()> {
        if matches!(
            e,
            VmError::StepLimit { .. } | VmError::VerificationFailed { .. }
        ) {
            return Err(e);
        }
        self.vm.kill_thread(self.tasks[i]);
        self.parked[i] = false;
        self.blocked_on_alloc[i] = None;
        self.finish(i, Some(e));
        Ok(())
    }

    /// All tasks parked: collect (growing if a previous collection freed
    /// nothing and the growth policy allows it), account, resume.
    ///
    /// When the heap is genuinely exhausted by live data and cannot
    /// grow, the tasks starving for memory are quarantined with a
    /// structured [`VmError::OutOfMemory`] — each blocked allocation has
    /// by then parked and retried exactly once after a full collection —
    /// and the surviving tasks resume.
    fn do_collection(&mut self) -> VmResult<()> {
        // Any live parked task can stand for the trigger (no operands are
        // pending: blocked allocations re-execute after the collection).
        let i = (0..self.tasks.len())
            .find(|i| !self.done[*i])
            .expect("at least one live task requested the collection");
        let thread = self.tasks[i];
        self.vm.set_current_thread(thread);
        let site = self
            .vm
            .current_site()
            .expect("parked tasks sit at call/alloc sites");
        let allocs_now = self.vm.heap.stats.allocations;
        let mut collected = true;
        if self.allocs_at_last_gc == Some(allocs_now) {
            // No allocation succeeded since the previous collection: the
            // heap is exhausted by live data. Grow within the bounded
            // policy (this collects internally) or degrade by
            // quarantining the starving tasks.
            if self.vm.grow_parked(site)? {
                self.allocs_at_last_gc = Some(allocs_now);
            } else {
                self.quarantine_starving(site)?;
                // The killed tasks' data is garbage now; let the next
                // exhaustion collect it rather than declaring
                // no-progress again.
                self.allocs_at_last_gc = None;
                collected = false;
            }
        } else {
            self.allocs_at_last_gc = Some(allocs_now);
            self.vm.collect_parked(site)?;
        }
        if collected {
            self.report_events += 1;
        }
        self.report_total_latency += self.latency;
        self.report_max_latency = self.report_max_latency.max(self.latency);
        self.latency = 0;
        self.gc_pending = false;
        if self.vm.obs.enabled() {
            for (ix, was_parked) in self.parked.iter().enumerate() {
                if *was_parked && !self.done[ix] {
                    let task = ix as u32;
                    self.vm.obs.emit(|t_ns| GcEvent::TaskResumed { t_ns, task });
                }
            }
        }
        for p in self.parked.iter_mut() {
            *p = false;
        }
        for (ix, t) in self.tasks.iter().enumerate() {
            if !self.done[ix] {
                self.blocked_on_alloc[ix] = None;
                self.vm.unpark_thread(*t);
            }
        }
        self.sample_heap();
        Ok(())
    }

    /// Quarantines ONE task blocked on an allocation (the lowest-index
    /// starving task, for determinism) with a structured OOM carrying its
    /// own failing site. Killing its stack turns its data into garbage,
    /// so the surviving blocked tasks get a fresh collection and retry
    /// before any of them is condemned in turn. At least one task must be
    /// blocked — only a blocked allocation raises a collection request.
    fn quarantine_starving(&mut self, trigger: CallSiteId) -> VmResult<()> {
        let live = self.vm.heap.used();
        let strategy = self.vm.strategy_name();
        let victim =
            (0..self.tasks.len()).find(|&j| !self.done[j] && self.blocked_on_alloc[j].is_some());
        let Some(j) = victim else {
            // Defensive: nobody is waiting on memory yet nothing was
            // freed — surface the exhaustion globally.
            return Err(VmError::OutOfMemory {
                requested: 0,
                live,
                site: trigger.0,
                strategy,
            });
        };
        let bsite = self.blocked_on_alloc[j].expect("victim is blocked");
        self.vm.kill_thread(self.tasks[j]);
        self.parked[j] = false;
        self.blocked_on_alloc[j] = None;
        self.finish(
            j,
            Some(VmError::OutOfMemory {
                requested: 0,
                live,
                site: bsite.0,
                strategy,
            }),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_ir::lower;
    use tfgc_syntax::parse_program;
    use tfgc_types::elaborate;

    fn compile(src: &str) -> IrProgram {
        lower(&elaborate(&parse_program(src).unwrap()).unwrap()).unwrap()
    }

    const WORKLOAD: &str = "
        fun build n = if n = 0 then [] else n :: build (n - 1) ;
        fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
        fun worker n = if n = 0 then 0 else (sum (build 20) + worker (n - 1)) - sum (build 20) ;
        fun spin n = if n = 0 then 0 else (let val x = n * n in spin (n - 1) end) ;
        0";

    fn entries(prog: &IrProgram, names: &[(&str, i64)]) -> Vec<(FnId, i64)> {
        names
            .iter()
            .map(|(n, a)| (find_fn(prog, n).unwrap_or_else(|| panic!("no fn {n}")), *a))
            .collect()
    }

    #[test]
    fn two_allocating_tasks_share_the_heap() {
        let prog = compile(WORKLOAD);
        let es = entries(&prog, &[("worker", 30), ("worker", 30)]);
        for strategy in Strategy::ALL {
            let mut cfg = TaskConfig::new(strategy);
            // The no-liveness strategies retain each frame's dead lists,
            // so they need headroom.
            cfg.heap_words = 1 << 12;
            let report = run_tasks(&prog, &es, cfg).unwrap_or_else(|e| panic!("{strategy}: {e}"));
            assert_eq!(report.results, vec!["0", "0"], "{strategy}");
            assert!(report.suspension_events > 0, "{strategy}: no collections");
        }
    }

    #[test]
    fn policies_agree_on_results() {
        let prog = compile(WORKLOAD);
        let es = entries(&prog, &[("worker", 20), ("worker", 25), ("worker", 15)]);
        let mut baseline: Option<Vec<String>> = None;
        for policy in [
            SuspendPolicy::AllocationOnly,
            SuspendPolicy::EveryCall,
            SuspendPolicy::EveryCallRgc,
        ] {
            let mut cfg = TaskConfig::new(Strategy::Compiled);
            cfg.heap_words = 1 << 11;
            cfg.policy = policy;
            let report = run_tasks(&prog, &es, cfg).unwrap_or_else(|e| panic!("{policy}: {e}"));
            match &baseline {
                None => baseline = Some(report.results.clone()),
                Some(b) => assert_eq!(&report.results, b, "{policy}"),
            }
        }
    }

    #[test]
    fn every_call_pays_checks_rgc_does_not() {
        let prog = compile(WORKLOAD);
        let es = entries(&prog, &[("worker", 20), ("worker", 20)]);
        let mut every = TaskConfig::new(Strategy::Compiled);
        every.heap_words = 1 << 11;
        every.policy = SuspendPolicy::EveryCall;
        let r_every = run_tasks(&prog, &es, every).unwrap();

        let mut rgc = TaskConfig::new(Strategy::Compiled);
        rgc.heap_words = 1 << 11;
        rgc.policy = SuspendPolicy::EveryCallRgc;
        let r_rgc = run_tasks(&prog, &es, rgc).unwrap();

        assert!(r_every.suspension_checks > 0);
        assert_eq!(r_rgc.suspension_checks, 0);
        assert_eq!(r_every.results, r_rgc.results);
    }

    #[test]
    fn alloc_only_has_higher_latency_than_every_call() {
        // One allocating worker plus one compute-heavy spinner that calls
        // but rarely allocates: under alloc-only the spinner keeps
        // running after exhaustion; under every-call it parks at its next
        // call.
        let prog = compile(WORKLOAD);
        let es = entries(&prog, &[("worker", 40), ("spin", 3000)]);
        let mk = |policy| {
            let mut cfg = TaskConfig::new(Strategy::Compiled);
            cfg.heap_words = 1 << 11;
            cfg.policy = policy;
            cfg.quantum = 32;
            cfg
        };
        let alloc_only = run_tasks(&prog, &es, mk(SuspendPolicy::AllocationOnly)).unwrap();
        let every_call = run_tasks(&prog, &es, mk(SuspendPolicy::EveryCall)).unwrap();
        assert_eq!(alloc_only.results, every_call.results);
        assert!(
            alloc_only.suspension_events > 0 && every_call.suspension_events > 0,
            "both policies must collect"
        );
        assert!(
            alloc_only.max_suspension_latency >= every_call.max_suspension_latency,
            "alloc-only {} < every-call {}",
            alloc_only.max_suspension_latency,
            every_call.max_suspension_latency
        );
    }

    #[test]
    fn tasks_see_globals() {
        let prog = compile(
            "val base = [100, 200] ;
             fun hd xs = case xs of [] => 0 | x :: _ => x ;
             fun taskf n = hd base + n ;
             0",
        );
        let es = entries(&prog, &[("taskf", 1), ("taskf", 2)]);
        let report = run_tasks(&prog, &es, TaskConfig::new(Strategy::Compiled)).unwrap();
        assert_eq!(report.results, vec!["101", "102"]);
    }

    #[test]
    fn many_tasks_interleave_prints_deterministically() {
        let prog = compile(
            "fun chatty n = if n = 0 then 0 else (print n; chatty (n - 1)) ;
             0",
        );
        let es = entries(&prog, &[("chatty", 3), ("chatty", 3)]);
        let a = run_tasks(&prog, &es, TaskConfig::new(Strategy::Compiled)).unwrap();
        let b = run_tasks(&prog, &es, TaskConfig::new(Strategy::Compiled)).unwrap();
        assert_eq!(a.printed, b.printed, "scheduler must be deterministic");
        let mut sorted = a.printed.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 1, 2, 2, 3, 3]);
    }

    /// Satellite: cooperative-tasking OOM. The exhausted allocation must
    /// park, collect via the scheduler, and retry exactly once before
    /// the task is quarantined with a structured error.
    #[test]
    fn exhausted_heap_parks_collects_and_retries_once_before_error() {
        let prog = compile(
            "fun build n = if n = 0 then [] else n :: build (n - 1) ;
             fun len xs = case xs of [] => 0 | _ :: r => 1 + len r ;
             fun hog n = len (build n) ;
             0",
        );
        let es = entries(&prog, &[("hog", 2000)]);
        let mut cfg = TaskConfig::new(Strategy::Compiled);
        cfg.heap_words = 1 << 9; // far too small for 2000 live cons cells
        let report = run_tasks(&prog, &es, cfg).unwrap();
        let err = report.task_errors[0]
            .as_ref()
            .expect("starving task must be quarantined");
        assert!(
            matches!(
                err,
                VmError::OutOfMemory {
                    strategy: "compiled",
                    ..
                }
            ),
            "{err}"
        );
        // The failing allocation's own site is recorded.
        let VmError::OutOfMemory { site, .. } = err else {
            unreachable!()
        };
        assert!(
            prog.sites.len() > *site as usize,
            "site {site} out of range"
        );
        assert!(report.results[0].starts_with("<error: out of memory"));
        // The block parked and a collection ran before the error: the
        // no-progress check only fires after a full collect + retry.
        assert!(report.suspension_events >= 1);
    }

    #[test]
    fn oom_task_is_quarantined_while_siblings_finish() {
        let prog = compile(
            "fun build n = if n = 0 then [] else n :: build (n - 1) ;
             fun len xs = case xs of [] => 0 | _ :: r => 1 + len r ;
             fun hog n = len (build n) ;
             fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
             fun worker n = if n = 0 then 0 else (sum (build 20) + worker (n - 1)) - sum (build 20) ;
             0",
        );
        let es = entries(&prog, &[("hog", 4000), ("worker", 25)]);
        for strategy in Strategy::ALL {
            let mut cfg = TaskConfig::new(strategy);
            // Headroom for the no-liveness strategies' retained dead
            // lists, yet far below hog's ~8000-word live set.
            cfg.heap_words = 1 << 12;
            let report = run_tasks(&prog, &es, cfg).unwrap_or_else(|e| panic!("{strategy}: {e}"));
            assert!(
                matches!(report.task_errors[0], Some(VmError::OutOfMemory { .. })),
                "{strategy}: hog must starve"
            );
            assert_eq!(
                report.task_errors[1], None,
                "{strategy}: worker must run on"
            );
            assert_eq!(report.results[1], "0", "{strategy}");
        }
    }

    #[test]
    fn per_task_error_is_quarantined_not_fatal() {
        let prog = compile(
            "fun crash n = n div (n - n) ;
             fun ok n = n + 1 ;
             0",
        );
        let es = entries(&prog, &[("crash", 7), ("ok", 41)]);
        let report = run_tasks(&prog, &es, TaskConfig::new(Strategy::Compiled)).unwrap();
        assert!(
            matches!(report.task_errors[0], Some(VmError::DivideByZero { .. })),
            "{:?}",
            report.task_errors[0]
        );
        assert!(report.results[0].starts_with("<error: division by zero"));
        assert_eq!(report.results[1], "42");
    }

    #[test]
    fn bounded_growth_rescues_oversized_live_set() {
        let prog = compile(
            "fun build n = if n = 0 then [] else n :: build (n - 1) ;
             fun len xs = case xs of [] => 0 | _ :: r => 1 + len r ;
             fun hog n = len (build n) ;
             0",
        );
        let es = entries(&prog, &[("hog", 2000)]);
        let mut cfg = TaskConfig::new(Strategy::Compiled);
        cfg.heap_words = 1 << 9;
        cfg.heap_max_words = Some(1 << 15);
        cfg.verify_heap = true;
        let report = run_tasks(&prog, &es, cfg).unwrap();
        assert_eq!(report.task_errors[0], None);
        assert_eq!(report.results[0], "2000");
        assert!(report.heap.grows > 0, "growth policy must have engaged");
    }

    /// Builds a request queue cycling through `(name, arg, kind)`
    /// triples.
    fn requests(prog: &IrProgram, specs: &[(&str, i64, u32)]) -> Vec<Request> {
        specs
            .iter()
            .map(|(n, a, k)| Request {
                entry: find_fn(prog, n).unwrap_or_else(|| panic!("no fn {n}")),
                arg: *a,
                kind: *k,
            })
            .collect()
    }

    #[test]
    fn pool_smaller_than_queue_drains_every_request() {
        let prog = compile(WORKLOAD);
        let q: Vec<Request> = (0..12)
            .map(|i| Request {
                entry: find_fn(&prog, "worker").unwrap(),
                arg: 5 + (i % 3),
                kind: i as u32,
            })
            .collect();
        for strategy in Strategy::ALL {
            let mut cfg = TaskConfig::new(strategy);
            cfg.heap_words = 1 << 12;
            let (report, _) = serve_requests(&prog, &q, 3, 0, cfg, Obs::null())
                .unwrap_or_else(|e| panic!("{strategy}: {e}"));
            assert_eq!(report.outcomes.len(), 12, "{strategy}");
            assert_eq!(report.completed, 12, "{strategy}");
            assert_eq!(report.failed, 0, "{strategy}");
            for (i, o) in report.outcomes.iter().enumerate() {
                assert_eq!(o.kind, i as u32, "{strategy}: kinds ride along");
                assert_eq!(o.result, "0", "{strategy}: request {i}");
            }
        }
    }

    #[test]
    fn serve_is_deterministic_and_observation_neutral() {
        let prog = compile(WORKLOAD);
        let q = requests(
            &prog,
            &[
                ("worker", 20, 0),
                ("spin", 500, 1),
                ("worker", 15, 0),
                ("worker", 10, 0),
                ("spin", 300, 1),
                ("worker", 25, 0),
            ],
        );
        let mut cfg = TaskConfig::new(Strategy::Compiled);
        cfg.heap_words = 1 << 11;
        let (a, _) = serve_requests(&prog, &q, 2, 0, cfg.clone(), Obs::null()).unwrap();
        let (b, _) = serve_requests(&prog, &q, 2, 8, cfg, Obs::serve(1 << 10, 1_000_000)).unwrap();
        assert_eq!(a.outcomes, b.outcomes, "telemetry must not steer requests");
        assert_eq!(a.printed, b.printed);
        assert_eq!(a.heap, b.heap);
        assert_eq!(a.mutator, b.mutator);
        assert_eq!(a.suspension_events, b.suspension_events);
    }

    #[test]
    fn quarantined_request_does_not_drop_service() {
        let prog = compile(
            "fun crash n = n div (n - n) ;
             fun ok n = n + 1 ;
             0",
        );
        let q = requests(
            &prog,
            &[
                ("ok", 1, 0),
                ("crash", 7, 1),
                ("ok", 2, 0),
                ("ok", 3, 0),
                ("crash", 9, 1),
                ("ok", 4, 0),
            ],
        );
        let (report, _) = serve_requests(
            &prog,
            &q,
            2,
            0,
            TaskConfig::new(Strategy::Compiled),
            Obs::null(),
        )
        .unwrap();
        assert_eq!(report.completed, 4);
        assert_eq!(report.failed, 2);
        assert!(
            matches!(report.outcomes[1].error, Some(VmError::DivideByZero { .. })),
            "{:?}",
            report.outcomes[1].error
        );
        // Requests queued *behind* the crash still ran on the recycled
        // slot.
        assert_eq!(report.outcomes[5].result, "5");
        assert_eq!(report.outcomes[3].result, "4");
    }

    #[test]
    fn serve_emits_request_lifecycle_and_occupancy_events() {
        let prog = compile(WORKLOAD);
        let q = requests(&prog, &[("worker", 10, 3), ("worker", 12, 4)]);
        let mut cfg = TaskConfig::new(Strategy::Compiled);
        cfg.heap_words = 1 << 12;
        let (_, obs) =
            serve_requests(&prog, &q, 1, 4, cfg, Obs::serve(1 << 12, 1_000_000)).unwrap();
        let rec = obs.into_serve_recorder().expect("serve sink");
        let (started, completed, failed) = rec.requests();
        assert_eq!((started, completed, failed), (2, 2, 0));
        assert_eq!(rec.latency_hist().count(), 2);
        assert!(
            !rec.samples().is_empty(),
            "quantum sampling must produce occupancy points"
        );
        assert!(rec.peak_heap_words() > 0);
    }

    #[test]
    fn shared_heap_structures_survive_collections() {
        let prog = compile(
            "val keep = [1, 2, 3, 4, 5] ;
             fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
             fun build n = if n = 0 then [] else n :: build (n - 1) ;
             fun churner n = if n = 0 then sum keep else (churner (n - 1); (build 15; sum keep)) ;
             0",
        );
        let es = entries(&prog, &[("churner", 40), ("churner", 40)]);
        for strategy in Strategy::ALL {
            let mut cfg = TaskConfig::new(strategy);
            cfg.heap_words = 1 << 11;
            let report = run_tasks(&prog, &es, cfg).unwrap_or_else(|e| panic!("{strategy}: {e}"));
            assert_eq!(report.results, vec!["15", "15"], "{strategy}");
            assert!(report.suspension_events > 0, "{strategy}");
        }
    }
}
