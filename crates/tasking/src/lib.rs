//! # tfgc-tasking — tag-free GC for languages with tasking (§4)
//!
//! The paper's model: Ada-style tasks in shared memory, all suspended
//! during collection, with the invariant that "a process can only be
//! suspended for garbage collection purposes when the process makes a
//! procedure call". This crate provides the cooperative scheduler over
//! the multi-threaded [`tfgc_vm::Vm`]:
//!
//! * a deterministic round-robin scheduler with a configurable quantum,
//!   preempting only between instructions;
//! * heap exhaustion in any task raises a GC request; tasks then park at
//!   their next *safe point* per the chosen [`SuspendPolicy`] — §4's two
//!   situations ("the process calls an allocation routine" vs "the
//!   process makes any procedure call") plus the `Rgc` register variant
//!   that makes the every-call test free by folding it into the call's
//!   target address;
//! * when every live task is parked at a call/allocation site, the
//!   collector runs over all stacks, and everyone resumes.
//!
//! Experiment E7 reports the trade-off the paper describes: checking at
//! every call suspends the system quickly but pays a per-call test;
//! checking only at allocations is free until a collection is needed, but
//! lets allocation-free tasks "run for a long time while others are
//! suspended".
//!
//! The scheduler is a *request engine*: a fixed pool of thread slots
//! drains a queue of [`Request`]s against one persistent shared heap.
//! [`run_tasks`] is the one-request-per-slot special case (the original
//! batch mode); [`serve_requests`] is the service mode behind
//! `tfml serve`, which recycles each slot for the next queued request the
//! moment its current one completes and emits request-lifecycle and
//! heap-occupancy events into the attached [`Obs`] sink.
//!
//! ## Overload management
//!
//! [`serve_requests_overload`] layers load protection over the engine,
//! all of it keyed to the deterministic quantum clock (never wall time):
//!
//! * **budgets** — each request may carry a deadline in scheduler quanta
//!   and an instruction-fuel budget, both checked at the quantum boundary
//!   (the same safe-point cadence §4's suspension protocol uses); a
//!   breach quarantines the request with
//!   [`VmError::DeadlineExceeded`], so a runaway handler can never
//!   starve the pool;
//! * **admission control** — a bounded admission queue with a seeded
//!   [`AdmissionPolicy`] (`Reject` sheds, `RetryBackoff` re-offers with
//!   deterministic exponential backoff plus seeded jitter, `Degrade`
//!   sheds only low-priority kinds);
//! * **heap-pressure watermarks** — crossing the soft watermark fires
//!   one proactive collection and throttles admissions to
//!   direct-to-slot; at the hard watermark new admissions are refused
//!   while in-flight requests finish;
//! * **circuit breakers** — per request kind, K consecutive quarantines
//!   open the breaker (fast-reject) for a deterministic cooldown, then a
//!   half-open probe decides whether to close it;
//! * **drain** — after [`OverloadConfig::drain_after`] quanta the engine
//!   stops admitting and lets in-flight requests finish within their
//!   deadlines.
//!
//! Every transition emits a [`GcEvent`] through the zero-cost
//! [`Obs::emit`] path; none of the decisions read the sink, so shed
//! decisions are bit-identical between null-sink and recording runs.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::fmt;
use tfgc_gc::{GcStats, Strategy};
use tfgc_ir::{CallSiteId, FnId, Instr, IrProgram};
use tfgc_obs::{GcEvent, Obs};
use tfgc_runtime::HeapStats;
use tfgc_vm::{FaultPlan, MutatorStats, StepEvent, Vm, VmConfig, VmError, VmResult};
use tfgc_workloads::rng::SmallRng;

/// When may a task be parked for collection? (§4.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspendPolicy {
    /// "The heap is exhausted and the process calls an allocation
    /// routine": only allocation sites are safe points. No per-call
    /// overhead, potentially long suspension latency.
    AllocationOnly,
    /// "The heap is exhausted and the process makes any procedure call":
    /// calls and allocations are safe points; a test executes at every
    /// call.
    EveryCall,
    /// Same protocol as [`SuspendPolicy::EveryCall`], but the test is the
    /// paper's `Rgc` register trick — the register is added to every call
    /// target, so the check costs nothing ("it may be possible to utilize
    /// the addressing modes of some processors to make the test
    /// inexpensive").
    EveryCallRgc,
}

impl fmt::Display for SuspendPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SuspendPolicy::AllocationOnly => "alloc-only",
            SuspendPolicy::EveryCall => "every-call",
            SuspendPolicy::EveryCallRgc => "every-call-rgc",
        };
        write!(f, "{s}")
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct TaskConfig {
    pub strategy: Strategy,
    pub heap_words: usize,
    pub policy: SuspendPolicy,
    /// Instructions per scheduling quantum.
    pub quantum: u64,
    /// Total instruction budget across all tasks.
    pub max_steps: u64,
    /// Bounded growth policy: grow each semispace up to this many words
    /// when a collection cannot satisfy an allocation (`None` = fixed
    /// heap).
    pub heap_max_words: Option<usize>,
    /// Run the post-collection heap verifier after every collection.
    pub verify_heap: bool,
    /// Flattened trace-plan execution (see `VmConfig::trace_plans`).
    pub trace_plans: bool,
    /// Deterministic fault schedule injected into the VM.
    pub fault_plan: Option<FaultPlan>,
    /// Generational tier: nursery size in words (`None` = classic
    /// single-generation heap). See `VmConfig::nursery_words`.
    pub nursery_words: Option<usize>,
    /// Minor survivals before promotion (see `VmConfig::promote_after`).
    pub promote_after: u32,
}

impl TaskConfig {
    /// Defaults: 64Ki-word semispaces, every-call policy, quantum 64.
    pub fn new(strategy: Strategy) -> TaskConfig {
        TaskConfig {
            strategy,
            heap_words: 1 << 16,
            policy: SuspendPolicy::EveryCall,
            quantum: 64,
            max_steps: 500_000_000,
            heap_max_words: None,
            verify_heap: false,
            trace_plans: true,
            fault_plan: None,
            nursery_words: None,
            promote_after: 0,
        }
    }
}

/// Result of a multi-task run.
#[derive(Debug, Clone)]
pub struct TaskReport {
    /// Per task: the rendered result value, or `"<error: …>"` when the
    /// task was quarantined.
    pub results: Vec<String>,
    /// Per task: the error that quarantined it (`None` = finished
    /// normally). One failing task does not stop its siblings.
    pub task_errors: Vec<Option<VmError>>,
    /// Interleaved `print` output across tasks.
    pub printed: Vec<i64>,
    pub heap: HeapStats,
    pub gc: GcStats,
    pub mutator: MutatorStats,
    /// Suspension tests executed (per the policy's cost model; the Rgc
    /// variant counts zero).
    pub suspension_checks: u64,
    /// Collections performed with all tasks suspended.
    pub suspension_events: u64,
    /// Instructions executed between heap exhaustion and the moment all
    /// tasks were parked, summed over events.
    pub total_suspension_latency: u64,
    /// Worst single suspension latency.
    pub max_suspension_latency: u64,
}

/// One unit of service work: run `entry(arg)` to completion on some
/// pool slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    pub entry: FnId,
    pub arg: i64,
    /// Caller-assigned request class (e.g. an index into a traffic
    /// mix); carried through to the outcome and the `RequestStart`
    /// event. The engine itself only consults it for per-kind circuit
    /// breakers and the `Degrade` admission policy.
    pub kind: u32,
    /// Deadline in scheduler quanta from dispatch (`None` = unbounded,
    /// or the service-wide default from [`OverloadConfig`]).
    pub deadline_quanta: Option<u64>,
    /// Instruction-fuel budget (`None` = unbounded, or the service-wide
    /// default from [`OverloadConfig`]).
    pub fuel: Option<u64>,
}

impl Request {
    /// A request with no per-request budgets (the service-wide defaults
    /// still apply).
    pub fn new(entry: FnId, arg: i64, kind: u32) -> Request {
        Request {
            entry,
            arg,
            kind,
            deadline_quanta: None,
            fuel: None,
        }
    }

    /// Sets a per-request deadline in scheduler quanta.
    pub fn with_deadline(mut self, quanta: u64) -> Request {
        self.deadline_quanta = Some(quanta);
        self
    }

    /// Sets a per-request instruction-fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Request {
        self.fuel = Some(fuel);
        self
    }
}

/// What to do with an arrival the service cannot take right now (queue
/// full, hard watermark). All policies are pure functions of the quantum
/// clock and the [`OverloadConfig::seed`], never of wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Shed immediately (recorded as a shed outcome, not an error).
    Reject,
    /// Re-offer with deterministic exponential backoff: attempt `k`
    /// waits `base << k` quanta plus seeded jitter in `[0, base)`; after
    /// `max_attempts` refusals the request is shed (`backoff-exhausted`).
    RetryBackoff { max_attempts: u32, base: u64 },
    /// Shed only low-priority kinds (`kind >= low_kind_min`); higher
    /// priority arrivals wait for room instead.
    Degrade { low_kind_min: u32 },
}

/// Overload-management configuration for [`serve_requests_overload`].
/// [`OverloadConfig::none`] disables every mechanism and reproduces the
/// plain [`serve_requests`] behavior exactly.
#[derive(Debug, Clone, Copy)]
pub struct OverloadConfig {
    /// Admission-queue capacity beyond the idle pool slots (0 =
    /// unbounded, the historical behavior).
    pub queue_cap: usize,
    /// What to do with refused arrivals.
    pub admission: AdmissionPolicy,
    /// Service-wide default deadline in quanta for requests that carry
    /// none.
    pub deadline_quanta: Option<u64>,
    /// Service-wide default instruction-fuel budget for requests that
    /// carry none.
    pub fuel: Option<u64>,
    /// Soft heap-pressure watermark in percent of semispace capacity:
    /// crossing it fires one proactive collection and throttles
    /// admissions to direct-to-slot until pressure falls below it again.
    pub soft_watermark_pct: Option<u32>,
    /// Hard heap-pressure watermark in percent: while at or above it (and
    /// work is in flight), new admissions are refused via the policy.
    pub hard_watermark_pct: Option<u32>,
    /// Consecutive quarantines of one kind that open its circuit breaker
    /// (0 = breakers disabled).
    pub breaker_threshold: u32,
    /// Quanta an open breaker fast-rejects before admitting a half-open
    /// probe.
    pub breaker_cooldown: u64,
    /// Graceful drain: from this quantum on, stop admitting (every
    /// not-yet-dispatched request is shed with reason `drain`) while
    /// in-flight requests finish within their deadlines.
    pub drain_after: Option<u64>,
    /// Seed for backoff jitter (`tfgc_workloads::rng`).
    pub seed: u64,
}

impl OverloadConfig {
    /// Everything off: unbounded queue, no budgets, no watermarks, no
    /// breakers, no drain.
    pub fn none() -> OverloadConfig {
        OverloadConfig {
            queue_cap: 0,
            admission: AdmissionPolicy::Reject,
            deadline_quanta: None,
            fuel: None,
            soft_watermark_pct: None,
            hard_watermark_pct: None,
            breaker_threshold: 0,
            breaker_cooldown: 0,
            drain_after: None,
            seed: 0,
        }
    }
}

/// What became of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestOutcome {
    /// The [`Request::kind`] it was submitted with.
    pub kind: u32,
    /// The rendered result value, `"<error: …>"` when the request was
    /// quarantined, or `"<shed: …>"` when admission shed it. Rendered
    /// eagerly at completion: a finished thread's value is not a GC
    /// root, so the words behind it are only guaranteed intact until the
    /// next collection.
    pub result: String,
    /// The error that quarantined it (`None` = completed normally or
    /// shed).
    pub error: Option<VmError>,
    /// `Some(reason)` when admission control shed the request instead of
    /// dispatching it (`queue-full`, `hard-watermark`, `breaker-open`,
    /// `backoff-exhausted`, `degrade`, `drain`).
    pub shed: Option<&'static str>,
}

impl RequestOutcome {
    /// Completed normally (not quarantined, not shed).
    pub fn is_completed(&self) -> bool {
        self.error.is_none() && self.shed.is_none()
    }
}

/// Result of a service run ([`serve_requests`]).
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per request, in submission order.
    pub outcomes: Vec<RequestOutcome>,
    /// Requests that completed normally.
    pub completed: u64,
    /// Requests quarantined with an error.
    pub failed: u64,
    /// Requests shed by admission control. The conservation invariant
    /// `completed + failed + shed == outcomes.len()` always holds: the
    /// engine resolves every request exactly one way.
    pub shed: u64,
    /// Circuit-breaker open transitions across the run.
    pub breaker_trips: u64,
    /// Final breaker state per request kind that ever tripped or was
    /// tracked: `(kind, "closed" | "open" | "half-open")`, sorted by
    /// kind.
    pub breaker_final: Vec<(u32, &'static str)>,
    /// Interleaved `print` output across requests.
    pub printed: Vec<i64>,
    pub heap: HeapStats,
    pub gc: GcStats,
    pub mutator: MutatorStats,
    pub suspension_checks: u64,
    pub suspension_events: u64,
    pub total_suspension_latency: u64,
    pub max_suspension_latency: u64,
}

/// Looks up a top-level function by its source name (alpha renaming
/// appends `#u<n>`).
pub fn find_fn(prog: &IrProgram, name: &str) -> Option<FnId> {
    prog.funs
        .iter()
        .position(|f| f.name == name || f.name.split("#u").next() == Some(name))
        .map(|i| FnId(i as u32))
}

/// Runs `main` (initializing globals), then runs each `(function, arg)`
/// task to completion under the cooperative scheduler.
///
/// # Errors
///
/// Propagates VM errors; reports OOM when a collection frees nothing.
///
/// # Panics
///
/// Panics if an entry function does not take exactly one argument.
pub fn run_tasks(
    prog: &IrProgram,
    entries: &[(FnId, i64)],
    cfg: TaskConfig,
) -> VmResult<TaskReport> {
    run_tasks_with_obs(prog, entries, cfg, Obs::null()).map(|(report, _)| report)
}

/// [`run_tasks`] with an event sink attached: collection events, task
/// park/resume events, and allocations flow into `obs`, which is handed
/// back alongside the report.
///
/// # Errors
///
/// Propagates VM errors; reports OOM when a collection frees nothing.
///
/// # Panics
///
/// Panics if an entry function does not take exactly one argument.
pub fn run_tasks_with_obs(
    prog: &IrProgram,
    entries: &[(FnId, i64)],
    cfg: TaskConfig,
    obs: Obs,
) -> VmResult<(TaskReport, Obs)> {
    // Batch mode is the one-request-per-slot special case of the serve
    // engine: pool width = request count, so no slot is ever recycled.
    let requests: Vec<Request> = entries
        .iter()
        .enumerate()
        .map(|(i, (f, a))| Request::new(*f, *a, i as u32))
        .collect();
    let (report, obs) = serve_requests(prog, &requests, requests.len().max(1), 0, cfg, obs)?;
    let (results, task_errors) = report
        .outcomes
        .into_iter()
        .map(|o| (o.result, o.error))
        .unzip();
    Ok((
        TaskReport {
            results,
            task_errors,
            printed: report.printed,
            heap: report.heap,
            gc: report.gc,
            mutator: report.mutator,
            suspension_checks: report.suspension_checks,
            suspension_events: report.suspension_events,
            total_suspension_latency: report.total_suspension_latency,
            max_suspension_latency: report.max_suspension_latency,
        },
        obs,
    ))
}

/// Runs `main` (initializing globals), then drains `requests` through a
/// pool of `pool` cooperative thread slots sharing one persistent heap.
/// Each slot picks up the next queued request the moment its current one
/// completes (the stack is respawned in place, so the collector's root
/// scan stays proportional to the pool, not the request count). One
/// quarantined request does not stop service: its slot is recycled like
/// any other.
///
/// When `obs` is enabled, the engine emits `RequestStart`/`RequestEnd`
/// events (with wall-clock latency) at every request boundary, and —
/// when `sample_every > 0` — a `HeapSample` occupancy event every
/// `sample_every` scheduling quanta plus one at every request boundary
/// and collection. Sample *points* are deterministic (quantum counts),
/// so the sampled occupancy values are reproducible across runs.
///
/// # Errors
///
/// Propagates whole-machine VM errors (budget exhaustion, heap
/// verification); per-request errors are quarantined into the outcomes.
///
/// # Panics
///
/// Panics if `pool` is zero (with a non-empty queue) or a request entry
/// does not take exactly one argument.
pub fn serve_requests(
    prog: &IrProgram,
    requests: &[Request],
    pool: usize,
    sample_every: u64,
    cfg: TaskConfig,
    obs: Obs,
) -> VmResult<(ServeReport, Obs)> {
    serve_requests_overload(
        prog,
        requests,
        pool,
        sample_every,
        cfg,
        OverloadConfig::none(),
        obs,
    )
}

/// [`serve_requests`] with overload management: per-request
/// deadline/fuel budgets enforced at quantum boundaries, a bounded
/// admission queue with backpressure, heap-pressure watermarks,
/// per-kind circuit breakers, and graceful drain. See the module docs
/// for the state machines; [`OverloadConfig::none`] reproduces the
/// plain engine exactly.
///
/// # Errors
///
/// Propagates whole-machine VM errors (budget exhaustion, heap
/// verification, engine-invariant violations); per-request errors are
/// quarantined into the outcomes and shed requests are recorded, never
/// errors.
///
/// # Panics
///
/// Panics if `pool` is zero (with a non-empty queue) or a request entry
/// does not take exactly one argument.
pub fn serve_requests_overload(
    prog: &IrProgram,
    requests: &[Request],
    pool: usize,
    sample_every: u64,
    cfg: TaskConfig,
    overload: OverloadConfig,
    obs: Obs,
) -> VmResult<(ServeReport, Obs)> {
    let mut vm_cfg = VmConfig::new(cfg.strategy).heap_words(cfg.heap_words);
    vm_cfg.cooperative = true;
    vm_cfg.max_steps = Some(cfg.max_steps);
    vm_cfg.heap_max_words = cfg.heap_max_words;
    vm_cfg.verify_heap = cfg.verify_heap;
    vm_cfg.trace_plans = cfg.trace_plans;
    vm_cfg.fault_plan = cfg.fault_plan;
    vm_cfg.nursery_words = cfg.nursery_words;
    vm_cfg.promote_after = cfg.promote_after;
    let mut vm = Vm::new(prog, vm_cfg);
    vm.obs = obs;

    // Phase 1: run main alone (it initializes globals — the persistent
    // shared heap the whole service runs against).
    run_single(&mut vm)?;

    if requests.is_empty() {
        let report = ServeReport {
            outcomes: Vec::new(),
            completed: 0,
            failed: 0,
            shed: 0,
            breaker_trips: 0,
            breaker_final: Vec::new(),
            printed: std::mem::take(&mut vm.printed),
            heap: vm.heap.stats,
            gc: vm.gc_stats,
            mutator: vm.mutator,
            suspension_checks: 0,
            suspension_events: 0,
            total_suspension_latency: 0,
            max_suspension_latency: 0,
        };
        return Ok((report, std::mem::take(&mut vm.obs)));
    }
    assert!(pool > 0, "serve_requests needs at least one pool slot");
    let n = pool.min(requests.len());

    // Service-wide default budgets apply to requests that carry none.
    let mut requests: Vec<Request> = requests.to_vec();
    for r in &mut requests {
        if r.deadline_quanta.is_none() {
            r.deadline_quanta = overload.deadline_quanta;
        }
        if r.fuel.is_none() {
            r.fuel = overload.fuel;
        }
    }

    // Every request starts as a pending offer at quantum 0 (burst
    // arrival); the admission pump in `run` decides its fate.
    let waiting: BinaryHeap<Reverse<(u64, usize, u32)>> =
        (0..requests.len()).map(|ix| Reverse((0, ix, 0))).collect();

    let outcomes_len = requests.len();
    let mut sched = Scheduler {
        vm,
        prog,
        tasks: Vec::with_capacity(n),
        requests,
        slot_req: vec![0; n],
        outcomes: vec![None; outcomes_len],
        resolved: 0,
        started_ns: vec![0; n],
        sample_every,
        quanta: 0,
        policy: cfg.policy,
        quantum: cfg.quantum,
        gc_pending: false,
        proactive_gc: false,
        parked: vec![false; n],
        done: vec![true; n],
        blocked_on_alloc: vec![None; n],
        latency: 0,
        allocs_at_last_gc: None,
        waiting,
        queue: VecDeque::new(),
        started_quanta: vec![0; n],
        fuel_spent: vec![0; n],
        rng: SmallRng::seed_from_u64(overload.seed),
        breakers: BTreeMap::new(),
        breaker_trips: 0,
        soft_armed: true,
        shed_count: 0,
        overload,
        report_checks: 0,
        report_events: 0,
        report_total_latency: 0,
        report_max_latency: 0,
    };
    sched.run()?;

    let Scheduler {
        mut vm,
        outcomes,
        breakers,
        breaker_trips,
        report_checks,
        report_events,
        report_total_latency,
        report_max_latency,
        ..
    } = sched;

    let mut resolved = Vec::with_capacity(outcomes.len());
    for (ix, o) in outcomes.into_iter().enumerate() {
        match o {
            Some(o) => resolved.push(o),
            None => {
                return Err(VmError::Internal {
                    detail: format!("request {ix} left unresolved by the serve engine"),
                })
            }
        }
    }
    let failed = resolved.iter().filter(|o| o.error.is_some()).count() as u64;
    let shed = resolved.iter().filter(|o| o.shed.is_some()).count() as u64;
    let completed = resolved.len() as u64 - failed - shed;
    let breaker_final: Vec<(u32, &'static str)> =
        breakers.iter().map(|(k, b)| (*k, b.state.name())).collect();
    Ok((
        ServeReport {
            outcomes: resolved,
            completed,
            failed,
            shed,
            breaker_trips,
            breaker_final,
            printed: std::mem::take(&mut vm.printed),
            heap: vm.heap.stats,
            gc: vm.gc_stats,
            mutator: vm.mutator,
            suspension_checks: report_checks,
            suspension_events: report_events,
            total_suspension_latency: report_total_latency,
            max_suspension_latency: report_max_latency,
        },
        std::mem::take(&mut vm.obs),
    ))
}

/// Runs the current thread to completion, collecting inline when blocked
/// (single-task mode for the main/global phase).
fn run_single(vm: &mut Vm<'_>) -> VmResult<()> {
    let mut blocked_without_progress = false;
    loop {
        match vm.step()? {
            StepEvent::Done(_) => return Ok(()),
            StepEvent::AllocBlocked(site) => {
                if blocked_without_progress {
                    // The collection freed nothing and the allocation
                    // already retried once: growing is the only way
                    // forward.
                    if !vm.grow_parked(site)? {
                        return Err(VmError::OutOfMemory {
                            requested: 0,
                            live: vm.heap.used(),
                            site: site.0,
                            strategy: vm.strategy_name(),
                        });
                    }
                } else {
                    vm.collect_parked(site)?;
                    blocked_without_progress = true;
                }
            }
            StepEvent::Continue => blocked_without_progress = false,
        }
    }
}

/// The request engine: a fixed pool of thread slots (`tasks`) draining a
/// request queue. All per-slot vectors are indexed by pool slot, not by
/// request.
struct Scheduler<'p> {
    vm: Vm<'p>,
    prog: &'p IrProgram,
    /// Per *activated* slot: the VM thread index it owns (fixed for the
    /// whole run — the thread is respawned in place between requests).
    /// Slots activate lazily in index order as requests are dispatched,
    /// so `tasks.len() <= done.len()`.
    tasks: Vec<usize>,
    /// The full submission queue.
    requests: Vec<Request>,
    /// Per slot: index into `requests` of the request it is running.
    slot_req: Vec<usize>,
    /// Per request: its outcome, filled as requests resolve.
    outcomes: Vec<Option<RequestOutcome>>,
    /// Requests resolved so far (completed + failed + shed); the run
    /// ends when every request is resolved.
    resolved: usize,
    /// Per slot: `Obs` timestamp when its current request started (only
    /// maintained while observation is enabled).
    started_ns: Vec<u64>,
    /// Emit a `HeapSample` every this many quanta (0 = never).
    sample_every: u64,
    /// Scheduling quanta executed (the deterministic sample clock).
    quanta: u64,
    policy: SuspendPolicy,
    quantum: u64,
    gc_pending: bool,
    /// The pending collection was requested by the soft watermark, not a
    /// blocked allocation: skip the no-progress exhaustion accounting.
    proactive_gc: bool,
    parked: Vec<bool>,
    /// Per slot: `true` while the slot holds no request (idle or never
    /// activated).
    done: Vec<bool>,
    /// Per slot: the allocation site it is blocked on, while blocked.
    /// Distinguishes tasks starving for memory from tasks merely parked
    /// at a call so OOM can be pinned on the right tasks.
    blocked_on_alloc: Vec<Option<CallSiteId>>,
    /// Instructions executed since the pending collection was requested.
    latency: u64,
    /// Successful allocation count at the previous collection: if no
    /// allocation succeeds between two collections, the heap is
    /// genuinely exhausted.
    allocs_at_last_gc: Option<u64>,
    /// Pending offers: `(due_quantum, request_index, attempts)`,
    /// min-ordered so arrivals pump in deterministic `(due, index)`
    /// order. Initially every request is due at quantum 0.
    waiting: BinaryHeap<Reverse<(u64, usize, u32)>>,
    /// Admitted requests waiting for an idle slot.
    queue: VecDeque<usize>,
    /// Per slot: the quantum its current request was dispatched at (the
    /// deadline clock's zero).
    started_quanta: Vec<u64>,
    /// Per slot: instructions its current request has executed (the fuel
    /// clock).
    fuel_spent: Vec<u64>,
    /// Backoff jitter source, seeded from [`OverloadConfig::seed`];
    /// drawn only on admission decisions, so the stream is independent
    /// of the observation sink.
    rng: SmallRng,
    /// Per request kind: circuit-breaker state.
    breakers: BTreeMap<u32, Breaker>,
    /// Breaker open transitions across the run.
    breaker_trips: u64,
    /// Soft watermark is edge-triggered: armed below the line, fires one
    /// proactive collection on crossing.
    soft_armed: bool,
    shed_count: u64,
    overload: OverloadConfig,
    report_checks: u64,
    report_events: u64,
    report_total_latency: u64,
    report_max_latency: u64,
}

/// Per-kind circuit-breaker state machine: `Closed` (counting
/// consecutive quarantines) → `Open` (fast-reject until a quantum
/// deadline) → `HalfOpen` (one probe admitted) → `Closed` on probe
/// success or back to `Open` on probe failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open { until: u64 },
    HalfOpen { probe: Option<usize> },
}

impl BreakerState {
    fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen { .. } => "half-open",
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Breaker {
    /// Consecutive quarantines since the last success.
    consecutive: u32,
    state: BreakerState,
}

impl Default for Breaker {
    fn default() -> Breaker {
        Breaker {
            consecutive: 0,
            state: BreakerState::Closed,
        }
    }
}

/// What the breaker says about an arrival of some kind.
enum BreakerGate {
    Admit,
    FastReject,
}

impl Scheduler<'_> {
    fn run(&mut self) -> VmResult<()> {
        let n = self.done.len();
        let mut rr = 0usize;
        // Initial burst: pump admissions, fill the pool, take the
        // opening occupancy sample.
        self.pump();
        self.dispatch();
        self.sample_heap();
        self.sample_backlog();
        while self.resolved < self.requests.len() {
            self.pump();
            self.dispatch();
            if self.resolved == self.requests.len() {
                break;
            }
            let mut ran = false;
            for off in 0..n {
                let i = (rr + off) % n;
                if self.done[i] || (self.gc_pending && self.parked[i]) {
                    continue;
                }
                rr = (i + 1) % n;
                self.run_quantum(i)?;
                self.quanta += 1;
                if self.sample_every != 0 && self.quanta.is_multiple_of(self.sample_every) {
                    self.sample_heap();
                    self.sample_backlog();
                }
                ran = true;
                break;
            }
            if self.gc_pending {
                let all_parked = (0..n).all(|i| self.done[i] || self.parked[i]);
                if all_parked {
                    self.do_collection()?;
                }
            }
            if !ran && !self.gc_pending {
                // Nothing runnable: every unresolved request is a
                // deferred/backoff offer. Jump the quantum clock to the
                // next offer instead of spinning.
                match self.waiting.peek() {
                    Some(&Reverse((due, _, _))) => self.quanta = self.quanta.max(due),
                    None => {
                        return Err(VmError::Internal {
                            detail: format!(
                                "{} requests unresolved with no runnable slot and no \
                                 pending offers",
                                self.requests.len() - self.resolved
                            ),
                        })
                    }
                }
            }
        }
        Ok(())
    }

    // ---- admission control ---------------------------------------------

    /// Moves every due pending offer through admission control.
    fn pump(&mut self) {
        while let Some(&Reverse((due, ix, attempts))) = self.waiting.peek() {
            if due > self.quanta {
                break;
            }
            self.waiting.pop();
            self.offer(ix, attempts);
        }
        self.check_soft_watermark();
    }

    /// One arrival at the admission gate: drain, breaker, watermarks,
    /// queue capacity — in that order — then admit or refuse.
    fn offer(&mut self, ix: usize, attempts: u32) {
        let kind = self.requests[ix].kind;
        if self.overload.drain_after.is_some_and(|q| self.quanta >= q) {
            self.shed(ix, "drain");
            return;
        }
        if let BreakerGate::FastReject = self.breaker_gate(kind) {
            self.shed(ix, "breaker-open");
            return;
        }
        // Watermarks gate admissions only while work is in flight or
        // queued; with an idle service, shedding would serve nobody and
        // only the admitted mutator can relieve the pressure.
        let busy = self.in_flight() > 0 || !self.queue.is_empty();
        let level = self.watermark_level();
        if busy && level >= 2 {
            self.refuse(ix, attempts, "hard-watermark");
            return;
        }
        let idle = (0..self.done.len()).filter(|&i| self.done[i]).count();
        if busy && level == 1 && !(self.queue.is_empty() && idle > 0) {
            // Soft throttle: admit direct-to-slot only; everyone else
            // waits a beat.
            self.defer(ix, attempts);
            return;
        }
        if self.overload.queue_cap > 0 && self.queue.len() >= self.overload.queue_cap + idle {
            self.refuse(ix, attempts, "queue-full");
            return;
        }
        self.mark_probe(kind, ix);
        self.queue.push_back(ix);
    }

    /// Applies the admission policy to a refused arrival.
    fn refuse(&mut self, ix: usize, attempts: u32, reason: &'static str) {
        match self.overload.admission {
            AdmissionPolicy::Reject => self.shed(ix, reason),
            AdmissionPolicy::RetryBackoff { max_attempts, base } => {
                if attempts >= max_attempts {
                    self.shed(ix, "backoff-exhausted");
                } else {
                    let base = base.max(1);
                    let delay = base << attempts.min(16);
                    let jitter = self.rng.next_u64() % base;
                    self.waiting
                        .push(Reverse((self.quanta + delay + jitter, ix, attempts + 1)));
                }
            }
            AdmissionPolicy::Degrade { low_kind_min } => {
                if self.requests[ix].kind >= low_kind_min {
                    self.shed(ix, "degrade");
                } else {
                    self.defer(ix, attempts);
                }
            }
        }
    }

    /// Re-offers an arrival next quantum without burning an attempt
    /// (soft throttle / high-priority wait).
    fn defer(&mut self, ix: usize, attempts: u32) {
        self.waiting.push(Reverse((self.quanta + 1, ix, attempts)));
    }

    /// Resolves a request as shed: an outcome, never an error.
    fn shed(&mut self, ix: usize, reason: &'static str) {
        let kind = self.requests[ix].kind;
        self.outcomes[ix] = Some(RequestOutcome {
            kind,
            result: format!("<shed: {reason}>"),
            error: None,
            shed: Some(reason),
        });
        self.resolved += 1;
        self.shed_count += 1;
        let req = ix as u64;
        self.vm.obs.emit(|t_ns| GcEvent::RequestShed {
            t_ns,
            req,
            kind,
            reason,
        });
    }

    /// Fills idle slots from the admitted queue, lowest slot first.
    fn dispatch(&mut self) {
        while !self.queue.is_empty() {
            let Some(slot) = (0..self.done.len()).find(|&i| self.done[i]) else {
                break;
            };
            let Some(ix) = self.queue.pop_front() else {
                break;
            };
            self.start_in_slot(slot, ix);
        }
    }

    /// Pool slots currently holding a request.
    fn in_flight(&self) -> usize {
        self.done.iter().filter(|d| !**d).count()
    }

    // ---- heap-pressure watermarks --------------------------------------

    /// Current heap-pressure level: 0 = normal, 1 = at/above the soft
    /// watermark, 2 = at/above the hard watermark. A pure function of
    /// heap occupancy, so identical across observed and unobserved runs.
    fn watermark_level(&self) -> u8 {
        let cap = self.vm.heap.capacity();
        if cap == 0 {
            return 0;
        }
        let pct = (self.vm.heap.used() * 100 / cap) as u32;
        if self.overload.hard_watermark_pct.is_some_and(|h| pct >= h) {
            2
        } else if self.overload.soft_watermark_pct.is_some_and(|s| pct >= s) {
            1
        } else {
            0
        }
    }

    /// Edge-triggered soft watermark: on crossing, request one proactive
    /// collection (the §4 park-everyone protocol, minus the blocked
    /// allocation) so pressure is relieved *before* allocation fails.
    fn check_soft_watermark(&mut self) {
        if self.overload.soft_watermark_pct.is_none() {
            return;
        }
        if self.watermark_level() >= 1 {
            if self.soft_armed && self.in_flight() > 0 {
                self.soft_armed = false;
                self.gc_pending = true;
                self.proactive_gc = true;
            }
        } else {
            self.soft_armed = true;
        }
    }

    // ---- circuit breakers ----------------------------------------------

    /// Consults (and transitions) `kind`'s breaker for one arrival.
    fn breaker_gate(&mut self, kind: u32) -> BreakerGate {
        if self.overload.breaker_threshold == 0 {
            return BreakerGate::Admit;
        }
        let quanta = self.quanta;
        let Some(b) = self.breakers.get_mut(&kind) else {
            return BreakerGate::Admit;
        };
        if let BreakerState::Open { until } = b.state {
            if quanta < until {
                return BreakerGate::FastReject;
            }
            // Cooldown elapsed: this arrival becomes the half-open
            // probe candidate.
            b.state = BreakerState::HalfOpen { probe: None };
            self.vm
                .obs
                .emit(|t_ns| GcEvent::BreakerHalfOpen { t_ns, kind });
        }
        if let BreakerState::HalfOpen { probe: Some(_) } = b.state {
            // One probe at a time; everyone else fast-rejects until it
            // resolves.
            return BreakerGate::FastReject;
        }
        BreakerGate::Admit
    }

    /// Marks an admitted request as the half-open probe if its kind's
    /// breaker is waiting for one.
    fn mark_probe(&mut self, kind: u32, ix: usize) {
        if let Some(b) = self.breakers.get_mut(&kind) {
            if b.state == (BreakerState::HalfOpen { probe: None }) {
                b.state = BreakerState::HalfOpen { probe: Some(ix) };
            }
        }
    }

    /// Folds one resolution (quarantine or completion) into the
    /// breaker of the request's kind.
    fn breaker_note(&mut self, kind: u32, req_ix: usize, ok: bool) {
        let threshold = self.overload.breaker_threshold;
        if threshold == 0 {
            return;
        }
        let cooldown = self.overload.breaker_cooldown;
        let quanta = self.quanta;
        let b = self.breakers.entry(kind).or_default();
        match b.state {
            BreakerState::HalfOpen { probe: Some(p) } if p == req_ix => {
                if ok {
                    b.state = BreakerState::Closed;
                    b.consecutive = 0;
                    self.vm
                        .obs
                        .emit(|t_ns| GcEvent::BreakerClose { t_ns, kind });
                } else {
                    b.consecutive += 1;
                    b.state = BreakerState::Open {
                        until: quanta + cooldown,
                    };
                    self.breaker_trips += 1;
                    let consecutive = b.consecutive;
                    self.vm.obs.emit(|t_ns| GcEvent::BreakerOpen {
                        t_ns,
                        kind,
                        consecutive,
                    });
                }
            }
            _ => {
                if ok {
                    b.consecutive = 0;
                } else {
                    b.consecutive += 1;
                    if b.state == BreakerState::Closed && b.consecutive >= threshold {
                        b.state = BreakerState::Open {
                            until: quanta + cooldown,
                        };
                        self.breaker_trips += 1;
                        let consecutive = b.consecutive;
                        self.vm.obs.emit(|t_ns| GcEvent::BreakerOpen {
                            t_ns,
                            kind,
                            consecutive,
                        });
                    }
                }
            }
        }
    }

    /// Emits the `RequestStart` event (and stamps the latency clock) for
    /// the request currently in slot `i`.
    fn announce_start(&mut self, i: usize) {
        if !self.vm.obs.enabled() {
            return;
        }
        self.started_ns[i] = self.vm.obs.now_ns();
        let req_ix = self.slot_req[i];
        let kind = self.requests[req_ix].kind;
        let req = req_ix as u64;
        let task = i as u32;
        self.vm.obs.emit(|t_ns| GcEvent::RequestStart {
            t_ns,
            req,
            task,
            kind,
        });
    }

    /// Dispatches request `req_ix` into slot `i`, activating the slot's
    /// VM thread on first use (slots activate in index order). The
    /// slot's previous request must already be resolved (its thread
    /// finished or killed).
    fn start_in_slot(&mut self, i: usize, req_ix: usize) {
        let req = self.requests[req_ix];
        let fun = self.prog.fun(req.entry);
        assert_eq!(
            fun.n_params, 1,
            "request entry `{}` must take exactly one int argument",
            fun.name
        );
        let w = self.vm.encode_int(req.arg);
        if i == self.tasks.len() {
            self.tasks.push(self.vm.spawn_thread(req.entry, &[w]));
        } else {
            self.vm.respawn_thread(self.tasks[i], req.entry, &[w]);
        }
        self.slot_req[i] = req_ix;
        self.done[i] = false;
        self.parked[i] = false;
        self.blocked_on_alloc[i] = None;
        self.started_quanta[i] = self.quanta;
        self.fuel_spent[i] = 0;
        self.announce_start(i);
    }

    /// Resolves slot `i`'s current request — rendering its result (or
    /// formatting its quarantine error), noting the breaker, emitting
    /// `RequestEnd` — and idles the slot; the run loop's dispatch
    /// refills it from the admitted queue.
    fn finish(&mut self, i: usize, error: Option<VmError>) {
        let req_ix = self.slot_req[i];
        let req = self.requests[req_ix];
        let mut error = error;
        let result = match &error {
            Some(e) => format!("<error: {e}>"),
            None => match self.vm.thread_result(self.tasks[i]) {
                Some(w) => self.vm.render(w, &self.prog.fun(req.entry).ret_ty),
                None => {
                    let e = VmError::Internal {
                        detail: format!("slot {i} finished with no thread result"),
                    };
                    let rendered = format!("<error: {e}>");
                    error = Some(e);
                    rendered
                }
            },
        };
        let ok = error.is_none();
        self.breaker_note(req.kind, req_ix, ok);
        self.outcomes[req_ix] = Some(RequestOutcome {
            kind: req.kind,
            result,
            error,
            shed: None,
        });
        self.resolved += 1;
        if self.vm.obs.enabled() {
            let started = self.started_ns[i];
            let req = req_ix as u64;
            let task = i as u32;
            self.vm.obs.emit(|t_ns| GcEvent::RequestEnd {
                t_ns,
                req,
                task,
                latency_ns: t_ns.saturating_sub(started),
                ok,
            });
        }
        self.done[i] = true;
        self.parked[i] = false;
        self.blocked_on_alloc[i] = None;
        self.sample_heap();
    }

    /// Emits one heap-occupancy sample (a no-op unless sampling and
    /// observation are both on). The occupancy fields are functions of
    /// the instruction stream, so the sampled values are deterministic.
    fn sample_heap(&mut self) {
        if self.sample_every == 0 || !self.vm.obs.enabled() {
            return;
        }
        let occ = self.vm.heap.occupancy();
        let in_flight = self.in_flight() as u32;
        self.vm.obs.emit(|t_ns| GcEvent::HeapSample {
            t_ns,
            heap_words: occ.heap_words,
            live_words: occ.live_words,
            nursery_words: occ.nursery_words,
            in_flight,
        });
    }

    /// Emits one backlog-depth sample on the same cadence as
    /// [`Scheduler::sample_heap`].
    fn sample_backlog(&mut self) {
        if self.sample_every == 0 || !self.vm.obs.enabled() {
            return;
        }
        let queued = self.queue.len() as u32;
        let waiting = self.waiting.len() as u32;
        let watermark = self.watermark_level();
        self.vm.obs.emit(|t_ns| GcEvent::BacklogSample {
            t_ns,
            queued,
            waiting,
            watermark,
        });
    }

    /// Quarantines slot `i`'s request for breaching its deadline or fuel
    /// budget (checked at the quantum boundary — the same safe-point
    /// cadence the suspension protocol uses, so no preemption is
    /// needed).
    fn quarantine_budget(
        &mut self,
        i: usize,
        spent: u64,
        budget: u64,
        unit: &'static str,
    ) -> VmResult<()> {
        let req = self.slot_req[i] as u64;
        let task = i as u32;
        self.vm.obs.emit(|t_ns| GcEvent::DeadlineExceeded {
            t_ns,
            req,
            task,
            spent,
            budget,
            unit,
        });
        self.quarantine(
            i,
            VmError::DeadlineExceeded {
                spent,
                budget,
                unit,
            },
        )
    }

    /// Runs task `i` for up to a quantum, honoring safe-point parking.
    /// Budgets are checked first: a request past its deadline (quanta)
    /// or out of fuel (instructions) is quarantined before it runs
    /// again.
    fn run_quantum(&mut self, i: usize) -> VmResult<()> {
        let req = self.requests[self.slot_req[i]];
        if let Some(d) = req.deadline_quanta {
            let elapsed = self.quanta.saturating_sub(self.started_quanta[i]);
            if elapsed >= d {
                return self.quarantine_budget(i, elapsed, d, "quanta");
            }
        }
        if let Some(f) = req.fuel {
            if self.fuel_spent[i] >= f {
                return self.quarantine_budget(i, self.fuel_spent[i], f, "instructions");
            }
        }
        let thread = self.tasks[i];
        self.vm.set_current_thread(thread);
        if self.parked[i] {
            self.vm.unpark_thread(thread);
            self.parked[i] = false;
            // Resuming retries the blocked allocation; a fresh block
            // will re-mark the task.
            self.blocked_on_alloc[i] = None;
        }
        for _ in 0..self.quantum {
            // The suspension test (§4): executed per the policy's cost
            // model at each safe-point instruction.
            let at_call = matches!(
                self.vm.current_instr(),
                Instr::CallDirect { .. } | Instr::CallClosure { .. }
            );
            let at_alloc = matches!(
                self.vm.current_instr(),
                Instr::MakeTuple { .. } | Instr::MakeData { .. } | Instr::MakeClosure { .. }
            );
            match self.policy {
                SuspendPolicy::AllocationOnly => {
                    if at_alloc {
                        self.report_checks += 1;
                    }
                }
                SuspendPolicy::EveryCall => {
                    if at_call || at_alloc {
                        self.report_checks += 1;
                    }
                }
                SuspendPolicy::EveryCallRgc => {
                    // The Rgc register folds the test into the call's
                    // target address: zero extra operations.
                }
            }
            if self.gc_pending {
                let safe = match self.policy {
                    SuspendPolicy::AllocationOnly => at_alloc,
                    SuspendPolicy::EveryCall | SuspendPolicy::EveryCallRgc => at_call || at_alloc,
                };
                if safe {
                    let site = match self.vm.current_site() {
                        Some(s) => s,
                        None => {
                            return Err(VmError::Internal {
                                detail: format!(
                                    "slot {i} parking at an instruction with no call/alloc site"
                                ),
                            })
                        }
                    };
                    self.vm.park_thread(thread, site);
                    self.parked[i] = true;
                    let task = i as u32;
                    self.vm.obs.emit(|t_ns| GcEvent::TaskParked {
                        t_ns,
                        task,
                        site: site.0,
                    });
                    return Ok(());
                }
            }
            match self.vm.step() {
                Ok(StepEvent::Continue) => {
                    self.fuel_spent[i] += 1;
                    if self.gc_pending {
                        self.latency += 1;
                    }
                }
                Ok(StepEvent::Done(_)) => {
                    self.fuel_spent[i] += 1;
                    self.finish(i, None);
                    return Ok(());
                }
                Ok(StepEvent::AllocBlocked(site)) => {
                    self.gc_pending = true;
                    self.blocked_on_alloc[i] = Some(site);
                    self.vm.park_thread(thread, site);
                    self.parked[i] = true;
                    let task = i as u32;
                    self.vm.obs.emit(|t_ns| GcEvent::TaskParked {
                        t_ns,
                        task,
                        site: site.0,
                    });
                    return Ok(());
                }
                Err(e) => return self.quarantine(i, e),
            }
        }
        Ok(())
    }

    /// Records a per-request error, kills the slot's stack (its heap
    /// data dies at the next collection), and lets the siblings run on —
    /// the slot is recycled for the next queued request like any normal
    /// completion. Whole-machine errors — budget exhaustion and
    /// heap-verification failures — propagate instead: no task can make
    /// progress past them.
    fn quarantine(&mut self, i: usize, e: VmError) -> VmResult<()> {
        if matches!(
            e,
            VmError::StepLimit { .. }
                | VmError::VerificationFailed { .. }
                | VmError::Internal { .. }
        ) {
            return Err(e);
        }
        self.vm.kill_thread(self.tasks[i]);
        self.parked[i] = false;
        self.blocked_on_alloc[i] = None;
        self.finish(i, Some(e));
        Ok(())
    }

    /// All tasks parked: collect (growing if a previous collection freed
    /// nothing and the growth policy allows it), account, resume.
    ///
    /// When the heap is genuinely exhausted by live data and cannot
    /// grow, the tasks starving for memory are quarantined with a
    /// structured [`VmError::OutOfMemory`] — each blocked allocation has
    /// by then parked and retried exactly once after a full collection —
    /// and the surviving tasks resume.
    fn do_collection(&mut self) -> VmResult<()> {
        // Any live parked task can stand for the trigger (no operands are
        // pending: blocked allocations re-execute after the collection).
        let Some(i) = (0..self.tasks.len()).find(|i| !self.done[*i]) else {
            // Every slot drained before the pending collection ran (the
            // triggering task was quarantined). Nothing to collect for.
            self.gc_pending = false;
            self.proactive_gc = false;
            self.report_total_latency += self.latency;
            self.report_max_latency = self.report_max_latency.max(self.latency);
            self.latency = 0;
            return Ok(());
        };
        let thread = self.tasks[i];
        self.vm.set_current_thread(thread);
        let site = match self.vm.current_site() {
            Some(s) => s,
            None => {
                return Err(VmError::Internal {
                    detail: format!("parked slot {i} holds no call/alloc site"),
                })
            }
        };
        let proactive = std::mem::replace(&mut self.proactive_gc, false);
        let allocs_now = self.vm.heap.stats.allocations;
        let mut collected = true;
        if proactive {
            // Watermark-triggered collection: the heap is under pressure
            // but nobody is starving, so skip the no-progress/exhaustion
            // accounting — this cycle is advisory, not a last resort.
            self.allocs_at_last_gc = Some(allocs_now);
            self.vm.collect_parked(site)?;
        } else if self.allocs_at_last_gc == Some(allocs_now) {
            // No allocation succeeded since the previous collection: the
            // heap is exhausted by live data. Grow within the bounded
            // policy (this collects internally) or degrade by
            // quarantining the starving tasks.
            if self.vm.grow_parked(site)? {
                self.allocs_at_last_gc = Some(allocs_now);
            } else {
                self.quarantine_starving(site)?;
                // The killed tasks' data is garbage now; let the next
                // exhaustion collect it rather than declaring
                // no-progress again.
                self.allocs_at_last_gc = None;
                collected = false;
            }
        } else {
            self.allocs_at_last_gc = Some(allocs_now);
            self.vm.collect_parked(site)?;
        }
        if collected {
            self.report_events += 1;
        }
        self.report_total_latency += self.latency;
        self.report_max_latency = self.report_max_latency.max(self.latency);
        self.latency = 0;
        self.gc_pending = false;
        if self.vm.obs.enabled() {
            for (ix, was_parked) in self.parked.iter().enumerate() {
                if *was_parked && !self.done[ix] {
                    let task = ix as u32;
                    self.vm.obs.emit(|t_ns| GcEvent::TaskResumed { t_ns, task });
                }
            }
        }
        for p in self.parked.iter_mut() {
            *p = false;
        }
        for (ix, t) in self.tasks.iter().enumerate() {
            if !self.done[ix] {
                self.blocked_on_alloc[ix] = None;
                self.vm.unpark_thread(*t);
            }
        }
        self.sample_heap();
        Ok(())
    }

    /// Quarantines ONE task blocked on an allocation (the lowest-index
    /// starving task, for determinism) with a structured OOM carrying its
    /// own failing site. Killing its stack turns its data into garbage,
    /// so the surviving blocked tasks get a fresh collection and retry
    /// before any of them is condemned in turn. At least one task must be
    /// blocked — only a blocked allocation raises a collection request.
    fn quarantine_starving(&mut self, trigger: CallSiteId) -> VmResult<()> {
        let live = self.vm.heap.used();
        let strategy = self.vm.strategy_name();
        let victim =
            (0..self.tasks.len()).find(|&j| !self.done[j] && self.blocked_on_alloc[j].is_some());
        let Some(j) = victim else {
            // Defensive: nobody is waiting on memory yet nothing was
            // freed — surface the exhaustion globally.
            return Err(VmError::OutOfMemory {
                requested: 0,
                live,
                site: trigger.0,
                strategy,
            });
        };
        let Some(bsite) = self.blocked_on_alloc[j] else {
            return Err(VmError::Internal {
                detail: format!("starving victim slot {j} lost its blocked-allocation site"),
            });
        };
        self.vm.kill_thread(self.tasks[j]);
        self.parked[j] = false;
        self.blocked_on_alloc[j] = None;
        self.finish(
            j,
            Some(VmError::OutOfMemory {
                requested: 0,
                live,
                site: bsite.0,
                strategy,
            }),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_ir::lower;
    use tfgc_syntax::parse_program;
    use tfgc_types::elaborate;

    fn compile(src: &str) -> IrProgram {
        lower(&elaborate(&parse_program(src).unwrap()).unwrap()).unwrap()
    }

    const WORKLOAD: &str = "
        fun build n = if n = 0 then [] else n :: build (n - 1) ;
        fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
        fun worker n = if n = 0 then 0 else (sum (build 20) + worker (n - 1)) - sum (build 20) ;
        fun spin n = if n = 0 then 0 else (let val x = n * n in spin (n - 1) end) ;
        0";

    fn entries(prog: &IrProgram, names: &[(&str, i64)]) -> Vec<(FnId, i64)> {
        names
            .iter()
            .map(|(n, a)| (find_fn(prog, n).unwrap_or_else(|| panic!("no fn {n}")), *a))
            .collect()
    }

    #[test]
    fn two_allocating_tasks_share_the_heap() {
        let prog = compile(WORKLOAD);
        let es = entries(&prog, &[("worker", 30), ("worker", 30)]);
        for strategy in Strategy::ALL {
            let mut cfg = TaskConfig::new(strategy);
            // The no-liveness strategies retain each frame's dead lists,
            // so they need headroom.
            cfg.heap_words = 1 << 12;
            let report = run_tasks(&prog, &es, cfg).unwrap_or_else(|e| panic!("{strategy}: {e}"));
            assert_eq!(report.results, vec!["0", "0"], "{strategy}");
            assert!(report.suspension_events > 0, "{strategy}: no collections");
        }
    }

    #[test]
    fn policies_agree_on_results() {
        let prog = compile(WORKLOAD);
        let es = entries(&prog, &[("worker", 20), ("worker", 25), ("worker", 15)]);
        let mut baseline: Option<Vec<String>> = None;
        for policy in [
            SuspendPolicy::AllocationOnly,
            SuspendPolicy::EveryCall,
            SuspendPolicy::EveryCallRgc,
        ] {
            let mut cfg = TaskConfig::new(Strategy::Compiled);
            cfg.heap_words = 1 << 11;
            cfg.policy = policy;
            let report = run_tasks(&prog, &es, cfg).unwrap_or_else(|e| panic!("{policy}: {e}"));
            match &baseline {
                None => baseline = Some(report.results.clone()),
                Some(b) => assert_eq!(&report.results, b, "{policy}"),
            }
        }
    }

    #[test]
    fn every_call_pays_checks_rgc_does_not() {
        let prog = compile(WORKLOAD);
        let es = entries(&prog, &[("worker", 20), ("worker", 20)]);
        let mut every = TaskConfig::new(Strategy::Compiled);
        every.heap_words = 1 << 11;
        every.policy = SuspendPolicy::EveryCall;
        let r_every = run_tasks(&prog, &es, every).unwrap();

        let mut rgc = TaskConfig::new(Strategy::Compiled);
        rgc.heap_words = 1 << 11;
        rgc.policy = SuspendPolicy::EveryCallRgc;
        let r_rgc = run_tasks(&prog, &es, rgc).unwrap();

        assert!(r_every.suspension_checks > 0);
        assert_eq!(r_rgc.suspension_checks, 0);
        assert_eq!(r_every.results, r_rgc.results);
    }

    #[test]
    fn alloc_only_has_higher_latency_than_every_call() {
        // One allocating worker plus one compute-heavy spinner that calls
        // but rarely allocates: under alloc-only the spinner keeps
        // running after exhaustion; under every-call it parks at its next
        // call.
        let prog = compile(WORKLOAD);
        let es = entries(&prog, &[("worker", 40), ("spin", 3000)]);
        let mk = |policy| {
            let mut cfg = TaskConfig::new(Strategy::Compiled);
            cfg.heap_words = 1 << 11;
            cfg.policy = policy;
            cfg.quantum = 32;
            cfg
        };
        let alloc_only = run_tasks(&prog, &es, mk(SuspendPolicy::AllocationOnly)).unwrap();
        let every_call = run_tasks(&prog, &es, mk(SuspendPolicy::EveryCall)).unwrap();
        assert_eq!(alloc_only.results, every_call.results);
        assert!(
            alloc_only.suspension_events > 0 && every_call.suspension_events > 0,
            "both policies must collect"
        );
        assert!(
            alloc_only.max_suspension_latency >= every_call.max_suspension_latency,
            "alloc-only {} < every-call {}",
            alloc_only.max_suspension_latency,
            every_call.max_suspension_latency
        );
    }

    #[test]
    fn tasks_see_globals() {
        let prog = compile(
            "val base = [100, 200] ;
             fun hd xs = case xs of [] => 0 | x :: _ => x ;
             fun taskf n = hd base + n ;
             0",
        );
        let es = entries(&prog, &[("taskf", 1), ("taskf", 2)]);
        let report = run_tasks(&prog, &es, TaskConfig::new(Strategy::Compiled)).unwrap();
        assert_eq!(report.results, vec!["101", "102"]);
    }

    #[test]
    fn many_tasks_interleave_prints_deterministically() {
        let prog = compile(
            "fun chatty n = if n = 0 then 0 else (print n; chatty (n - 1)) ;
             0",
        );
        let es = entries(&prog, &[("chatty", 3), ("chatty", 3)]);
        let a = run_tasks(&prog, &es, TaskConfig::new(Strategy::Compiled)).unwrap();
        let b = run_tasks(&prog, &es, TaskConfig::new(Strategy::Compiled)).unwrap();
        assert_eq!(a.printed, b.printed, "scheduler must be deterministic");
        let mut sorted = a.printed.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 1, 2, 2, 3, 3]);
    }

    /// Satellite: cooperative-tasking OOM. The exhausted allocation must
    /// park, collect via the scheduler, and retry exactly once before
    /// the task is quarantined with a structured error.
    #[test]
    fn exhausted_heap_parks_collects_and_retries_once_before_error() {
        let prog = compile(
            "fun build n = if n = 0 then [] else n :: build (n - 1) ;
             fun len xs = case xs of [] => 0 | _ :: r => 1 + len r ;
             fun hog n = len (build n) ;
             0",
        );
        let es = entries(&prog, &[("hog", 2000)]);
        let mut cfg = TaskConfig::new(Strategy::Compiled);
        cfg.heap_words = 1 << 9; // far too small for 2000 live cons cells
        let report = run_tasks(&prog, &es, cfg).unwrap();
        let err = report.task_errors[0]
            .as_ref()
            .expect("starving task must be quarantined");
        assert!(
            matches!(
                err,
                VmError::OutOfMemory {
                    strategy: "compiled",
                    ..
                }
            ),
            "{err}"
        );
        // The failing allocation's own site is recorded.
        let VmError::OutOfMemory { site, .. } = err else {
            unreachable!()
        };
        assert!(
            prog.sites.len() > *site as usize,
            "site {site} out of range"
        );
        assert!(report.results[0].starts_with("<error: out of memory"));
        // The block parked and a collection ran before the error: the
        // no-progress check only fires after a full collect + retry.
        assert!(report.suspension_events >= 1);
    }

    #[test]
    fn oom_task_is_quarantined_while_siblings_finish() {
        let prog = compile(
            "fun build n = if n = 0 then [] else n :: build (n - 1) ;
             fun len xs = case xs of [] => 0 | _ :: r => 1 + len r ;
             fun hog n = len (build n) ;
             fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
             fun worker n = if n = 0 then 0 else (sum (build 20) + worker (n - 1)) - sum (build 20) ;
             0",
        );
        let es = entries(&prog, &[("hog", 4000), ("worker", 25)]);
        for strategy in Strategy::ALL {
            let mut cfg = TaskConfig::new(strategy);
            // Headroom for the no-liveness strategies' retained dead
            // lists, yet far below hog's ~8000-word live set.
            cfg.heap_words = 1 << 12;
            let report = run_tasks(&prog, &es, cfg).unwrap_or_else(|e| panic!("{strategy}: {e}"));
            assert!(
                matches!(report.task_errors[0], Some(VmError::OutOfMemory { .. })),
                "{strategy}: hog must starve"
            );
            assert_eq!(
                report.task_errors[1], None,
                "{strategy}: worker must run on"
            );
            assert_eq!(report.results[1], "0", "{strategy}");
        }
    }

    #[test]
    fn per_task_error_is_quarantined_not_fatal() {
        let prog = compile(
            "fun crash n = n div (n - n) ;
             fun ok n = n + 1 ;
             0",
        );
        let es = entries(&prog, &[("crash", 7), ("ok", 41)]);
        let report = run_tasks(&prog, &es, TaskConfig::new(Strategy::Compiled)).unwrap();
        assert!(
            matches!(report.task_errors[0], Some(VmError::DivideByZero { .. })),
            "{:?}",
            report.task_errors[0]
        );
        assert!(report.results[0].starts_with("<error: division by zero"));
        assert_eq!(report.results[1], "42");
    }

    #[test]
    fn bounded_growth_rescues_oversized_live_set() {
        let prog = compile(
            "fun build n = if n = 0 then [] else n :: build (n - 1) ;
             fun len xs = case xs of [] => 0 | _ :: r => 1 + len r ;
             fun hog n = len (build n) ;
             0",
        );
        let es = entries(&prog, &[("hog", 2000)]);
        let mut cfg = TaskConfig::new(Strategy::Compiled);
        cfg.heap_words = 1 << 9;
        cfg.heap_max_words = Some(1 << 15);
        cfg.verify_heap = true;
        let report = run_tasks(&prog, &es, cfg).unwrap();
        assert_eq!(report.task_errors[0], None);
        assert_eq!(report.results[0], "2000");
        assert!(report.heap.grows > 0, "growth policy must have engaged");
    }

    /// Builds a request queue cycling through `(name, arg, kind)`
    /// triples.
    fn requests(prog: &IrProgram, specs: &[(&str, i64, u32)]) -> Vec<Request> {
        specs
            .iter()
            .map(|(n, a, k)| {
                Request::new(
                    find_fn(prog, n).unwrap_or_else(|| panic!("no fn {n}")),
                    *a,
                    *k,
                )
            })
            .collect()
    }

    #[test]
    fn pool_smaller_than_queue_drains_every_request() {
        let prog = compile(WORKLOAD);
        let q: Vec<Request> = (0..12)
            .map(|i| Request::new(find_fn(&prog, "worker").unwrap(), 5 + (i % 3), i as u32))
            .collect();
        for strategy in Strategy::ALL {
            let mut cfg = TaskConfig::new(strategy);
            cfg.heap_words = 1 << 12;
            let (report, _) = serve_requests(&prog, &q, 3, 0, cfg, Obs::null())
                .unwrap_or_else(|e| panic!("{strategy}: {e}"));
            assert_eq!(report.outcomes.len(), 12, "{strategy}");
            assert_eq!(report.completed, 12, "{strategy}");
            assert_eq!(report.failed, 0, "{strategy}");
            for (i, o) in report.outcomes.iter().enumerate() {
                assert_eq!(o.kind, i as u32, "{strategy}: kinds ride along");
                assert_eq!(o.result, "0", "{strategy}: request {i}");
            }
        }
    }

    #[test]
    fn serve_is_deterministic_and_observation_neutral() {
        let prog = compile(WORKLOAD);
        let q = requests(
            &prog,
            &[
                ("worker", 20, 0),
                ("spin", 500, 1),
                ("worker", 15, 0),
                ("worker", 10, 0),
                ("spin", 300, 1),
                ("worker", 25, 0),
            ],
        );
        let mut cfg = TaskConfig::new(Strategy::Compiled);
        cfg.heap_words = 1 << 11;
        let (a, _) = serve_requests(&prog, &q, 2, 0, cfg.clone(), Obs::null()).unwrap();
        let (b, _) = serve_requests(&prog, &q, 2, 8, cfg, Obs::serve(1 << 10, 1_000_000)).unwrap();
        assert_eq!(a.outcomes, b.outcomes, "telemetry must not steer requests");
        assert_eq!(a.printed, b.printed);
        assert_eq!(a.heap, b.heap);
        assert_eq!(a.mutator, b.mutator);
        assert_eq!(a.suspension_events, b.suspension_events);
    }

    #[test]
    fn quarantined_request_does_not_drop_service() {
        let prog = compile(
            "fun crash n = n div (n - n) ;
             fun ok n = n + 1 ;
             0",
        );
        let q = requests(
            &prog,
            &[
                ("ok", 1, 0),
                ("crash", 7, 1),
                ("ok", 2, 0),
                ("ok", 3, 0),
                ("crash", 9, 1),
                ("ok", 4, 0),
            ],
        );
        let (report, _) = serve_requests(
            &prog,
            &q,
            2,
            0,
            TaskConfig::new(Strategy::Compiled),
            Obs::null(),
        )
        .unwrap();
        assert_eq!(report.completed, 4);
        assert_eq!(report.failed, 2);
        assert!(
            matches!(report.outcomes[1].error, Some(VmError::DivideByZero { .. })),
            "{:?}",
            report.outcomes[1].error
        );
        // Requests queued *behind* the crash still ran on the recycled
        // slot.
        assert_eq!(report.outcomes[5].result, "5");
        assert_eq!(report.outcomes[3].result, "4");
    }

    #[test]
    fn serve_emits_request_lifecycle_and_occupancy_events() {
        let prog = compile(WORKLOAD);
        let q = requests(&prog, &[("worker", 10, 3), ("worker", 12, 4)]);
        let mut cfg = TaskConfig::new(Strategy::Compiled);
        cfg.heap_words = 1 << 12;
        let (_, obs) =
            serve_requests(&prog, &q, 1, 4, cfg, Obs::serve(1 << 12, 1_000_000)).unwrap();
        let rec = obs.into_serve_recorder().expect("serve sink");
        let (started, completed, failed) = rec.requests();
        assert_eq!((started, completed, failed), (2, 2, 0));
        assert_eq!(rec.latency_hist().count(), 2);
        assert!(
            !rec.samples().is_empty(),
            "quantum sampling must produce occupancy points"
        );
        assert!(rec.peak_heap_words() > 0);
    }

    #[test]
    fn shared_heap_structures_survive_collections() {
        let prog = compile(
            "val keep = [1, 2, 3, 4, 5] ;
             fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
             fun build n = if n = 0 then [] else n :: build (n - 1) ;
             fun churner n = if n = 0 then sum keep else (churner (n - 1); (build 15; sum keep)) ;
             0",
        );
        let es = entries(&prog, &[("churner", 40), ("churner", 40)]);
        for strategy in Strategy::ALL {
            let mut cfg = TaskConfig::new(strategy);
            cfg.heap_words = 1 << 11;
            let report = run_tasks(&prog, &es, cfg).unwrap_or_else(|e| panic!("{strategy}: {e}"));
            assert_eq!(report.results, vec!["15", "15"], "{strategy}");
            assert!(report.suspension_events > 0, "{strategy}");
        }
    }

    // ---- overload management -------------------------------------------

    const RUNAWAY: &str = "
        fun runaway n = if n = 0 then 0 else runaway (n + 1) ;
        fun ok n = n + 1 ;
        0";

    fn conservation(report: &ServeReport) {
        assert_eq!(
            report.completed + report.failed + report.shed,
            report.outcomes.len() as u64,
            "conservation: completed + failed + shed == submitted"
        );
    }

    /// Acceptance: a seeded runaway request is quarantined with a
    /// structured `DeadlineExceeded` within its budget while sibling
    /// requests complete normally.
    #[test]
    fn deadline_quarantines_runaway_while_siblings_complete() {
        let prog = compile(RUNAWAY);
        let q = vec![
            Request::new(find_fn(&prog, "runaway").unwrap(), 1, 0).with_deadline(40),
            Request::new(find_fn(&prog, "ok").unwrap(), 41, 1),
            Request::new(find_fn(&prog, "ok").unwrap(), 1, 1),
        ];
        let cfg = TaskConfig::new(Strategy::Compiled);
        let (report, _) =
            serve_requests_overload(&prog, &q, 2, 0, cfg, OverloadConfig::none(), Obs::null())
                .unwrap();
        assert!(
            matches!(
                report.outcomes[0].error,
                Some(VmError::DeadlineExceeded {
                    unit: "quanta",
                    budget: 40,
                    ..
                })
            ),
            "{:?}",
            report.outcomes[0].error
        );
        assert!(report.outcomes[0]
            .result
            .starts_with("<error: deadline exceeded"));
        assert_eq!(report.outcomes[1].result, "42");
        assert_eq!(report.outcomes[2].result, "2");
        assert_eq!((report.completed, report.failed, report.shed), (2, 1, 0));
        conservation(&report);
    }

    #[test]
    fn fuel_budget_quarantines_in_instructions() {
        let prog = compile(RUNAWAY);
        let q = vec![
            Request::new(find_fn(&prog, "runaway").unwrap(), 1, 0).with_fuel(500),
            Request::new(find_fn(&prog, "ok").unwrap(), 6, 1),
        ];
        let cfg = TaskConfig::new(Strategy::Compiled);
        let (report, _) =
            serve_requests_overload(&prog, &q, 2, 0, cfg, OverloadConfig::none(), Obs::null())
                .unwrap();
        let Some(VmError::DeadlineExceeded {
            spent,
            budget: 500,
            unit: "instructions",
        }) = report.outcomes[0].error
        else {
            panic!("{:?}", report.outcomes[0].error);
        };
        assert!(spent >= 500, "quarantined only once past the budget");
        assert_eq!(report.outcomes[1].result, "7");
        conservation(&report);
    }

    #[test]
    fn service_wide_default_deadline_applies_to_plain_requests() {
        let prog = compile(RUNAWAY);
        let q = requests(&prog, &[("runaway", 1, 0), ("ok", 1, 1)]);
        let cfg = TaskConfig::new(Strategy::Compiled);
        let over = OverloadConfig {
            deadline_quanta: Some(25),
            ..OverloadConfig::none()
        };
        let (report, _) = serve_requests_overload(&prog, &q, 2, 0, cfg, over, Obs::null()).unwrap();
        assert!(matches!(
            report.outcomes[0].error,
            Some(VmError::DeadlineExceeded { budget: 25, .. })
        ));
        assert_eq!(report.outcomes[1].result, "2");
        conservation(&report);
    }

    #[test]
    fn bounded_queue_with_reject_sheds_overflow() {
        let prog = compile(
            "fun crash n = n div (n - n) ;
             0",
        );
        let q: Vec<Request> = (0..6)
            .map(|_| Request::new(find_fn(&prog, "crash").unwrap(), 1, 0))
            .collect();
        let cfg = TaskConfig::new(Strategy::Compiled);
        let over = OverloadConfig {
            queue_cap: 1,
            ..OverloadConfig::none()
        };
        let (report, _) = serve_requests_overload(&prog, &q, 1, 0, cfg, over, Obs::null()).unwrap();
        assert_eq!((report.completed, report.failed, report.shed), (0, 2, 4));
        for o in report.outcomes.iter().filter(|o| o.shed.is_some()) {
            assert_eq!(o.shed, Some("queue-full"));
            assert_eq!(o.result, "<shed: queue-full>");
            assert!(o.error.is_none(), "shed is an outcome, not an error");
        }
        conservation(&report);
    }

    /// Backpressure: with retry-backoff, refused arrivals come back and
    /// are admitted as the pool drains — nothing is lost.
    #[test]
    fn retry_backoff_drains_everything_under_pressure() {
        let prog = compile(RUNAWAY);
        let q: Vec<Request> = (0..6)
            .map(|i| Request::new(find_fn(&prog, "ok").unwrap(), i, 0))
            .collect();
        let cfg = TaskConfig::new(Strategy::Compiled);
        let over = OverloadConfig {
            queue_cap: 1,
            admission: AdmissionPolicy::RetryBackoff {
                max_attempts: 10,
                base: 2,
            },
            seed: 7,
            ..OverloadConfig::none()
        };
        let (report, _) =
            serve_requests_overload(&prog, &q, 1, 0, cfg.clone(), over, Obs::null()).unwrap();
        assert_eq!(
            (report.completed, report.shed),
            (6, 0),
            "{:?}",
            report.outcomes
        );
        conservation(&report);
        // Seeded determinism: the identical run resolves identically.
        let (again, _) = serve_requests_overload(&prog, &q, 1, 0, cfg, over, Obs::null()).unwrap();
        assert_eq!(report.outcomes, again.outcomes);
    }

    #[test]
    fn exhausted_backoff_sheds_with_its_own_reason() {
        let prog = compile(
            "fun crash n = n div (n - n) ;
             0",
        );
        let q: Vec<Request> = (0..5)
            .map(|_| Request::new(find_fn(&prog, "crash").unwrap(), 1, 0))
            .collect();
        let cfg = TaskConfig::new(Strategy::Compiled);
        let over = OverloadConfig {
            queue_cap: 1,
            admission: AdmissionPolicy::RetryBackoff {
                max_attempts: 0,
                base: 1,
            },
            ..OverloadConfig::none()
        };
        let (report, _) = serve_requests_overload(&prog, &q, 1, 0, cfg, over, Obs::null()).unwrap();
        assert!(report.shed >= 1);
        for o in report.outcomes.iter().filter(|o| o.shed.is_some()) {
            assert_eq!(o.shed, Some("backoff-exhausted"));
        }
        conservation(&report);
    }

    /// Degrade sheds only low-priority kinds; high-priority arrivals
    /// wait for room instead.
    #[test]
    fn degrade_sheds_low_priority_kinds_only() {
        let prog = compile(RUNAWAY);
        let specs = [0u32, 5, 0, 5, 0, 5];
        let q: Vec<Request> = specs
            .iter()
            .map(|k| Request::new(find_fn(&prog, "ok").unwrap(), 1, *k))
            .collect();
        let cfg = TaskConfig::new(Strategy::Compiled);
        let over = OverloadConfig {
            queue_cap: 1,
            admission: AdmissionPolicy::Degrade { low_kind_min: 1 },
            ..OverloadConfig::none()
        };
        let (report, _) = serve_requests_overload(&prog, &q, 1, 0, cfg, over, Obs::null()).unwrap();
        for o in &report.outcomes {
            if o.kind == 0 {
                assert!(o.is_completed(), "high priority must complete: {o:?}");
            }
            if let Some(reason) = o.shed {
                assert_eq!(reason, "degrade");
                assert!(o.kind >= 1, "only low-priority kinds degrade");
            }
        }
        assert!(
            report.shed >= 1,
            "pressure must shed some low-priority work"
        );
        conservation(&report);
    }

    /// Acceptance: at the hard watermark the service sheds *new*
    /// admissions; requests already in flight run to completion and are
    /// never quarantined by pressure.
    #[test]
    fn hard_watermark_sheds_admissions_not_in_flight_work() {
        let prog = compile(RUNAWAY);
        let q: Vec<Request> = (0..4)
            .map(|i| Request::new(find_fn(&prog, "ok").unwrap(), i, 0))
            .collect();
        let cfg = TaskConfig::new(Strategy::Compiled);
        let over = OverloadConfig {
            // Degenerate 0% hard watermark: pressure is permanent, so
            // only the first arrival (idle service) is admitted.
            hard_watermark_pct: Some(0),
            ..OverloadConfig::none()
        };
        let (report, _) = serve_requests_overload(&prog, &q, 2, 0, cfg, over, Obs::null()).unwrap();
        assert!(
            report.outcomes[0].is_completed(),
            "{:?}",
            report.outcomes[0]
        );
        assert_eq!(report.outcomes[0].result, "1");
        for o in report.outcomes.iter().filter(|o| o.shed.is_some()) {
            assert_eq!(o.shed, Some("hard-watermark"));
        }
        assert!(report.shed >= 1);
        assert_eq!(report.failed, 0, "in-flight work is never quarantined");
        conservation(&report);
    }

    /// Soft watermark: crossing it triggers a proactive collection while
    /// requests still complete normally.
    #[test]
    fn soft_watermark_collects_proactively() {
        let prog = compile(WORKLOAD);
        let q = requests(&prog, &[("worker", 30, 0), ("worker", 30, 1)]);
        let mut cfg = TaskConfig::new(Strategy::Compiled);
        cfg.heap_words = 1 << 11;
        let baseline_cfg = cfg.clone();
        let (baseline, _) = serve_requests_overload(
            &prog,
            &q,
            2,
            0,
            baseline_cfg,
            OverloadConfig::none(),
            Obs::null(),
        )
        .unwrap();
        let over = OverloadConfig {
            soft_watermark_pct: Some(20),
            ..OverloadConfig::none()
        };
        let (report, _) = serve_requests_overload(&prog, &q, 2, 0, cfg, over, Obs::null()).unwrap();
        assert_eq!(report.completed, 2, "{:?}", report.outcomes);
        assert!(
            report.gc.collections > baseline.gc.collections,
            "proactive cycles must add collections: {} vs {}",
            report.gc.collections,
            baseline.gc.collections
        );
        conservation(&report);
    }

    /// Breaker opens after K consecutive quarantines of one kind.
    #[test]
    fn breaker_opens_after_consecutive_quarantines() {
        let prog = compile(
            "fun crash n = n div (n - n) ;
             0",
        );
        let q: Vec<Request> = (0..6)
            .map(|_| Request::new(find_fn(&prog, "crash").unwrap(), 1, 0))
            .collect();
        let cfg = TaskConfig::new(Strategy::Compiled);
        let over = OverloadConfig {
            queue_cap: 1,
            breaker_threshold: 2,
            breaker_cooldown: 64,
            ..OverloadConfig::none()
        };
        let (report, _) = serve_requests_overload(&prog, &q, 1, 0, cfg, over, Obs::null()).unwrap();
        assert_eq!(report.breaker_trips, 1);
        assert_eq!(report.breaker_final, vec![(0, "open")]);
        assert_eq!(report.failed, 2, "exactly threshold quarantines ran");
        conservation(&report);
    }

    /// Open breaker fast-rejects re-offered arrivals, then the half-open
    /// probe closes it on success.
    #[test]
    fn breaker_fast_rejects_then_probe_closes() {
        let prog = compile(
            "fun crash n = n div (n - n) ;
             fun ok n = n + 1 ;
             0",
        );
        let crash = find_fn(&prog, "crash").unwrap();
        let ok = find_fn(&prog, "ok").unwrap();
        let q = vec![
            Request::new(crash, 1, 0),
            Request::new(crash, 1, 0),
            Request::new(ok, 1, 0),
            Request::new(ok, 2, 0),
        ];
        let cfg = TaskConfig::new(Strategy::Compiled);
        let mk = |cooldown| OverloadConfig {
            queue_cap: 1,
            admission: AdmissionPolicy::RetryBackoff {
                max_attempts: 10,
                base: 1,
            },
            breaker_threshold: 2,
            breaker_cooldown: cooldown,
            ..OverloadConfig::none()
        };
        // Long cooldown: the re-offered ok arrival hits the open breaker
        // and fast-rejects.
        let (rejecting, _) =
            serve_requests_overload(&prog, &q, 1, 0, cfg.clone(), mk(1_000), Obs::null()).unwrap();
        assert_eq!(rejecting.breaker_trips, 1);
        assert!(
            rejecting
                .outcomes
                .iter()
                .any(|o| o.shed == Some("breaker-open")),
            "{:?}",
            rejecting.outcomes
        );
        conservation(&rejecting);
        // Zero cooldown: the same arrival becomes the half-open probe,
        // succeeds, and closes the breaker.
        let (closing, _) =
            serve_requests_overload(&prog, &q, 1, 0, cfg, mk(0), Obs::null()).unwrap();
        assert_eq!(
            closing.breaker_final,
            vec![(0, "closed")],
            "{:?}",
            closing.outcomes
        );
        assert_eq!(closing.shed, 0, "{:?}", closing.outcomes);
        conservation(&closing);
    }

    /// Graceful drain: once the drain quantum passes, re-offered
    /// arrivals are shed while admitted work finishes.
    #[test]
    fn drain_sheds_pending_offers_and_finishes_in_flight() {
        let prog = compile(WORKLOAD);
        let q: Vec<Request> = (0..5)
            .map(|i| Request::new(find_fn(&prog, "worker").unwrap(), 8, i))
            .collect();
        let mut cfg = TaskConfig::new(Strategy::Compiled);
        cfg.heap_words = 1 << 12;
        let over = OverloadConfig {
            queue_cap: 1,
            admission: AdmissionPolicy::RetryBackoff {
                max_attempts: 10,
                base: 4,
            },
            drain_after: Some(1),
            ..OverloadConfig::none()
        };
        let (report, _) = serve_requests_overload(&prog, &q, 1, 0, cfg, over, Obs::null()).unwrap();
        assert!(report.completed >= 1, "admitted work finishes");
        assert!(report.shed >= 1, "pending offers are shed");
        for o in report.outcomes.iter().filter(|o| o.shed.is_some()) {
            assert_eq!(o.shed, Some("drain"));
        }
        conservation(&report);
    }

    /// The overload engine is observation-neutral: shed decisions,
    /// breaker transitions, and outcomes are bit-identical between the
    /// null sink and a full serve sink.
    #[test]
    fn overload_decisions_are_observation_neutral() {
        let prog = compile(WORKLOAD);
        let q: Vec<Request> = (0..8)
            .map(|i| Request::new(find_fn(&prog, "worker").unwrap(), 6 + (i % 3), i as u32 % 2))
            .collect();
        let mut cfg = TaskConfig::new(Strategy::Compiled);
        cfg.heap_words = 1 << 12;
        let over = OverloadConfig {
            queue_cap: 1,
            admission: AdmissionPolicy::RetryBackoff {
                max_attempts: 6,
                base: 2,
            },
            deadline_quanta: Some(2_000),
            soft_watermark_pct: Some(60),
            hard_watermark_pct: Some(95),
            breaker_threshold: 2,
            breaker_cooldown: 16,
            seed: 11,
            ..OverloadConfig::none()
        };
        let (a, _) =
            serve_requests_overload(&prog, &q, 2, 0, cfg.clone(), over, Obs::null()).unwrap();
        let (b, _) =
            serve_requests_overload(&prog, &q, 2, 8, cfg, over, Obs::serve(1 << 10, 1_000_000))
                .unwrap();
        assert_eq!(a.outcomes, b.outcomes, "telemetry must not steer admission");
        assert_eq!(a.breaker_trips, b.breaker_trips);
        assert_eq!(a.breaker_final, b.breaker_final);
        assert_eq!(a.heap, b.heap);
        assert_eq!(a.mutator, b.mutator);
        conservation(&a);
    }

    /// The seeded stall fault arms on a task thread and is then caught
    /// by the deadline budget — the per-class detection path.
    #[test]
    fn stall_fault_is_detected_by_deadline_budget() {
        let prog = compile(WORKLOAD);
        let q = requests(&prog, &[("worker", 20, 0), ("worker", 20, 1)]);
        let mut cfg = TaskConfig::new(Strategy::Compiled);
        cfg.heap_words = 1 << 12;
        cfg.fault_plan = Some(FaultPlan {
            stall_at: Some(8),
            ..FaultPlan::none()
        });
        let over = OverloadConfig {
            deadline_quanta: Some(2_000),
            ..OverloadConfig::none()
        };
        let (report, _) = serve_requests_overload(&prog, &q, 2, 0, cfg, over, Obs::null()).unwrap();
        assert!(
            report
                .outcomes
                .iter()
                .any(|o| matches!(o.error, Some(VmError::DeadlineExceeded { .. }))),
            "the stalled handler must breach its deadline: {:?}",
            report.outcomes
        );
        assert!(
            report.outcomes.iter().any(|o| o.is_completed()),
            "the sibling must complete: {:?}",
            report.outcomes
        );
        conservation(&report);
    }
}
