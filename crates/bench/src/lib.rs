//! # tfgc-bench — experiment runners
//!
//! One function per experiment (E1–E10 and E13, see EXPERIMENTS.md), each
//! returning a rendered text table. The wall-clock benches under
//! `benches/` ([`timing`]) time the same configurations; the
//! `experiments` binary prints every table — or, with `--json`, writes
//! the machine-readable [`export`] documents:
//!
//! ```sh
//! cargo run --release -p tfgc-bench --bin experiments
//! cargo run --release -p tfgc-bench --bin experiments -- --json
//! ```

use tfgc::gc::NO_TRACE;
use tfgc::tasking::{find_fn, run_tasks, SuspendPolicy, TaskConfig};
use tfgc::{ratio, Compiled, Strategy, Table, VmConfig};

pub mod export;
pub mod timing;

/// E1 — §1 "more efficient use of heap space": words allocated per
/// strategy across the workload suite (tagged pays one header word per
/// object).
pub fn e1_heap_space() -> String {
    let mut t = Table::new(&[
        "workload",
        "tagfree words",
        "tagged words",
        "overhead",
        "tagfree peak live",
        "tagged peak live",
    ]);
    for (name, src) in tfgc::workloads::suite() {
        let c = Compiled::compile(&src).expect("workload compiles");
        let tagfree = c
            .run_with(VmConfig::new(Strategy::Compiled).heap_words(1 << 13))
            .expect("tagfree run");
        let tagged = c
            .run_with(VmConfig::new(Strategy::Tagged).heap_words(1 << 13))
            .expect("tagged run");
        t.row(vec![
            name.to_string(),
            tagfree.heap.words_allocated.to_string(),
            tagged.heap.words_allocated.to_string(),
            ratio(
                tagged.heap.words_allocated as f64,
                tagfree.heap.words_allocated as f64,
            ),
            tagfree.heap.peak_live_words.to_string(),
            tagged.heap.peak_live_words.to_string(),
        ]);
    }
    format!("E1 — heap space (tag-free vs tagged)\n{}", t.render())
}

/// E2 — §1 "more efficient execution": tag strip/reinstate operations and
/// instruction counts on arithmetic-heavy workloads.
pub fn e2_mutator_overhead() -> String {
    let mut t = Table::new(&[
        "workload",
        "instructions",
        "tagged tag-ops",
        "tag-ops / instr",
        "tagfree tag-ops",
    ]);
    let loads = [
        ("fib", tfgc::workloads::programs::fib(20)),
        ("sumlist", tfgc::workloads::programs::sumlist(300, 80)),
        ("nqueens", tfgc::workloads::programs::nqueens(6)),
    ];
    for (name, src) in loads {
        let c = Compiled::compile(&src).expect("compiles");
        let tagged = c
            .run_with(VmConfig::new(Strategy::Tagged).heap_words(1 << 15))
            .expect("tagged");
        let tagfree = c
            .run_with(VmConfig::new(Strategy::Compiled).heap_words(1 << 15))
            .expect("tagfree");
        t.row(vec![
            name.to_string(),
            tagged.mutator.instructions.to_string(),
            tagged.mutator.tag_ops.to_string(),
            format!(
                "{:.3}",
                tagged.mutator.tag_ops as f64 / tagged.mutator.instructions as f64
            ),
            tagfree.mutator.tag_ops.to_string(),
        ]);
    }
    format!("E2 — mutator tag overhead\n{}", t.render())
}

/// E3 — §1/§1.1.1 liveness precision: words copied per collection when a
/// large dead structure sits in a live frame. Compiled+liveness skips it;
/// the per-procedure and tagged collectors drag it along.
pub fn e3_liveness_precision() -> String {
    let src = tfgc::workloads::programs::live_and_dead(150, 120, 25);
    let c = Compiled::compile(&src).expect("compiles");
    let mut t = Table::new(&[
        "strategy",
        "GCs",
        "words copied",
        "copied / GC",
        "slots traced",
        "vs compiled",
    ]);
    let mut base = 0f64;
    for s in [
        Strategy::Compiled,
        Strategy::CompiledNoLiveness,
        Strategy::Interpreted,
        Strategy::AppelPerFn,
        Strategy::Tagged,
    ] {
        let out = c
            .run_with(VmConfig::new(s).heap_words(1 << 13).force_gc_every(200))
            .expect("runs");
        let per_gc = out.heap.words_copied as f64 / out.heap.collections.max(1) as f64;
        if s == Strategy::Compiled {
            base = per_gc;
        }
        t.row(vec![
            s.to_string(),
            out.heap.collections.to_string(),
            out.heap.words_copied.to_string(),
            format!("{per_gc:.0}"),
            out.gc.slots_traced.to_string(),
            ratio(per_gc, base),
        ]);
    }
    format!(
        "E3 — liveness precision (live_and_dead workload, forced GC)\n{}",
        t.render()
    )
}

/// E4 — §2.4's open question: compiled routines vs interpreted
/// descriptors, metadata size vs collection work.
pub fn e4_compiled_vs_interpreted() -> String {
    let mut t = Table::new(&[
        "workload",
        "compiled meta B",
        "interp meta B",
        "size ratio",
        "compiled pause ns",
        "interp pause ns",
        "interp desc bytes read",
    ]);
    for (name, src) in tfgc::workloads::suite() {
        let c = Compiled::compile(&src).expect("compiles");
        let cfg = |s| VmConfig::new(s).heap_words(1 << 12).force_gc_every(300);
        let comp = c.run_with(cfg(Strategy::Compiled)).expect("compiled");
        let interp = c.run_with(cfg(Strategy::Interpreted)).expect("interp");
        if comp.gc.collections == 0 {
            continue;
        }
        t.row(vec![
            name.to_string(),
            comp.metadata_bytes.to_string(),
            interp.metadata_bytes.to_string(),
            ratio(interp.metadata_bytes as f64, comp.metadata_bytes as f64),
            format!("{:.0}", comp.gc.mean_pause_nanos()),
            format!("{:.0}", interp.gc.mean_pause_nanos()),
            interp.gc.desc_bytes_read.to_string(),
        ]);
    }
    format!(
        "E4 — compiled vs interpreted method (§2.4 trade-off)\n{}",
        t.render()
    )
}

/// E5 — §3: forward traversal vs Appel's backward resolution on deep
/// polymorphic stacks. Chain steps grow quadratically for Appel.
pub fn e5_polymorphic() -> String {
    let mut t = Table::new(&[
        "depth",
        "strategy",
        "GCs",
        "frames visited",
        "chain steps",
        "steps/frame",
        "rt closures",
    ]);
    for depth in [50usize, 100, 200, 400] {
        let src = tfgc::workloads::programs::poly_deep_alloc(depth);
        let c = Compiled::compile(&src).expect("compiles");
        for s in [Strategy::Compiled, Strategy::AppelPerFn] {
            let out = c
                .run_with(
                    VmConfig::new(s)
                        .heap_words(1 << 16)
                        .force_gc_every((depth / 3).max(1) as u64),
                )
                .expect("runs");
            t.row(vec![
                depth.to_string(),
                s.to_string(),
                out.gc.collections.to_string(),
                out.gc.frames_visited.to_string(),
                out.gc.chain_steps.to_string(),
                format!(
                    "{:.1}",
                    out.gc.chain_steps as f64 / out.gc.frames_visited.max(1) as f64
                ),
                out.gc.rt_nodes_built.to_string(),
            ]);
        }
    }
    format!(
        "E5 — polymorphic traversal: Goldberg forward vs Appel backward\n{}",
        t.render()
    )
}

/// E6 — §5.1 GC-point analysis and §2.4 routine sharing: how many
/// gc_words are omitted, how many share `no_trace`, how few distinct
/// routines exist; plus the hidden-descriptor count (the 1991 scheme's
/// completeness gap).
pub fn e6_gc_points() -> String {
    let mut t = Table::new(&[
        "workload",
        "sites",
        "omitted (§5.1)",
        "no_trace (§2.4)",
        "distinct routines",
        "meta bytes",
        "hidden descs",
    ]);
    for (name, src) in tfgc::workloads::suite() {
        let c = Compiled::compile(&src).expect("compiles");
        let meta = c.metadata(Strategy::Compiled);
        let no_trace = meta
            .sites
            .iter()
            .filter(|s| s.routine == Some(NO_TRACE))
            .count();
        t.row(vec![
            name.to_string(),
            c.program.sites.len().to_string(),
            meta.omitted_gc_words().to_string(),
            no_trace.to_string(),
            meta.distinct_routines().to_string(),
            meta.metadata_bytes().to_string(),
            c.rtti.total_desc_fields().to_string(),
        ]);
    }
    format!(
        "E6 — GC-point analysis, no_trace sharing, metadata footprint\n{}",
        t.render()
    )
}

/// E6b — ablation: the paper's first-order GC-point approximation vs the
/// higher-order closure-flow refinement (§5.1's "more difficult"
/// analysis). Reports the extra gc_words the refinement removes.
pub fn e6b_gc_points_refined() -> String {
    let mut t = Table::new(&[
        "workload",
        "sites",
        "omitted (first-order)",
        "omitted (refined)",
        "extra",
    ]);
    for (name, src) in tfgc::workloads::suite() {
        let c = Compiled::compile(&src).expect("compiles");
        let base = c.metadata(Strategy::Compiled);
        let refined = c.metadata_refined(Strategy::Compiled);
        let extra = refined.omitted_gc_words() - base.omitted_gc_words();
        t.row(vec![
            name.to_string(),
            c.program.sites.len().to_string(),
            base.omitted_gc_words().to_string(),
            refined.omitted_gc_words().to_string(),
            extra.to_string(),
        ]);
    }
    format!(
        "E6b — higher-order GC-point refinement (closure-flow 0-CFA)\n{}",
        t.render()
    )
}

/// E7 — §4 tasking: suspension-policy trade-off.
pub fn e7_tasking() -> String {
    let src = "
        fun build n = if n = 0 then [] else n :: build (n - 1) ;
        fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
        fun worker n = if n = 0 then 0
                       else (sum (build 25) + worker (n - 1)) - sum (build 25) ;
        fun spin n = if n = 0 then 0 else (let val x = n * n in spin (n - 1) end) ;
        0";
    let c = Compiled::compile(src).expect("compiles");
    let worker = find_fn(&c.program, "worker").expect("worker");
    let spin = find_fn(&c.program, "spin").expect("spin");
    let entries = vec![(worker, 60), (worker, 60), (spin, 4000)];
    let mut t = Table::new(&[
        "policy",
        "GCs",
        "checks",
        "total latency",
        "max latency",
        "instructions",
    ]);
    for policy in [
        SuspendPolicy::AllocationOnly,
        SuspendPolicy::EveryCall,
        SuspendPolicy::EveryCallRgc,
    ] {
        let mut cfg = TaskConfig::new(Strategy::Compiled);
        cfg.heap_words = 1 << 11;
        cfg.policy = policy;
        cfg.quantum = 48;
        let r = run_tasks(&c.program, &entries, cfg).expect("tasks run");
        t.row(vec![
            policy.to_string(),
            r.suspension_events.to_string(),
            r.suspension_checks.to_string(),
            r.total_suspension_latency.to_string(),
            r.max_suspension_latency.to_string(),
            r.mutator.instructions.to_string(),
        ]);
    }
    format!("E7 — tasking suspension policies (§4)\n{}", t.render())
}

/// E8 — §2.4's worked example, verified: append's activation records are
/// never traced.
pub fn e8_append() -> String {
    let src = tfgc::workloads::paper_examples::append_mono(500);
    let c = Compiled::compile(&src).expect("compiles");
    let meta = c.metadata(Strategy::Compiled);
    let append_fn = c
        .program
        .funs
        .iter()
        .position(|f| f.name.starts_with("append"))
        .expect("append");
    let mut sites = 0;
    let mut traced = 0;
    for s in &c.program.sites {
        if s.fn_id.0 as usize == append_fn {
            sites += 1;
            let m = &meta.sites[s.id.0 as usize];
            if m.routine.is_some() && m.routine != Some(NO_TRACE) {
                traced += 1;
            }
        }
    }
    let out = c
        .run_with(VmConfig::new(Strategy::Compiled).heap_words(1 << 11))
        .expect("runs");
    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["append call sites".into(), sites.to_string()]);
    t.row(vec!["append sites that trace".into(), traced.to_string()]);
    t.row(vec![
        "collections during run".into(),
        out.heap.collections.to_string(),
    ]);
    t.row(vec!["result".into(), out.result]);
    format!(
        "E8 — §2.4 append: 'garbage collection never needs to trace the \
         elements of an append activation record'\n{}",
        t.render()
    )
}

/// E9 — GC-time metadata cache on deep polymorphic recursion: per
/// collection, routine construction is O(distinct call sites), not
/// O(stack frames), and disabling the cache changes construction counts
/// but nothing the mutator can observe.
pub fn e9_deep_recursion() -> String {
    let mut t = Table::new(&[
        "depth",
        "strategy",
        "cache",
        "GCs",
        "frames visited",
        "rt closures",
        "closures/frame",
        "cache hits",
    ]);
    for depth in [2_000usize, 20_000] {
        let src = tfgc::workloads::programs::poly_deep_alloc(depth);
        let c = Compiled::compile(&src).expect("compiles");
        for s in [
            Strategy::Compiled,
            Strategy::Interpreted,
            Strategy::AppelPerFn,
        ] {
            // Appel's backward resolution is quadratic in depth; keep it
            // to the shallow configuration.
            if s == Strategy::AppelPerFn && depth > 2_000 {
                continue;
            }
            for cache in [true, false] {
                let out = c
                    .run_with(
                        VmConfig::new(s)
                            .heap_words(1 << 19)
                            .force_gc_every((depth / 2).max(1) as u64)
                            .rt_cache(cache),
                    )
                    .expect("runs");
                t.row(vec![
                    depth.to_string(),
                    s.to_string(),
                    if cache { "on" } else { "off" }.to_string(),
                    out.gc.collections.to_string(),
                    out.gc.frames_visited.to_string(),
                    out.gc.rt_nodes_built.to_string(),
                    format!(
                        "{:.4}",
                        out.gc.rt_nodes_built as f64 / out.gc.frames_visited.max(1) as f64
                    ),
                    out.gc.rt_cache_hits.to_string(),
                ]);
            }
        }
    }
    format!(
        "E9 — GC-time metadata cache: routine construction per collection \
         is O(sites), not O(frames)\n{}",
        t.render()
    )
}

/// E10 — steady-state service telemetry: the request server drained
/// under every strategy, with collection pressure, latency quantiles,
/// and mutator utilization side by side (`tfml serve` is the
/// interactive form; `BENCH_E10.json` exports the fault-matrix
/// summary).
pub fn e10_serve() -> String {
    let mut runs = Vec::new();
    for s in Strategy::ALL {
        let mut cfg = tfgc::ServeConfig::new(s);
        cfg.requests = 200;
        runs.push(tfgc::serve(&cfg).expect("service runs"));
    }
    format!(
        "E10 — request service under steady traffic (seed {}, {} requests, pool {})\n{}",
        runs[0].config.seed,
        runs[0].config.requests,
        runs[0].config.pool,
        tfgc::serve_table(&runs).render()
    )
}

/// E13 — trace plans vs closure walks: each routine and descriptor is
/// lowered once into a branch-free linear plan, then reused across
/// collections (`plan hits ≫ plans compiled`), with results and copy
/// orders bit-identical to the closure walk (`tests/gc_cache.rs`
/// proves the differential; this table shows the traffic).
pub fn e13_trace_plans() -> String {
    let mut t = Table::new(&[
        "workload",
        "strategy",
        "plans",
        "GCs",
        "words copied",
        "desc bytes",
        "plans compiled",
        "plan hits",
        "hits/compile",
    ]);
    let deep = tfgc::workloads::programs::poly_deep_alloc(20_000);
    let wide = tfgc::workloads::programs::sumlist(3_000, 40);
    for (label, src, heap, force) in [
        ("deep", &deep, 1usize << 20, 10_000u64),
        ("wide", &wide, 1 << 17, 500),
    ] {
        let c = Compiled::compile(src).expect("compiles");
        for s in [Strategy::Compiled, Strategy::Interpreted] {
            for plans in [true, false] {
                let out = c
                    .run_with(
                        VmConfig::new(s)
                            .heap_words(heap)
                            .force_gc_every(force)
                            .trace_plans(plans),
                    )
                    .expect("runs");
                t.row(vec![
                    label.to_string(),
                    s.to_string(),
                    if plans { "on" } else { "off" }.to_string(),
                    out.heap.collections.to_string(),
                    out.heap.words_copied.to_string(),
                    out.gc.desc_bytes_read.to_string(),
                    out.gc.plans_compiled.to_string(),
                    out.gc.plan_hits.to_string(),
                    format!(
                        "{:.1}",
                        out.gc.plan_hits as f64 / out.gc.plans_compiled.max(1) as f64
                    ),
                ]);
            }
        }
    }
    format!(
        "E13 — flattened trace plans: shape lowering is O(shapes), \
         execution is branch-free\n{}",
        t.render()
    )
}

/// Every experiment, concatenated.
pub fn all_experiments() -> String {
    [
        e1_heap_space(),
        e2_mutator_overhead(),
        e3_liveness_precision(),
        e4_compiled_vs_interpreted(),
        e5_polymorphic(),
        e6_gc_points(),
        e6b_gc_points_refined(),
        e7_tasking(),
        e8_append(),
        e9_deep_recursion(),
        e10_serve(),
        e13_trace_plans(),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reports_tagged_overhead() {
        let s = e1_heap_space();
        assert!(s.contains("churn"));
        // Every workload shows tagged >= tagfree (ratios >= 1).
        assert!(
            !s.contains("0.9"),
            "tagged must not allocate fewer words:\n{s}"
        );
    }

    #[test]
    fn e6_counts_are_consistent() {
        let s = e6_gc_points();
        assert!(s.contains("fib"));
    }

    #[test]
    fn e8_append_never_traces() {
        let s = e8_append();
        assert!(s.contains("append sites that trace  0"), "{s}");
    }

    #[test]
    fn e9_reports_cache_effect() {
        let s = e9_deep_recursion();
        assert!(s.contains("cache"), "{s}");
        assert!(s.contains("20000"), "deep row present:\n{s}");
        // The cached rows report hits; the uncached rows report none.
        assert!(s.lines().any(|l| l.contains(" on ")), "{s}");
        assert!(s.lines().any(|l| l.contains(" off ")), "{s}");
    }
}
