//! Minimal wall-clock timing harness for the `benches/` targets.
//!
//! The external Criterion dependency is unavailable in offline builds,
//! and these targets only need reproducible min/mean timings — every
//! `[[bench]]` already sets `harness = false`, so each bench is a plain
//! `fn main()` driving a [`Group`].

use std::hint::black_box;
use std::time::Instant;

/// A named group of timed cases printed as `group/case  min .. mean ..`.
pub struct Group {
    name: String,
    iters: u32,
}

impl Group {
    /// A group running each case 10 times (after one warmup).
    pub fn new(name: &str) -> Group {
        println!("{name}");
        Group {
            name: name.to_string(),
            iters: 10,
        }
    }

    /// Overrides the per-case iteration count.
    #[must_use]
    pub fn iters(mut self, n: u32) -> Group {
        self.iters = n.max(1);
        self
    }

    /// Times `f`, printing the minimum and mean of the timed runs.
    pub fn time<T>(&self, id: &str, mut f: impl FnMut() -> T) {
        black_box(f());
        let mut best = u128::MAX;
        let mut total = 0u128;
        for _ in 0..self.iters {
            let t = Instant::now();
            black_box(f());
            let ns = t.elapsed().as_nanos();
            best = best.min(ns);
            total += ns;
        }
        let mean = total / u128::from(self.iters);
        println!(
            "  {}/{id:<32} min {:>10} ns   mean {:>10} ns",
            self.name, best, mean
        );
    }
}
