//! JSON export of the experiment suite: `experiments --json` writes one
//! `BENCH_E<n>.json` per experiment.
//!
//! Every document carries a uniform `profiles` array — one entry per
//! strategy, with the run outcome, the observability metrics (pause and
//! allocation-size histograms with p50/p90/p99/max, labeled per-site
//! allocation counts, per-collection summaries) — plus
//! experiment-specific extras. The text tables of [`crate`] remain the
//! human-readable form; these documents are the machine-readable one.

use std::io;
use std::path::{Path, PathBuf};
use tfgc::gc::NO_TRACE;
use tfgc::obs::ring::hist_json;
use tfgc::obs::{Json, Obs};
use tfgc::tasking::{
    find_fn, run_tasks_with_obs, serve_requests_overload, SuspendPolicy, TaskConfig,
};
use tfgc::{Compiled, OverloadConfig, Strategy, VmConfig};

/// Raw events retained per profiled run (aggregates are exact anyway).
const RING: usize = 1 << 14;

/// All experiment ids, in order.
pub const EXPERIMENTS: [&str; 12] = [
    "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E13", "E15",
];

fn profile_one(c: &Compiled, s: Strategy, heap: usize, force: Option<u64>) -> Json {
    let mut cfg = VmConfig::new(s).heap_words(heap);
    if let Some(n) = force {
        cfg = cfg.force_gc_every(n);
    }
    let (out, rec) = c.run_profiled(cfg, RING).expect("experiment profile run");
    Json::obj([
        ("strategy", Json::str(s.name())),
        ("result", Json::str(&out.result)),
        ("collections", Json::from(out.heap.collections)),
        ("words_allocated", Json::from(out.heap.words_allocated)),
        ("words_copied", Json::from(out.heap.words_copied)),
        ("peak_live_words", Json::from(out.heap.peak_live_words)),
        ("instructions", Json::from(out.mutator.instructions)),
        ("tag_ops", Json::from(out.mutator.tag_ops)),
        ("metadata_bytes", Json::from(out.metadata_bytes)),
        ("rt_nodes_built", Json::from(out.gc.rt_nodes_built)),
        ("rt_cache_hits", Json::from(out.gc.rt_cache_hits)),
        ("rt_cache_misses", Json::from(out.gc.rt_cache_misses)),
        ("plan_hits", Json::from(out.gc.plan_hits)),
        ("plan_misses", Json::from(out.gc.plan_misses)),
        ("plans_compiled", Json::from(out.gc.plans_compiled)),
        ("metrics", tfgc::metrics_json(&rec, &c.program)),
    ])
}

/// One profile per strategy for a workload.
fn profiles(c: &Compiled, heap: usize, force: Option<u64>) -> Json {
    Json::Arr(
        Strategy::ALL
            .iter()
            .map(|s| profile_one(c, *s, heap, force))
            .collect(),
    )
}

fn doc(id: &str, title: &str, workload: &str, profiles: Json, extras: Vec<(String, Json)>) -> Json {
    let mut pairs = vec![
        ("experiment".to_string(), Json::str(id)),
        ("title".to_string(), Json::str(title)),
        ("workload".to_string(), Json::str(workload)),
    ];
    pairs.extend(extras);
    pairs.push(("profiles".to_string(), profiles));
    Json::Obj(pairs)
}

fn suite_src(name: &str) -> String {
    tfgc::workloads::suite()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, s)| s)
        .unwrap_or_else(|| panic!("no workload `{name}` in the suite"))
}

fn e1_json() -> Json {
    let c = Compiled::compile(&suite_src("churn")).expect("compiles");
    doc(
        "E1",
        "heap space: tag-free vs tagged header overhead",
        "churn",
        profiles(&c, 1 << 13, Some(300)),
        vec![],
    )
}

fn e2_json() -> Json {
    let c = Compiled::compile(&tfgc::workloads::programs::fib(20)).expect("compiles");
    doc(
        "E2",
        "mutator tag overhead on arithmetic-heavy code",
        "fib(20)",
        profiles(&c, 1 << 15, None),
        vec![],
    )
}

fn e3_json() -> Json {
    let src = tfgc::workloads::programs::live_and_dead(150, 120, 25);
    let c = Compiled::compile(&src).expect("compiles");
    doc(
        "E3",
        "liveness precision: dead data dragged by imprecise collectors",
        "live_and_dead(150, 120, 25)",
        profiles(&c, 1 << 13, Some(200)),
        vec![],
    )
}

fn e4_json() -> Json {
    let src = tfgc::workloads::programs::sumlist(300, 80);
    let c = Compiled::compile(&src).expect("compiles");
    doc(
        "E4",
        "compiled routines vs interpreted descriptors (§2.4)",
        "sumlist(300, 80)",
        profiles(&c, 1 << 12, Some(300)),
        vec![],
    )
}

fn e5_json() -> Json {
    let depth = 200usize;
    let src = tfgc::workloads::programs::poly_deep_alloc(depth);
    let c = Compiled::compile(&src).expect("compiles");
    doc(
        "E5",
        "polymorphic traversal: Goldberg forward vs Appel backward (§3)",
        "poly_deep_alloc(200)",
        profiles(&c, 1 << 16, Some((depth / 3) as u64)),
        vec![],
    )
}

fn e6_json() -> Json {
    let c = Compiled::compile(&tfgc::workloads::programs::nqueens(6)).expect("compiles");
    let metadata = Json::Arr(
        Strategy::ALL
            .iter()
            .map(|s| {
                let meta = c.metadata(*s);
                let no_trace = meta
                    .sites
                    .iter()
                    .filter(|m| m.routine == Some(NO_TRACE))
                    .count();
                Json::obj([
                    ("strategy", Json::str(s.name())),
                    ("sites", Json::from(c.program.sites.len())),
                    ("omitted_gc_words", Json::from(meta.omitted_gc_words())),
                    ("no_trace_sites", Json::from(no_trace)),
                    ("distinct_routines", Json::from(meta.distinct_routines())),
                    ("metadata_bytes", Json::from(meta.metadata_bytes())),
                ])
            })
            .collect(),
    );
    doc(
        "E6",
        "GC-point analysis, no_trace sharing, metadata footprint (§5.1, §2.4)",
        "nqueens(6)",
        profiles(&c, 1 << 15, Some(400)),
        vec![("metadata".to_string(), metadata)],
    )
}

fn e7_json() -> Json {
    let src = "
        fun build n = if n = 0 then [] else n :: build (n - 1) ;
        fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
        fun worker n = if n = 0 then 0
                       else (sum (build 25) + worker (n - 1)) - sum (build 25) ;
        fun spin n = if n = 0 then 0 else (let val x = n * n in spin (n - 1) end) ;
        0";
    let c = Compiled::compile(src).expect("compiles");
    let worker = find_fn(&c.program, "worker").expect("worker");
    let spin = find_fn(&c.program, "spin").expect("spin");
    let entries = vec![(worker, 60), (worker, 60), (spin, 4000)];

    // Per-policy trade-off rows (fixed strategy).
    let policies = Json::Arr(
        [
            SuspendPolicy::AllocationOnly,
            SuspendPolicy::EveryCall,
            SuspendPolicy::EveryCallRgc,
        ]
        .iter()
        .map(|policy| {
            let mut cfg = TaskConfig::new(Strategy::Compiled);
            cfg.heap_words = 1 << 11;
            cfg.policy = *policy;
            cfg.quantum = 48;
            let (r, obs) =
                run_tasks_with_obs(&c.program, &entries, cfg, Obs::ring(RING)).expect("tasks run");
            let rec = obs.into_recorder().expect("ring sink");
            Json::obj([
                ("policy", Json::str(policy.to_string())),
                ("suspension_events", Json::from(r.suspension_events)),
                ("suspension_checks", Json::from(r.suspension_checks)),
                (
                    "total_suspension_latency",
                    Json::from(r.total_suspension_latency),
                ),
                (
                    "max_suspension_latency",
                    Json::from(r.max_suspension_latency),
                ),
                ("instructions", Json::from(r.mutator.instructions)),
                ("pause_ns", hist_json(rec.pause_hist())),
            ])
        })
        .collect(),
    );

    // Per-strategy profiles of the same task mix under the every-call
    // policy.
    let profiles = Json::Arr(
        Strategy::ALL
            .iter()
            .map(|s| {
                let mut cfg = TaskConfig::new(*s);
                cfg.heap_words = 1 << 14;
                cfg.quantum = 48;
                let (r, obs) = run_tasks_with_obs(&c.program, &entries, cfg, Obs::ring(RING))
                    .expect("tasks run");
                let rec = obs.into_recorder().expect("ring sink");
                Json::obj([
                    ("strategy", Json::str(s.name())),
                    (
                        "results",
                        Json::Arr(r.results.iter().map(Json::str).collect()),
                    ),
                    ("collections", Json::from(r.heap.collections)),
                    ("words_allocated", Json::from(r.heap.words_allocated)),
                    ("words_copied", Json::from(r.heap.words_copied)),
                    ("instructions", Json::from(r.mutator.instructions)),
                    ("metrics", tfgc::metrics_json(&rec, &c.program)),
                ])
            })
            .collect(),
    );

    doc(
        "E7",
        "tasking suspension policies (§4)",
        "2× worker(60) + spin(4000)",
        profiles,
        vec![("policies".to_string(), policies)],
    )
}

fn e8_json() -> Json {
    let src = tfgc::workloads::paper_examples::append_mono(500);
    let c = Compiled::compile(&src).expect("compiles");
    let meta = c.metadata(Strategy::Compiled);
    let append_fn = c
        .program
        .funs
        .iter()
        .position(|f| f.name.starts_with("append"))
        .expect("append");
    let mut sites = 0u64;
    let mut traced = 0u64;
    for s in &c.program.sites {
        if s.fn_id.0 as usize == append_fn {
            sites += 1;
            let m = &meta.sites[s.id.0 as usize];
            if m.routine.is_some() && m.routine != Some(NO_TRACE) {
                traced += 1;
            }
        }
    }
    doc(
        "E8",
        "§2.4 append: its activation records are never traced",
        "append_mono(500)",
        profiles(&c, 1 << 13, Some(400)),
        vec![(
            "append".to_string(),
            Json::obj([
                ("call_sites", Json::from(sites)),
                ("sites_that_trace", Json::from(traced)),
            ]),
        )],
    )
}

fn e9_json() -> Json {
    // Moderate depth for the per-strategy profiles (Appel's backward
    // resolution is quadratic in depth, so it rides along here)…
    let depth = 2_000usize;
    let src = tfgc::workloads::programs::poly_deep_alloc(depth);
    let c = Compiled::compile(&src).expect("compiles");

    // …and a deep cached-vs-uncached comparison under the forward
    // strategies: ≥10⁴ frames on the stack at collection time, with
    // routine construction per collection O(distinct sites) when the
    // cache is on.
    let deep_depth = 50_000usize;
    let deep_src = tfgc::workloads::programs::poly_deep_alloc(deep_depth);
    let dc = Compiled::compile(&deep_src).expect("compiles");
    let deep = Json::Arr(
        [Strategy::Compiled, Strategy::Interpreted]
            .iter()
            .flat_map(|s| {
                [true, false].map(|cache| {
                    let out = dc
                        .run_with(
                            VmConfig::new(*s)
                                .heap_words(1 << 21)
                                .force_gc_every((deep_depth / 2) as u64)
                                .rt_cache(cache),
                        )
                        .expect("deep run");
                    Json::obj([
                        ("strategy", Json::str(s.name())),
                        ("rt_cache", Json::Bool(cache)),
                        ("result", Json::str(&out.result)),
                        ("collections", Json::from(out.heap.collections)),
                        ("frames_visited", Json::from(out.gc.frames_visited)),
                        ("rt_nodes_built", Json::from(out.gc.rt_nodes_built)),
                        ("rt_cache_hits", Json::from(out.gc.rt_cache_hits)),
                        ("rt_cache_misses", Json::from(out.gc.rt_cache_misses)),
                        ("pause_ns_total", Json::from(out.gc.pause_nanos)),
                    ])
                })
            })
            .collect(),
    );
    doc(
        "E9",
        "GC-time metadata cache on deep polymorphic recursion",
        "poly_deep_alloc(2000) / poly_deep_alloc(50000)",
        profiles(&c, 1 << 19, Some((depth / 2) as u64)),
        vec![
            ("deep_depth".to_string(), Json::from(deep_depth)),
            ("deep".to_string(), deep),
        ],
    )
}

fn e10_json() -> Json {
    // Outcome classes of the fault-injection matrix are pure functions
    // of (seed, strategy, workload): this whole document is
    // deterministic, down to the serve-mode completed/failed counts.
    let seeds: Vec<u64> = (0..6).collect();
    let report = tfgc::torture(&seeds);
    let serve_cases = tfgc::torture_serve(&seeds[..3], false);
    let profiles = Json::Arr(
        Strategy::ALL
            .iter()
            .map(|s| {
                let mine: Vec<_> = report.cases.iter().filter(|c| c.strategy == *s).collect();
                let count = |class: &str| {
                    Json::from(mine.iter().filter(|c| c.outcome.class() == class).count())
                };
                let serve: Vec<_> = serve_cases.iter().filter(|c| c.strategy == *s).collect();
                let mut pairs = vec![
                    ("strategy", Json::str(s.name())),
                    ("cases", Json::from(mine.len())),
                    ("completed", count("completed")),
                    ("structured_errors", count("error")),
                    ("fail_fast", count("fail-fast")),
                    ("raw_panics", count("RAW PANIC")),
                ];
                if !serve.is_empty() {
                    pairs.push((
                        "serve",
                        Json::obj([
                            ("cases", Json::from(serve.len())),
                            (
                                "requests_completed",
                                Json::from(serve.iter().map(|c| c.completed).sum::<u64>()),
                            ),
                            (
                                "requests_quarantined",
                                Json::from(serve.iter().map(|c| c.failed).sum::<u64>()),
                            ),
                            (
                                "violations",
                                Json::from(serve.iter().map(|c| c.violations.len()).sum::<usize>()),
                            ),
                        ]),
                    ));
                }
                Json::obj(pairs)
            })
            .collect(),
    );
    doc(
        "E10",
        "graceful degradation: fault-injection matrix + serve-mode torture",
        "seeded faults over the torture workloads and the request server",
        profiles,
        vec![
            ("seeds".to_string(), Json::from(seeds.len())),
            ("total_cases".to_string(), Json::from(report.cases.len())),
            (
                "raw_panics".to_string(),
                Json::from(report.raw_panics().len()),
            ),
        ],
    )
}

fn e13_json() -> Json {
    // Per-strategy profiles on moderate polymorphic recursion with
    // plans on (the default) — the counters show every strategy's plan
    // traffic, including the tagged baseline's zeros.
    let depth = 2_000usize;
    let src = tfgc::workloads::programs::poly_deep_alloc(depth);
    let c = Compiled::compile(&src).expect("compiles");

    // Plans-vs-closures stress rows: a deep polymorphic stack (many
    // frames, few shapes) and a wide list spine (many objects, one
    // shape), each under both forward tracing methods with plans on
    // and off. Pause totals accumulate per mode so the document can
    // carry a regression verdict for CI.
    let mut plan_pause = 0u64;
    let mut walk_pause = 0u64;
    let mut stress_row = |c: &Compiled, label: &str, s: Strategy, heap: usize, force: u64| {
        [true, false].map(|plans| {
            let out = c
                .run_with(
                    VmConfig::new(s)
                        .heap_words(heap)
                        .force_gc_every(force)
                        .trace_plans(plans),
                )
                .expect("stress run");
            if plans {
                plan_pause += out.gc.pause_nanos;
            } else {
                walk_pause += out.gc.pause_nanos;
            }
            Json::obj([
                ("workload", Json::str(label)),
                ("strategy", Json::str(s.name())),
                ("trace_plans", Json::Bool(plans)),
                ("result", Json::str(&out.result)),
                ("collections", Json::from(out.heap.collections)),
                ("words_copied", Json::from(out.heap.words_copied)),
                ("desc_bytes_read", Json::from(out.gc.desc_bytes_read)),
                ("plan_hits", Json::from(out.gc.plan_hits)),
                ("plan_misses", Json::from(out.gc.plan_misses)),
                ("plans_compiled", Json::from(out.gc.plans_compiled)),
                ("pause_ns_total", Json::from(out.gc.pause_nanos)),
            ])
        })
    };
    let deep_depth = 50_000usize;
    let deep_src = tfgc::workloads::programs::poly_deep_alloc(deep_depth);
    let dc = Compiled::compile(&deep_src).expect("compiles");
    let wide_src = tfgc::workloads::programs::sumlist(3_000, 40);
    let wc = Compiled::compile(&wide_src).expect("compiles");
    let mut stress = Vec::new();
    for s in [Strategy::Compiled, Strategy::Interpreted] {
        stress.extend(stress_row(&dc, "deep", s, 1 << 21, (deep_depth / 2) as u64));
        // sumlist allocates ~3000 cons cells total, so force a
        // collection every 500: each one recopies the growing spine.
        stress.extend(stress_row(&wc, "wide", s, 1 << 17, 500));
    }
    doc(
        "E13",
        "trace plans vs closure walks: flattened routines on deep and wide heaps",
        "poly_deep_alloc(2000) / poly_deep_alloc(50000) / sumlist(3000, 40)",
        profiles(&c, 1 << 19, Some((depth / 2) as u64)),
        vec![
            ("stress".to_string(), Json::Arr(stress)),
            // True when the plan path's accumulated stress pauses
            // exceed the closure walk's by more than 1.5× — the CI gate
            // greps for `"plan_pause_regression": false`. A generous
            // margin: single-run pause totals are noisy, and the plan
            // tier must merely not be a regression, with the honest
            // comparison living in the wall-clock rows above.
            (
                "plan_pause_regression".to_string(),
                Json::Bool(plan_pause * 2 > walk_pause * 3),
            ),
        ],
    )
}

/// The E15 service: a large persistent table (many short spines so no
/// single global init recursion gets deep) plus an allocation-churn
/// handler. Full flips recopy the whole tenured table every time; minor
/// collections stop at the tenured boundary and touch only the nursery
/// — that asymmetry is the entire point of the generational tier.
fn e15_service_src(tables: usize, table_len: usize) -> String {
    let mut s = String::from(
        "fun build n = if n = 0 then [] else n :: build (n - 1) ;\n\
         fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;\n",
    );
    for i in 0..tables {
        s.push_str(&format!("val t{i} = build {table_len} ;\n"));
    }
    s.push_str("fun req_churn n = sum (build n) ;\n");
    s.push_str("fun req_heads n = n");
    for i in 0..tables {
        s.push_str(&format!(" + (case t{i} of [] => 0 | x :: _ => x)"));
    }
    s.push_str(" ;\n0");
    s
}

fn e15_json() -> Json {
    // Generational serve comparison: the same seeded traffic drained
    // with the classic single-generation semispace (every pause a full
    // flip over ~12Ki live tenured words) and with a 1Ki-word
    // bump-pointer nursery (most pauses minor: root set + nursery
    // survivors only, tracing stops at every tenured object because
    // immutability forbids tenured-to-nursery edges). Rows cover both
    // forward tracing methods; responses must be identical either way —
    // the generational tier changes *when* objects move, never what the
    // mutator computes.
    let src = e15_service_src(60, 100);
    let c = Compiled::compile(&src).expect("E15 service compiles");
    let mix = [
        tfgc::MixEntry {
            name: "churn",
            entry: "req_churn",
            weight: 4,
            lo: 8,
            hi: 40,
        },
        tfgc::MixEntry {
            name: "heads",
            entry: "req_heads",
            weight: 1,
            lo: 1,
            hi: 8,
        },
    ];
    let traffic = tfgc::serve::build_traffic(&c.program, 1, 400, &mix);
    let run = |s: Strategy, nursery: Option<usize>| {
        let mut tc = TaskConfig::new(s);
        tc.heap_words = 1 << 14;
        tc.heap_max_words = Some(1 << 14);
        tc.policy = SuspendPolicy::EveryCall;
        tc.quantum = 64;
        tc.nursery_words = nursery;
        let (report, obs) = serve_requests_overload(
            &c.program,
            &traffic,
            4,
            32,
            tc,
            OverloadConfig::none(),
            Obs::serve(RING, 10_000_000),
        )
        .expect("E15 serve run");
        let rec = obs.into_serve_recorder().expect("serve sink attached");
        (report, rec)
    };
    let mut rows = Vec::new();
    let mut regression = false;
    for s in [Strategy::Compiled, Strategy::Interpreted] {
        let (base_report, base_rec) = run(s, None);
        let (g, gen_rec) = run(s, Some(1 << 10));
        let full_p99 = base_rec.pause_hist().p99();
        let minor_p99 = gen_rec.minor_pause_hist().p99();
        if minor_p99 >= full_p99 {
            regression = true;
        }
        rows.push(Json::obj([
            ("strategy", Json::str(s.name())),
            (
                "responses_identical",
                Json::Bool(base_report.outcomes == g.outcomes),
            ),
            (
                "baseline_collections",
                Json::from(base_report.heap.collections),
            ),
            ("baseline_full_pause_p99_ns", Json::from(full_p99)),
            ("minor_collections", Json::from(g.gc.minor_collections)),
            ("major_collections", Json::from(g.gc.major_collections)),
            ("promoted_words", Json::from(g.gc.promoted_words)),
            ("died_young_words", Json::from(g.gc.died_young_words)),
            ("minor_pause_p99_ns", Json::from(minor_p99)),
            (
                "major_pause_p99_ns",
                Json::from(gen_rec.major_pause_hist().p99()),
            ),
            (
                "peak_nursery_words",
                Json::from(gen_rec.peak_nursery_words()),
            ),
        ]));
    }

    // Per-handler-kind survival: drain single-kind traffic through a
    // generational heap and measure how much of each handler's nursery
    // allocation is promoted versus dying young. The weak generational
    // hypothesis in miniature: churn-style handlers should die young,
    // table scans barely allocate, tree builds tenure their spines.
    let c = Compiled::compile(tfgc::SERVICE_SRC).expect("service program");
    let survival = Json::Arr(
        tfgc::serve::MIX
            .iter()
            .map(|m| {
                let traffic =
                    tfgc::serve::build_traffic(&c.program, 1, 120, std::slice::from_ref(m));
                let mut tc = TaskConfig::new(Strategy::Compiled);
                tc.heap_words = 1 << 11;
                tc.heap_max_words = Some(1 << 16);
                tc.policy = SuspendPolicy::EveryCall;
                tc.quantum = 64;
                tc.nursery_words = Some(1 << 9);
                let (r, _) = serve_requests_overload(
                    &c.program,
                    &traffic,
                    4,
                    0,
                    tc,
                    OverloadConfig::none(),
                    Obs::null(),
                )
                .expect("single-kind survival run");
                let promoted = r.gc.promoted_words;
                let died = r.gc.died_young_words;
                let denom = promoted + died;
                Json::obj([
                    ("kind", Json::str(m.name)),
                    ("minor_collections", Json::from(r.gc.minor_collections)),
                    ("promoted_words", Json::from(promoted)),
                    ("died_young_words", Json::from(died)),
                    (
                        "survival_rate",
                        Json::Num(if denom == 0 {
                            0.0
                        } else {
                            promoted as f64 / denom as f64
                        }),
                    ),
                ])
            })
            .collect(),
    );
    doc(
        "E15",
        "generational collection: minor pauses vs full semispace flips",
        "seeded serve traffic; single-kind mixes for survival rates",
        Json::Arr(rows),
        vec![
            ("survival".to_string(), survival),
            // True when any strategy's minor p99 fails to land strictly
            // below the single-generation full-flip p99 — the CI gate
            // greps for `"minor_pause_regression": false`. Minor pauses
            // touch a quarter-semispace nursery plus the root set, so
            // the margin over a full flip of the live heap is wide
            // enough to hold through single-run noise.
            ("minor_pause_regression".to_string(), Json::Bool(regression)),
        ],
    )
}

/// The JSON document of one experiment.
///
/// # Panics
///
/// Panics on an unknown id or a failing experiment run (the suite is
/// fixed and correct by construction).
pub fn bench_json(id: &str) -> Json {
    match id {
        "E1" => e1_json(),
        "E2" => e2_json(),
        "E3" => e3_json(),
        "E4" => e4_json(),
        "E5" => e5_json(),
        "E6" => e6_json(),
        "E7" => e7_json(),
        "E8" => e8_json(),
        "E9" => e9_json(),
        "E10" => e10_json(),
        "E13" => e13_json(),
        "E15" => e15_json(),
        other => panic!("unknown experiment `{other}`"),
    }
}

/// Keys whose values are wall-clock measurements: everything else in an
/// experiment document is a pure function of the workload and seed.
const WALL_CLOCK_KEYS: [&str; 10] = [
    "pause_ns",
    "pause_ns_total",
    "latency_ns",
    "t_ns",
    "timing",
    "utilization",
    "windows",
    "baseline_full_pause_p99_ns",
    "minor_pause_p99_ns",
    "major_pause_p99_ns",
];

/// The deterministic projection of an experiment document: wall-clock
/// subtrees removed, everything else untouched. Two runs of the same
/// experiment produce byte-identical projections, so CI can diff them.
pub fn deterministic_view(j: &Json) -> Json {
    match j {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| !WALL_CLOCK_KEYS.contains(&k.as_str()))
                .map(|(k, v)| (k.clone(), deterministic_view(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(deterministic_view).collect()),
        other => other.clone(),
    }
}

/// Writes one `BENCH_E<n>.json` per [`EXPERIMENTS`] entry into `dir`,
/// returning the paths written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_all(dir: &Path) -> io::Result<Vec<PathBuf>> {
    write_all_with(dir, false)
}

/// [`write_all`], optionally writing the [`deterministic_view`] of each
/// document so consecutive runs diff byte-for-byte.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_all_with(dir: &Path, deterministic: bool) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for id in EXPERIMENTS {
        let path = dir.join(format!("BENCH_{id}.json"));
        let doc = bench_json(id);
        let doc = if deterministic {
            deterministic_view(&doc)
        } else {
            doc
        };
        std::fs::write(&path, doc.to_json_pretty())?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_document_has_per_strategy_histograms_and_sites() {
        let d = bench_json("E3");
        let text = d.to_json_pretty();
        let back = tfgc::obs::json::parse(&text).expect("well-formed");
        let profiles = back.get("profiles").unwrap().as_arr().unwrap();
        assert_eq!(profiles.len(), Strategy::ALL.len());
        for p in profiles {
            let m = p.get("metrics").unwrap();
            let pause = m.get("pause_ns").unwrap();
            for q in ["p50", "p90", "p99", "max"] {
                assert!(pause.get(q).is_some(), "missing {q}");
            }
            let sites = m.get("sites").unwrap().as_arr().unwrap();
            assert!(!sites.is_empty(), "per-site allocation counts present");
            assert!(sites[0].get("allocs").is_some());
            assert!(sites[0].get("label").is_some());
        }
        // Forced collections mean real pauses were histogrammed.
        let pause0 = profiles[0].get("metrics").unwrap().get("pause_ns").unwrap();
        assert!(pause0.get("count").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn deterministic_view_diffs_clean_across_runs() {
        let a = deterministic_view(&bench_json("E1"));
        let b = deterministic_view(&bench_json("E1"));
        assert_eq!(
            a.to_json_pretty(),
            b.to_json_pretty(),
            "projection must be byte-identical across runs"
        );
        // The projection actually removed the wall-clock subtrees…
        let text = a.to_json_pretty();
        assert!(!text.contains("\"pause_ns\""));
        // …and kept the deterministic ones.
        assert!(text.contains("\"words_allocated\""));
        assert!(text.contains("\"alloc_words\"") || text.contains("\"collections\""));
    }

    #[test]
    fn e13_compares_plans_against_closure_walks() {
        let d = bench_json("E13");
        let profiles = d.get("profiles").unwrap().as_arr().unwrap();
        assert_eq!(profiles.len(), Strategy::ALL.len());
        for p in profiles {
            let s = p.get("strategy").unwrap();
            let compiled = p.get("plans_compiled").and_then(Json::as_f64).unwrap();
            if matches!(s, Json::Str(name) if name == "tagged") {
                assert_eq!(compiled, 0.0, "the tagged baseline lowers no plans");
            } else {
                assert!(compiled > 0.0, "plans must actually be lowered: {s:?}");
            }
        }
        let stress = d.get("stress").unwrap().as_arr().unwrap();
        assert_eq!(stress.len(), 8, "2 workloads × 2 strategies × on/off");
        for row in stress {
            let plans = matches!(row.get("trace_plans"), Some(Json::Bool(true)));
            let compiled = row.get("plans_compiled").and_then(Json::as_f64).unwrap();
            let hits = row.get("plan_hits").and_then(Json::as_f64).unwrap();
            if plans {
                assert!(compiled > 0.0);
                assert!(hits > compiled, "plans are reused across collections");
            } else {
                assert_eq!(compiled, 0.0, "plans off must not lower plans");
                assert_eq!(hits, 0.0);
            }
        }
        assert!(d.get("plan_pause_regression").is_some());
        // Everything but the pause rows is deterministic.
        let a = deterministic_view(&bench_json("E13"));
        let b = deterministic_view(&d);
        let a = a.to_json_pretty();
        assert!(!a.contains("pause_ns_total"));
        assert_eq!(a, b.to_json_pretty());
    }

    #[test]
    fn e15_gates_minor_pauses_below_full_flips() {
        let d = bench_json("E15");
        let profiles = d.get("profiles").unwrap().as_arr().unwrap();
        assert_eq!(profiles.len(), 2, "compiled and interpreted rows");
        for p in profiles {
            assert_eq!(
                p.get("responses_identical"),
                Some(&Json::Bool(true)),
                "generational collection must not change any response: {p:?}"
            );
            assert!(
                p.get("minor_collections").and_then(Json::as_f64).unwrap() > 0.0,
                "the default serve heap must trigger minors"
            );
            assert!(
                p.get("promoted_words").and_then(Json::as_f64).unwrap() > 0.0,
                "the persistent table must tenure"
            );
            assert!(
                p.get("died_young_words").and_then(Json::as_f64).unwrap() > 0.0,
                "request churn must die young"
            );
        }
        assert_eq!(
            d.get("minor_pause_regression"),
            Some(&Json::Bool(false)),
            "minor p99 must land strictly below the full-flip p99"
        );
        let survival = d.get("survival").unwrap().as_arr().unwrap();
        assert_eq!(survival.len(), 5, "one row per traffic class");
        for row in survival {
            let rate = row.get("survival_rate").and_then(Json::as_f64).unwrap();
            assert!((0.0..=1.0).contains(&rate), "{row:?}");
        }
        // Survival must differentiate the classes: churn dies young
        // far more than it tenures.
        let churn = survival
            .iter()
            .find(|r| matches!(r.get("kind"), Some(Json::Str(s)) if s == "churn"))
            .unwrap();
        assert!(
            churn.get("survival_rate").and_then(Json::as_f64).unwrap() < 0.5,
            "churn allocations are short-lived by construction: {churn:?}"
        );
        // Everything but the pause percentiles is deterministic.
        let a = deterministic_view(&bench_json("E15")).to_json_pretty();
        assert!(!a.contains("pause_p99_ns"));
        assert_eq!(a, deterministic_view(&d).to_json_pretty());
    }

    #[test]
    fn e10_reports_a_clean_fault_matrix() {
        let d = bench_json("E10");
        assert_eq!(d.get("raw_panics").and_then(Json::as_f64), Some(0.0));
        let profiles = d.get("profiles").unwrap().as_arr().unwrap();
        assert_eq!(profiles.len(), Strategy::ALL.len());
        for p in profiles {
            let cases = p.get("cases").and_then(Json::as_f64).unwrap();
            let completed = p.get("completed").and_then(Json::as_f64).unwrap();
            assert!(cases > 0.0);
            assert!(completed > 0.0, "some cases must absorb their fault");
            assert_eq!(p.get("raw_panics").and_then(Json::as_f64), Some(0.0));
        }
        // The serve block rides on the two serve-torture strategies.
        let with_serve = profiles.iter().filter(|p| p.get("serve").is_some()).count();
        assert_eq!(with_serve, 2);
        // Deterministic end to end: E10 carries no wall-clock keys at all.
        let a = bench_json("E10").to_json_pretty();
        assert_eq!(a, d.to_json_pretty());
    }
}
