//! Prints every experiment table (E1–E8). The recorded output backs
//! EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p tfgc-bench --bin experiments
//! ```

fn main() {
    println!("{}", tfgc_bench::all_experiments());
}
