//! Prints every experiment table (E1–E10 and E13), or with `--json` writes the
//! machine-readable documents instead:
//!
//! ```sh
//! cargo run --release -p tfgc-bench --bin experiments
//! cargo run --release -p tfgc-bench --bin experiments -- --json [--out DIR] [--deterministic]
//! ```
//!
//! `--json` writes one `BENCH_E<n>.json` per experiment (per-strategy pause
//! histograms, labeled per-site allocation counts, experiment extras)
//! into `--out DIR` (default: the current directory). With
//! `--deterministic`, wall-clock subtrees (pause histograms, timing
//! blocks) are stripped so consecutive runs diff byte-for-byte.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if !args.iter().any(|a| a == "--json") {
        println!("{}", tfgc_bench::all_experiments());
        return ExitCode::SUCCESS;
    }
    let mut dir = ".".to_string();
    let mut deterministic = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(d) => dir.clone_from(d),
                    None => {
                        eprintln!("experiments: --out needs a directory");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--deterministic" => deterministic = true,
            _ => {}
        }
        i += 1;
    }
    match tfgc_bench::export::write_all_with(Path::new(&dir), deterministic) {
        Ok(paths) => {
            for p in paths {
                println!("wrote {}", p.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("experiments: {e}");
            ExitCode::FAILURE
        }
    }
}
