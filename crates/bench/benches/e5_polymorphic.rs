//! E5 — §3: Goldberg's forward polymorphic traversal vs Appel's backward
//! resolution, on deepening polymorphic stacks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tfgc::{Compiled, Strategy, VmConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_polymorphic");
    g.sample_size(10);
    for depth in [100usize, 300] {
        let src = tfgc::workloads::programs::poly_depth(depth);
        let compiled = Compiled::compile(&src).expect("compiles");
        for s in [Strategy::Compiled, Strategy::AppelPerFn] {
            g.bench_with_input(
                BenchmarkId::new(format!("depth{depth}"), s),
                &s,
                |b, s| {
                    b.iter(|| {
                        compiled
                            .run_with(
                                VmConfig::new(*s)
                                    .heap_words(1 << 15)
                                    .force_gc_every(depth as u64),
                            )
                            .expect("runs")
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
