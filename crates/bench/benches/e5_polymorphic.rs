//! E5 — §3: Goldberg's forward polymorphic traversal vs Appel's backward
//! resolution, on deepening polymorphic stacks.

use tfgc::{Compiled, Strategy, VmConfig};
use tfgc_bench::timing::Group;

fn main() {
    let g = Group::new("e5_polymorphic");
    for depth in [100usize, 300] {
        let src = tfgc::workloads::programs::poly_depth(depth);
        let compiled = Compiled::compile(&src).expect("compiles");
        for s in [Strategy::Compiled, Strategy::AppelPerFn] {
            g.time(&format!("depth{depth}/{s}"), || {
                compiled
                    .run_with(
                        VmConfig::new(s)
                            .heap_words(1 << 15)
                            .force_gc_every(depth as u64),
                    )
                    .expect("runs")
            });
        }
    }
}
