//! E1 — wall-clock of allocation-heavy workloads under each encoding
//! (the counted heap-word numbers are in the experiments binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tfgc::{Compiled, Strategy, VmConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_heap_space");
    g.sample_size(10);
    let src = tfgc::workloads::programs::churn(120, 30);
    let compiled = Compiled::compile(&src).expect("compiles");
    for s in [Strategy::Compiled, Strategy::Tagged] {
        g.bench_with_input(BenchmarkId::new("churn", s), &s, |b, s| {
            b.iter(|| {
                compiled
                    .run_with(VmConfig::new(*s).heap_words(1 << 12))
                    .expect("runs")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
