//! E1 — wall-clock of allocation-heavy workloads under each encoding
//! (the counted heap-word numbers are in the experiments binary).

use tfgc::{Compiled, Strategy, VmConfig};
use tfgc_bench::timing::Group;

fn main() {
    let g = Group::new("e1_heap_space");
    let src = tfgc::workloads::programs::churn(120, 30);
    let compiled = Compiled::compile(&src).expect("compiles");
    for s in [Strategy::Compiled, Strategy::Tagged] {
        g.time(&format!("churn/{s}"), || {
            compiled
                .run_with(VmConfig::new(s).heap_words(1 << 12))
                .expect("runs")
        });
    }
}
