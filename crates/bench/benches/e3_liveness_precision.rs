//! E3 — collection work with dead structures in live frames: liveness-
//! aware routines vs the per-procedure and tagged collectors.

use tfgc::{Compiled, Strategy, VmConfig};
use tfgc_bench::timing::Group;

fn main() {
    let g = Group::new("e3_liveness");
    let src = tfgc::workloads::programs::live_and_dead(120, 80, 20);
    let compiled = Compiled::compile(&src).expect("compiles");
    for s in [
        Strategy::Compiled,
        Strategy::CompiledNoLiveness,
        Strategy::AppelPerFn,
        Strategy::Tagged,
    ] {
        g.time(&format!("live_and_dead/{s}"), || {
            compiled
                .run_with(VmConfig::new(s).heap_words(1 << 13).force_gc_every(150))
                .expect("runs")
        });
    }
}
