//! E3 — collection work with dead structures in live frames: liveness-
//! aware routines vs the per-procedure and tagged collectors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tfgc::{Compiled, Strategy, VmConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_liveness");
    g.sample_size(10);
    let src = tfgc::workloads::programs::live_and_dead(120, 80, 20);
    let compiled = Compiled::compile(&src).expect("compiles");
    for s in [
        Strategy::Compiled,
        Strategy::CompiledNoLiveness,
        Strategy::AppelPerFn,
        Strategy::Tagged,
    ] {
        g.bench_with_input(BenchmarkId::new("live_and_dead", s), &s, |b, s| {
            b.iter(|| {
                compiled
                    .run_with(VmConfig::new(*s).heap_words(1 << 13).force_gc_every(150))
                    .expect("runs")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
