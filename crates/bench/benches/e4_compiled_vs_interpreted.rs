//! E4 — §2.4's space/time trade-off: compiled frame routines vs
//! interpreted byte descriptors, under heavy forced collection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tfgc::{Compiled, Strategy, VmConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_compiled_vs_interpreted");
    g.sample_size(10);
    for (name, src) in [
        ("tree", tfgc::workloads::programs::tree_insert(120)),
        ("naive_rev", tfgc::workloads::programs::naive_rev(50)),
    ] {
        let compiled = Compiled::compile(&src).expect("compiles");
        for s in [Strategy::Compiled, Strategy::Interpreted] {
            g.bench_with_input(BenchmarkId::new(name, s), &s, |b, s| {
                b.iter(|| {
                    compiled
                        .run_with(VmConfig::new(*s).heap_words(1 << 12).force_gc_every(100))
                        .expect("runs")
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
