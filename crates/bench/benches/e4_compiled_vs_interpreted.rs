//! E4 — §2.4's space/time trade-off: compiled frame routines vs
//! interpreted byte descriptors, under heavy forced collection.

use tfgc::{Compiled, Strategy, VmConfig};
use tfgc_bench::timing::Group;

fn main() {
    let g = Group::new("e4_compiled_vs_interpreted");
    for (name, src) in [
        ("tree", tfgc::workloads::programs::tree_insert(120)),
        ("naive_rev", tfgc::workloads::programs::naive_rev(50)),
    ] {
        let compiled = Compiled::compile(&src).expect("compiles");
        for s in [Strategy::Compiled, Strategy::Interpreted] {
            g.time(&format!("{name}/{s}"), || {
                compiled
                    .run_with(VmConfig::new(s).heap_words(1 << 12).force_gc_every(100))
                    .expect("runs")
            });
        }
    }
}
