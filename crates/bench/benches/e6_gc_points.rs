//! E6 — metadata generation cost: building the full GC metadata
//! (analyses + routines) per strategy across the suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tfgc::{Compiled, Strategy};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_metadata_build");
    g.sample_size(10);
    let srcs: Vec<(String, Compiled)> = tfgc::workloads::suite()
        .into_iter()
        .take(4)
        .map(|(n, s)| (n.to_string(), Compiled::compile(&s).expect("compiles")))
        .collect();
    for s in [Strategy::Compiled, Strategy::Interpreted, Strategy::AppelPerFn] {
        g.bench_with_input(BenchmarkId::new("suite4", s), &s, |b, s| {
            b.iter(|| {
                srcs.iter()
                    .map(|(_, c)| c.metadata(*s).metadata_bytes())
                    .sum::<usize>()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
