//! E6 — metadata generation cost: building the full GC metadata
//! (analyses + routines) per strategy across the suite.

use tfgc::{Compiled, Strategy};
use tfgc_bench::timing::Group;

fn main() {
    let g = Group::new("e6_metadata_build");
    let srcs: Vec<(String, Compiled)> = tfgc::workloads::suite()
        .into_iter()
        .take(4)
        .map(|(n, s)| (n.to_string(), Compiled::compile(&s).expect("compiles")))
        .collect();
    for s in [
        Strategy::Compiled,
        Strategy::Interpreted,
        Strategy::AppelPerFn,
    ] {
        g.time(&format!("suite4/{s}"), || {
            srcs.iter()
                .map(|(_, c)| c.metadata(s).metadata_bytes())
                .sum::<usize>()
        });
    }
}
