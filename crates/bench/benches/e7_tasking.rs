//! E7 — §4 tasking: end-to-end multi-task runs per suspension policy.

use tfgc::tasking::{find_fn, run_tasks, SuspendPolicy, TaskConfig};
use tfgc::{Compiled, Strategy};
use tfgc_bench::timing::Group;

fn main() {
    let g = Group::new("e7_tasking");
    let src = "
        fun build n = if n = 0 then [] else n :: build (n - 1) ;
        fun sum xs = case xs of [] => 0 | x :: r => x + sum r ;
        fun worker n = if n = 0 then 0
                       else (sum (build 20) + worker (n - 1)) - sum (build 20) ;
        0";
    let compiled = Compiled::compile(src).expect("compiles");
    let worker = find_fn(&compiled.program, "worker").expect("worker");
    let entries = vec![(worker, 40), (worker, 40)];
    for policy in [
        SuspendPolicy::AllocationOnly,
        SuspendPolicy::EveryCall,
        SuspendPolicy::EveryCallRgc,
    ] {
        g.time(&format!("2workers/{policy}"), || {
            let mut cfg = TaskConfig::new(Strategy::Compiled);
            cfg.heap_words = 1 << 11;
            cfg.policy = policy;
            run_tasks(&compiled.program, &entries, cfg).expect("tasks run")
        });
    }
}
