//! E2 — mutator time: tagged arithmetic (strip/reinstate performed for
//! real) vs tag-free on allocation-free workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tfgc::{Compiled, Strategy, VmConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_mutator");
    g.sample_size(10);
    let fib = Compiled::compile(&tfgc::workloads::programs::fib(18)).expect("fib");
    let sums = Compiled::compile(&tfgc::workloads::programs::sumlist(200, 40)).expect("sumlist");
    for s in [Strategy::Compiled, Strategy::Tagged] {
        g.bench_with_input(BenchmarkId::new("fib18", s), &s, |b, s| {
            b.iter(|| fib.run_with(VmConfig::new(*s).heap_words(1 << 12)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("sumlist", s), &s, |b, s| {
            b.iter(|| sums.run_with(VmConfig::new(*s).heap_words(1 << 13)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
