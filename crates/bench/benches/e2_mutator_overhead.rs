//! E2 — mutator time: tagged arithmetic (strip/reinstate performed for
//! real) vs tag-free on allocation-free workloads.

use tfgc::{Compiled, Strategy, VmConfig};
use tfgc_bench::timing::Group;

fn main() {
    let g = Group::new("e2_mutator");
    let fib = Compiled::compile(&tfgc::workloads::programs::fib(18)).expect("fib");
    let sums = Compiled::compile(&tfgc::workloads::programs::sumlist(200, 40)).expect("sumlist");
    for s in [Strategy::Compiled, Strategy::Tagged] {
        g.time(&format!("fib18/{s}"), || {
            fib.run_with(VmConfig::new(s).heap_words(1 << 12)).unwrap()
        });
        g.time(&format!("sumlist/{s}"), || {
            sums.run_with(VmConfig::new(s).heap_words(1 << 13)).unwrap()
        });
    }
}
