//! GC metadata compilation — "when compiling a program, the compiler
//! generates the code necessary to support garbage collection" (§1).
//!
//! [`GcMeta::build`] is the compiler back-end pass the paper describes:
//! for every call site it emits (or shares) a frame routine; for every
//! direct call it compiles the instantiation θ the caller's routine will
//! evaluate; for every function it emits the closure-tracing routine
//! reachable from the value's code pointer (§2.2's word at `code − 4`);
//! and under the interpreted strategy it emits byte descriptors instead of
//! routines (§2.4's trade-off).

use crate::bytes::BytePool;
use crate::cache::RtCache;
use crate::collect::CollectorScratch;
use crate::ground::GroundTable;
use crate::routines::{FrameRoutine, FrameRoutineId, RoutineTable, TraceOp, NO_TRACE};
use crate::strategy::Strategy;
use crate::sx::{SxCx, SxId, SxTable};
use std::collections::HashMap;
use tfgc_analysis::{GcPoints, InitAnalysis, Liveness, SlotSet};
use tfgc_ir::{IrProgram, ParamSource, SiteKind, Slot, SlotTy};
use tfgc_types::ParamId;

/// The compile-time analyses metadata generation consumes.
#[derive(Debug, Clone)]
pub struct Analyses {
    pub liveness: Liveness,
    pub init: InitAnalysis,
    pub gcpoints: GcPoints,
}

impl Analyses {
    /// Runs all analyses on a program (first-order GC points, as in the
    /// paper).
    pub fn compute(prog: &IrProgram) -> Analyses {
        Analyses {
            liveness: Liveness::compute(prog),
            init: InitAnalysis::compute(prog),
            gcpoints: GcPoints::compute(prog),
        }
    }

    /// Like [`Analyses::compute`], with the higher-order closure-flow
    /// refinement of the GC-point analysis (§5.1's suggested extension):
    /// strictly more gc_words can be omitted.
    pub fn compute_refined(prog: &IrProgram) -> Analyses {
        let flow = tfgc_analysis::ClosureFlow::compute(prog);
        Analyses {
            liveness: Liveness::compute(prog),
            init: InitAnalysis::compute(prog),
            gcpoints: GcPoints::compute_refined(prog, &flow),
        }
    }
}

/// Where a frame's type-routine parameter comes from at collection time
/// (compiled form of [`tfgc_ir::ParamSource`]).
#[derive(Debug, Clone, PartialEq)]
pub enum FrameParamSrc {
    /// Locally quantified: `const_gc`.
    Opaque,
    /// Supplied by the caller's routine (position aligned with
    /// `frame_params`).
    Theta,
    /// Extracted from the entered closure's type routine at this path.
    ArrowPath(Vec<u16>),
    /// Evaluated from the runtime descriptor in this frame slot.
    DescSlot(Slot),
}

/// Where a *closure object's* parameter comes from when tracing the
/// closure value itself.
#[derive(Debug, Clone, PartialEq)]
pub enum ClosParamSrc {
    Opaque,
    /// Extract from the value's own type routine.
    Path(Vec<u16>),
    /// Read the descriptor stored at this absolute field offset.
    DescField(u16),
}

/// The callee-environment plan recorded at a call site (what the caller's
/// frame routine passes to the next frame's routine, §3).
#[derive(Debug, Clone, PartialEq)]
pub enum CalleePlan {
    /// Allocation site (or tagged strategy): nothing to pass.
    None,
    /// Direct call: θ templates (interned), aligned with the callee's
    /// frame params.
    Direct { theta: Vec<SxId> },
    /// Closure call: the static type of the invoked closure.
    Closure { clos_ty: SxId },
}

/// Per-site metadata: the gc_word (`routine`) and the callee plan.
#[derive(Debug, Clone)]
pub struct SiteMeta {
    /// `None` = the gc_word is omitted (§5.1 proved no collection can
    /// happen here). The collector panics if it ever needs a missing
    /// routine — that would falsify the analysis.
    pub routine: Option<FrameRoutineId>,
    pub plan: CalleePlan,
    /// Allocation sites: per operand, the interned tracing template
    /// (`None` for descriptor/prim operands).
    pub operands: Vec<Option<SxId>>,
}

/// Per-function metadata.
#[derive(Debug, Clone)]
pub struct FnGcMeta {
    /// How to build the frame's type-routine environment, aligned with
    /// `frame_params`.
    pub frame_param_src: Vec<FrameParamSrc>,
    /// Appel strategy: the single per-procedure routine.
    pub appel_routine: FrameRoutineId,
    /// Closure value tracing: pointerful capture fields (absolute offset,
    /// interned template).
    pub closure_fields: Vec<(u16, SxId)>,
    /// How to resolve the closure's parameters when tracing the value.
    pub closure_param_src: Vec<ClosParamSrc>,
    /// Total closure object size in payload words (1 + captures).
    pub closure_size: u16,
}

/// All metadata for one (program, strategy) pair — plus the collector's
/// persistent GC-time state (evaluation cache and scratch buffers),
/// which lives here so it survives across collections of a run.
#[derive(Debug, Clone)]
pub struct GcMeta {
    pub strategy: Strategy,
    pub ground: GroundTable,
    pub routines: RoutineTable,
    pub pool: BytePool,
    /// Every compiled template, hash-consed; all other fields reference
    /// templates by [`SxId`].
    pub sxs: SxTable,
    pub sites: Vec<SiteMeta>,
    pub fns: Vec<FnGcMeta>,
    /// Per global: interned tracing template (`None` = no pointers).
    pub globals: Vec<Option<SxId>>,
    /// `data_variants[data][ctor]` = interned field templates over the
    /// datatype's own parameters (evaluated under the instance's
    /// argument routines when tracing a polymorphic datatype value).
    pub data_variants: Vec<Vec<Vec<SxId>>>,
    /// Memoized GC-time evaluation state (persists across collections).
    pub rt_cache: RtCache,
    /// Reusable collector buffers (worklist, decoded frame vector).
    pub scratch: CollectorScratch,
}

impl GcMeta {
    /// Compiles the metadata for `strategy` (sequential programs: §5.1
    /// gc_word omission enabled where the strategy allows).
    pub fn build(prog: &IrProgram, an: &Analyses, strategy: Strategy) -> GcMeta {
        GcMeta::build_opts(prog, an, strategy, true)
    }

    /// Compiles metadata for a **multi-task** program: §5.1's gc_word
    /// omission must be disabled, because another task can trigger a
    /// collection while this one is suspended at a site that could never
    /// cause one itself. (The paper presents §5.1 for sequential programs
    /// and does not note this interaction with §4.)
    pub fn build_multi_task(prog: &IrProgram, an: &Analyses, strategy: Strategy) -> GcMeta {
        GcMeta::build_opts(prog, an, strategy, false)
    }

    fn build_opts(
        prog: &IrProgram,
        an: &Analyses,
        strategy: Strategy,
        use_gc_points: bool,
    ) -> GcMeta {
        let mut ground = GroundTable::new();
        let mut routines = RoutineTable::new();
        let mut pool = BytePool::new(prog);
        let mut sxs = SxTable::new();
        let opaque = &prog.opaque_schemes;

        // Per-function param index maps.
        let param_indexes: Vec<HashMap<ParamId, u16>> = prog
            .funs
            .iter()
            .map(|f| {
                f.frame_params
                    .iter()
                    .enumerate()
                    .map(|(i, q)| (*q, i as u16))
                    .collect()
            })
            .collect();

        // Per-function metadata.
        let mut fns = Vec::with_capacity(prog.funs.len());
        for (fi, f) in prog.funs.iter().enumerate() {
            let frame_param_src = f
                .param_source
                .iter()
                .map(|s| match s {
                    ParamSource::Opaque => FrameParamSrc::Opaque,
                    ParamSource::CallerTheta => FrameParamSrc::Theta,
                    ParamSource::ArrowPath(p) => FrameParamSrc::ArrowPath(p.clone()),
                    ParamSource::DescSlot(s) => FrameParamSrc::DescSlot(*s),
                })
                .collect();

            // Closure layout: value captures then descriptor fields.
            let n_desc = f.desc_fields.len();
            let n_caps = f.captures.len();
            let desc_field_offset = |j: usize| (1 + n_caps - n_desc + j) as u16;
            let mut closure_fields = Vec::new();
            for (i, c) in f.captures.iter().enumerate() {
                if let SlotTy::Val(ty) = c {
                    let mut cx = SxCx {
                        prog,
                        ground: &mut ground,
                        param_index: &param_indexes[fi],
                        opaque,
                    };
                    let sx = cx.compile(ty);
                    if !sx.is_prim() {
                        closure_fields.push(((1 + i) as u16, sxs.intern(sx)));
                    }
                }
            }
            let closure_param_src = f
                .frame_params
                .iter()
                .zip(&f.param_source)
                .map(|(q, s)| match s {
                    ParamSource::Opaque => ClosParamSrc::Opaque,
                    ParamSource::ArrowPath(p) => ClosParamSrc::Path(p.clone()),
                    ParamSource::DescSlot(_) => {
                        let j = f
                            .desc_fields
                            .iter()
                            .position(|d| d == q)
                            .expect("desc-sourced param has a desc field");
                        ClosParamSrc::DescField(desc_field_offset(j))
                    }
                    // Direct functions are never closure values; their
                    // wrappers are. Defensive default:
                    ParamSource::CallerTheta => ClosParamSrc::Opaque,
                })
                .collect();

            // Appel: one routine per procedure, covering every value slot.
            let appel_routine = if strategy == Strategy::AppelPerFn {
                let mut ops = Vec::new();
                for (si, sty) in f.slots.iter().enumerate() {
                    if let SlotTy::Val(ty) = sty {
                        let mut cx = SxCx {
                            prog,
                            ground: &mut ground,
                            param_index: &param_indexes[fi],
                            opaque,
                        };
                        let sx = cx.compile(ty);
                        if !sx.is_prim() {
                            ops.push(TraceOp::Slot {
                                slot: Slot(si as u16),
                                sx: sxs.intern(sx),
                            });
                        }
                    }
                }
                routines.intern(FrameRoutine { ops })
            } else {
                NO_TRACE
            };

            fns.push(FnGcMeta {
                frame_param_src,
                appel_routine,
                closure_fields,
                closure_param_src,
                closure_size: (1 + n_caps) as u16,
            });
        }

        // Per-site metadata.
        let mut sites = Vec::with_capacity(prog.sites.len());
        for site in &prog.sites {
            let fi = site.fn_id.0 as usize;
            let f = &prog.funs[fi];
            let idx = &param_indexes[fi];

            let routine = match strategy {
                Strategy::Tagged => None,
                Strategy::AppelPerFn => Some(fns[fi].appel_routine),
                Strategy::Compiled | Strategy::CompiledNoLiveness | Strategy::Interpreted => {
                    if use_gc_points
                        && strategy.uses_gc_points()
                        && !an.gcpoints.site_may_gc(site.id)
                    {
                        None
                    } else {
                        let assigned = &an.init.site_assigned[site.id.0 as usize];
                        let mut set: SlotSet = assigned.clone();
                        if strategy.uses_liveness() {
                            if use_gc_points {
                                set.intersect_with(&an.liveness.site_live[site.id.0 as usize]);
                            } else {
                                // Multi-task: a task parked at this site
                                // *re-executes* the suspended instruction on
                                // resume, so the instruction's own operand
                                // slots must survive the collection —
                                // `live_in`, not `live_out \ def`. With
                                // `live_out` a blocked allocation's pending
                                // operands (e.g. the partially built list in
                                // a cons chain) are silently reclaimed.
                                set.intersect_with(
                                    &an.liveness.per_fun[fi].live_in[site.pc as usize],
                                );
                            }
                        }
                        let mut ops = Vec::new();
                        for slot in set.iter() {
                            if let SlotTy::Val(ty) = f.slot_ty(slot) {
                                if strategy == Strategy::Interpreted {
                                    if !ty_is_prim(prog, &mut ground, idx, opaque, ty) {
                                        let pos = pool.encode_type(ty, idx, opaque);
                                        ops.push(TraceOp::SlotBytes { slot, pos });
                                    }
                                } else {
                                    let mut cx = SxCx {
                                        prog,
                                        ground: &mut ground,
                                        param_index: idx,
                                        opaque,
                                    };
                                    let sx = cx.compile(ty);
                                    if !sx.is_prim() {
                                        ops.push(TraceOp::Slot {
                                            slot,
                                            sx: sxs.intern(sx),
                                        });
                                    }
                                }
                            }
                        }
                        Some(routines.intern(FrameRoutine { ops }))
                    }
                }
            };

            let plan = match &site.kind {
                SiteKind::Alloc { .. } => CalleePlan::None,
                SiteKind::Direct { theta, .. } => {
                    let theta = theta
                        .iter()
                        .map(|t| {
                            let mut cx = SxCx {
                                prog,
                                ground: &mut ground,
                                param_index: idx,
                                opaque,
                            };
                            let sx = cx.compile(t);
                            sxs.intern(sx)
                        })
                        .collect();
                    CalleePlan::Direct { theta }
                }
                SiteKind::Closure { clos_ty, .. } => {
                    let mut cx = SxCx {
                        prog,
                        ground: &mut ground,
                        param_index: idx,
                        opaque,
                    };
                    let sx = cx.compile(clos_ty);
                    CalleePlan::Closure {
                        clos_ty: sxs.intern(sx),
                    }
                }
            };

            let operands = match &site.kind {
                SiteKind::Alloc { operand_tys } => operand_tys
                    .iter()
                    .map(|o| match o {
                        SlotTy::Desc => None,
                        SlotTy::Val(ty) => {
                            let mut cx = SxCx {
                                prog,
                                ground: &mut ground,
                                param_index: idx,
                                opaque,
                            };
                            let sx = cx.compile(ty);
                            if sx.is_prim() {
                                None
                            } else {
                                Some(sxs.intern(sx))
                            }
                        }
                    })
                    .collect(),
                _ => Vec::new(),
            };

            sites.push(SiteMeta {
                routine,
                plan,
                operands,
            });
        }

        // Globals: parameters are opaque by construction.
        let globals = prog
            .globals
            .iter()
            .map(|g| {
                let idx = HashMap::new();
                let mut cx = SxCx {
                    prog,
                    ground: &mut ground,
                    param_index: &idx,
                    opaque,
                };
                let sx = cx.compile_opaque(&g.ty);
                if sx.is_prim() {
                    None
                } else {
                    Some(sxs.intern(sx))
                }
            })
            .collect();

        // Variant field templates over the datatype's own parameters.
        let data_variants = prog
            .data_env
            .iter()
            .map(|(id, def)| {
                let scheme = tfgc_types::data_scheme(id);
                let idx: HashMap<ParamId, u16> = (0..def.arity)
                    .map(|i| (ParamId { scheme, index: i }, i as u16))
                    .collect();
                def.ctors
                    .iter()
                    .map(|c| {
                        c.fields
                            .iter()
                            .map(|ft| {
                                let mut cx = SxCx {
                                    prog,
                                    ground: &mut ground,
                                    param_index: &idx,
                                    opaque,
                                };
                                let sx = cx.compile(ft);
                                sxs.intern(sx)
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();

        GcMeta {
            strategy,
            ground,
            routines,
            pool,
            sxs,
            sites,
            fns,
            globals,
            data_variants,
            rt_cache: RtCache::new(),
            scratch: CollectorScratch::default(),
        }
    }

    /// Metadata footprint in bytes, per the strategy's representation
    /// (E4/E6).
    pub fn metadata_bytes(&self) -> usize {
        match self.strategy {
            Strategy::Tagged => 0,
            Strategy::Interpreted => {
                // Byte pool plus per-site (slot, pos) entries; templates
                // still exist for θ/operands/variants, counted once.
                self.pool.size_bytes() + self.routines.approx_bytes() + self.sxs.approx_bytes()
            }
            _ => {
                self.routines.approx_bytes() + self.ground.approx_bytes() + self.sxs.approx_bytes()
            }
        }
    }

    /// Number of sites whose gc_word was omitted (§5.1, E6).
    pub fn omitted_gc_words(&self) -> usize {
        self.sites.iter().filter(|s| s.routine.is_none()).count()
    }

    /// Number of sites whose gc_word is the shared `no_trace` routine
    /// (§2.4, E6).
    pub fn no_trace_sites(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| s.routine == Some(NO_TRACE))
            .count()
    }

    /// Number of distinct frame routines after sharing (E6).
    pub fn distinct_routines(&self) -> usize {
        self.routines.len()
    }
}

/// Cheap primness check used by the interpreted strategy (which encodes
/// bytes rather than templates).
fn ty_is_prim(
    prog: &IrProgram,
    ground: &mut GroundTable,
    idx: &HashMap<ParamId, u16>,
    opaque: &[tfgc_types::SchemeId],
    ty: &tfgc_types::Type,
) -> bool {
    let mut cx = SxCx {
        prog,
        ground,
        param_index: idx,
        opaque,
    };
    cx.compile(ty).is_prim()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_ir::lower;
    use tfgc_syntax::parse_program;
    use tfgc_types::elaborate;

    fn build(src: &str, strategy: Strategy) -> (IrProgram, GcMeta) {
        let p = lower(&elaborate(&parse_program(src).unwrap()).unwrap()).unwrap();
        let an = Analyses::compute(&p);
        let meta = GcMeta::build(&p, &an, strategy);
        (p, meta)
    }

    #[test]
    fn append_sites_share_no_trace() {
        // §2.4: both calls in append's body get the shared `no_trace`.
        let (p, meta) = build(
            "fun append [] (ys : int list) = ys
               | append (x :: xs) ys = x :: append xs ys ;
             append [1] [2]",
            Strategy::Compiled,
        );
        let append_id = p
            .funs
            .iter()
            .position(|f| f.name.starts_with("append"))
            .unwrap();
        let mut append_sites = 0;
        for s in &p.sites {
            if s.fn_id.0 as usize == append_id {
                append_sites += 1;
                let m = &meta.sites[s.id.0 as usize];
                assert!(
                    m.routine.is_none() || m.routine == Some(NO_TRACE),
                    "append site {} should be no_trace or omitted, got {:?}",
                    s.id.0,
                    m.routine
                );
            }
        }
        assert!(append_sites >= 2);
        assert!(meta.no_trace_sites() > 0);
    }

    #[test]
    fn fib_gc_words_omitted() {
        let (_, meta) = build(
            "fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) ; fib 10",
            Strategy::Compiled,
        );
        assert!(meta.omitted_gc_words() > 0);
    }

    #[test]
    fn appel_has_one_routine_per_function_site() {
        let (p, meta) = build(
            "fun build n = if n = 0 then [] else n :: build (n - 1) ; build 3",
            Strategy::AppelPerFn,
        );
        // All sites of a function share that function's single routine.
        let build_id = p
            .funs
            .iter()
            .position(|f| f.name.starts_with("build"))
            .unwrap();
        let routines: std::collections::HashSet<_> = p
            .sites
            .iter()
            .filter(|s| s.fn_id.0 as usize == build_id)
            .map(|s| meta.sites[s.id.0 as usize].routine)
            .collect();
        assert_eq!(routines.len(), 1);
    }

    #[test]
    fn interpreted_uses_bytes() {
        // `xs` is live across the allocating call to `build`, so the
        // pairup frame routine must trace it.
        let (_, meta) = build(
            "fun build n = if n = 0 then [] else n :: build (n - 1) ;
             fun pairup (xs : int list) = (xs, build 3) ;
             pairup (build 2)",
            Strategy::Interpreted,
        );
        let has_bytes = (0..meta.routines.len()).any(|i| {
            meta.routines
                .routine(FrameRoutineId(i as u32))
                .ops
                .iter()
                .any(|op| matches!(op, TraceOp::SlotBytes { .. }))
        });
        assert!(has_bytes, "interpreted strategy must emit byte descriptors");
        assert!(meta.pool.size_bytes() > 0);
    }

    #[test]
    fn compiled_vs_interpreted_metadata_sizes() {
        // §2.4's conjecture: descriptors are smaller.
        let src = "datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree ;
             fun insert t x = case t of Leaf => Node (Leaf, x, Leaf)
               | Node (l, v, r) => if x < v then Node (insert l x, v, r)
                 else Node (l, v, insert r x) ;
             fun build n = if n = 0 then Leaf else insert (build (n - 1)) n ;
             build 10";
        let (_, compiled) = build(src, Strategy::Compiled);
        let (_, interp) = build(src, Strategy::Interpreted);
        assert!(compiled.metadata_bytes() > 0);
        assert!(interp.pool.size_bytes() > 0);
    }

    #[test]
    fn theta_compiles_at_direct_sites() {
        let (p, meta) = build("fun id x = x ; id [1]", Strategy::Compiled);
        let site = p
            .sites
            .iter()
            .find(|s| {
                matches!(&s.kind, SiteKind::Direct { callee, .. }
                    if p.funs[callee.0 as usize].name.starts_with("id"))
            })
            .unwrap();
        match &meta.sites[site.id.0 as usize].plan {
            CalleePlan::Direct { theta } => {
                assert_eq!(theta.len(), 1);
                assert!(matches!(
                    meta.sxs.get(theta[0]),
                    crate::sx::TypeSx::Ground(_)
                ));
            }
            other => panic!("expected direct plan, got {other:?}"),
        }
    }

    #[test]
    fn tagged_strategy_has_no_metadata() {
        let (_, meta) = build("[1, 2, 3]", Strategy::Tagged);
        assert_eq!(meta.metadata_bytes(), 0);
        assert!(meta.sites.iter().all(|s| s.routine.is_none()));
    }

    #[test]
    fn globals_get_templates() {
        let (_, meta) = build("val xs = [1, 2] ; fun f y = y ; f 0", Strategy::Compiled);
        assert_eq!(meta.globals.len(), 1);
        assert!(meta.globals[0].is_some());
    }
}
