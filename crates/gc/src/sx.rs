//! Type templates compiled into GC metadata.
//!
//! A [`TypeSx`] is a type expression with every ground subtree replaced by
//! a compiled routine reference and every generic parameter replaced by an
//! index into the evaluating frame's type-routine environment. It is what
//! a polymorphic `frame_gc_routine` evaluates at collection time to build
//! the paper's type_gc_routine closures (§3, Figure 3): evaluation is
//! [`crate::rtval::eval_sx`].

use crate::ground::{GroundTable, TypeRtId};
use std::collections::HashMap;
use tfgc_ir::IrProgram;
use tfgc_types::{DataId, ParamId, SchemeId, Type};

/// A compiled type template.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeSx {
    /// No pointers (also covers opaque parameters).
    Prim,
    /// Index into the evaluating frame's parameter environment.
    Param(u16),
    /// Fully ground subtree: precompiled routine.
    Ground(TypeRtId),
    Tuple(Vec<TypeSx>),
    Data(DataId, Vec<TypeSx>),
    Arrow(Box<TypeSx>, Box<TypeSx>),
}

impl TypeSx {
    /// Approximate metadata size in bytes (one word per node).
    pub fn approx_bytes(&self) -> usize {
        8 + match self {
            TypeSx::Tuple(ts) | TypeSx::Data(_, ts) => ts.iter().map(TypeSx::approx_bytes).sum(),
            TypeSx::Arrow(a, b) => a.approx_bytes() + b.approx_bytes(),
            _ => 0,
        }
    }

    /// True when evaluation cannot yield pointers (fast skip).
    pub fn is_prim(&self) -> bool {
        matches!(self, TypeSx::Prim)
    }
}

/// Identifies an interned template in a [`SxTable`]. Metadata stores
/// these instead of owned [`TypeSx`] trees so structurally identical
/// templates across sites, plans, and variants share one compiled form —
/// and so the collector's evaluation memo ([`crate::cache::RtCache`]) can
/// key on template identity instead of hashing whole trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SxId(pub u32);

/// The always-interned `Prim` template (id 0).
pub const SX_PRIM: SxId = SxId(0);

/// Hash-consing table of compiled type templates. Built once per
/// (program, strategy) pair by `GcMeta::build`; read-only at collection
/// time.
#[derive(Debug, Clone)]
pub struct SxTable {
    exprs: Vec<TypeSx>,
    index: HashMap<TypeSx, SxId>,
}

impl SxTable {
    /// A table with `Prim` preinstalled at id 0.
    pub fn new() -> SxTable {
        let mut t = SxTable {
            exprs: Vec::new(),
            index: HashMap::new(),
        };
        let id = t.intern(TypeSx::Prim);
        debug_assert_eq!(id, SX_PRIM);
        t
    }

    /// Interns a template, sharing structurally identical trees.
    pub fn intern(&mut self, sx: TypeSx) -> SxId {
        if let Some(id) = self.index.get(&sx) {
            return *id;
        }
        let id = SxId(self.exprs.len() as u32);
        self.exprs.push(sx.clone());
        self.index.insert(sx, id);
        id
    }

    /// The template behind `id`.
    pub fn get(&self, id: SxId) -> &TypeSx {
        &self.exprs[id.0 as usize]
    }

    /// Number of distinct templates.
    pub fn len(&self) -> usize {
        self.exprs.len()
    }

    /// Never true: `Prim` always exists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Approximate footprint of the distinct templates in bytes (each
    /// tree counted once, plus one word per table slot).
    pub fn approx_bytes(&self) -> usize {
        self.exprs
            .iter()
            .map(|sx| 8 + sx.approx_bytes())
            .sum::<usize>()
    }
}

impl Default for SxTable {
    fn default() -> Self {
        SxTable::new()
    }
}

/// Compilation context: which parameters map to which environment index,
/// and which schemes are opaque.
pub struct SxCx<'a> {
    pub prog: &'a IrProgram,
    pub ground: &'a mut GroundTable,
    /// Environment index of each in-scope parameter (the evaluating
    /// frame's `frame_params` order).
    pub param_index: &'a HashMap<ParamId, u16>,
    /// Opaque schemes (locally quantified values).
    pub opaque: &'a [SchemeId],
}

impl SxCx<'_> {
    fn param_is_opaque(&self, p: ParamId) -> bool {
        self.opaque.binary_search(&p.scheme).is_ok()
    }

    /// Compiles `ty` into a template.
    pub fn compile(&mut self, ty: &Type) -> TypeSx {
        if ty.is_ground() {
            return self.compile_ground(ty);
        }
        match ty {
            Type::Int | Type::Bool | Type::Unit | Type::Var(_) => TypeSx::Prim,
            Type::Param(p) => {
                if self.param_is_opaque(*p) {
                    TypeSx::Prim
                } else if let Some(i) = self.param_index.get(p) {
                    TypeSx::Param(*i)
                } else {
                    // A parameter not in the evaluating frame: only
                    // possible for opaque (locally quantified) schemes;
                    // treat as prim. (Checked by metadata validation.)
                    TypeSx::Prim
                }
            }
            // A tuple is a heap object even when every field is prim, so
            // the structural node is always kept.
            Type::Tuple(ts) => TypeSx::Tuple(ts.iter().map(|t| self.compile(t)).collect()),
            Type::Data(d, ts) => TypeSx::Data(*d, ts.iter().map(|t| self.compile(t)).collect()),
            Type::Arrow(a, b) => {
                TypeSx::Arrow(Box::new(self.compile(a)), Box::new(self.compile(b)))
            }
        }
    }

    fn compile_ground(&mut self, ty: &Type) -> TypeSx {
        let id = self.ground.make(self.prog, ty);
        if self.ground.rt(id).is_prim() {
            TypeSx::Prim
        } else {
            TypeSx::Ground(id)
        }
    }

    /// Compiles a type in which every parameter is opaque (globals).
    pub fn compile_opaque(&mut self, ty: &Type) -> TypeSx {
        let erased = ty.map_params(&mut |_| Type::Unit);
        self.compile(&erased)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_ir::lower;
    use tfgc_syntax::parse_program;
    use tfgc_types::elaborate;

    fn prog(src: &str) -> IrProgram {
        lower(&elaborate(&parse_program(src).unwrap()).unwrap()).unwrap()
    }

    fn cx<'a>(
        p: &'a IrProgram,
        ground: &'a mut GroundTable,
        idx: &'a HashMap<ParamId, u16>,
    ) -> SxCx<'a> {
        SxCx {
            prog: p,
            ground,
            param_index: idx,
            opaque: &[],
        }
    }

    #[test]
    fn sx_table_shares_identical_templates() {
        let mut t = SxTable::new();
        assert_eq!(t.intern(TypeSx::Prim), SX_PRIM);
        let a = t.intern(TypeSx::Tuple(vec![TypeSx::Param(0), TypeSx::Prim]));
        let b = t.intern(TypeSx::Tuple(vec![TypeSx::Param(0), TypeSx::Prim]));
        let c = t.intern(TypeSx::Tuple(vec![TypeSx::Param(1), TypeSx::Prim]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 3);
        assert!(matches!(t.get(a), TypeSx::Tuple(_)));
    }

    #[test]
    fn ground_types_become_ground_refs() {
        let p = prog("[1]");
        let mut g = GroundTable::new();
        let idx = HashMap::new();
        let mut c = cx(&p, &mut g, &idx);
        assert!(matches!(
            c.compile(&Type::list(Type::Int)),
            TypeSx::Ground(_)
        ));
        assert!(c.compile(&Type::Int).is_prim());
    }

    #[test]
    fn params_become_env_indices() {
        let p = prog("fun id x = x ; id 1");
        let id_fn = p.funs.iter().find(|f| f.name.starts_with("id")).unwrap();
        let q = id_fn.frame_params[0];
        let mut g = GroundTable::new();
        let mut idx = HashMap::new();
        idx.insert(q, 0u16);
        let mut c = cx(&p, &mut g, &idx);
        let sx = c.compile(&Type::list(Type::Param(q)));
        match sx {
            TypeSx::Data(d, args) => {
                assert_eq!(d, tfgc_types::LIST_DATA);
                assert_eq!(args[0], TypeSx::Param(0));
            }
            other => panic!("expected data template, got {other:?}"),
        }
    }

    #[test]
    fn opaque_params_are_prim() {
        use tfgc_types::SchemeId;
        let p = prog("0");
        let mut g = GroundTable::new();
        let idx = HashMap::new();
        let opaque = [SchemeId(5)];
        let mut c = SxCx {
            prog: &p,
            ground: &mut g,
            param_index: &idx,
            opaque: &opaque,
        };
        let q = ParamId {
            scheme: SchemeId(5),
            index: 0,
        };
        assert!(c.compile(&Type::Param(q)).is_prim());
    }
}
