//! GC-time metadata cache: memoized template evaluation over hash-consed
//! routine values.
//!
//! §3's forward traversal already avoids re-deriving type information per
//! frame, but a deep recursive chain still *evaluates the same θ* at every
//! activation of the same call site: a million-frame `pdown` chain builds
//! a million structurally identical [`RtVal`] trees. This cache makes that
//! cost proportional to the number of **distinct (template, environment)
//! pairs** instead of the number of frames:
//!
//! * **Hash-consed nodes** — every composite [`RtVal`] built through the
//!   cache is interned, so structurally equal routines share one `Rc` and
//!   a node is counted in `rt_nodes_built` only the first time it exists.
//! * **Evaluation memo** — [`RtCache::eval`] keys on
//!   `(SxId, env fingerprint)`; the fingerprint is the interned id of each
//!   environment entry, so equal environments hit without re-hashing
//!   trees.
//! * **Extraction / descriptor memos** — Figure-3 path extraction and
//!   descriptor conversion ([`RtCache::extract`], [`RtCache::desc`]) are
//!   pure given their inputs and memoize the same way.
//!
//! Correctness: `eval_sx` is a pure function of the template and the
//! environment, so memoization cannot change any collection outcome —
//! the workspace's differential tests compare cached and uncached
//! collections bit-for-bit under every strategy. The cache is owned by
//! `GcMeta` and persists across collections of a run (results only ever
//! reference immutable metadata). Disabling it ([`RtCache::enabled`] =
//! false) routes every call through the plain builders.

use crate::desc::{DescArena, DescId, DescNode};
use crate::ground::GroundTable;
use crate::plan::PlanStore;
use crate::rtval::{desc_to_rt, eval_sx, extract_path, param_lookup, EvalCx, RtBuildStats, RtVal};
use crate::sx::{SxId, SxTable, TypeSx};
use std::collections::HashMap;
use std::rc::Rc;
use tfgc_ir::IrProgram;

/// Interned-node id, private to the cache: a compact fingerprint for
/// memo keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RtId(u32);

/// The collector's memoization state. One per [`crate::meta::GcMeta`].
#[derive(Debug, Clone)]
pub struct RtCache {
    /// When false, every call falls through to the unmemoized builders
    /// (the differential baseline; `VmConfig::rt_cache(false)`).
    pub enabled: bool,
    /// Memo lookups that returned a previously computed routine.
    pub hits: u64,
    /// Memo lookups that had to evaluate.
    pub misses: u64,
    /// Canonical node per id. Holding a clone of every interned value
    /// keeps each registered `Rc` allocation alive, which is what makes
    /// the pointer fast-path in [`RtCache::rt_id`] sound.
    nodes: Vec<RtVal>,
    interned: HashMap<RtVal, RtId>,
    /// Full-identity pointer key → id, valid because `nodes` pins every
    /// registered allocation for the cache's lifetime.
    by_ptr: HashMap<PtrKey, RtId>,
    eval_memo: HashMap<(SxId, Box<[RtId]>), RtVal>,
    desc_memo: HashMap<DescId, RtVal>,
    extract_memo: HashMap<(RtId, Box<[u16]>), RtVal>,
    /// Flat trace plans lowered from interned routine values (the fast
    /// execution tier on top of this identity layer — see `plan.rs`).
    pub plans: PlanStore,
}

/// Full identity key for the pointer fast-path: the variant tag, the
/// datatype discriminant, and **every** component pointer.
///
/// Keying on a single component pointer is not injective: two distinct
/// wrappers can share a sub-`Rc` (`Arrow(a, b1)` / `Arrow(a, b2)` built by
/// Figure-3 extraction, or `Data(d, fs)` / `Tuple(fs)` rewrapping one
/// field vector), and collapsing them to one `RtId` hands the collector a
/// wrong memoized routine — heap corruption. With the variant and all
/// components in the key, equal keys imply the components are the *same*
/// allocations, hence the values are structurally equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PtrKey {
    Tuple(usize),
    Data(u32, usize),
    Arrow(usize, usize),
}

/// The identity key of a composite node (identity fast-path).
fn ptr_key(v: &RtVal) -> Option<PtrKey> {
    match v {
        RtVal::Const | RtVal::Ground(_) => None,
        RtVal::Tuple(fs) => Some(PtrKey::Tuple(Rc::as_ptr(fs) as usize)),
        RtVal::Data(d, fs) => Some(PtrKey::Data(d.0, Rc::as_ptr(fs) as usize)),
        RtVal::Arrow(a, b) => Some(PtrKey::Arrow(
            Rc::as_ptr(a) as usize,
            Rc::as_ptr(b) as usize,
        )),
    }
}

impl RtCache {
    /// An empty, enabled cache.
    pub fn new() -> RtCache {
        RtCache {
            enabled: true,
            hits: 0,
            misses: 0,
            nodes: Vec::new(),
            interned: HashMap::new(),
            by_ptr: HashMap::new(),
            eval_memo: HashMap::new(),
            desc_memo: HashMap::new(),
            extract_memo: HashMap::new(),
            plans: PlanStore::new(),
        }
    }

    /// Number of distinct interned nodes (the O(distinct sites) bound E9
    /// demonstrates).
    pub fn nodes_interned(&self) -> usize {
        self.nodes.len()
    }

    /// Evaluates template `id` under `env`, memoized per
    /// `(id, env fingerprint)`.
    ///
    /// # Panics
    ///
    /// Same contract as [`eval_sx`]: out-of-range parameters fail fast.
    pub fn eval(
        &mut self,
        sxs: &SxTable,
        id: SxId,
        env: &[RtVal],
        stats: &mut RtBuildStats,
        cx: EvalCx,
    ) -> RtVal {
        if !self.enabled {
            return eval_sx(sxs.get(id), env, stats, cx);
        }
        // Leaf templates never allocate and never consult the memo.
        match sxs.get(id) {
            TypeSx::Prim => return RtVal::Const,
            TypeSx::Ground(g) => return RtVal::Ground(*g),
            TypeSx::Param(i) => return param_lookup(*i, env, cx),
            _ => {}
        }
        let key = (id, env.iter().map(|v| self.rt_id(v)).collect());
        if let Some(v) = self.eval_memo.get(&key) {
            self.hits += 1;
            return v.clone();
        }
        self.misses += 1;
        let v = self.build(sxs.get(id), env, stats, cx);
        self.eval_memo.insert(key, v.clone());
        v
    }

    /// Extracts the sub-routine at `path`, memoized per (value, path).
    ///
    /// # Panics
    ///
    /// Same contract as [`extract_path`].
    pub fn extract(
        &mut self,
        rt: &RtVal,
        path: &[u16],
        prog: &IrProgram,
        ground: &mut GroundTable,
        cx: EvalCx,
    ) -> RtVal {
        if !self.enabled || path.is_empty() {
            return extract_path(rt, path, prog, ground, cx);
        }
        let key = (self.rt_id(rt), Box::from(path));
        if let Some(v) = self.extract_memo.get(&key) {
            self.hits += 1;
            return v.clone();
        }
        self.misses += 1;
        // GroundTable::make is itself memoized per type, so re-running
        // the extraction later would produce the same routine ids — the
        // memoized result is exact.
        let v = extract_path(rt, path, prog, ground, cx);
        let v = self.canon(v);
        self.extract_memo.insert(key, v.clone());
        v
    }

    /// Converts a descriptor, memoized per [`DescId`] (descriptors are
    /// interned and immutable once created).
    pub fn desc(&mut self, arena: &DescArena, id: DescId, stats: &mut RtBuildStats) -> RtVal {
        if !self.enabled {
            return desc_to_rt(arena, id, stats);
        }
        if let Some(v) = self.desc_memo.get(&id) {
            self.hits += 1;
            return v.clone();
        }
        self.misses += 1;
        self.desc_build(arena, id, stats)
    }

    /// Recursive descriptor conversion with per-node memoization (no
    /// hit/miss accounting below the top level).
    fn desc_build(&mut self, arena: &DescArena, id: DescId, stats: &mut RtBuildStats) -> RtVal {
        if let Some(v) = self.desc_memo.get(&id) {
            return v.clone();
        }
        let v = match arena.node(id) {
            DescNode::Prim | DescNode::Opaque => RtVal::Const,
            DescNode::Tuple(ds) => {
                let ds = ds.clone();
                let fs = ds
                    .iter()
                    .map(|d| self.desc_build(arena, *d, stats))
                    .collect();
                self.intern_node(RtVal::Tuple(Rc::new(fs)), stats)
            }
            DescNode::Data(data, ds) => {
                let (data, ds) = (*data, ds.clone());
                let fs = ds
                    .iter()
                    .map(|d| self.desc_build(arena, *d, stats))
                    .collect();
                self.intern_node(RtVal::Data(data, Rc::new(fs)), stats)
            }
            DescNode::Arrow(a, b) => {
                let (a, b) = (*a, *b);
                let ra = self.desc_build(arena, a, stats);
                let rb = self.desc_build(arena, b, stats);
                self.intern_node(RtVal::Arrow(Rc::new(ra), Rc::new(rb)), stats)
            }
        };
        self.desc_memo.insert(id, v.clone());
        v
    }

    /// Bottom-up template evaluation, interning every composite node.
    fn build(&mut self, sx: &TypeSx, env: &[RtVal], stats: &mut RtBuildStats, cx: EvalCx) -> RtVal {
        match sx {
            TypeSx::Prim => RtVal::Const,
            TypeSx::Ground(g) => RtVal::Ground(*g),
            TypeSx::Param(i) => param_lookup(*i, env, cx),
            TypeSx::Tuple(ts) => {
                let fs = ts.iter().map(|t| self.build(t, env, stats, cx)).collect();
                self.intern_node(RtVal::Tuple(Rc::new(fs)), stats)
            }
            TypeSx::Data(d, ts) => {
                let fs = ts.iter().map(|t| self.build(t, env, stats, cx)).collect();
                self.intern_node(RtVal::Data(*d, Rc::new(fs)), stats)
            }
            TypeSx::Arrow(a, b) => {
                let ra = self.build(a, env, stats, cx);
                let rb = self.build(b, env, stats, cx);
                self.intern_node(RtVal::Arrow(Rc::new(ra), Rc::new(rb)), stats)
            }
        }
    }

    /// Interns a freshly built composite node. A node counts toward
    /// `rt_nodes_built` only when it did not already exist — this is what
    /// turns the per-collection node count from O(frames) into
    /// O(distinct shapes).
    fn intern_node(&mut self, v: RtVal, stats: &mut RtBuildStats) -> RtVal {
        if let Some(id) = self.interned.get(&v) {
            return self.nodes[id.0 as usize].clone();
        }
        stats.nodes_built += 1;
        let id = RtId(self.nodes.len() as u32);
        // Pin first, register second: a pointer key must never exist in
        // `by_ptr` without `nodes` holding the allocations it names alive
        // (a dropped-and-reused address would resurrect a stale
        // fingerprint — ABA).
        self.nodes.push(v.clone());
        self.interned.insert(v.clone(), id);
        if let Some(p) = ptr_key(&v) {
            self.by_ptr.insert(p, id);
        }
        v
    }

    /// The interned id of a value, adopting foreign nodes (values built
    /// outside the cache, e.g. by tests) as canonical.
    fn rt_id(&mut self, v: &RtVal) -> RtId {
        if let Some(p) = ptr_key(v) {
            if let Some(id) = self.by_ptr.get(&p) {
                return *id;
            }
        }
        if let Some(id) = self.interned.get(v) {
            // Structurally known under a different allocation: do NOT
            // register this pointer — its allocation is not pinned by
            // `nodes`, so the address could be reused after a drop.
            return *id;
        }
        let id = RtId(self.nodes.len() as u32);
        // Adoption pins a clone in `nodes` *before* the pointer key is
        // registered; the clone shares every component `Rc`, so each
        // address in the key stays alive for the cache's lifetime.
        self.nodes.push(v.clone());
        self.interned.insert(v.clone(), id);
        if let Some(p) = ptr_key(v) {
            self.by_ptr.insert(p, id);
        }
        id
    }

    /// The canonical (shared) form of a value.
    fn canon(&mut self, v: RtVal) -> RtVal {
        let id = self.rt_id(&v);
        self.nodes[id.0 as usize].clone()
    }

    /// The stable fingerprint of `v` within this cache — the same
    /// identity every memo key and trace-plan key uses. Structurally
    /// equal values always map to one fingerprint; structurally unequal
    /// values never collide (the aliasing property tests drive this).
    pub fn identity(&mut self, v: &RtVal) -> u32 {
        self.rt_id(v).0
    }

    /// The canonical interned node behind a fingerprint returned by
    /// [`RtCache::identity`].
    pub fn node(&self, fingerprint: u32) -> &RtVal {
        &self.nodes[fingerprint as usize]
    }
}

impl Default for RtCache {
    fn default() -> Self {
        RtCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_types::LIST_DATA;

    fn table_with(sx: TypeSx) -> (SxTable, SxId) {
        let mut t = SxTable::new();
        let id = t.intern(sx);
        (t, id)
    }

    #[test]
    fn memoized_eval_matches_unmemoized() {
        let sx = TypeSx::Data(
            LIST_DATA,
            vec![TypeSx::Tuple(vec![TypeSx::Param(0), TypeSx::Prim])],
        );
        let env = [RtVal::Const];
        let mut plain = RtBuildStats::default();
        let expected = eval_sx(&sx, &env, &mut plain, EvalCx::None);

        let (t, id) = table_with(sx);
        let mut cache = RtCache::new();
        let mut stats = RtBuildStats::default();
        for _ in 0..3 {
            let got = cache.eval(&t, id, &env, &mut stats, EvalCx::None);
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn repeat_evaluations_hit_and_build_nothing() {
        let sx = TypeSx::Data(LIST_DATA, vec![TypeSx::Param(0)]);
        let (t, id) = table_with(sx);
        let mut cache = RtCache::new();
        let mut stats = RtBuildStats::default();
        let env = [RtVal::Const];
        cache.eval(&t, id, &env, &mut stats, EvalCx::None);
        assert_eq!((cache.hits, cache.misses), (0, 1));
        let built_once = stats.nodes_built;
        for _ in 0..10 {
            cache.eval(&t, id, &env, &mut stats, EvalCx::None);
        }
        assert_eq!((cache.hits, cache.misses), (10, 1));
        assert_eq!(stats.nodes_built, built_once, "hits build no nodes");
    }

    #[test]
    fn structurally_equal_routines_share_one_rc() {
        // Two different templates that evaluate to the same routine.
        let mut t = SxTable::new();
        let a = t.intern(TypeSx::Data(LIST_DATA, vec![TypeSx::Param(0)]));
        let b = t.intern(TypeSx::Data(LIST_DATA, vec![TypeSx::Prim]));
        assert_ne!(a, b);
        let mut cache = RtCache::new();
        let mut stats = RtBuildStats::default();
        let ra = cache.eval(&t, a, &[RtVal::Const], &mut stats, EvalCx::None);
        let rb = cache.eval(&t, b, &[], &mut stats, EvalCx::None);
        match (&ra, &rb) {
            (RtVal::Data(_, fa), RtVal::Data(_, fb)) => {
                assert!(Rc::ptr_eq(fa, fb), "hash-consed nodes share one Rc");
            }
            other => panic!("expected data routines, got {other:?}"),
        }
        assert_eq!(stats.nodes_built, 1, "the shared node is built once");
    }

    #[test]
    fn distinct_envs_do_not_alias() {
        let sx = TypeSx::Data(LIST_DATA, vec![TypeSx::Param(0)]);
        let (t, id) = table_with(sx);
        let mut cache = RtCache::new();
        let mut stats = RtBuildStats::default();
        let inner = RtVal::Data(LIST_DATA, Rc::new(vec![RtVal::Const]));
        let ra = cache.eval(&t, id, &[RtVal::Const], &mut stats, EvalCx::None);
        let rb = cache.eval(
            &t,
            id,
            std::slice::from_ref(&inner),
            &mut stats,
            EvalCx::None,
        );
        assert_ne!(ra, rb);
        assert_eq!(
            rb,
            RtVal::Data(LIST_DATA, Rc::new(vec![inner])),
            "environment distinguishes memo entries"
        );
    }

    #[test]
    fn disabled_cache_falls_through() {
        let sx = TypeSx::Data(LIST_DATA, vec![TypeSx::Param(0)]);
        let (t, id) = table_with(sx);
        let mut cache = RtCache::new();
        cache.enabled = false;
        let mut stats = RtBuildStats::default();
        for _ in 0..3 {
            cache.eval(&t, id, &[RtVal::Const], &mut stats, EvalCx::None);
        }
        assert_eq!((cache.hits, cache.misses), (0, 0));
        assert_eq!(stats.nodes_built, 3, "unmemoized path builds per call");
        assert_eq!(cache.nodes_interned(), 0);
    }

    #[test]
    #[should_panic(expected = "type parameter 0 out of range")]
    fn cached_eval_keeps_the_fail_fast_contract() {
        let sx = TypeSx::Data(LIST_DATA, vec![TypeSx::Param(0)]);
        let (t, id) = table_with(sx);
        let mut cache = RtCache::new();
        let mut stats = RtBuildStats::default();
        cache.eval(&t, id, &[], &mut stats, EvalCx::Frame { fn_id: 1, site: 2 });
    }

    // --- identity-fingerprint injectivity (the PR 8 headline bug) ---

    #[test]
    fn arrows_sharing_a_domain_rc_get_distinct_ids() {
        // Figure-3 extraction routinely rebuilds `Arrow(a, b')` around an
        // existing domain `Rc`. Keyed on `Rc::as_ptr(a)` alone these
        // collapsed to one fingerprint — a wrong memo hit that hands the
        // collector the wrong routine.
        let mut cache = RtCache::new();
        let a = Rc::new(RtVal::Const);
        let b1 = Rc::new(RtVal::Const);
        let b2 = Rc::new(RtVal::Data(LIST_DATA, Rc::new(vec![RtVal::Const])));
        let f1 = RtVal::Arrow(a.clone(), b1);
        let f2 = RtVal::Arrow(a, b2);
        assert_ne!(
            cache.identity(&f1),
            cache.identity(&f2),
            "arrows sharing a domain Rc must not alias"
        );
        let (i1, i2) = (cache.identity(&f1), cache.identity(&f2));
        assert_eq!(cache.node(i1), &f1);
        assert_eq!(cache.node(i2), &f2);
    }

    #[test]
    fn data_wrappers_sharing_a_field_rc_get_distinct_ids() {
        use tfgc_types::DataId;
        let mut cache = RtCache::new();
        let fs = Rc::new(vec![RtVal::Const]);
        let d1 = RtVal::Data(LIST_DATA, fs.clone());
        let d2 = RtVal::Data(DataId(LIST_DATA.0 + 1), fs.clone());
        let t = RtVal::Tuple(fs);
        let (i1, i2, i3) = (cache.identity(&d1), cache.identity(&d2), cache.identity(&t));
        assert_ne!(i1, i2, "distinct datatypes sharing fields must not alias");
        assert_ne!(i1, i3, "Data and Tuple sharing fields must not alias");
        assert_ne!(i2, i3);
    }

    #[test]
    fn identity_is_stable_for_equal_values() {
        let mut cache = RtCache::new();
        let v1 = RtVal::Tuple(Rc::new(vec![RtVal::Const, RtVal::Const]));
        let v2 = RtVal::Tuple(Rc::new(vec![RtVal::Const, RtVal::Const]));
        assert_eq!(
            cache.identity(&v1),
            cache.identity(&v2),
            "structural equality implies one fingerprint"
        );
    }

    #[test]
    fn dropped_foreign_nodes_cannot_resurrect_stale_fingerprints() {
        // ABA audit: adopt a foreign value, drop the caller's Rc, then
        // allocate many fresh values (the allocator is free to reuse the
        // dropped address). Every fingerprint must keep resolving to the
        // value it was issued for, because adoption pinned a clone in
        // `nodes` before registering any pointer key.
        let mut cache = RtCache::new();
        let mut issued: Vec<(u32, RtVal)> = Vec::new();
        for round in 0..64u32 {
            let v = RtVal::Tuple(Rc::new(vec![
                RtVal::Const,
                RtVal::Data(
                    LIST_DATA,
                    Rc::new(vec![RtVal::Ground(crate::ground::TypeRtId(round))]),
                ),
            ]));
            let id = cache.identity(&v);
            issued.push((id, v.clone()));
            drop(v); // the foreign Rc dies; the cache's pin must not
        }
        for (id, v) in &issued {
            assert_eq!(
                cache.node(*id),
                v,
                "fingerprint {id} resurrected a different value after drops"
            );
            assert_eq!(cache.identity(v), *id, "re-lookup must be stable");
        }
    }
}
