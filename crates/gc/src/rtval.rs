//! GC-time type routine values — the paper's Figure 3/4 closures.
//!
//! During a collection of a polymorphic program, frame routines construct
//! and pass **type_gc_routine closures**: `trace_list_of(const_gc)` is
//! [`RtVal::Data`]`(list, [Const])` here. They are built by evaluating the
//! compiled templates ([`crate::sx::TypeSx`]) under the current frame's
//! environment, mirroring §3's "closures representing type_gc_routines may
//! be constructed during garbage collection".
//!
//! Resolution is **fail-fast**: an out-of-range type parameter or
//! extraction path means the compiled metadata disagrees with the runtime
//! environment, and silently treating the value as pointer-free would make
//! the collector skip a live pointer and corrupt the heap undetected. Both
//! [`eval_sx`] and [`extract_path`] therefore panic with the evaluation
//! context ([`EvalCx`]) — the same contract as the collector's
//! gc_word-omission panic.

use crate::desc::{DescArena, DescId, DescNode};
use crate::ground::{GroundTable, TypeRt, TypeRtId};
use crate::sx::TypeSx;
use std::fmt;
use std::rc::Rc;
use tfgc_ir::IrProgram;
use tfgc_types::{DataId, Type};

/// A type routine value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RtVal {
    /// `const_gc`: single-word, never a pointer.
    Const,
    /// A precompiled ground routine.
    Ground(TypeRtId),
    /// Tuple with per-field routines.
    Tuple(Rc<Vec<RtVal>>),
    /// Datatype instance with per-argument routines — Figure 3's
    /// `trace_list_of(r)` is `Data(list, [r])`.
    Data(DataId, Rc<Vec<RtVal>>),
    /// Function value: traced through the closure's layout; the argument
    /// and result routines are kept for parameter extraction (Figure 4).
    Arrow(Rc<RtVal>, Rc<RtVal>),
}

/// Counters for closure-construction work during collection (E5 metric).
#[derive(Debug, Clone, Copy, Default)]
pub struct RtBuildStats {
    /// RtVal nodes constructed.
    pub nodes_built: u64,
}

/// Where a template/path is being resolved — carried into the fail-fast
/// panics so a metadata bug names the frame or object that exposed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalCx {
    /// No specific runtime context (tests, standalone evaluation).
    None,
    /// A global variable's template.
    Global(u32),
    /// A frame of `fn_id` suspended at `site`.
    Frame { fn_id: u32, site: u32 },
    /// Allocation operands of `site`.
    Operands { site: u32 },
    /// Variant fields of a datatype instance.
    Data(u32),
    /// A closure object of function `fn_id`.
    Closure { fn_id: u32 },
}

impl fmt::Display for EvalCx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalCx::None => write!(f, "no frame context"),
            EvalCx::Global(i) => write!(f, "global {i}"),
            EvalCx::Frame { fn_id, site } => write!(f, "frame fn {fn_id} at site {site}"),
            EvalCx::Operands { site } => write!(f, "allocation operands of site {site}"),
            EvalCx::Data(d) => write!(f, "variant fields of datatype {d}"),
            EvalCx::Closure { fn_id } => write!(f, "closure object of fn {fn_id}"),
        }
    }
}

/// Shared fail-fast parameter lookup: an index past the environment means
/// the metadata and the frame disagree about the routine arity.
pub(crate) fn param_lookup(i: u16, env: &[RtVal], cx: EvalCx) -> RtVal {
    env.get(i as usize).cloned().unwrap_or_else(|| {
        panic!(
            "type parameter {} out of range: environment carries {} routine(s) ({}) — \
             treating it as non-pointer would mistrace a live value",
            i,
            env.len(),
            cx
        )
    })
}

/// Evaluates a template under `env` (the frame's type-routine
/// environment, aligned with its `frame_params`).
///
/// # Panics
///
/// Panics if a [`TypeSx::Param`] index is out of range for `env` — a
/// metadata/environment mismatch that would otherwise corrupt the heap.
pub fn eval_sx(sx: &TypeSx, env: &[RtVal], stats: &mut RtBuildStats, cx: EvalCx) -> RtVal {
    match sx {
        TypeSx::Prim => RtVal::Const,
        TypeSx::Ground(id) => RtVal::Ground(*id),
        TypeSx::Param(i) => param_lookup(*i, env, cx),
        TypeSx::Tuple(ts) => {
            stats.nodes_built += 1;
            RtVal::Tuple(Rc::new(
                ts.iter().map(|t| eval_sx(t, env, stats, cx)).collect(),
            ))
        }
        TypeSx::Data(d, ts) => {
            stats.nodes_built += 1;
            RtVal::Data(
                *d,
                Rc::new(ts.iter().map(|t| eval_sx(t, env, stats, cx)).collect()),
            )
        }
        TypeSx::Arrow(a, b) => {
            stats.nodes_built += 1;
            RtVal::Arrow(
                Rc::new(eval_sx(a, env, stats, cx)),
                Rc::new(eval_sx(b, env, stats, cx)),
            )
        }
    }
}

fn bad_path(path: &[u16], k: usize, arity: usize, what: &str, cx: EvalCx) -> ! {
    panic!(
        "extraction path {:?} invalid at step {} ({} has {} field(s), {}) — \
         a silent non-pointer default would mistrace a live value",
        path, k, what, arity, cx
    )
}

/// Extracts the sub-routine at `path` — §3's "the type_gc_routine for x
/// can be extracted from the closure (see Figure 3)". Ground routines
/// extract through their retained ground type. A mid-path `Const` is
/// legitimate (an opaque parameter's routine extracts as `const_gc`).
///
/// # Panics
///
/// Panics if a path step indexes past a structural node's fields — a
/// compiled-path/type mismatch that would otherwise corrupt the heap.
pub fn extract_path(
    rt: &RtVal,
    path: &[u16],
    prog: &IrProgram,
    ground: &mut GroundTable,
    cx: EvalCx,
) -> RtVal {
    let mut cur = rt.clone();
    for (k, step) in path.iter().enumerate() {
        cur = match cur {
            RtVal::Tuple(fs) | RtVal::Data(_, fs) => match fs.get(*step as usize) {
                Some(sub) => sub.clone(),
                None => bad_path(path, k, fs.len(), "structural routine", cx),
            },
            RtVal::Arrow(a, b) => match step {
                0 => (*a).clone(),
                1 => (*b).clone(),
                _ => bad_path(path, k, 2, "arrow routine", cx),
            },
            RtVal::Ground(id) => {
                // Ground subtree: walk the retained type instead.
                return extract_ground_path(id, &path[k..], path, prog, ground, cx);
            }
            RtVal::Const => return RtVal::Const,
        };
    }
    cur
}

fn extract_ground_path(
    id: TypeRtId,
    path: &[u16],
    full_path: &[u16],
    prog: &IrProgram,
    ground: &mut GroundTable,
    cx: EvalCx,
) -> RtVal {
    // Recover the ground type at the path. Only arrows retain their type;
    // data/tuple grounds re-derive through the type argument structure is
    // unnecessary because extraction paths always start at an arrow (the
    // closure's type). Defensive: everything else extracts as Const.
    let ty = match ground.rt(id) {
        TypeRt::Arrow(t) => Rc::clone(t),
        _ => return RtVal::Const,
    };
    let offset = full_path.len() - path.len();
    let mut cur: &Type = &ty;
    for (k, step) in path.iter().enumerate() {
        cur = match cur {
            Type::Tuple(ts) | Type::Data(_, ts) => match ts.get(*step as usize) {
                Some(t) => t,
                None => bad_path(full_path, offset + k, ts.len(), "ground type", cx),
            },
            Type::Arrow(a, b) => match step {
                0 => a,
                1 => b,
                _ => bad_path(full_path, offset + k, 2, "ground arrow type", cx),
            },
            // Opaque leaves (parameters, prims) extract as const_gc.
            _ => return RtVal::Const,
        };
    }
    let sub = cur.clone();
    let sub_id = ground.make(prog, &sub);
    if ground.rt(sub_id).is_prim() {
        RtVal::Const
    } else {
        RtVal::Ground(sub_id)
    }
}

/// Converts a runtime descriptor into a type routine (used when a frame
/// or closure resolves a parameter through a hidden descriptor).
pub fn desc_to_rt(arena: &DescArena, id: DescId, stats: &mut RtBuildStats) -> RtVal {
    match arena.node(id) {
        DescNode::Prim | DescNode::Opaque => RtVal::Const,
        DescNode::Tuple(ds) => {
            stats.nodes_built += 1;
            RtVal::Tuple(Rc::new(
                ds.iter().map(|d| desc_to_rt(arena, *d, stats)).collect(),
            ))
        }
        DescNode::Data(data, ds) => {
            stats.nodes_built += 1;
            RtVal::Data(
                *data,
                Rc::new(ds.iter().map(|d| desc_to_rt(arena, *d, stats)).collect()),
            )
        }
        DescNode::Arrow(a, b) => {
            stats.nodes_built += 1;
            RtVal::Arrow(
                Rc::new(desc_to_rt(arena, *a, stats)),
                Rc::new(desc_to_rt(arena, *b, stats)),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_ir::lower;
    use tfgc_syntax::parse_program;
    use tfgc_types::elaborate;

    fn prog(src: &str) -> IrProgram {
        lower(&elaborate(&parse_program(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn eval_builds_figure3_closures() {
        // trace_list_of(const_gc)
        let sx = TypeSx::Data(tfgc_types::LIST_DATA, vec![TypeSx::Param(0)]);
        let mut stats = RtBuildStats::default();
        let rt = eval_sx(&sx, &[RtVal::Const], &mut stats, EvalCx::None);
        assert_eq!(
            rt,
            RtVal::Data(tfgc_types::LIST_DATA, Rc::new(vec![RtVal::Const]))
        );
        assert_eq!(stats.nodes_built, 1);

        // trace_list_of(trace_list_of(const_gc)) — Figure 3(b).
        let nested = TypeSx::Data(
            tfgc_types::LIST_DATA,
            vec![TypeSx::Data(tfgc_types::LIST_DATA, vec![TypeSx::Param(0)])],
        );
        let rt2 = eval_sx(&nested, &[RtVal::Const], &mut stats, EvalCx::None);
        match rt2 {
            RtVal::Data(_, args) => assert!(matches!(args[0], RtVal::Data(_, _))),
            other => panic!("expected nested data routine, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "type parameter 1 out of range")]
    fn truncated_env_panics_instead_of_mistracing() {
        // The template references parameter 1 but the environment carries
        // a single routine — a silent Const here is the "skip a live
        // pointer" failure mode; it must fail loudly.
        let sx = TypeSx::Data(tfgc_types::LIST_DATA, vec![TypeSx::Param(1)]);
        let mut stats = RtBuildStats::default();
        eval_sx(
            &sx,
            &[RtVal::Const],
            &mut stats,
            EvalCx::Frame { fn_id: 7, site: 3 },
        );
    }

    #[test]
    #[should_panic(expected = "extraction path")]
    fn out_of_range_extraction_step_panics() {
        let rt = RtVal::Tuple(Rc::new(vec![RtVal::Const]));
        let p = prog("0");
        let mut g = GroundTable::new();
        extract_path(&rt, &[4], &p, &mut g, EvalCx::Closure { fn_id: 2 });
    }

    #[test]
    fn extract_walks_structure() {
        let p = prog("0");
        let mut g = GroundTable::new();
        let rt = RtVal::Arrow(
            Rc::new(RtVal::Data(
                tfgc_types::LIST_DATA,
                Rc::new(vec![RtVal::Tuple(Rc::new(vec![RtVal::Const]))]),
            )),
            Rc::new(RtVal::Const),
        );
        // Path: arg(0) -> list elem(0) -> tuple field 0.
        let sub = extract_path(&rt, &[0, 0, 0], &p, &mut g, EvalCx::None);
        assert_eq!(sub, RtVal::Const);
        let sub2 = extract_path(&rt, &[0, 0], &p, &mut g, EvalCx::None);
        assert!(matches!(sub2, RtVal::Tuple(_)));
    }

    #[test]
    fn extract_through_ground_arrow() {
        let p = prog("0");
        let mut g = GroundTable::new();
        let arrow = Type::arrow(Type::list(Type::Int), Type::Int);
        let id = g.make(&p, &arrow);
        let rt = RtVal::Ground(id);
        let sub = extract_path(&rt, &[0], &p, &mut g, EvalCx::None);
        // The argument position holds int list: a ground pointerful type.
        assert!(matches!(sub, RtVal::Ground(_)));
        let sub2 = extract_path(&rt, &[1], &p, &mut g, EvalCx::None);
        assert_eq!(sub2, RtVal::Const);
    }

    #[test]
    fn desc_roundtrip_to_rt() {
        let mut arena = DescArena::new();
        let d = arena.eval_type(&Type::list(Type::Bool), &|_| None);
        let mut stats = RtBuildStats::default();
        let rt = desc_to_rt(&arena, d, &mut stats);
        assert_eq!(
            rt,
            RtVal::Data(tfgc_types::LIST_DATA, Rc::new(vec![RtVal::Const]))
        );
    }
}
