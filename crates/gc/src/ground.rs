//! Compiled ground type routines.
//!
//! The "compiled method" of §2: for every ground (fully monomorphic) type
//! that can appear in a frame slot or heap field, the metadata compiler
//! emits a [`TypeRt`] — the in-memory analog of a generated
//! `type_gc_routine`. Tracing a value of a ground type never inspects a
//! type expression at collection time: variants resolve through
//! precomputed [`CtorRep`]s and field routine ids.
//!
//! Recursive datatypes produce cyclic routine graphs, which is why
//! routines are identified by [`TypeRtId`] and memoized per ground type.

use std::collections::HashMap;
use std::rc::Rc;
use tfgc_ir::{CtorRep, IrProgram};
use tfgc_types::{DataId, Type};

/// Identifies a compiled ground routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeRtId(pub u32);

/// One variant's tracing plan.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantRt {
    pub rep: CtorRep,
    /// Field routines, in field order (offsets account for the
    /// discriminant via `rep.field_offset`).
    pub fields: Vec<TypeRtId>,
}

/// A compiled ground routine. Structured payloads sit behind `Rc` so the
/// collector can take a cheap owned copy per traced object instead of
/// cloning whole variant tables (the GC-time hot path).
#[derive(Debug, Clone, PartialEq)]
pub enum TypeRt {
    /// No pointers: integers, booleans, unit, opaque parameters.
    Prim,
    /// Heap tuple: field routines in order (object size = field count).
    Tuple(Rc<Vec<TypeRtId>>),
    /// Datatype instance: immediate test, then per-variant plan (§2.3's
    /// discriminant check compiled in).
    Data {
        data: DataId,
        variants: Rc<Vec<VariantRt>>,
    },
    /// Function value at a ground arrow type: traced through the
    /// closure's own layout (the word at `code − 4`, §2.2). The ground
    /// arrow type is retained so parameter routines recoverable from the
    /// closure's type can be extracted (§3, Figure 3).
    Arrow(Rc<Type>),
}

impl TypeRt {
    /// True when values of this type never contain heap pointers.
    pub fn is_prim(&self) -> bool {
        matches!(self, TypeRt::Prim)
    }
}

/// Memoizing builder/owner of ground routines.
#[derive(Debug, Default, Clone)]
pub struct GroundTable {
    rts: Vec<TypeRt>,
    memo: HashMap<Type, TypeRtId>,
}

impl GroundTable {
    /// An empty table.
    pub fn new() -> Self {
        GroundTable::default()
    }

    /// The routine behind `id`.
    pub fn rt(&self, id: TypeRtId) -> &TypeRt {
        &self.rts[id.0 as usize]
    }

    /// Number of compiled routines (metadata-size metric for E4/E6).
    pub fn len(&self) -> usize {
        self.rts.len()
    }

    /// True when no routine has been compiled.
    pub fn is_empty(&self) -> bool {
        self.rts.is_empty()
    }

    /// Approximate size of the compiled routines in bytes (the "code
    /// size" of the compiled method for E4): each routine node costs one
    /// word plus one word per field/variant reference.
    pub fn approx_bytes(&self) -> usize {
        self.rts
            .iter()
            .map(|rt| {
                8 + match rt {
                    TypeRt::Prim => 0,
                    TypeRt::Tuple(fs) => fs.len() * 8,
                    TypeRt::Data { variants, .. } => variants
                        .iter()
                        .map(|v| 8 + v.fields.len() * 8)
                        .sum::<usize>(),
                    TypeRt::Arrow(_) => 8,
                }
            })
            .sum()
    }

    /// Compiles (or reuses) the routine for ground type `ty`.
    ///
    /// Parameters and unification variables are treated as opaque
    /// (callers pre-substitute; remaining parameters are locally
    /// quantified and thus uninhabited at pointer positions).
    ///
    /// # Panics
    ///
    /// Panics if a datatype id is out of range for `prog`.
    pub fn make(&mut self, prog: &IrProgram, ty: &Type) -> TypeRtId {
        if let Some(id) = self.memo.get(ty) {
            return *id;
        }
        match ty {
            Type::Int | Type::Bool | Type::Unit | Type::Param(_) | Type::Var(_) => {
                let id = self.push(TypeRt::Prim);
                self.memo.insert(ty.clone(), id);
                id
            }
            Type::Tuple(ts) => {
                // Reserve the id first: tuples cannot be self-recursive,
                // but keeping one discipline for all shapes is simpler.
                let id = self.push(TypeRt::Prim);
                self.memo.insert(ty.clone(), id);
                let fields = ts.iter().map(|t| self.make(prog, t)).collect();
                self.rts[id.0 as usize] = TypeRt::Tuple(Rc::new(fields));
                id
            }
            Type::Arrow(_, _) => {
                let id = self.push(TypeRt::Arrow(Rc::new(ty.clone())));
                self.memo.insert(ty.clone(), id);
                id
            }
            Type::Data(d, args) => {
                // Reserve before recursing: `'a list` refers to itself.
                let id = self.push(TypeRt::Prim);
                self.memo.insert(ty.clone(), id);
                let def = prog.data_env.def(*d);
                let variants = def
                    .ctors
                    .iter()
                    .map(|c| {
                        let rep = prog.ctor_rep(*d, c.tag);
                        let fields = def
                            .fields_at(*d, c.tag, args)
                            .iter()
                            .map(|ft| self.make(prog, ft))
                            .collect();
                        VariantRt { rep, fields }
                    })
                    .collect();
                self.rts[id.0 as usize] = TypeRt::Data {
                    data: *d,
                    variants: Rc::new(variants),
                };
                id
            }
        }
    }

    fn push(&mut self, rt: TypeRt) -> TypeRtId {
        let id = TypeRtId(self.rts.len() as u32);
        self.rts.push(rt);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_ir::lower;
    use tfgc_syntax::parse_program;
    use tfgc_types::elaborate;

    fn prog(src: &str) -> IrProgram {
        lower(&elaborate(&parse_program(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn prim_types_share_one_routine() {
        let p = prog("0");
        let mut t = GroundTable::new();
        let a = t.make(&p, &Type::Int);
        let b = t.make(&p, &Type::Int);
        assert_eq!(a, b);
        assert!(t.rt(a).is_prim());
    }

    #[test]
    fn int_list_routine_is_recursive() {
        let p = prog("[1]");
        let mut t = GroundTable::new();
        let id = t.make(&p, &Type::list(Type::Int));
        match t.rt(id) {
            TypeRt::Data { variants, .. } => {
                assert_eq!(variants.len(), 2);
                // Cons: [elem, self].
                let cons = &variants[1];
                assert_eq!(cons.fields.len(), 2);
                assert!(t.rt(cons.fields[0]).is_prim());
                assert_eq!(cons.fields[1], id, "tail routine is the list itself");
            }
            other => panic!("expected data routine, got {other:?}"),
        }
    }

    #[test]
    fn simple_programs_have_simple_routines() {
        // §1: "Programs manipulating simple types will generate simple
        // garbage collection routines."
        let p = prog("[1]");
        let mut t = GroundTable::new();
        t.make(&p, &Type::list(Type::Int));
        // int, int list — a handful of nodes, not a general-purpose
        // collector.
        assert!(t.len() <= 3, "expected tiny routine set, got {}", t.len());
    }

    #[test]
    fn tuple_routine_lists_fields() {
        let p = prog("0");
        let mut t = GroundTable::new();
        let id = t.make(&p, &Type::Tuple(vec![Type::Int, Type::list(Type::Int)]));
        match t.rt(id) {
            TypeRt::Tuple(fs) => {
                assert_eq!(fs.len(), 2);
                assert!(t.rt(fs[0]).is_prim());
                assert!(!t.rt(fs[1]).is_prim());
            }
            other => panic!("expected tuple routine, got {other:?}"),
        }
    }

    #[test]
    fn approx_bytes_grows_with_structure() {
        let p = prog("0");
        let mut t = GroundTable::new();
        t.make(&p, &Type::Int);
        let small = t.approx_bytes();
        t.make(&p, &Type::list(Type::Tuple(vec![Type::Int, Type::Bool])));
        assert!(t.approx_bytes() > small);
    }
}
