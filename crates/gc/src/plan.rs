//! Flat **trace plans** — branch-free lowering of GC routines.
//!
//! The closure walk in `collect.rs` re-dispatches on [`RtVal`] variants
//! (and re-parses byte descriptors) for every object it relocates. E11
//! showed that this execution shape, not metadata construction, is what
//! separates the interpreted walk (p99 pause 3.2 ms) from compiled
//! descriptors (88 µs). A [`TracePlan`] removes the per-object dispatch:
//! each routine value — identified by its injective [`RtCache`] fingerprint
//! — and each interned byte descriptor — identified by
//! `(pool position, environment fingerprint)` — is lowered **once** into a
//! compact linear plan with every field offset and discriminant table
//! pre-resolved. Collection-time execution is then a tight interpreter
//! loop over [`PlanOp`]s feeding the typed worklist directly.
//!
//! The op set:
//!
//! * [`PlanOp::SlotAt`]`{offset, plan}` — enqueue the word at `offset` of
//!   the freshly copied object under `plan`.
//! * [`PlanOp::Fields`]`{base, n, plan}` — a coalesced run of `n`
//!   consecutive same-planned words (homogeneous tuple fields).
//! * Non-pointer fields are simply absent from the op array — the
//!   implicit `Skip{n}`.
//! * Sub-plans are referenced by [`PlanId`] — the plan-call that shares
//!   substructure, and what makes recursive datatypes finite: the list
//!   plan's tail op points back at the list plan itself.
//! * [`VariantPlan::self_tail`] — when a variant's final op traces a field
//!   with the variant's own data plan, the executor chases that field in a
//!   loop (`TraceListLoop`): a million-cons spine relocates in one loop
//!   instead of a million worklist round-trips.
//!
//! Soundness leans on the fingerprint fix shipped in the same change: a
//! plan is cached per `RtCache` identity, so plans can only be shared
//! between *structurally equal* routines. Before the `PtrKey` fix two
//! distinct routines sharing a sub-`Rc` could collapse to one fingerprint
//! — caching plans on that identity would have executed the wrong plan,
//! exactly the wrong-memo-hit corruption the headline bugfix closes.
//! `VmConfig::trace_plans(false)` routes everything through the original
//! closure walk; the differential suite proves both paths bit-identical.

use crate::rtval::RtVal;
use std::collections::HashMap;
use std::rc::Rc;

/// Index of a compiled plan in its [`PlanStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanId(pub u32);

/// The no-op plan (primitive / opaque values): every store holds it at
/// index 0, so prim lookups never touch a map.
pub const NOOP_PLAN: PlanId = PlanId(0);

/// One step of a plan: which word(s) of a freshly copied object to trace,
/// and with which plan. Ops are stored in the closure walk's push order so
/// plan execution drains the worklist in the identical sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOp {
    /// Trace the single word at `offset`.
    SlotAt { offset: u16, plan: PlanId },
    /// Trace `n` consecutive words starting at `base` — a run of
    /// same-planned fields collapsed into one op.
    Fields { base: u16, n: u16, plan: PlanId },
}

/// Pre-resolved trace table for one pointer constructor of a datatype.
#[derive(Debug, Clone)]
pub struct VariantPlan {
    /// Discriminant stored in word 0, or `None` in the untagged
    /// single-pointer-variant representation.
    pub tag: Option<u32>,
    /// Heap words to copy (discriminant word included).
    pub words: u32,
    /// Field ops in push order; the self-recursive tail op is *excluded*
    /// when [`VariantPlan::self_tail`] is set.
    pub ops: Rc<[PlanOp]>,
    /// Offset of a final field whose plan is this datatype's own plan:
    /// the executor chases it iteratively (the list-spine loop).
    pub self_tail: Option<u16>,
}

/// The body of a compiled plan. Payloads sit behind `Rc` so the executor
/// takes a cheap owned head per relocation, exactly like [`TypeRt`].
///
/// [`TypeRt`]: crate::ground::TypeRt
#[derive(Debug, Clone)]
pub enum PlanKind {
    /// No pointers: relocation is the identity.
    Noop,
    /// Fixed-size heap object (tuple).
    Tuple { size: u32, ops: Rc<[PlanOp]> },
    /// Datatype: discriminant table pre-resolved per pointer variant.
    /// `tagged` mirrors the representation choice — when true, word 0
    /// holds the discriminant; when false there is exactly one pointer
    /// variant.
    Data {
        data: u32,
        tagged: bool,
        variants: Rc<[VariantPlan]>,
    },
    /// Closure: layout is per-object (the fn id sits in word 0), so
    /// execution routes through the shared closure relocator with the
    /// retained arrow routine.
    Closure { rt: RtVal },
    /// Reserved during recursive lowering; never observed once the
    /// compiler returns (recursive references resolve to the reserved
    /// id, not the kind).
    Pending,
}

/// Fingerprint of one byte-descriptor environment entry, used to key
/// descriptor plans on `(position, environment)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnvEntryFp {
    /// An evaluated routine value, by its `RtCache` identity.
    Rt(u32),
    /// A byte descriptor under an interned environment.
    Bytes(u32, EnvId),
    /// An already-lowered plan (worklist items re-fingerprinted; rare).
    Plan(u32),
}

/// Interned byte-descriptor environment id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EnvId(pub u32);

/// Owner of every compiled plan plus the keying maps. One per
/// [`RtCache`](crate::cache::RtCache), persisting across collections —
/// plans only reference immutable program metadata.
#[derive(Debug, Clone)]
pub struct PlanStore {
    /// When false the collectors use the original closure walk (the
    /// differential baseline; `VmConfig::trace_plans(false)`).
    pub enabled: bool,
    /// Plan lookups that found a compiled (or in-compilation) plan.
    pub hits: u64,
    /// Plan lookups that had to lower.
    pub misses: u64,
    /// Plans lowered (reservations), including sub-plans.
    pub compiled: u64,
    plans: Vec<PlanKind>,
    by_rt: HashMap<u32, PlanId>,
    by_ground: HashMap<u32, PlanId>,
    by_bytes: HashMap<(u32, EnvId), PlanId>,
    envs: HashMap<Box<[EnvEntryFp]>, EnvId>,
}

impl PlanStore {
    /// An empty, enabled store holding only [`NOOP_PLAN`].
    pub fn new() -> PlanStore {
        PlanStore {
            enabled: true,
            hits: 0,
            misses: 0,
            compiled: 0,
            plans: vec![PlanKind::Noop],
            by_rt: HashMap::new(),
            by_ground: HashMap::new(),
            by_bytes: HashMap::new(),
            envs: HashMap::new(),
        }
    }

    /// The body of plan `id`.
    pub fn kind(&self, id: PlanId) -> &PlanKind {
        &self.plans[id.0 as usize]
    }

    /// Number of plans in the store (the noop plan included).
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when only the noop plan exists.
    pub fn is_empty(&self) -> bool {
        self.plans.len() <= 1
    }

    /// Looks up the plan for an `RtCache` fingerprint, counting the hit.
    pub fn find_rt(&mut self, fp: u32) -> Option<PlanId> {
        let p = self.by_rt.get(&fp).copied();
        if p.is_some() {
            self.hits += 1;
        }
        p
    }

    /// Reserves a plan id for an `RtCache` fingerprint (counts the miss;
    /// recursive references resolve to the reserved id).
    pub fn reserve_rt(&mut self, fp: u32) -> PlanId {
        let id = self.reserve();
        self.by_rt.insert(fp, id);
        id
    }

    /// Looks up the plan for a ground routine id, counting the hit.
    pub fn find_ground(&mut self, g: u32) -> Option<PlanId> {
        let p = self.by_ground.get(&g).copied();
        if p.is_some() {
            self.hits += 1;
        }
        p
    }

    /// Reserves a plan id for a ground routine (counts the miss).
    pub fn reserve_ground(&mut self, g: u32) -> PlanId {
        let id = self.reserve();
        self.by_ground.insert(g, id);
        id
    }

    /// Looks up the plan for `(descriptor position, environment)`,
    /// counting the hit.
    pub fn find_bytes(&mut self, pos: u32, env: EnvId) -> Option<PlanId> {
        let p = self.by_bytes.get(&(pos, env)).copied();
        if p.is_some() {
            self.hits += 1;
        }
        p
    }

    /// Reserves a plan id for a descriptor key (counts the miss).
    pub fn reserve_bytes(&mut self, pos: u32, env: EnvId) -> PlanId {
        let id = self.reserve();
        self.by_bytes.insert((pos, env), id);
        id
    }

    /// Fills a reserved plan with its lowered body.
    pub fn fill(&mut self, id: PlanId, kind: PlanKind) {
        self.plans[id.0 as usize] = kind;
    }

    /// Interns a byte-descriptor environment fingerprint.
    pub fn intern_env(&mut self, entries: Box<[EnvEntryFp]>) -> EnvId {
        if let Some(id) = self.envs.get(&entries) {
            return *id;
        }
        let id = EnvId(self.envs.len() as u32);
        self.envs.insert(entries, id);
        id
    }

    fn reserve(&mut self) -> PlanId {
        self.misses += 1;
        self.compiled += 1;
        let id = PlanId(self.plans.len() as u32);
        self.plans.push(PlanKind::Pending);
        id
    }
}

impl Default for PlanStore {
    fn default() -> Self {
        PlanStore::new()
    }
}

/// Builder that collects `(offset, plan)` pairs in push order, drops
/// no-op fields (the implicit `Skip`), detects the self-recursive tail,
/// and coalesces consecutive same-planned runs into [`PlanOp::Fields`].
#[derive(Debug, Default)]
pub struct PlanOps {
    raw: Vec<(u16, PlanId)>,
}

impl PlanOps {
    /// An empty builder.
    pub fn new() -> PlanOps {
        PlanOps::default()
    }

    /// Appends one field unless its plan is the no-op.
    pub fn push(&mut self, offset: u16, plan: PlanId) {
        if plan != NOOP_PLAN {
            self.raw.push((offset, plan));
        }
    }

    /// Finishes a plain (tuple) op array.
    pub fn finish(self) -> Rc<[PlanOp]> {
        coalesce(&self.raw)
    }

    /// Finishes a variant op array: when the final field's plan is
    /// `self_id` (the enclosing data plan), it is split out as the
    /// iterative tail. Loop order matches the worklist exactly because
    /// the tail would have been pushed last, hence popped first.
    pub fn finish_with_tail(mut self, self_id: PlanId) -> (Rc<[PlanOp]>, Option<u16>) {
        let tail = match self.raw.last() {
            Some(&(off, p)) if p == self_id => {
                self.raw.pop();
                Some(off)
            }
            _ => None,
        };
        (coalesce(&self.raw), tail)
    }
}

fn coalesce(raw: &[(u16, PlanId)]) -> Rc<[PlanOp]> {
    let mut ops: Vec<PlanOp> = Vec::with_capacity(raw.len());
    for &(offset, plan) in raw {
        let joined = match ops.last_mut() {
            Some(op) => match *op {
                PlanOp::SlotAt { offset: o, plan: p } if p == plan && offset == o + 1 => {
                    *op = PlanOp::Fields {
                        base: o,
                        n: 2,
                        plan: p,
                    };
                    true
                }
                PlanOp::Fields { base, n, plan: p } if p == plan && offset == base + n => {
                    *op = PlanOp::Fields {
                        base,
                        n: n + 1,
                        plan: p,
                    };
                    true
                }
                _ => false,
            },
            None => false,
        };
        if !joined {
            ops.push(PlanOp::SlotAt { offset, plan });
        }
    }
    ops.into()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_fields_are_skipped() {
        let mut b = PlanOps::new();
        b.push(0, NOOP_PLAN);
        b.push(1, PlanId(3));
        b.push(2, NOOP_PLAN);
        let ops = b.finish();
        assert_eq!(
            &*ops,
            &[PlanOp::SlotAt {
                offset: 1,
                plan: PlanId(3)
            }]
        );
    }

    #[test]
    fn consecutive_same_plan_fields_coalesce() {
        let mut b = PlanOps::new();
        for i in 0..4 {
            b.push(i, PlanId(7));
        }
        b.push(5, PlanId(7)); // gap at 4: must not join the run
        let ops = b.finish();
        assert_eq!(
            &*ops,
            &[
                PlanOp::Fields {
                    base: 0,
                    n: 4,
                    plan: PlanId(7)
                },
                PlanOp::SlotAt {
                    offset: 5,
                    plan: PlanId(7)
                }
            ]
        );
    }

    #[test]
    fn final_self_field_becomes_the_loop_tail() {
        let me = PlanId(9);
        let mut b = PlanOps::new();
        b.push(1, PlanId(2));
        b.push(2, me);
        let (ops, tail) = b.finish_with_tail(me);
        assert_eq!(tail, Some(2));
        assert_eq!(
            &*ops,
            &[PlanOp::SlotAt {
                offset: 1,
                plan: PlanId(2)
            }]
        );
    }

    #[test]
    fn non_final_self_field_is_not_a_tail() {
        // A self-recursive field that is *not* pushed last (popped last,
        // not first) cannot loop without reordering the worklist.
        let me = PlanId(9);
        let mut b = PlanOps::new();
        b.push(1, me);
        b.push(2, PlanId(2));
        let (ops, tail) = b.finish_with_tail(me);
        assert_eq!(tail, None);
        assert_eq!(ops.len(), 2);
    }

    #[test]
    fn store_reserves_fills_and_finds() {
        let mut s = PlanStore::new();
        assert!(s.is_empty());
        assert_eq!(s.find_rt(42), None);
        let id = s.reserve_rt(42);
        assert_eq!(s.find_rt(42), Some(id), "reserved plans are findable");
        s.fill(
            id,
            PlanKind::Tuple {
                size: 2,
                ops: Vec::new().into(),
            },
        );
        assert!(matches!(s.kind(id), PlanKind::Tuple { size: 2, .. }));
        assert_eq!((s.hits, s.misses, s.compiled), (1, 1, 1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn env_interning_is_structural() {
        let mut s = PlanStore::new();
        let a = s.intern_env(Box::from(vec![
            EnvEntryFp::Rt(1),
            EnvEntryFp::Bytes(3, EnvId(0)),
        ]));
        let b = s.intern_env(Box::from(vec![
            EnvEntryFp::Rt(1),
            EnvEntryFp::Bytes(3, EnvId(0)),
        ]));
        let c = s.intern_env(Box::from(vec![EnvEntryFp::Rt(2)]));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
