//! Collection-side statistics (experiments E3–E5).

/// Counters accumulated across all collections of a run. All fields are
/// `u64` so multi-run aggregation ([`GcStats::merge`]) and export stay
/// uniform; pause totals in nanoseconds fit u64 for ~584 years.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Collections performed.
    pub collections: u64,
    /// Activation records visited across all collections.
    pub frames_visited: u64,
    /// Frame-routine invocations (Fig. 2's loop body).
    pub routine_invocations: u64,
    /// Slots traced by frame routines.
    pub slots_traced: u64,
    /// Root words scanned by the tagged collector.
    pub words_scanned_tagged: u64,
    /// type_gc_routine closure nodes built during collection (§3).
    pub rt_nodes_built: u64,
    /// Dynamic-chain steps taken by the Appel backward type resolution
    /// (E5's quadratic term).
    pub chain_steps: u64,
    /// Descriptor bytes decoded by the interpreted method (E4).
    pub desc_bytes_read: u64,
    /// Closure environments reconstructed while tracing closure values.
    pub closure_envs_built: u64,
    /// GC-time cache lookups that returned a memoized routine.
    pub rt_cache_hits: u64,
    /// GC-time cache lookups that had to evaluate.
    pub rt_cache_misses: u64,
    /// Trace-plan lookups that found an already-lowered plan.
    pub plan_hits: u64,
    /// Trace-plan lookups that triggered lowering.
    pub plan_misses: u64,
    /// Trace plans lowered (every miss compiles exactly one plan).
    pub plans_compiled: u64,
    /// Nursery-only (minor) collections. Zero on single-generation heaps;
    /// `minor_collections + major_collections == collections` otherwise.
    pub minor_collections: u64,
    /// Full semispace flips (major collections).
    pub major_collections: u64,
    /// Words promoted from the nursery into tenured space by minor
    /// collections.
    pub promoted_words: u64,
    /// Nursery words that did not survive their minor collection — the
    /// generational hypothesis's payoff, measured.
    pub died_young_words: u64,
    /// Total collection pause time in nanoseconds.
    pub pause_nanos: u64,
}

impl GcStats {
    /// Mean pause in nanoseconds (0 when no collection ran). Pause
    /// *distributions* (p50/p90/p99/max) come from the observability
    /// layer's pause histogram; this mean remains for cheap reporting.
    pub fn mean_pause_nanos(&self) -> f64 {
        if self.collections == 0 {
            0.0
        } else {
            self.pause_nanos as f64 / self.collections as f64
        }
    }

    /// Accumulates another run's counters into `self` (multi-run
    /// profiling).
    pub fn merge(&mut self, other: &GcStats) {
        self.collections += other.collections;
        self.frames_visited += other.frames_visited;
        self.routine_invocations += other.routine_invocations;
        self.slots_traced += other.slots_traced;
        self.words_scanned_tagged += other.words_scanned_tagged;
        self.rt_nodes_built += other.rt_nodes_built;
        self.chain_steps += other.chain_steps;
        self.desc_bytes_read += other.desc_bytes_read;
        self.closure_envs_built += other.closure_envs_built;
        self.rt_cache_hits += other.rt_cache_hits;
        self.rt_cache_misses += other.rt_cache_misses;
        self.plan_hits += other.plan_hits;
        self.plan_misses += other.plan_misses;
        self.plans_compiled += other.plans_compiled;
        self.minor_collections += other.minor_collections;
        self.major_collections += other.major_collections;
        self.promoted_words += other.promoted_words;
        self.died_young_words += other.died_young_words;
        self.pause_nanos += other.pause_nanos;
    }

    /// A copy with the wall-clock-dependent field zeroed — the
    /// deterministic part, comparable across repeated runs (used by the
    /// observability differential tests).
    pub fn deterministic(&self) -> GcStats {
        GcStats {
            pause_nanos: 0,
            ..*self
        }
    }

    /// A copy with wall-clock *and* cache-accounting fields zeroed: the
    /// part of the stats that must be bit-identical between a memoized
    /// and an unmemoized collection. The cache changes how many routine
    /// nodes are physically constructed (`rt_nodes_built`) and reports
    /// its own hit/miss traffic, but nothing the mutator can observe.
    pub fn cache_insensitive(&self) -> GcStats {
        GcStats {
            pause_nanos: 0,
            rt_nodes_built: 0,
            rt_cache_hits: 0,
            rt_cache_misses: 0,
            ..*self
        }
    }

    /// A copy with wall-clock *and* every plan/cache-implementation
    /// counter zeroed: the part of the stats that must be bit-identical
    /// between a plan-executed and a closure-walked collection. Plans
    /// change how much machinery runs per object (descriptors parsed
    /// once at lowering vs per object, ctor templates evaluated eagerly
    /// vs lazily) but nothing the mutator can observe.
    pub fn plan_insensitive(&self) -> GcStats {
        GcStats {
            pause_nanos: 0,
            rt_nodes_built: 0,
            rt_cache_hits: 0,
            rt_cache_misses: 0,
            desc_bytes_read: 0,
            plan_hits: 0,
            plan_misses: 0,
            plans_compiled: 0,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_pause_handles_zero() {
        assert_eq!(GcStats::default().mean_pause_nanos(), 0.0);
        let s = GcStats {
            collections: 4,
            pause_nanos: 400,
            ..GcStats::default()
        };
        assert_eq!(s.mean_pause_nanos(), 100.0);
    }

    #[test]
    fn merge_sums_every_field() {
        let a = GcStats {
            collections: 1,
            frames_visited: 2,
            routine_invocations: 3,
            slots_traced: 4,
            words_scanned_tagged: 5,
            rt_nodes_built: 6,
            chain_steps: 7,
            desc_bytes_read: 8,
            closure_envs_built: 9,
            rt_cache_hits: 10,
            rt_cache_misses: 11,
            plan_hits: 12,
            plan_misses: 13,
            plans_compiled: 14,
            minor_collections: 15,
            major_collections: 16,
            promoted_words: 17,
            died_young_words: 18,
            pause_nanos: 19,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(
            b,
            GcStats {
                collections: 2,
                frames_visited: 4,
                routine_invocations: 6,
                slots_traced: 8,
                words_scanned_tagged: 10,
                rt_nodes_built: 12,
                chain_steps: 14,
                desc_bytes_read: 16,
                closure_envs_built: 18,
                rt_cache_hits: 20,
                rt_cache_misses: 22,
                plan_hits: 24,
                plan_misses: 26,
                plans_compiled: 28,
                minor_collections: 30,
                major_collections: 32,
                promoted_words: 34,
                died_young_words: 36,
                pause_nanos: 38,
            }
        );
    }

    #[test]
    fn plan_insensitive_drops_plan_and_cache_accounting() {
        let a = GcStats {
            collections: 3,
            rt_nodes_built: 5,
            rt_cache_hits: 6,
            rt_cache_misses: 7,
            desc_bytes_read: 8,
            plan_hits: 9,
            plan_misses: 10,
            plans_compiled: 11,
            slots_traced: 12,
            pause_nanos: 999,
            ..GcStats::default()
        };
        let p = a.plan_insensitive();
        assert_eq!(p.rt_nodes_built, 0);
        assert_eq!(p.rt_cache_hits, 0);
        assert_eq!(p.rt_cache_misses, 0);
        assert_eq!(p.desc_bytes_read, 0);
        assert_eq!(p.plan_hits, 0);
        assert_eq!(p.plan_misses, 0);
        assert_eq!(p.plans_compiled, 0);
        assert_eq!(p.pause_nanos, 0);
        assert_eq!(p.collections, 3);
        assert_eq!(p.slots_traced, 12);
    }

    #[test]
    fn cache_insensitive_drops_cache_accounting() {
        let a = GcStats {
            collections: 3,
            rt_nodes_built: 5,
            rt_cache_hits: 6,
            rt_cache_misses: 7,
            slots_traced: 8,
            pause_nanos: 999,
            ..GcStats::default()
        };
        let c = a.cache_insensitive();
        assert_eq!(c.rt_nodes_built, 0);
        assert_eq!(c.rt_cache_hits, 0);
        assert_eq!(c.rt_cache_misses, 0);
        assert_eq!(c.pause_nanos, 0);
        assert_eq!(c.collections, 3);
        assert_eq!(c.slots_traced, 8);
    }

    #[test]
    fn deterministic_drops_only_pause() {
        let a = GcStats {
            collections: 3,
            pause_nanos: 999,
            slots_traced: 7,
            ..GcStats::default()
        };
        let d = a.deterministic();
        assert_eq!(d.pause_nanos, 0);
        assert_eq!(d.collections, 3);
        assert_eq!(d.slots_traced, 7);
    }
}
