//! Collection-side statistics (experiments E3–E5).

/// Counters accumulated across all collections of a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcStats {
    /// Collections performed.
    pub collections: u64,
    /// Activation records visited across all collections.
    pub frames_visited: u64,
    /// Frame-routine invocations (Fig. 2's loop body).
    pub routine_invocations: u64,
    /// Slots traced by frame routines.
    pub slots_traced: u64,
    /// Root words scanned by the tagged collector.
    pub words_scanned_tagged: u64,
    /// type_gc_routine closure nodes built during collection (§3).
    pub rt_nodes_built: u64,
    /// Dynamic-chain steps taken by the Appel backward type resolution
    /// (E5's quadratic term).
    pub chain_steps: u64,
    /// Descriptor bytes decoded by the interpreted method (E4).
    pub desc_bytes_read: u64,
    /// Closure environments reconstructed while tracing closure values.
    pub closure_envs_built: u64,
    /// Total collection pause time.
    pub pause_nanos: u128,
}

impl GcStats {
    /// Mean pause in nanoseconds (0 when no collection ran).
    pub fn mean_pause_nanos(&self) -> f64 {
        if self.collections == 0 {
            0.0
        } else {
            self.pause_nanos as f64 / self.collections as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_pause_handles_zero() {
        assert_eq!(GcStats::default().mean_pause_nanos(), 0.0);
        let s = GcStats {
            collections: 4,
            pause_nanos: 400,
            ..GcStats::default()
        };
        assert_eq!(s.mean_pause_nanos(), 100.0);
    }
}
