//! Frame GC routines.
//!
//! A [`FrameRoutine`] is the in-memory analog of one compiler-generated
//! `frame_gc_routine` (§2.1): the exact sequence of slot-tracing steps for
//! one call site. Routines are hash-consed, so the empty routine —
//! `no_trace` (§2.4) — is a single shared entry that "many gc_words point
//! to", and identical routines at different sites share one body.

use crate::sx::SxId;
use std::collections::HashMap;
use tfgc_ir::Slot;

/// Identifies a frame routine. `FrameRoutineId(0)` is always `no_trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameRoutineId(pub u32);

/// The shared empty routine (§2.4's `no_trace`).
pub const NO_TRACE: FrameRoutineId = FrameRoutineId(0);

/// One tracing step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceOp {
    /// Compiled method: trace the slot with an evaluated template
    /// (interned in the metadata's [`SxTable`]).
    Slot { slot: Slot, sx: SxId },
    /// Interpreted method: trace the slot by walking the byte descriptor
    /// at `pos` in the program's descriptor pool.
    SlotBytes { slot: Slot, pos: u32 },
}

/// One frame routine.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FrameRoutine {
    pub ops: Vec<TraceOp>,
}

/// Hash-consing routine table.
#[derive(Debug, Clone)]
pub struct RoutineTable {
    routines: Vec<FrameRoutine>,
    index: HashMap<FrameRoutine, FrameRoutineId>,
}

impl RoutineTable {
    /// A table with `no_trace` preinstalled at id 0.
    pub fn new() -> Self {
        let mut t = RoutineTable {
            routines: Vec::new(),
            index: HashMap::new(),
        };
        let id = t.intern(FrameRoutine::default());
        debug_assert_eq!(id, NO_TRACE);
        t
    }

    /// Interns a routine, sharing identical bodies.
    pub fn intern(&mut self, r: FrameRoutine) -> FrameRoutineId {
        if let Some(id) = self.index.get(&r) {
            return *id;
        }
        let id = FrameRoutineId(self.routines.len() as u32);
        self.routines.push(r.clone());
        self.index.insert(r, id);
        id
    }

    /// The routine behind `id`.
    pub fn routine(&self, id: FrameRoutineId) -> &FrameRoutine {
        &self.routines[id.0 as usize]
    }

    /// Number of distinct routines (E6's sharing metric).
    pub fn len(&self) -> usize {
        self.routines.len()
    }

    /// Never true: `no_trace` always exists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Approximate size of all routines in bytes — the compiled method's
    /// "code size" (E4). Each op costs two words (slot + template/pos
    /// reference); the shared template trees themselves are accounted
    /// once by [`SxTable::approx_bytes`].
    pub fn approx_bytes(&self) -> usize {
        self.routines.iter().map(|r| 8 + r.ops.len() * 16).sum()
    }
}

impl Default for RoutineTable {
    fn default() -> Self {
        RoutineTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_trace_is_id_zero() {
        let mut t = RoutineTable::new();
        assert_eq!(t.intern(FrameRoutine::default()), NO_TRACE);
        assert!(t.routine(NO_TRACE).ops.is_empty());
    }

    #[test]
    fn identical_routines_share() {
        let mut t = RoutineTable::new();
        let r = FrameRoutine {
            ops: vec![TraceOp::Slot {
                slot: Slot(3),
                sx: SxId(1),
            }],
        };
        let a = t.intern(r.clone());
        let b = t.intern(r);
        assert_eq!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn different_routines_are_distinct() {
        let mut t = RoutineTable::new();
        let a = t.intern(FrameRoutine {
            ops: vec![TraceOp::SlotBytes {
                slot: Slot(0),
                pos: 0,
            }],
        });
        let b = t.intern(FrameRoutine {
            ops: vec![TraceOp::SlotBytes {
                slot: Slot(0),
                pos: 4,
            }],
        });
        assert_ne!(a, b);
    }
}
