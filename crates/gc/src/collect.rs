//! The tag-free copying collector.
//!
//! Implements Figure 2's loop: walk the dynamic chain, select each frame's
//! `frame_gc_routine` through the return-address → gc_word mapping, and
//! run it. Three strategy families share this module:
//!
//! * **Compiled / Interpreted** (§2, §2.4): monomorphic frames trace with
//!   precompiled ground routines (or byte descriptors); polymorphic frames
//!   use §3's scheme — the dynamic chain is decoded in one pass (the
//!   paper does this by pointer-reversing the links; collecting frame
//!   records is the equivalent traversal, see DESIGN.md) and then walked
//!   **oldest → newest**, each frame routine evaluating the static θ of
//!   its call site to hand the next routine its type_gc_routine arguments.
//! * **Appel** (§1.1.1): one routine per procedure, traversal newest →
//!   oldest, re-descending the chain for every frame's type resolution
//!   with no caching — the cost Goldberg's forward scheme avoids;
//!   [`GcStats::chain_steps`] counts it.
//!
//! Values are traced through a typed worklist (no recursion in data
//! depth), so million-element lists collect in constant Rust stack space.
//!
//! Template evaluation, Figure-3 path extraction, and descriptor
//! conversion all route through the metadata's [`RtCache`], so a deep
//! chain of activations of the same call site evaluates each θ once
//! instead of once per frame. The worklist and the decoded-frame vector
//! live in [`CollectorScratch`] (owned by `GcMeta`) and are reused across
//! collections; the heap's forwarding bitmap is likewise allocated once
//! and only zeroed per collection (see `tfgc_runtime::Heap`).

use crate::bytes::{BytePool, DescView};
use crate::cache::RtCache;
use crate::desc::{DescArena, DescId};
use crate::ground::{GroundTable, TypeRt, TypeRtId};
use crate::meta::{CalleePlan, ClosParamSrc, FnGcMeta, FrameParamSrc, GcMeta, SiteMeta};
use crate::plan::{EnvEntryFp, EnvId, PlanId, PlanKind, PlanOp, PlanOps, VariantPlan, NOOP_PLAN};
use crate::routines::{RoutineTable, TraceOp};
use crate::rtval::{EvalCx, RtBuildStats, RtVal};
use crate::stack::{walk_frames_into, FrameInfo, FRAME_HDR};
use crate::stats::GcStats;
use crate::strategy::Strategy;
use crate::sx::{SxId, SxTable};
use std::rc::Rc;
use std::time::Instant;
use tfgc_ir::{CallSiteId, CtorRep, IrProgram};
use tfgc_obs::{CollectionKind, GcEvent, Obs};
use tfgc_runtime::{Addr, Encoding, Heap, HeapMode, Word, HEAP_BASE};
use tfgc_types::DataId;

/// One task's activation-record stack (a single-task program has exactly
/// one; §4's shared-memory tasks each contribute one).
#[derive(Debug)]
pub struct StackRoots<'m> {
    /// The whole activation-record stack.
    pub stack: &'m mut [Word],
    /// Base of the newest frame.
    pub top_fp: usize,
    /// Site the newest frame is suspended at (the allocation that
    /// triggered this collection, or the call a task is parked at — §4
    /// suspends tasks only at procedure calls).
    pub current_site: CallSiteId,
}

/// The mutator state handed to the collector.
#[derive(Debug)]
pub struct MachineRoots<'m> {
    /// All task stacks ("garbage collection starts and the stack of each
    /// process is traversed in turn", §4).
    pub stacks: Vec<StackRoots<'m>>,
    /// Global variable words.
    pub globals: &'m mut [Word],
    /// Pending operand words of the allocation in progress — "the
    /// parameters of the allocation primitive", traced by the collector
    /// itself (§2.4). Typed by `stacks[operand_stack]`'s current site.
    pub operands: &'m mut [Word],
    /// Index of the stack whose suspension site types the operands.
    pub operand_stack: usize,
}

/// A tracing type at collection time: an evaluated routine value, or an
/// interpreted byte descriptor under an environment.
#[derive(Debug, Clone)]
pub(crate) enum WTy {
    Rt(RtVal),
    Bytes {
        pos: u32,
        env: Rc<Vec<WTy>>,
    },
    /// A lowered trace plan (the fast tier): relocation dispatches
    /// through the plan interpreter, not the `RtVal` walk.
    Plan(PlanId),
}

/// Fail-fast lookup for byte-descriptor parameter environments: a
/// too-short environment is a torn stack map (e.g. truncated frame
/// parameter sources), and tracing must stop with a structured panic
/// rather than an anonymous index error or a silent mistrace.
fn byte_param(env: &[WTy], i: u16) -> &WTy {
    env.get(i as usize).unwrap_or_else(|| {
        panic!(
            "type parameter {i} out of range: environment carries {} byte descriptor(s)",
            env.len()
        )
    })
}

#[derive(Debug, Clone)]
pub(crate) struct WorkItem {
    addr: Addr,
    off: u16,
    ty: WTy,
    /// Root context the object was first reached from — reported by the
    /// heap-corruption panics so a bad word names its tracing origin.
    origin: EvalCx,
}

/// Persistent collector buffers, owned by `GcMeta` so one allocation
/// serves every collection of a run: the typed worklist and the decoded
/// dynamic-chain vector (a deep stack is decoded without growing a fresh
/// `Vec` each pause). The third reused structure — the forwarding side
/// bitmap — already lives in `tfgc_runtime::Heap`, sized once at heap
/// construction and zeroed (not reallocated) on each flip.
#[derive(Debug, Clone, Default)]
pub struct CollectorScratch {
    pub(crate) work: Vec<WorkItem>,
    pub(crate) frames: Vec<FrameInfo>,
}

/// Runs one tag-free collection. `minor` asks for a nursery-only cycle
/// on a generational heap: the same root walk and the same relocation
/// primitives run, but the heap's phase routes copies to the survivor
/// half (or tenured, on promotion) and treats every tenured address as
/// already relocated — tenured space is never touched, which is sound
/// precisely because the immutable heap has no tenured→nursery edges.
///
/// # Panics
///
/// Panics if a frame is suspended at a site whose gc_word was omitted —
/// that would falsify the §5.1 analysis — or on heap corruption.
#[allow(clippy::too_many_arguments)]
pub fn collect_tagfree(
    meta: &mut GcMeta,
    prog: &IrProgram,
    heap: &mut Heap,
    descs: &DescArena,
    stats: &mut GcStats,
    obs: &mut Obs,
    mut roots: MachineRoots<'_>,
    minor: bool,
) {
    assert_ne!(meta.strategy, Strategy::Tagged, "use collect_tagged");
    let strategy = meta.strategy;
    let kind = if minor {
        CollectionKind::Minor
    } else {
        CollectionKind::Major
    };
    let seq = stats.collections;
    // Snapshots so CollectionEnd reports this collection's work alone.
    let frames0 = stats.frames_visited;
    let routines0 = stats.routine_invocations;
    let nodes0 = stats.rt_nodes_built;
    let hits0 = meta.rt_cache.hits;
    let misses0 = meta.rt_cache.misses;
    let phits0 = meta.rt_cache.plans.hits;
    let pmisses0 = meta.rt_cache.plans.misses;
    let pcompiled0 = meta.rt_cache.plans.compiled;
    let copied0 = heap.stats.words_copied;
    let trigger_site = roots
        .stacks
        .get(roots.operand_stack)
        .map_or(0, |sr| sr.current_site.0);
    obs.emit(|t_ns| GcEvent::CollectionBegin {
        t_ns,
        seq,
        kind,
        strategy: strategy.name(),
        trigger_site,
        heap_used_before: heap.used() as u64,
    });
    // The pause clock starts *after* the begin event: sink time (snapshot
    // formatting, ring writes) is observer overhead, not collection work,
    // and must not skew pause statistics between sink configurations.
    let t0 = Instant::now();
    heap.begin_collection(minor);
    let frames_buf = &mut meta.scratch.frames;
    let plans_on = meta.rt_cache.plans.enabled;
    let mut cx = Collector {
        prog,
        heap,
        descs,
        ground: &mut meta.ground,
        routines: &meta.routines,
        pool: &meta.pool,
        sxs: &meta.sxs,
        sites: &meta.sites,
        fns: &meta.fns,
        data_variants: &meta.data_variants,
        cache: &mut meta.rt_cache,
        stats,
        obs,
        seq,
        strategy,
        cur: EvalCx::None,
        build: RtBuildStats::default(),
        work: &mut meta.scratch.work,
        enc: Encoding::new(HeapMode::TagFree),
        plans_on,
    };

    // Globals first: their routines are known statically (§1.1).
    for (i, g) in meta.globals.iter().enumerate() {
        if let Some(sx) = g {
            cx.cur = EvalCx::Global(i as u32);
            let rt = cx.eval(*sx, &[]);
            roots.globals[i] = cx.reloc_rt_root(roots.globals[i], rt);
        }
    }

    // Each task's stack is traversed in turn (§4).
    let mut operand_env: Vec<RtVal> = Vec::new();
    let mut operand_site = None;
    for (ti, sr) in roots.stacks.iter_mut().enumerate() {
        walk_frames_into(frames_buf, sr.stack, sr.top_fp, sr.current_site, prog);
        cx.stats.frames_visited += frames_buf.len() as u64;
        if cx.obs.enabled() {
            for fr in frames_buf.iter() {
                cx.obs.emit(|_| GcEvent::FrameVisit {
                    seq,
                    fn_id: fr.fn_id.0,
                    site: fr.site.0,
                });
            }
        }
        let newest_env = match strategy {
            Strategy::AppelPerFn => cx.appel_walk(frames_buf, sr.stack),
            _ => cx.forward_walk(frames_buf, sr.stack),
        };
        if ti == roots.operand_stack {
            operand_env = newest_env;
            operand_site = Some(sr.current_site);
        }
    }

    // Pending allocation operands, typed by the triggering task's site,
    // traced under its newest frame's environment.
    // (`operands` may be empty even at an allocation site: §4 tasks
    // re-execute a blocked allocation after the collection.)
    if let Some(site) = operand_site {
        cx.cur = EvalCx::Operands { site: site.0 };
        let sites = cx.sites;
        let ops = &sites[site.0 as usize].operands;
        for (op, w) in ops.iter().zip(roots.operands.iter_mut()) {
            if let Some(sx) = op {
                let rt = cx.eval(*sx, &operand_env);
                *w = cx.reloc_rt_root(*w, rt);
            }
        }
    }

    cx.drain();
    let built = cx.build.nodes_built;
    stats.rt_nodes_built += built;
    stats.rt_cache_hits += meta.rt_cache.hits - hits0;
    stats.rt_cache_misses += meta.rt_cache.misses - misses0;
    stats.plan_hits += meta.rt_cache.plans.hits - phits0;
    stats.plan_misses += meta.rt_cache.plans.misses - pmisses0;
    stats.plans_compiled += meta.rt_cache.plans.compiled - pcompiled0;
    heap.finish_collection();
    stats.collections += 1;
    if minor {
        stats.minor_collections += 1;
        stats.promoted_words += heap.last_promoted_words();
        stats.died_young_words += heap.last_died_young_words();
    } else {
        stats.major_collections += 1;
    }
    let pause = t0.elapsed().as_nanos() as u64;
    stats.pause_nanos += pause;
    obs.emit(|t_ns| GcEvent::CollectionEnd {
        t_ns,
        seq,
        kind,
        pause_ns: pause,
        heap_used_after: heap.used() as u64,
        words_copied: heap.stats.words_copied - copied0,
        frames_visited: stats.frames_visited - frames0,
        routine_invocations: stats.routine_invocations - routines0,
        rt_nodes_built: stats.rt_nodes_built - nodes0,
        rt_cache_hits: meta.rt_cache.hits - hits0,
        rt_cache_misses: meta.rt_cache.misses - misses0,
        plan_hits: meta.rt_cache.plans.hits - phits0,
        plan_misses: meta.rt_cache.plans.misses - pmisses0,
        plans_compiled: meta.rt_cache.plans.compiled - pcompiled0,
    });
}

struct Collector<'c> {
    prog: &'c IrProgram,
    heap: &'c mut Heap,
    descs: &'c DescArena,
    ground: &'c mut GroundTable,
    routines: &'c RoutineTable,
    pool: &'c BytePool,
    sxs: &'c SxTable,
    sites: &'c [SiteMeta],
    fns: &'c [FnGcMeta],
    data_variants: &'c [Vec<Vec<SxId>>],
    cache: &'c mut RtCache,
    stats: &'c mut GcStats,
    obs: &'c mut Obs,
    seq: u64,
    strategy: Strategy,
    /// Context currently being traced from (frame, global, operand, …) —
    /// threaded into fail-fast panics and captured per work item.
    cur: EvalCx,
    build: RtBuildStats,
    work: &'c mut Vec<WorkItem>,
    enc: Encoding,
    /// Trace-plan tier enabled (`VmConfig::trace_plans`): root and field
    /// relocations lower to flat plans and execute through the plan
    /// interpreter instead of the `RtVal` closure walk.
    plans_on: bool,
}

/// Head classification of a pointer-object relocation.
enum Head {
    /// Immediate value (or null-like): unchanged.
    Imm(Word),
    /// Already relocated: the new encoded word.
    Done(Word),
    /// Freshly copied to `new`; fields still need enqueueing.
    Copied(Addr),
}

impl Collector<'_> {
    /// Memoized template evaluation under the current tracing context.
    fn eval(&mut self, id: SxId, env: &[RtVal]) -> RtVal {
        self.cache
            .eval(self.sxs, id, env, &mut self.build, self.cur)
    }

    /// Memoized template evaluation under an explicit context (variant
    /// fields, closure captures — contexts finer than `self.cur`).
    fn eval_at(&mut self, id: SxId, env: &[RtVal], cx: EvalCx) -> RtVal {
        self.cache.eval(self.sxs, id, env, &mut self.build, cx)
    }

    /// Memoized Figure-3 path extraction.
    fn extract(&mut self, rt: &RtVal, path: &[u16], cx: EvalCx) -> RtVal {
        self.cache.extract(rt, path, self.prog, self.ground, cx)
    }

    /// Memoized descriptor → routine conversion.
    fn desc_rt(&mut self, id: DescId) -> RtVal {
        self.cache.desc(self.descs, id, &mut self.build)
    }

    /// §3's traversal: oldest to newest, propagating type routine
    /// environments through the recorded θ / closure-type plans. Returns
    /// the newest frame's environment.
    fn forward_walk(&mut self, frames: &[FrameInfo], stack: &mut [Word]) -> Vec<RtVal> {
        let mut theta_rts: Option<Vec<RtVal>> = None;
        let mut clos_rt: Option<RtVal> = None;
        let mut env: Vec<RtVal> = Vec::new();
        for fr in frames.iter().rev() {
            self.cur = EvalCx::Frame {
                fn_id: fr.fn_id.0,
                site: fr.site.0,
            };
            env = self.frame_env(fr, stack, theta_rts.as_deref(), clos_rt.as_ref());
            self.run_frame_routine(fr, &env, stack);
            (theta_rts, clos_rt) = self.eval_plan(fr.site, &env);
        }
        env
    }

    /// Appel's traversal: newest to oldest, re-deriving each frame's
    /// environment by walking down the chain with no caching. Returns the
    /// newest frame's environment.
    fn appel_walk(&mut self, frames: &[FrameInfo], stack: &mut [Word]) -> Vec<RtVal> {
        let mut newest_env = Vec::new();
        for k in 0..frames.len() {
            let env = self.appel_env(frames, k, stack);
            self.cur = EvalCx::Frame {
                fn_id: frames[k].fn_id.0,
                site: frames[k].site.0,
            };
            self.run_frame_routine(&frames[k], &env, stack);
            if k == 0 {
                newest_env = env;
            }
        }
        newest_env
    }

    /// Re-derives frame `k`'s environment by descending to the bottom of
    /// the chain and evaluating plans back up — O(depth) per frame.
    fn appel_env(&mut self, frames: &[FrameInfo], k: usize, stack: &[Word]) -> Vec<RtVal> {
        let mut theta_rts: Option<Vec<RtVal>> = None;
        let mut clos_rt: Option<RtVal> = None;
        let mut env = Vec::new();
        for j in (k..frames.len()).rev() {
            self.stats.chain_steps += 1;
            let fr = &frames[j];
            self.cur = EvalCx::Frame {
                fn_id: fr.fn_id.0,
                site: fr.site.0,
            };
            env = self.frame_env(fr, stack, theta_rts.as_deref(), clos_rt.as_ref());
            if j == k {
                break;
            }
            (theta_rts, clos_rt) = self.eval_plan(fr.site, &env);
        }
        env
    }

    /// Evaluates a site's callee plan under the caller's environment —
    /// "the type_gc_routines passed to the next frame's frame_gc_routine
    /// correspond to the types of the arguments passed by f" (§3).
    fn eval_plan(
        &mut self,
        site: CallSiteId,
        env: &[RtVal],
    ) -> (Option<Vec<RtVal>>, Option<RtVal>) {
        let sites = self.sites;
        match &sites[site.0 as usize].plan {
            CalleePlan::Direct { theta } => (
                Some(theta.iter().map(|sx| self.eval(*sx, env)).collect()),
                None,
            ),
            CalleePlan::Closure { clos_ty } => (None, Some(self.eval(*clos_ty, env))),
            CalleePlan::None => (None, None),
        }
    }

    /// Builds a frame's type-routine environment from its parameter
    /// sources.
    fn frame_env(
        &mut self,
        fr: &FrameInfo,
        stack: &[Word],
        theta: Option<&[RtVal]>,
        clos_rt: Option<&RtVal>,
    ) -> Vec<RtVal> {
        let fns = self.fns;
        let fm = &fns[fr.fn_id.0 as usize];
        let cx = EvalCx::Frame {
            fn_id: fr.fn_id.0,
            site: fr.site.0,
        };
        fm.frame_param_src
            .iter()
            .enumerate()
            .map(|(i, src)| match src {
                FrameParamSrc::Opaque => RtVal::Const,
                FrameParamSrc::Theta => theta
                    .and_then(|t| t.get(i))
                    .cloned()
                    .unwrap_or(RtVal::Const),
                FrameParamSrc::ArrowPath(p) => match clos_rt {
                    Some(rt) => self.extract(rt, p, cx),
                    None => RtVal::Const,
                },
                FrameParamSrc::DescSlot(s) => {
                    let w = stack[fr.fp + FRAME_HDR + s.0 as usize];
                    self.desc_rt(DescId(w as u32))
                }
            })
            .collect()
    }

    /// Runs the frame routine selected by the frame's suspension site —
    /// the gc_word lookup of §2.1.
    fn run_frame_routine(&mut self, fr: &FrameInfo, env: &[RtVal], stack: &mut [Word]) {
        let sites = self.sites;
        let rid = sites[fr.site.0 as usize].routine.unwrap_or_else(|| {
            panic!(
                "collection while suspended at site {} whose gc_word was omitted \
                 (GC-point analysis would be unsound)",
                fr.site.0
            )
        });
        self.stats.routine_invocations += 1;
        let routines = self.routines;
        let ops = &routines.routine(rid).ops;
        let seq = self.seq;
        self.obs.emit(|_| GcEvent::RoutineRun {
            seq,
            site: fr.site.0,
            ops: ops.len() as u32,
        });
        for op in ops {
            self.stats.slots_traced += 1;
            match *op {
                TraceOp::Slot { slot, sx } => {
                    let rt = self.eval(sx, env);
                    let idx = fr.fp + FRAME_HDR + slot.0 as usize;
                    stack[idx] = self.reloc_rt_root(stack[idx], rt);
                }
                TraceOp::SlotBytes { slot, pos } => {
                    let benv: Rc<Vec<WTy>> = Rc::new(env.iter().cloned().map(WTy::Rt).collect());
                    let idx = fr.fp + FRAME_HDR + slot.0 as usize;
                    stack[idx] = if self.plans_on {
                        let p = self.plan_for_wty(&WTy::Bytes { pos, env: benv });
                        self.reloc_plan(stack[idx], p, false)
                    } else {
                        self.reloc(stack[idx], &WTy::Bytes { pos, env: benv })
                    };
                }
            }
        }
    }

    /// Relocates a root word typed by an evaluated routine value, through
    /// the plan tier when enabled.
    fn reloc_rt_root(&mut self, w: Word, rt: RtVal) -> Word {
        if self.plans_on {
            let p = self.plan_for_rt(&rt);
            self.reloc_plan(w, p, false)
        } else {
            self.reloc(w, &WTy::Rt(rt))
        }
    }

    fn drain(&mut self) {
        while let Some(item) = self.work.pop() {
            self.cur = item.origin;
            let w = self.heap.read(item.addr, item.off);
            let nw = self.reloc(w, &item.ty);
            self.heap.write(item.addr, item.off, nw);
        }
    }

    /// Relocates one value of the given tracing type, returning the new
    /// word and enqueueing the object's fields.
    fn reloc(&mut self, w: Word, ty: &WTy) -> Word {
        match ty {
            // Plan items only enter the worklist from plan execution, so
            // a pop re-enters the plan interpreter — with the spine loop
            // enabled, because drain order is already the plan's order.
            WTy::Plan(p) => self.reloc_plan(w, *p, true),
            WTy::Rt(RtVal::Const) => w,
            WTy::Rt(RtVal::Ground(id)) => {
                // Cheap: TypeRt payloads sit behind `Rc`.
                let rt = self.ground.rt(*id).clone();
                match rt {
                    TypeRt::Prim => w,
                    TypeRt::Tuple(fields) => match self.head(w, fields.len()) {
                        Head::Imm(w) | Head::Done(w) => w,
                        Head::Copied(new) => {
                            for (i, f) in fields.iter().enumerate() {
                                self.push(new, i as u16, WTy::Rt(RtVal::Ground(*f)));
                            }
                            self.enc.ptr(new)
                        }
                    },
                    TypeRt::Data { data, variants } => match self.data_head(w, data) {
                        DataHead::Imm(w) | DataHead::Done(w) => w,
                        DataHead::Copied { ctor, rep, new } => {
                            for (i, f) in variants[ctor].fields.iter().enumerate() {
                                self.push(
                                    new,
                                    rep.field_offset(i as u16),
                                    WTy::Rt(RtVal::Ground(*f)),
                                );
                            }
                            self.enc.ptr(new)
                        }
                    },
                    TypeRt::Arrow(_) => self.reloc_closure(w, RtVal::Ground(*id)),
                }
            }
            WTy::Rt(RtVal::Tuple(fields)) => {
                let fields = fields.clone();
                match self.head(w, fields.len()) {
                    Head::Imm(w) | Head::Done(w) => w,
                    Head::Copied(new) => {
                        for (i, f) in fields.iter().enumerate() {
                            self.push(new, i as u16, WTy::Rt(f.clone()));
                        }
                        self.enc.ptr(new)
                    }
                }
            }
            WTy::Rt(RtVal::Data(d, args)) => {
                let args = args.clone();
                match self.data_head(w, *d) {
                    DataHead::Imm(w) | DataHead::Done(w) => w,
                    DataHead::Copied { ctor, rep, new } => {
                        let dv = self.data_variants;
                        let templates = &dv[d.0 as usize][ctor];
                        let cx = EvalCx::Data(d.0);
                        for (i, sx) in templates.iter().enumerate() {
                            let rt = self.eval_at(*sx, &args, cx);
                            self.push(new, rep.field_offset(i as u16), WTy::Rt(rt));
                        }
                        self.enc.ptr(new)
                    }
                }
            }
            WTy::Rt(rt @ RtVal::Arrow(_, _)) => self.reloc_closure(w, rt.clone()),
            WTy::Bytes { pos, env } => {
                let env = env.clone();
                match self.pool.parse(*pos, &mut self.stats.desc_bytes_read) {
                    DescView::Prim => w,
                    DescView::Param(i) => {
                        let sub = byte_param(&env, i).clone();
                        self.reloc(w, &sub)
                    }
                    DescView::Tuple(fields) => match self.head(w, fields.len()) {
                        Head::Imm(w) | Head::Done(w) => w,
                        Head::Copied(new) => {
                            for (i, p) in fields.iter().enumerate() {
                                self.push(
                                    new,
                                    i as u16,
                                    WTy::Bytes {
                                        pos: *p,
                                        env: env.clone(),
                                    },
                                );
                            }
                            self.enc.ptr(new)
                        }
                    },
                    DescView::Data(d, arg_positions) => match self.data_head(w, d) {
                        DataHead::Imm(w) | DataHead::Done(w) => w,
                        DataHead::Copied { ctor, rep, new } => {
                            let arg_env: Rc<Vec<WTy>> = Rc::new(
                                arg_positions
                                    .iter()
                                    .map(|p| self.collapse(*p, &env))
                                    .collect(),
                            );
                            let pool = self.pool;
                            let fields = &pool.data_fields[d.0 as usize][ctor];
                            for (i, p) in fields.iter().enumerate() {
                                self.push(
                                    new,
                                    rep.field_offset(i as u16),
                                    WTy::Bytes {
                                        pos: *p,
                                        env: arg_env.clone(),
                                    },
                                );
                            }
                            self.enc.ptr(new)
                        }
                    },
                    DescView::Arrow(a, b) => {
                        let ra = self.wty_to_rt(&WTy::Bytes {
                            pos: a,
                            env: env.clone(),
                        });
                        let rb = self.wty_to_rt(&WTy::Bytes { pos: b, env });
                        self.reloc_closure(w, RtVal::Arrow(Rc::new(ra), Rc::new(rb)))
                    }
                }
            }
        }
    }

    /// Collapses `Param` indirection chains eagerly. Without this, a
    /// recursive datatype's argument environment re-wraps the parent
    /// environment once per heap node (the tail of a list adds a layer
    /// per element), and both `Param` resolution and the `Rc` drop of
    /// the chain recurse O(list length) deep — a stack overflow on deep
    /// structures. Substituting `env[i]` directly is exactly `Param`'s
    /// defined meaning, and it bounds environment depth by the static
    /// type structure instead.
    fn collapse(&mut self, pos: u32, env: &Rc<Vec<WTy>>) -> WTy {
        let mut pos = pos;
        let mut env = env.clone();
        loop {
            match self.pool.parse(pos, &mut self.stats.desc_bytes_read) {
                DescView::Param(i) => match byte_param(&env, i).clone() {
                    WTy::Bytes { pos: p, env: e } => {
                        pos = p;
                        env = e;
                    }
                    rt => return rt,
                },
                _ => return WTy::Bytes { pos, env },
            }
        }
    }

    /// Converts a tracing type to a routine value (used when the
    /// interpreted path meets a closure and needs Figure-3 extraction).
    fn wty_to_rt(&mut self, ty: &WTy) -> RtVal {
        match ty {
            WTy::Plan(_) => unreachable!("plan items never need routine conversion"),
            WTy::Rt(rt) => rt.clone(),
            WTy::Bytes { pos, env } => {
                let env = env.clone();
                match self.pool.parse(*pos, &mut self.stats.desc_bytes_read) {
                    DescView::Prim => RtVal::Const,
                    DescView::Param(i) => {
                        let sub = byte_param(&env, i).clone();
                        self.wty_to_rt(&sub)
                    }
                    DescView::Tuple(fields) => {
                        self.build.nodes_built += 1;
                        let fs = fields
                            .iter()
                            .map(|p| {
                                self.wty_to_rt(&WTy::Bytes {
                                    pos: *p,
                                    env: env.clone(),
                                })
                            })
                            .collect();
                        RtVal::Tuple(Rc::new(fs))
                    }
                    DescView::Data(d, args) => {
                        self.build.nodes_built += 1;
                        let xs = args
                            .iter()
                            .map(|p| {
                                self.wty_to_rt(&WTy::Bytes {
                                    pos: *p,
                                    env: env.clone(),
                                })
                            })
                            .collect();
                        RtVal::Data(d, Rc::new(xs))
                    }
                    DescView::Arrow(a, b) => {
                        self.build.nodes_built += 1;
                        let ra = self.wty_to_rt(&WTy::Bytes {
                            pos: a,
                            env: env.clone(),
                        });
                        let rb = self.wty_to_rt(&WTy::Bytes { pos: b, env });
                        RtVal::Arrow(Rc::new(ra), Rc::new(rb))
                    }
                }
            }
        }
    }

    fn push(&mut self, addr: Addr, off: u16, ty: WTy) {
        self.work.push(WorkItem {
            addr,
            off,
            ty,
            origin: self.cur,
        });
    }

    /// Head handling for fixed-size objects (tuples).
    fn head(&mut self, w: Word, size: usize) -> Head {
        if w < HEAP_BASE {
            return Head::Imm(w);
        }
        let a = self.enc.addr_of(w);
        if self.heap.in_to(a) {
            return Head::Done(w);
        }
        if let Some(n) = self.heap.forward_of(a) {
            return Head::Done(self.enc.ptr(n));
        }
        let new = self.heap.copy_out(a, size);
        self.heap.set_forward(a, new);
        self.copied(a, new, size);
        Head::Copied(new)
    }

    /// Head handling for datatype values: immediate test, discriminant
    /// read (§2.3), variant-sized copy.
    fn data_head(&mut self, w: Word, d: DataId) -> DataHead {
        if w < HEAP_BASE {
            return DataHead::Imm(w);
        }
        let a = self.enc.addr_of(w);
        if self.heap.in_to(a) {
            return DataHead::Done(w);
        }
        if let Some(n) = self.heap.forward_of(a) {
            return DataHead::Done(self.enc.ptr(n));
        }
        let reps = &self.prog.ctor_reps[d.0 as usize];
        let ctor = if reps
            .iter()
            .any(|r| matches!(r, CtorRep::Ptr { tag: Some(_), .. }))
        {
            let t = self.heap.read(a, 0) as u32;
            reps.iter()
                .position(|r| matches!(r, CtorRep::Ptr { tag: Some(tag), .. } if *tag == t))
                .unwrap_or_else(|| {
                    panic!(
                        "heap corruption: discriminant {} at address {} (word {:#x}) matches \
                         no variant of datatype {} — collection {}, strategy {}, reached \
                         tracing {}",
                        t,
                        a.0,
                        w,
                        d.0,
                        self.seq,
                        self.strategy.name(),
                        self.cur
                    )
                })
        } else {
            reps.iter()
                .position(|r| matches!(r, CtorRep::Ptr { .. }))
                .unwrap_or_else(|| {
                    panic!(
                        "heap corruption: pointer word {:#x} (address {}) typed as datatype {} \
                         whose variants are all pointerless — collection {}, strategy {}, \
                         reached tracing {}",
                        w,
                        a.0,
                        d.0,
                        self.seq,
                        self.strategy.name(),
                        self.cur
                    )
                })
        };
        let rep = reps[ctor];
        let new = self.heap.copy_out(a, rep.heap_words());
        self.heap.set_forward(a, new);
        self.copied(a, new, rep.heap_words());
        DataHead::Copied { ctor, rep, new }
    }

    /// Emits the per-object copy event (survivor attribution feeds on
    /// these).
    fn copied(&mut self, from: Addr, to: Addr, words: usize) {
        let seq = self.seq;
        self.obs.emit(|_| GcEvent::ObjectCopied {
            seq,
            from: from.0,
            to: to.0,
            words: words as u32,
        });
    }

    /// Relocates a closure value: follow the code pointer to the
    /// compiler-emitted closure routine (§2.2's word at `code − 4`),
    /// rebuild the environment's type routines (§3, Figure 4), trace the
    /// captures.
    fn reloc_closure(&mut self, w: Word, arrow_rt: RtVal) -> Word {
        if w < HEAP_BASE {
            return w;
        }
        let a = self.enc.addr_of(w);
        if self.heap.in_to(a) {
            return w;
        }
        if let Some(n) = self.heap.forward_of(a) {
            return self.enc.ptr(n);
        }
        let fn_id = self.heap.read(a, 0) as usize;
        let fns = self.fns;
        let fm = &fns[fn_id];
        let size = fm.closure_size as usize;
        let new = self.heap.copy_out(a, size);
        self.heap.set_forward(a, new);
        self.copied(a, new, size);

        if !fm.closure_param_src.is_empty() {
            self.stats.closure_envs_built += 1;
        }
        let cx = EvalCx::Closure {
            fn_id: fn_id as u32,
        };
        let mut env: Vec<RtVal> = Vec::with_capacity(fm.closure_param_src.len());
        for src in &fm.closure_param_src {
            let rt = match src {
                ClosParamSrc::Opaque => RtVal::Const,
                ClosParamSrc::Path(p) => self.extract(&arrow_rt, p, cx),
                ClosParamSrc::DescField(off) => {
                    let dw = self.heap.read(new, *off);
                    self.desc_rt(DescId(dw as u32))
                }
            };
            env.push(rt);
        }
        for (off, sx) in &fm.closure_fields {
            let rt = self.eval_at(*sx, &env, cx);
            if self.plans_on {
                let p = self.plan_for_rt(&rt);
                if p != NOOP_PLAN {
                    self.push(new, *off, WTy::Plan(p));
                }
            } else {
                self.push(new, *off, WTy::Rt(rt));
            }
        }
        self.enc.ptr(new)
    }

    // --- the trace-plan tier: lowering ---

    /// The plan for an evaluated routine value, lowering on first sight.
    /// Keyed on the cache's injective identity, so a plan is only ever
    /// shared between structurally equal routines.
    fn plan_for_rt(&mut self, rt: &RtVal) -> PlanId {
        match rt {
            RtVal::Const => NOOP_PLAN,
            RtVal::Ground(g) => self.plan_for_ground(*g),
            _ => {
                let fp = self.cache.identity(rt);
                if let Some(p) = self.cache.plans.find_rt(fp) {
                    return p;
                }
                let pid = self.cache.plans.reserve_rt(fp);
                let kind = self.lower_rt(rt, pid);
                self.cache.plans.fill(pid, kind);
                pid
            }
        }
    }

    fn lower_rt(&mut self, rt: &RtVal, self_id: PlanId) -> PlanKind {
        match rt {
            RtVal::Tuple(fs) => {
                let fs = fs.clone();
                let mut ops = PlanOps::new();
                for (i, f) in fs.iter().enumerate() {
                    let p = self.plan_for_rt(f);
                    ops.push(i as u16, p);
                }
                PlanKind::Tuple {
                    size: fs.len() as u32,
                    ops: ops.finish(),
                }
            }
            RtVal::Data(d, args) => {
                let args = args.clone();
                let reps = self.prog.ctor_reps[d.0 as usize].clone();
                let tagged = reps
                    .iter()
                    .any(|r| matches!(r, CtorRep::Ptr { tag: Some(_), .. }));
                let cx = EvalCx::Data(d.0);
                let mut variants = Vec::new();
                for (ctor, rep) in reps.iter().enumerate() {
                    let CtorRep::Ptr { tag, .. } = rep else {
                        continue;
                    };
                    let templates = self.data_variants[d.0 as usize][ctor].clone();
                    let mut ops = PlanOps::new();
                    for (i, sx) in templates.iter().enumerate() {
                        let frt = self.eval_at(*sx, &args, cx);
                        let p = self.plan_for_rt(&frt);
                        ops.push(rep.field_offset(i as u16), p);
                    }
                    let (ops, self_tail) = ops.finish_with_tail(self_id);
                    variants.push(VariantPlan {
                        tag: *tag,
                        words: rep.heap_words() as u32,
                        ops,
                        self_tail,
                    });
                }
                PlanKind::Data {
                    data: d.0,
                    tagged,
                    variants: variants.into(),
                }
            }
            RtVal::Arrow(_, _) => PlanKind::Closure { rt: rt.clone() },
            RtVal::Const | RtVal::Ground(_) => unreachable!("leaves never reserve plans"),
        }
    }

    /// The plan for a compiled ground routine, lowering on first sight.
    fn plan_for_ground(&mut self, g: TypeRtId) -> PlanId {
        if self.ground.rt(g).is_prim() {
            return NOOP_PLAN;
        }
        if let Some(p) = self.cache.plans.find_ground(g.0) {
            return p;
        }
        let pid = self.cache.plans.reserve_ground(g.0);
        let kind = match self.ground.rt(g).clone() {
            TypeRt::Prim => PlanKind::Noop,
            TypeRt::Tuple(fields) => {
                let mut ops = PlanOps::new();
                for (i, f) in fields.iter().enumerate() {
                    let p = self.plan_for_ground(*f);
                    ops.push(i as u16, p);
                }
                PlanKind::Tuple {
                    size: fields.len() as u32,
                    ops: ops.finish(),
                }
            }
            TypeRt::Data { data, variants } => {
                let tagged = variants
                    .iter()
                    .any(|v| matches!(v.rep, CtorRep::Ptr { tag: Some(_), .. }));
                let mut vps = Vec::new();
                for v in variants.iter() {
                    let CtorRep::Ptr { tag, .. } = v.rep else {
                        continue;
                    };
                    let mut ops = PlanOps::new();
                    for (i, f) in v.fields.iter().enumerate() {
                        let p = self.plan_for_ground(*f);
                        ops.push(v.rep.field_offset(i as u16), p);
                    }
                    let (ops, self_tail) = ops.finish_with_tail(pid);
                    vps.push(VariantPlan {
                        tag,
                        words: v.rep.heap_words() as u32,
                        ops,
                        self_tail,
                    });
                }
                PlanKind::Data {
                    data: data.0,
                    tagged,
                    variants: vps.into(),
                }
            }
            TypeRt::Arrow(_) => PlanKind::Closure {
                rt: RtVal::Ground(g),
            },
        };
        self.cache.plans.fill(pid, kind);
        pid
    }

    /// The plan for any tracing type: routine values key on cache
    /// identity; byte descriptors collapse `Param` chains first, then
    /// key on `(position, environment fingerprint)`.
    fn plan_for_wty(&mut self, ty: &WTy) -> PlanId {
        match ty {
            WTy::Plan(p) => *p,
            WTy::Rt(rt) => self.plan_for_rt(rt),
            WTy::Bytes { pos, env } => match self.collapse(*pos, env) {
                WTy::Plan(p) => p,
                WTy::Rt(rt) => self.plan_for_rt(&rt),
                WTy::Bytes { pos, env } => self.plan_for_bytes_head(pos, &env),
            },
        }
    }

    /// Lowers the (non-`Param`-headed) descriptor at `pos` under `env`.
    /// The descriptor is parsed once here — execution never re-reads it.
    fn plan_for_bytes_head(&mut self, pos: u32, env: &Rc<Vec<WTy>>) -> PlanId {
        let eid = self.env_fp(env);
        if let Some(p) = self.cache.plans.find_bytes(pos, eid) {
            return p;
        }
        let pid = self.cache.plans.reserve_bytes(pos, eid);
        let kind = match self.pool.parse(pos, &mut self.stats.desc_bytes_read) {
            DescView::Prim => PlanKind::Noop,
            DescView::Param(i) => {
                // `collapse` resolved parameter chains before keying; a
                // remaining Param can only mean a torn environment —
                // surface the same fail-fast panic the walk gives.
                let sub = byte_param(env, i).clone();
                let p = self.plan_for_wty(&sub);
                self.cache.plans.fill(pid, self.cache.plans.kind(p).clone());
                return pid;
            }
            DescView::Tuple(fields) => {
                let mut ops = PlanOps::new();
                for (i, p) in fields.iter().enumerate() {
                    let fp = self.plan_for_wty(&WTy::Bytes {
                        pos: *p,
                        env: env.clone(),
                    });
                    ops.push(i as u16, fp);
                }
                PlanKind::Tuple {
                    size: fields.len() as u32,
                    ops: ops.finish(),
                }
            }
            DescView::Data(d, arg_positions) => {
                let arg_env: Rc<Vec<WTy>> = Rc::new(
                    arg_positions
                        .iter()
                        .map(|p| self.collapse(*p, env))
                        .collect(),
                );
                let reps = self.prog.ctor_reps[d.0 as usize].clone();
                let tagged = reps
                    .iter()
                    .any(|r| matches!(r, CtorRep::Ptr { tag: Some(_), .. }));
                let mut variants = Vec::new();
                for (ctor, rep) in reps.iter().enumerate() {
                    let CtorRep::Ptr { tag, .. } = rep else {
                        continue;
                    };
                    let fields = self.pool.data_fields[d.0 as usize][ctor].clone();
                    let mut ops = PlanOps::new();
                    for (i, p) in fields.iter().enumerate() {
                        let fp = self.plan_for_wty(&WTy::Bytes {
                            pos: *p,
                            env: arg_env.clone(),
                        });
                        ops.push(rep.field_offset(i as u16), fp);
                    }
                    let (ops, self_tail) = ops.finish_with_tail(pid);
                    variants.push(VariantPlan {
                        tag: *tag,
                        words: rep.heap_words() as u32,
                        ops,
                        self_tail,
                    });
                }
                PlanKind::Data {
                    data: d.0,
                    tagged,
                    variants: variants.into(),
                }
            }
            DescView::Arrow(a, b) => {
                let ra = self.wty_to_rt(&WTy::Bytes {
                    pos: a,
                    env: env.clone(),
                });
                let rb = self.wty_to_rt(&WTy::Bytes {
                    pos: b,
                    env: env.clone(),
                });
                PlanKind::Closure {
                    rt: RtVal::Arrow(Rc::new(ra), Rc::new(rb)),
                }
            }
        };
        self.cache.plans.fill(pid, kind);
        pid
    }

    /// Interns a byte-descriptor environment's fingerprint.
    fn env_fp(&mut self, env: &[WTy]) -> EnvId {
        let entries: Vec<EnvEntryFp> = env
            .iter()
            .map(|e| match e {
                WTy::Rt(rt) => EnvEntryFp::Rt(self.cache.identity(rt)),
                WTy::Bytes { pos, env } => EnvEntryFp::Bytes(*pos, self.env_fp(env)),
                WTy::Plan(p) => EnvEntryFp::Plan(p.0),
            })
            .collect();
        self.cache.plans.intern_env(entries.into())
    }

    // --- the trace-plan tier: execution ---

    /// The plan interpreter: relocates one word under a lowered plan.
    /// `spine` enables the iterative tail chase — true only when entered
    /// from the worklist, where drain order already matches loop order;
    /// at roots the first cell enqueues its tail like any field so
    /// sibling roots trace in the closure walk's exact sequence.
    fn reloc_plan(&mut self, w: Word, pid: PlanId, spine: bool) -> Word {
        // Cheap head clone (payloads sit behind `Rc`) releasing the
        // store borrow before heap work.
        match self.cache.plans.kind(pid).clone() {
            PlanKind::Noop => w,
            PlanKind::Pending => unreachable!("executing a plan mid-lowering"),
            PlanKind::Tuple { size, ops } => match self.head(w, size as usize) {
                Head::Imm(w) | Head::Done(w) => w,
                Head::Copied(new) => {
                    self.push_plan_ops(new, &ops);
                    self.enc.ptr(new)
                }
            },
            PlanKind::Closure { rt } => self.reloc_closure(w, rt),
            PlanKind::Data {
                data,
                tagged,
                variants,
            } => self.reloc_plan_data(w, pid, data, tagged, &variants, spine),
        }
    }

    fn push_plan_ops(&mut self, new: Addr, ops: &[PlanOp]) {
        for op in ops {
            match *op {
                PlanOp::SlotAt { offset, plan } => self.push(new, offset, WTy::Plan(plan)),
                PlanOp::Fields { base, n, plan } => {
                    for k in 0..n {
                        self.push(new, base + k, WTy::Plan(plan));
                    }
                }
            }
        }
    }

    /// Datatype relocation under a pre-resolved variant table; with
    /// `spine`, a self-recursive tail field is chased iteratively — the
    /// list loop — instead of round-tripping the worklist per cell.
    fn reloc_plan_data(
        &mut self,
        w: Word,
        pid: PlanId,
        data: u32,
        tagged: bool,
        variants: &[VariantPlan],
        spine: bool,
    ) -> Word {
        let (mut vi, first) = match self.plan_data_head(w, data, tagged, variants) {
            PlanDataHead::Imm(w) | PlanDataHead::Done(w) => return w,
            PlanDataHead::Copied { vi, new } => (vi, new),
        };
        let result = self.enc.ptr(first);
        let mut new = first;
        loop {
            let vp = &variants[vi];
            let ops = vp.ops.clone();
            let tail = vp.self_tail;
            self.push_plan_ops(new, &ops);
            let Some(tail_off) = tail else { break };
            if !spine {
                // Root position: enqueue the tail like any field so the
                // drain interleaves identically with sibling roots; the
                // pop re-enters this plan with the loop enabled.
                self.push(new, tail_off, WTy::Plan(pid));
                break;
            }
            let tw = self.heap.read(new, tail_off);
            match self.plan_data_head(tw, data, tagged, variants) {
                PlanDataHead::Imm(x) | PlanDataHead::Done(x) => {
                    self.heap.write(new, tail_off, x);
                    break;
                }
                PlanDataHead::Copied { vi: nvi, new: nnew } => {
                    self.heap.write(new, tail_off, self.enc.ptr(nnew));
                    vi = nvi;
                    new = nnew;
                }
            }
        }
        result
    }

    /// Head classification under a pre-resolved variant table — the
    /// discriminant decode of `data_head` without touching `ctor_reps`.
    fn plan_data_head(
        &mut self,
        w: Word,
        data: u32,
        tagged: bool,
        variants: &[VariantPlan],
    ) -> PlanDataHead {
        if w < HEAP_BASE {
            return PlanDataHead::Imm(w);
        }
        let a = self.enc.addr_of(w);
        if self.heap.in_to(a) {
            return PlanDataHead::Done(w);
        }
        if let Some(n) = self.heap.forward_of(a) {
            return PlanDataHead::Done(self.enc.ptr(n));
        }
        let vi = if tagged {
            let t = self.heap.read(a, 0) as u32;
            variants
                .iter()
                .position(|v| v.tag == Some(t))
                .unwrap_or_else(|| {
                    panic!(
                        "heap corruption: discriminant {} at address {} (word {:#x}) matches \
                         no variant of datatype {} — collection {}, strategy {}, reached \
                         tracing {}",
                        t,
                        a.0,
                        w,
                        data,
                        self.seq,
                        self.strategy.name(),
                        self.cur
                    )
                })
        } else if variants.is_empty() {
            panic!(
                "heap corruption: pointer word {:#x} (address {}) typed as datatype {} \
                 whose variants are all pointerless — collection {}, strategy {}, \
                 reached tracing {}",
                w,
                a.0,
                data,
                self.seq,
                self.strategy.name(),
                self.cur
            )
        } else {
            0
        };
        let vp = &variants[vi];
        let words = vp.words as usize;
        let new = self.heap.copy_out(a, words);
        self.heap.set_forward(a, new);
        self.copied(a, new, words);
        PlanDataHead::Copied { vi, new }
    }
}

enum DataHead {
    Imm(Word),
    Done(Word),
    Copied {
        ctor: usize,
        rep: CtorRep,
        new: Addr,
    },
}

/// [`DataHead`]'s plan-tier twin: the variant is already resolved to an
/// index into the plan's variant table.
enum PlanDataHead {
    Imm(Word),
    Done(Word),
    Copied { vi: usize, new: Addr },
}
