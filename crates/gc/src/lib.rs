//! # tfgc-gc — tag-free garbage collection (the paper's contribution)
//!
//! Everything Goldberg's PLDI 1991 paper describes, as executable Rust:
//!
//! * [`meta`] — the compiler pass that generates per-call-site
//!   `frame_gc_routine`s (§2.1), per-type routines ([`ground`]),
//!   per-function closure routines (§2.2), variant-record discriminant
//!   plans (§2.3), and the instantiation templates the polymorphic
//!   collector evaluates (§3).
//! * [`routines`] — hash-consed frame routines; the shared empty routine
//!   is §2.4's `no_trace`.
//! * [`bytes`] — the **interpreted method**'s byte descriptors (§1.1,
//!   §2.4's space/time trade-off).
//! * [`mod@collect`] — Figure 2's collector loop; §3's oldest→newest
//!   traversal with type_gc_routine closures ([`rtval`], Figures 3–4);
//!   Appel's backward-resolution comparator (§1.1.1).
//! * [`collect_tagged`] — the tagged ML baseline (§1).
//! * [`plan`] — flat trace plans: routines and descriptors lowered once
//!   into linear op arrays with offsets and discriminant tables
//!   pre-resolved, executed by a tight interpreter loop.
//! * [`desc`] — interned runtime type descriptors: the completion
//!   mechanism for polymorphic captures the 1991 scheme cannot recover
//!   (see DESIGN.md).
//! * [`stack`] — Figure 1's activation-record layout: the return word *is*
//!   the gc_word key.
//!
//! The entry point a VM uses is [`fn@collect`]:
//!
//! ```no_run
//! use tfgc_gc::{collect, Analyses, DescArena, GcMeta, GcStats, MachineRoots, StackRoots, Strategy};
//! # fn demo(prog: &tfgc_ir::IrProgram, heap: &mut tfgc_runtime::Heap,
//! #         stack: &mut [u64], globals: &mut [u64], operands: &mut [u64],
//! #         site: tfgc_ir::CallSiteId) {
//! let analyses = Analyses::compute(prog);
//! let mut meta = GcMeta::build(prog, &analyses, Strategy::Compiled);
//! let descs = DescArena::new();
//! let mut stats = GcStats::default();
//! let mut obs = tfgc_obs::Obs::null(); // or Obs::ring(n) to record events
//! collect(&mut meta, prog, heap, &descs, &mut stats, &mut obs, MachineRoots {
//!     stacks: vec![StackRoots { stack, top_fp: 0, current_site: site }],
//!     globals, operands, operand_stack: 0,
//! }, false); // `true` = minor (nursery-only) cycle on a generational heap
//! # }
//! ```

pub mod bytes;
pub mod cache;
pub mod collect;
pub mod collect_tagged;
pub mod desc;
pub mod ground;
pub mod meta;
pub mod plan;
pub mod routines;
pub mod rtval;
pub mod stack;
pub mod stats;
pub mod strategy;
pub mod sx;

pub use cache::RtCache;
pub use collect::{collect_tagfree, CollectorScratch, MachineRoots, StackRoots};
pub use desc::{DescArena, DescId, DescNode};
pub use ground::{GroundTable, TypeRt, TypeRtId};
pub use meta::{Analyses, CalleePlan, FnGcMeta, GcMeta, SiteMeta};
pub use plan::{PlanId, PlanKind, PlanOp, PlanOps, PlanStore, VariantPlan, NOOP_PLAN};
pub use routines::{FrameRoutine, FrameRoutineId, RoutineTable, TraceOp, NO_TRACE};
pub use rtval::{EvalCx, RtVal};
pub use stack::{
    pack_ret, unpack_ret, walk_frames, walk_frames_into, FrameInfo, FRAME_HDR, MAIN_RET, NO_FP,
};
pub use stats::GcStats;
pub use strategy::Strategy;
pub use sx::{SxId, SxTable, TypeSx};

use tfgc_ir::IrProgram;
use tfgc_obs::Obs;
use tfgc_runtime::Heap;

/// Runs one collection under the metadata's strategy. Collection events
/// (begin/end, frame visits, routine runs, object copies) flow into
/// `obs`; pass [`Obs::null`] for an unobserved collection. `minor`
/// requests a nursery-only cycle on a generational heap; pass `false`
/// for the classic full semispace flip (the only legal value on a
/// single-generation heap).
#[allow(clippy::too_many_arguments)]
pub fn collect(
    meta: &mut GcMeta,
    prog: &IrProgram,
    heap: &mut Heap,
    descs: &DescArena,
    stats: &mut GcStats,
    obs: &mut Obs,
    roots: MachineRoots<'_>,
    minor: bool,
) {
    match meta.strategy {
        Strategy::Tagged => collect_tagged::collect_tagged(prog, heap, stats, obs, roots, minor),
        _ => collect_tagfree(meta, prog, heap, descs, stats, obs, roots, minor),
    }
}
