//! Activation-record stack layout (Figure 1).
//!
//! One contiguous word array holds every frame:
//!
//! ```text
//! fp + 0 : saved_fp      (dynamic link; NO_FP for the bottom frame)
//! fp + 1 : return word   (call-site id + destination slot in the caller)
//! fp + 2 : slot 0
//!        : ...
//! ```
//!
//! The return word is the moral equivalent of the paper's return address:
//! it identifies the *call instruction in the caller* at which that frame
//! is suspended, and therefore (via the program's gc_word table) both the
//! caller's `frame_gc_routine` and — through `CallSite::fn_id` — which
//! function the caller is. "We are able to determine the garbage
//! collection routines for each local variable by using the return
//! address pointers that are already stored in the stack" (§1.1).

use tfgc_ir::{CallSiteId, FnId, IrProgram, Slot};
use tfgc_runtime::Word;

/// Words of frame header before the slots.
pub const FRAME_HDR: usize = 2;

/// Sentinel dynamic link of the bottom frame.
pub const NO_FP: Word = u64::MAX;

/// Return word of the bottom frame (never consulted).
pub const MAIN_RET: Word = u64::MAX;

/// Packs a return word: the call site suspended at, and the caller slot
/// that receives the result.
pub fn pack_ret(site: CallSiteId, dst: Slot) -> Word {
    u64::from(site.0) | (u64::from(dst.0) << 32)
}

/// Unpacks a return word.
pub fn unpack_ret(w: Word) -> (CallSiteId, Slot) {
    (CallSiteId(w as u32), Slot((w >> 32) as u16))
}

/// One decoded frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// Base index of the frame in the stack array.
    pub fp: usize,
    /// The function whose activation record this is.
    pub fn_id: FnId,
    /// The call site this frame is suspended at (its gc_word key).
    pub site: CallSiteId,
}

/// Decodes the dynamic chain, newest frame first — the traversal order of
/// Figure 2's collector loop. `current_site` is the site the newest frame
/// is executing (the allocation that triggered the collection, or the
/// call a task is suspended at).
pub fn walk_frames(
    stack: &[Word],
    top_fp: usize,
    current_site: CallSiteId,
    prog: &IrProgram,
) -> Vec<FrameInfo> {
    let mut frames = Vec::new();
    walk_frames_into(&mut frames, stack, top_fp, current_site, prog);
    frames
}

/// [`walk_frames`] into a caller-owned vector: the collector reuses one
/// scratch vector across collections so a deep stack is decoded without
/// reallocating every pause. Clears `out` first.
pub fn walk_frames_into(
    out: &mut Vec<FrameInfo>,
    stack: &[Word],
    top_fp: usize,
    current_site: CallSiteId,
    prog: &IrProgram,
) {
    out.clear();
    let mut fp = top_fp;
    let mut site = current_site;
    loop {
        let fn_id = prog.site(site).fn_id;
        out.push(FrameInfo { fp, fn_id, site });
        let saved = stack[fp];
        if saved == NO_FP {
            break;
        }
        let (caller_site, _) = unpack_ret(stack[fp + 1]);
        fp = saved as usize;
        site = caller_site;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ret_word_roundtrip() {
        let w = pack_ret(CallSiteId(123456), Slot(789));
        assert_eq!(unpack_ret(w), (CallSiteId(123456), Slot(789)));
    }

    #[test]
    fn sentinels_are_distinct_from_real_values() {
        assert_ne!(pack_ret(CallSiteId(0), Slot(0)), NO_FP);
        assert_ne!(pack_ret(CallSiteId(u32::MAX - 1), Slot(u16::MAX)), MAIN_RET);
    }
}
