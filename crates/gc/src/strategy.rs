//! Collection strategies under comparison.

use std::fmt;
use tfgc_runtime::HeapMode;

/// Which collector and metadata generator a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// The paper's compiled method (§2, §3) with live-variable analysis
    /// (§5.2) and GC-point analysis (§5.1): per-call-site frame routines
    /// tracing live slots only.
    Compiled,
    /// Ablation: compiled routines tracing every definitely-assigned slot
    /// (liveness off) — isolates §5.2's contribution.
    CompiledNoLiveness,
    /// The interpreted method (§1.1, §2.4): per-site byte descriptors
    /// walked at collection time; smaller metadata, slower tracing.
    Interpreted,
    /// Appel's single-descriptor-per-procedure scheme as §1.1.1 describes
    /// it: one routine per function covering every variable (frames must
    /// be zero-initialized), with the backward type-resolution walk for
    /// polymorphic frames.
    AppelPerFn,
    /// The tagged baseline of "current implementations" (§1): low-bit
    /// tags identify pointers, objects carry headers, the collector scans
    /// every frame word without compiler metadata.
    Tagged,
}

impl Strategy {
    /// All strategies, for experiment sweeps.
    pub const ALL: [Strategy; 5] = [
        Strategy::Compiled,
        Strategy::CompiledNoLiveness,
        Strategy::Interpreted,
        Strategy::AppelPerFn,
        Strategy::Tagged,
    ];

    /// The heap encoding this strategy runs under.
    pub fn heap_mode(self) -> HeapMode {
        match self {
            Strategy::Tagged => HeapMode::Tagged,
            _ => HeapMode::TagFree,
        }
    }

    /// Must the VM zero-initialize frame slots at entry? True for the
    /// strategies that cannot consult per-site initialization information
    /// (§1.1.1's uninitialized-variable problem).
    pub fn requires_frame_init(self) -> bool {
        matches!(self, Strategy::AppelPerFn | Strategy::Tagged)
    }

    /// Does metadata generation apply live-variable analysis?
    pub fn uses_liveness(self) -> bool {
        matches!(self, Strategy::Compiled | Strategy::Interpreted)
    }

    /// Does metadata generation omit gc_words at proven non-GC sites
    /// (§5.1)?
    pub fn uses_gc_points(self) -> bool {
        matches!(
            self,
            Strategy::Compiled | Strategy::CompiledNoLiveness | Strategy::Interpreted
        )
    }

    /// Stable short name (CLI `--strategy` values, JSON exports, event
    /// labels). [`fmt::Display`] renders the same string.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Compiled => "compiled",
            Strategy::CompiledNoLiveness => "compiled-nolive",
            Strategy::Interpreted => "interpreted",
            Strategy::AppelPerFn => "appel",
            Strategy::Tagged => "tagged",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_and_flags() {
        assert_eq!(Strategy::Tagged.heap_mode(), HeapMode::Tagged);
        assert_eq!(Strategy::Compiled.heap_mode(), HeapMode::TagFree);
        assert!(Strategy::AppelPerFn.requires_frame_init());
        assert!(!Strategy::Compiled.requires_frame_init());
        assert!(Strategy::Compiled.uses_liveness());
        assert!(!Strategy::CompiledNoLiveness.uses_liveness());
        assert!(!Strategy::AppelPerFn.uses_gc_points());
    }

    #[test]
    fn display_names_are_distinct() {
        let names: std::collections::HashSet<String> =
            Strategy::ALL.iter().map(|s| s.to_string()).collect();
        assert_eq!(names.len(), Strategy::ALL.len());
    }
}
