//! The tagged baseline collector.
//!
//! What "current implementations of ML" did (§1): every word carries a
//! low-bit tag distinguishing pointers from integers, every heap object
//! carries a header word with its size, and the collector needs **no
//! compiler-generated metadata at all** — it scans every slot of every
//! activation record, follows everything even-tagged, and copies
//! header-delimited objects.
//!
//! The costs the paper attributes to this design are all observable here:
//! header words (E1), tag arithmetic in the mutator (E2, in the VM), and
//! the inability to skip dead variables (E3) — this collector cannot know
//! which slots are live, so it traces them all.

use crate::stack::{walk_frames, FRAME_HDR};
use crate::stats::GcStats;
use std::time::Instant;
use tfgc_ir::IrProgram;
use tfgc_obs::{CollectionKind, GcEvent, Obs};
use tfgc_runtime::{Addr, Encoding, Heap, HeapMode, Word, HEAP_BASE};

use crate::collect::MachineRoots;

/// Runs one tagged collection. `minor` requests a nursery-only cycle on
/// a generational heap (see `collect_tagfree`): tags still identify
/// pointers, but the heap's phase treats tenured addresses as already
/// relocated and routes survivors to the survivor half or tenured space.
pub fn collect_tagged(
    prog: &IrProgram,
    heap: &mut Heap,
    stats: &mut GcStats,
    obs: &mut Obs,
    mut roots: MachineRoots<'_>,
    minor: bool,
) {
    let kind = if minor {
        CollectionKind::Minor
    } else {
        CollectionKind::Major
    };
    let seq = stats.collections;
    let frames0 = stats.frames_visited;
    let routines0 = stats.routine_invocations;
    let copied0 = heap.stats.words_copied;
    let trigger_site = roots
        .stacks
        .get(roots.operand_stack)
        .map_or(0, |sr| sr.current_site.0);
    obs.emit(|t_ns| GcEvent::CollectionBegin {
        t_ns,
        seq,
        kind,
        strategy: "tagged",
        trigger_site,
        heap_used_before: heap.used() as u64,
    });
    // Pause clock starts after the begin event: sink overhead must not
    // count as collection time (see collect_tagfree).
    let t0 = Instant::now();
    heap.begin_collection(minor);
    let enc = Encoding::new(HeapMode::Tagged);
    let mut scan: Vec<(Addr, usize)> = Vec::new();

    // Globals.
    for w in roots.globals.iter_mut() {
        *w = reloc(heap, enc, stats, obs, seq, &mut scan, *w);
    }

    // Every slot of every frame of every task — "every variable in every
    // activation record on the stack" (§1).
    for sr in roots.stacks.iter_mut() {
        let frames = walk_frames(sr.stack, sr.top_fp, sr.current_site, prog);
        stats.frames_visited += frames.len() as u64;
        for fr in &frames {
            stats.routine_invocations += 1;
            let n_slots = prog.fun(fr.fn_id).slots.len();
            obs.emit(|_| GcEvent::FrameVisit {
                seq,
                fn_id: fr.fn_id.0,
                site: fr.site.0,
            });
            obs.emit(|_| GcEvent::RoutineRun {
                seq,
                site: fr.site.0,
                ops: n_slots as u32,
            });
            for i in 0..n_slots {
                let idx = fr.fp + FRAME_HDR + i;
                stats.words_scanned_tagged += 1;
                sr.stack[idx] = reloc(heap, enc, stats, obs, seq, &mut scan, sr.stack[idx]);
            }
        }
    }

    // Pending allocation operands.
    for w in roots.operands.iter_mut() {
        *w = reloc(heap, enc, stats, obs, seq, &mut scan, *w);
    }

    // Cheney scan of copied objects: fields identify themselves by tag.
    while let Some((addr, len)) = scan.pop() {
        for i in 0..len {
            let off = (i + 1) as u16; // skip the header word
            stats.words_scanned_tagged += 1;
            let w = heap.read(addr, off);
            let nw = reloc(heap, enc, stats, obs, seq, &mut scan, w);
            heap.write(addr, off, nw);
        }
    }

    heap.finish_collection();
    stats.collections += 1;
    if minor {
        stats.minor_collections += 1;
        stats.promoted_words += heap.last_promoted_words();
        stats.died_young_words += heap.last_died_young_words();
    } else {
        stats.major_collections += 1;
    }
    let pause = t0.elapsed().as_nanos() as u64;
    stats.pause_nanos += pause;
    obs.emit(|t_ns| GcEvent::CollectionEnd {
        t_ns,
        seq,
        kind,
        pause_ns: pause,
        heap_used_after: heap.used() as u64,
        words_copied: heap.stats.words_copied - copied0,
        frames_visited: stats.frames_visited - frames0,
        routine_invocations: stats.routine_invocations - routines0,
        rt_nodes_built: 0,
        rt_cache_hits: 0,
        rt_cache_misses: 0,
        // The tagged baseline has no routines to lower: header-directed
        // scanning is already a linear plan.
        plan_hits: 0,
        plan_misses: 0,
        plans_compiled: 0,
    });
}

/// Relocates one tagged word: odd = integer (skip), even = pointer to a
/// header-prefixed object.
fn reloc(
    heap: &mut Heap,
    enc: Encoding,
    _stats: &mut GcStats,
    obs: &mut Obs,
    seq: u64,
    scan: &mut Vec<(Addr, usize)>,
    w: Word,
) -> Word {
    if !enc.is_tagged_ptr(w) {
        return w;
    }
    let a = enc.addr_of(w);
    debug_assert!(a.0 >= HEAP_BASE, "tagged pointer below heap base");
    if heap.in_to(a) {
        return w;
    }
    if let Some(n) = heap.forward_of(a) {
        return enc.ptr(n);
    }
    // Header word = payload length (raw).
    let len = heap.read(a, 0) as usize;
    let new = heap.copy_out(a, len + 1);
    heap.set_forward(a, new);
    obs.emit(|_| GcEvent::ObjectCopied {
        seq,
        from: a.0,
        to: new.0,
        words: (len + 1) as u32,
    });
    scan.push((new, len));
    enc.ptr(new)
}
