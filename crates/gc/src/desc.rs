//! Runtime type descriptors.
//!
//! The completion mechanism for the polymorphic cases Goldberg '91 leaves
//! open (see `tfgc_ir::rtti`): a closure whose captures' types are not
//! determined by its own type carries descriptor words for the missing
//! parameters, built by the mutator at closure-creation time.
//!
//! Descriptors are **interned in a side arena**, never allocated on the
//! TFML heap: a descriptor word in a slot or closure field is an arena
//! index, which the collector treats like an integer (`const_gc`). This
//! keeps descriptor construction allocation-free (no GC reentrancy) and
//! keeps the paper's zero-heap-overhead claim intact for programs that
//! never need descriptors.

use std::collections::HashMap;
use tfgc_types::{DataId, ParamId, Type};

/// Index of an interned descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DescId(pub u32);

/// One interned descriptor node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DescNode {
    /// No heap pointers (int/bool/unit).
    Prim,
    /// Opaque (locally quantified) — traced as no pointers.
    Opaque,
    /// Tuple of fields.
    Tuple(Vec<DescId>),
    /// Datatype instance.
    Data(DataId, Vec<DescId>),
    /// Function value.
    Arrow(DescId, DescId),
}

/// Hash-consing arena for descriptors.
#[derive(Debug, Default, Clone)]
pub struct DescArena {
    nodes: Vec<DescNode>,
    index: HashMap<DescNode, DescId>,
    /// Interning operations performed (mutator-side RTTI cost metric).
    pub intern_ops: u64,
}

impl DescArena {
    /// An empty arena.
    pub fn new() -> Self {
        DescArena::default()
    }

    /// Interns a node.
    pub fn intern(&mut self, n: DescNode) -> DescId {
        self.intern_ops += 1;
        if let Some(id) = self.index.get(&n) {
            return *id;
        }
        let id = DescId(self.nodes.len() as u32);
        self.nodes.push(n.clone());
        self.index.insert(n, id);
        id
    }

    /// The node behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this arena.
    pub fn node(&self, id: DescId) -> &DescNode {
        &self.nodes[id.0 as usize]
    }

    /// Number of distinct descriptors interned.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Builds the descriptor for `ty`, resolving generic parameters
    /// through `lookup` (a frame's descriptor slots at `EvalDesc` time).
    /// Parameters with no entry are opaque.
    pub fn eval_type(&mut self, ty: &Type, lookup: &impl Fn(ParamId) -> Option<DescId>) -> DescId {
        match ty {
            Type::Int | Type::Bool | Type::Unit => self.intern(DescNode::Prim),
            Type::Var(_) => self.intern(DescNode::Prim),
            Type::Param(p) => match lookup(*p) {
                Some(d) => d,
                None => self.intern(DescNode::Opaque),
            },
            Type::Tuple(ts) => {
                let ds = ts.iter().map(|t| self.eval_type(t, lookup)).collect();
                self.intern(DescNode::Tuple(ds))
            }
            Type::Data(d, ts) => {
                let ds = ts.iter().map(|t| self.eval_type(t, lookup)).collect();
                self.intern(DescNode::Data(*d, ds))
            }
            Type::Arrow(a, b) => {
                let da = self.eval_type(a, lookup);
                let db = self.eval_type(b, lookup);
                self.intern(DescNode::Arrow(da, db))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        let mut a = DescArena::new();
        let p1 = a.intern(DescNode::Prim);
        let p2 = a.intern(DescNode::Prim);
        assert_eq!(p1, p2);
        assert_eq!(a.len(), 1);
        assert_eq!(a.intern_ops, 2);
    }

    #[test]
    fn eval_ground_type() {
        let mut a = DescArena::new();
        let d = a.eval_type(&Type::list(Type::Int), &|_| None);
        match a.node(d) {
            DescNode::Data(data, args) => {
                assert_eq!(*data, tfgc_types::LIST_DATA);
                assert_eq!(a.node(args[0]), &DescNode::Prim);
            }
            other => panic!("expected data node, got {other:?}"),
        }
    }

    #[test]
    fn eval_resolves_params() {
        use tfgc_types::{ParamId, SchemeId};
        let mut a = DescArena::new();
        let q = ParamId {
            scheme: SchemeId(1),
            index: 0,
        };
        let bool_desc = a.eval_type(&Type::Bool, &|_| None);
        let d = a.eval_type(&Type::list(Type::Param(q)), &|p| {
            assert_eq!(p, q);
            Some(bool_desc)
        });
        match a.node(d) {
            DescNode::Data(_, args) => assert_eq!(args[0], bool_desc),
            other => panic!("expected data node, got {other:?}"),
        }
    }

    #[test]
    fn unresolved_param_is_opaque() {
        use tfgc_types::{ParamId, SchemeId};
        let mut a = DescArena::new();
        let q = ParamId {
            scheme: SchemeId(9),
            index: 3,
        };
        let d = a.eval_type(&Type::Param(q), &|_| None);
        assert_eq!(a.node(d), &DescNode::Opaque);
    }
}
