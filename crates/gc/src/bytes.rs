//! Byte-encoded type descriptors — the **interpreted method** (§1.1,
//! §2.4).
//!
//! "The gc_word ... would instead point to a descriptor that describes the
//! types of variables in the activation record. Garbage collection would
//! be somewhat slower, since the descriptor would have to be interpreted
//! while traversing the activation record. However, the code size should
//! be significantly less." Experiment E4 runs exactly this trade-off.
//!
//! Encoding (all multi-byte values little-endian):
//!
//! ```text
//! 0x00                 PRIM    (no pointers)
//! 0x01 u16             PARAM   (frame environment index)
//! 0x02 u16 d...        TUPLE   (field count, then field descriptors)
//! 0x03 u32 u8 d...     DATA    (datatype id, arg count, arg descriptors)
//! 0x04 d d             ARROW   (argument and result descriptors)
//! ```
//!
//! Datatype variants are described once per datatype in a side table whose
//! field descriptors use `PARAM` for the datatype's own parameters.

use std::collections::HashMap;
use tfgc_ir::IrProgram;
use tfgc_types::{data_scheme, DataId, ParamId, SchemeId, Type};

const OP_PRIM: u8 = 0;
const OP_PARAM: u8 = 1;
const OP_TUPLE: u8 = 2;
const OP_DATA: u8 = 3;
const OP_ARROW: u8 = 4;

/// The descriptor pool plus per-datatype variant tables.
#[derive(Debug, Clone, Default)]
pub struct BytePool {
    bytes: Vec<u8>,
    dedup: HashMap<Vec<u8>, u32>,
    /// `data_fields[data][ctor]` = positions of each field's descriptor.
    pub data_fields: Vec<Vec<Vec<u32>>>,
}

/// A parsed descriptor head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DescView {
    Prim,
    Param(u16),
    Tuple(Vec<u32>),
    Data(DataId, Vec<u32>),
    Arrow(u32, u32),
}

impl BytePool {
    /// Builds the pool with variant tables for every datatype of `prog`.
    pub fn new(prog: &IrProgram) -> BytePool {
        let mut pool = BytePool::default();
        for (id, def) in prog.data_env.iter() {
            let scheme = data_scheme(id);
            let param_index: HashMap<ParamId, u16> = (0..def.arity)
                .map(|i| (ParamId { scheme, index: i }, i as u16))
                .collect();
            let table: Vec<Vec<u32>> = def
                .ctors
                .iter()
                .map(|c| {
                    c.fields
                        .iter()
                        .map(|ft| pool.encode_type(ft, &param_index, &[]))
                        .collect()
                })
                .collect();
            pool.data_fields.push(table);
        }
        pool
    }

    /// Total descriptor bytes (the interpreted method's metadata size).
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Encodes `ty`, interning duplicates. Returns the descriptor's
    /// position.
    pub fn encode_type(
        &mut self,
        ty: &Type,
        param_index: &HashMap<ParamId, u16>,
        opaque: &[SchemeId],
    ) -> u32 {
        let mut buf = Vec::new();
        encode_into(ty, param_index, opaque, &mut buf);
        if let Some(pos) = self.dedup.get(&buf) {
            return *pos;
        }
        let pos = self.bytes.len() as u32;
        self.bytes.extend_from_slice(&buf);
        self.dedup.insert(buf, pos);
        pos
    }

    /// Parses the descriptor head at `pos`, collecting child positions
    /// (this sequential decode *is* the interpretation cost; the caller
    /// accounts `bytes_read`).
    pub fn parse(&self, pos: u32, bytes_read: &mut u64) -> DescView {
        let mut cur = pos as usize;

        self.parse_at(&mut cur, bytes_read, true)
    }

    fn parse_at(&self, cur: &mut usize, bytes_read: &mut u64, top: bool) -> DescView {
        let op = self.bytes[*cur];
        *cur += 1;
        *bytes_read += 1;
        match op {
            OP_PRIM => DescView::Prim,
            OP_PARAM => {
                let i = self.read_u16(cur, bytes_read);
                DescView::Param(i)
            }
            OP_TUPLE => {
                let n = self.read_u16(cur, bytes_read) as usize;
                let mut fields = Vec::with_capacity(n);
                for _ in 0..n {
                    fields.push(*cur as u32);
                    self.skip(cur, bytes_read);
                }
                DescView::Tuple(fields)
            }
            OP_DATA => {
                let d = self.read_u32(cur, bytes_read);
                let n = self.bytes[*cur] as usize;
                *cur += 1;
                *bytes_read += 1;
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    args.push(*cur as u32);
                    self.skip(cur, bytes_read);
                }
                DescView::Data(DataId(d), args)
            }
            OP_ARROW => {
                let a = *cur as u32;
                self.skip(cur, bytes_read);
                let b = *cur as u32;
                if top {
                    // The result descriptor is only parsed on demand.
                }
                DescView::Arrow(a, b)
            }
            other => panic!("corrupt descriptor opcode {other}"),
        }
    }

    /// Skips one descriptor, advancing `cur` (counted: real interpreters
    /// pay to find sibling fields).
    fn skip(&self, cur: &mut usize, bytes_read: &mut u64) {
        let op = self.bytes[*cur];
        *cur += 1;
        *bytes_read += 1;
        match op {
            OP_PRIM => {}
            OP_PARAM => {
                *cur += 2;
                *bytes_read += 2;
            }
            OP_TUPLE => {
                let n = self.read_u16(cur, bytes_read) as usize;
                for _ in 0..n {
                    self.skip(cur, bytes_read);
                }
            }
            OP_DATA => {
                *cur += 4;
                *bytes_read += 4;
                let n = self.bytes[*cur] as usize;
                *cur += 1;
                *bytes_read += 1;
                for _ in 0..n {
                    self.skip(cur, bytes_read);
                }
            }
            OP_ARROW => {
                self.skip(cur, bytes_read);
                self.skip(cur, bytes_read);
            }
            other => panic!("corrupt descriptor opcode {other}"),
        }
    }

    fn read_u16(&self, cur: &mut usize, bytes_read: &mut u64) -> u16 {
        let v = u16::from_le_bytes([self.bytes[*cur], self.bytes[*cur + 1]]);
        *cur += 2;
        *bytes_read += 2;
        v
    }

    fn read_u32(&self, cur: &mut usize, bytes_read: &mut u64) -> u32 {
        let v = u32::from_le_bytes([
            self.bytes[*cur],
            self.bytes[*cur + 1],
            self.bytes[*cur + 2],
            self.bytes[*cur + 3],
        ]);
        *cur += 4;
        *bytes_read += 4;
        v
    }
}

fn encode_into(
    ty: &Type,
    param_index: &HashMap<ParamId, u16>,
    opaque: &[SchemeId],
    out: &mut Vec<u8>,
) {
    match ty {
        Type::Int | Type::Bool | Type::Unit | Type::Var(_) => out.push(OP_PRIM),
        Type::Param(p) => {
            if opaque.binary_search(&p.scheme).is_ok() {
                out.push(OP_PRIM);
            } else if let Some(i) = param_index.get(p) {
                out.push(OP_PARAM);
                out.extend_from_slice(&i.to_le_bytes());
            } else {
                out.push(OP_PRIM);
            }
        }
        Type::Tuple(ts) => {
            out.push(OP_TUPLE);
            out.extend_from_slice(&(ts.len() as u16).to_le_bytes());
            for t in ts {
                encode_into(t, param_index, opaque, out);
            }
        }
        Type::Data(d, ts) => {
            out.push(OP_DATA);
            out.extend_from_slice(&d.0.to_le_bytes());
            out.push(ts.len() as u8);
            for t in ts {
                encode_into(t, param_index, opaque, out);
            }
        }
        Type::Arrow(a, b) => {
            out.push(OP_ARROW);
            encode_into(a, param_index, opaque, out);
            encode_into(b, param_index, opaque, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_ir::lower;
    use tfgc_syntax::parse_program;
    use tfgc_types::elaborate;

    fn prog(src: &str) -> IrProgram {
        lower(&elaborate(&parse_program(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn roundtrip_int_list() {
        let p = prog("[1]");
        let mut pool = BytePool::new(&p);
        let pos = pool.encode_type(&Type::list(Type::Int), &HashMap::new(), &[]);
        let mut n = 0;
        match pool.parse(pos, &mut n) {
            DescView::Data(d, args) => {
                assert_eq!(d, tfgc_types::LIST_DATA);
                assert_eq!(args.len(), 1);
                assert_eq!(pool.parse(args[0], &mut n), DescView::Prim);
            }
            other => panic!("expected data, got {other:?}"),
        }
        assert!(n > 0, "interpretation reads bytes");
    }

    #[test]
    fn encoding_dedups() {
        let p = prog("[1]");
        let mut pool = BytePool::new(&p);
        let a = pool.encode_type(&Type::list(Type::Int), &HashMap::new(), &[]);
        let before = pool.size_bytes();
        let b = pool.encode_type(&Type::list(Type::Int), &HashMap::new(), &[]);
        assert_eq!(a, b);
        assert_eq!(pool.size_bytes(), before);
    }

    #[test]
    fn data_tables_describe_cons() {
        let p = prog("[1]");
        let pool = BytePool::new(&p);
        // list: Nil has no fields; Cons has [PARAM 0, DATA list [PARAM 0]].
        let cons = &pool.data_fields[0][1];
        assert_eq!(cons.len(), 2);
        let mut n = 0;
        assert_eq!(pool.parse(cons[0], &mut n), DescView::Param(0));
        match pool.parse(cons[1], &mut n) {
            DescView::Data(d, args) => {
                assert_eq!(d, tfgc_types::LIST_DATA);
                assert_eq!(pool.parse(args[0], &mut n), DescView::Param(0));
            }
            other => panic!("expected data, got {other:?}"),
        }
    }

    #[test]
    fn tuple_field_positions_are_sequential() {
        let p = prog("0");
        let mut pool = BytePool::new(&p);
        let pos = pool.encode_type(
            &Type::Tuple(vec![Type::Int, Type::list(Type::Int), Type::Bool]),
            &HashMap::new(),
            &[],
        );
        let mut n = 0;
        match pool.parse(pos, &mut n) {
            DescView::Tuple(fields) => {
                assert_eq!(fields.len(), 3);
                assert_eq!(pool.parse(fields[0], &mut n), DescView::Prim);
                assert!(matches!(
                    pool.parse(fields[1], &mut n),
                    DescView::Data(_, _)
                ));
                assert_eq!(pool.parse(fields[2], &mut n), DescView::Prim);
            }
            other => panic!("expected tuple, got {other:?}"),
        }
    }

    #[test]
    fn arrow_roundtrip() {
        let p = prog("0");
        let mut pool = BytePool::new(&p);
        let pos = pool.encode_type(
            &Type::arrow(Type::list(Type::Int), Type::Int),
            &HashMap::new(),
            &[],
        );
        let mut n = 0;
        match pool.parse(pos, &mut n) {
            DescView::Arrow(a, _) => {
                assert!(matches!(pool.parse(a, &mut n), DescView::Data(_, _)));
            }
            other => panic!("expected arrow, got {other:?}"),
        }
    }
}
