//! Direct tests of the collector's stack decoding and metadata helpers
//! (complementing the end-to-end VM tests).

use tfgc_gc::{
    pack_ret, walk_frames, Analyses, GcMeta, Strategy, FRAME_HDR, MAIN_RET, NO_FP, NO_TRACE,
};
use tfgc_ir::{lower, IrProgram, Slot};
use tfgc_syntax::parse_program;
use tfgc_types::elaborate;

fn compile(src: &str) -> IrProgram {
    lower(&elaborate(&parse_program(src).unwrap()).unwrap()).unwrap()
}

/// Hand-builds a three-frame stack (main → f → g) and checks that the
/// walker recovers the chain exactly as Figure 2's loop would.
#[test]
fn walk_frames_decodes_a_hand_built_chain() {
    let p = compile(
        "fun g n = (n, n) ;
         fun f n = g (n + 1) ;
         f 1",
    );
    // Find the sites: main calls f; f calls g; g allocates a tuple.
    let site_main_f = p
        .sites
        .iter()
        .find(|s| s.fn_id == p.main && matches!(s.kind, tfgc_ir::SiteKind::Direct { .. }))
        .unwrap();
    let f_id = match &site_main_f.kind {
        tfgc_ir::SiteKind::Direct { callee, .. } => *callee,
        _ => unreachable!(),
    };
    let site_f_g = p
        .sites
        .iter()
        .find(|s| s.fn_id == f_id && matches!(s.kind, tfgc_ir::SiteKind::Direct { .. }))
        .unwrap();
    let g_id = match &site_f_g.kind {
        tfgc_ir::SiteKind::Direct { callee, .. } => *callee,
        _ => unreachable!(),
    };
    let site_alloc = p
        .sites
        .iter()
        .find(|s| s.fn_id == g_id && matches!(s.kind, tfgc_ir::SiteKind::Alloc { .. }))
        .unwrap();

    // Stack: [main frame][f frame][g frame], newest suspended at the
    // allocation.
    let mut stack: Vec<u64> = Vec::new();
    let main_slots = p.fun(p.main).slots.len();
    let f_slots = p.funs[f_id.0 as usize].slots.len();
    let g_slots = p.funs[g_id.0 as usize].slots.len();
    // main
    stack.push(NO_FP);
    stack.push(MAIN_RET);
    stack.extend(std::iter::repeat_n(0, main_slots));
    let f_fp = stack.len();
    stack.push(0); // saved fp = main's base
    stack.push(pack_ret(site_main_f.id, Slot(0)));
    stack.extend(std::iter::repeat_n(0, f_slots));
    let g_fp = stack.len();
    stack.push(f_fp as u64);
    stack.push(pack_ret(site_f_g.id, Slot(0)));
    stack.extend(std::iter::repeat_n(0, g_slots));

    let frames = walk_frames(&stack, g_fp, site_alloc.id, &p);
    assert_eq!(frames.len(), 3);
    assert_eq!(frames[0].fn_id, g_id);
    assert_eq!(frames[0].site, site_alloc.id);
    assert_eq!(frames[1].fn_id, f_id);
    assert_eq!(frames[1].site, site_f_g.id);
    assert_eq!(frames[2].fn_id, p.main);
    assert_eq!(frames[2].site, site_main_f.id);
    assert_eq!(frames[0].fp, g_fp);
    assert_eq!(frames[2].fp, 0);
    let _ = FRAME_HDR;
}

#[test]
fn multi_task_metadata_keeps_every_gc_word() {
    let p = compile("fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) ; fib 10");
    let an = Analyses::compute(&p);
    let seq = GcMeta::build(&p, &an, Strategy::Compiled);
    let multi = GcMeta::build_multi_task(&p, &an, Strategy::Compiled);
    assert!(
        seq.omitted_gc_words() > 0,
        "sequential omits fib's gc_words"
    );
    assert_eq!(multi.omitted_gc_words(), 0, "multi-task keeps them all");
}

#[test]
fn metadata_is_deterministic() {
    let src = "fun map f xs = case xs of [] => [] | x :: r => f x :: map f r ;
               map (fn x => (x, x)) [1, 2, 3]";
    let p1 = compile(src);
    let p2 = compile(src);
    let m1 = GcMeta::build(&p1, &Analyses::compute(&p1), Strategy::Compiled);
    let m2 = GcMeta::build(&p2, &Analyses::compute(&p2), Strategy::Compiled);
    assert_eq!(m1.metadata_bytes(), m2.metadata_bytes());
    assert_eq!(m1.distinct_routines(), m2.distinct_routines());
    assert_eq!(m1.omitted_gc_words(), m2.omitted_gc_words());
    let r1: Vec<_> = m1.sites.iter().map(|s| s.routine).collect();
    let r2: Vec<_> = m2.sites.iter().map(|s| s.routine).collect();
    assert_eq!(r1, r2);
}

#[test]
fn appel_metadata_never_omits() {
    let p = compile("fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) ; fib 5");
    let an = Analyses::compute(&p);
    let meta = GcMeta::build(&p, &an, Strategy::AppelPerFn);
    assert_eq!(meta.omitted_gc_words(), 0);
}

#[test]
fn strategies_share_no_trace_id_zero() {
    let p = compile("fun id x = x ; id 1");
    let an = Analyses::compute(&p);
    for s in [
        Strategy::Compiled,
        Strategy::CompiledNoLiveness,
        Strategy::Interpreted,
        Strategy::AppelPerFn,
    ] {
        let meta = GcMeta::build(&p, &an, s);
        assert!(meta.routines.routine(NO_TRACE).ops.is_empty(), "{s}");
    }
}

#[test]
fn interpreted_metadata_is_smaller_on_rich_types() {
    let src = "datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree ;
               fun insert t x = case t of Leaf => Node (Leaf, x, Leaf)
                 | Node (l, v, r) => if x < v then Node (insert l x, v, r)
                   else Node (l, v, insert r x) ;
               fun build n = if n = 0 then Leaf else insert (build (n - 1)) n ;
               fun size t = case t of Leaf => 0 | Node (l, _, r) => 1 + size l + size r ;
               let val t = build 6 in (build 3; size t) end";
    let p = compile(src);
    let an = Analyses::compute(&p);
    let compiled = GcMeta::build(&p, &an, Strategy::Compiled);
    let interp = GcMeta::build(&p, &an, Strategy::Interpreted);
    assert!(
        interp.pool.size_bytes() < compiled.metadata_bytes(),
        "descriptors {} must be under compiled {}",
        interp.pool.size_bytes(),
        compiled.metadata_bytes()
    );
}

#[test]
fn cons_cell_is_two_words_like_the_paper() {
    let p = compile("[1]");
    let rep = p.ctor_rep(tfgc_types::LIST_DATA, tfgc_types::CONS_TAG);
    assert_eq!(rep.heap_words(), 2, "the paper's cons_cell");
    let nil = p.ctor_rep(tfgc_types::LIST_DATA, tfgc_types::NIL_TAG);
    assert_eq!(nil.heap_words(), 0, "nil is NULL");
}
