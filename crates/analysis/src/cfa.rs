//! Closure-flow analysis (a light 0-CFA).
//!
//! §5.1 computes GC points with a first-order fixpoint and remarks that "a
//! similar analysis on programs with higher order functions is more
//! difficult", pointing at abstract interpretation. This module is that
//! extension: a flow-insensitive, context-insensitive propagation of
//! closure *targets* through slots, calls, and returns. A closure value
//! that escapes into the heap (stored in a tuple/datatype/another
//! closure's environment) degrades to ⊤ = "any closure-entered function",
//! which is exactly the paper's original approximation — so the analysis
//! only ever refines it.
//!
//! [`crate::gcpoints::GcPoints::compute_refined`] consumes the result:
//! a closure-call site may trigger a collection only if one of its
//! possible targets may.

use std::collections::BTreeSet;
use tfgc_ir::{FnId, FnKind, Instr, IrProgram};

/// The abstract value of a slot: which closure-entered functions could a
/// closure stored here belong to?
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowVal {
    /// Nothing known to be a closure (integers, data, never-assigned).
    Bot,
    /// A closure over one of exactly these functions.
    Fns(BTreeSet<FnId>),
    /// Escaped through the heap: any closure-entered function.
    Top,
}

impl FlowVal {
    fn join_in(&mut self, other: &FlowVal) -> bool {
        match (&mut *self, other) {
            (_, FlowVal::Bot) => false,
            (FlowVal::Top, _) => false,
            (slot @ FlowVal::Bot, v) => {
                *slot = v.clone();
                true
            }
            (FlowVal::Fns(_), FlowVal::Top) => {
                *self = FlowVal::Top;
                true
            }
            (FlowVal::Fns(a), FlowVal::Fns(b)) => {
                let before = a.len();
                a.extend(b.iter().copied());
                a.len() != before
            }
        }
    }
}

/// Result of the flow analysis.
#[derive(Debug, Clone)]
pub struct ClosureFlow {
    /// Per call site id: the possible closure targets of a
    /// `CallClosure` at that site (`None` = not a closure call).
    pub site_targets: Vec<Option<FlowVal>>,
}

impl ClosureFlow {
    /// Runs the fixpoint over the whole program.
    pub fn compute(prog: &IrProgram) -> ClosureFlow {
        let nf = prog.funs.len();
        // Per function: per-slot value, plus the return value.
        let mut slots: Vec<Vec<FlowVal>> = prog
            .funs
            .iter()
            .map(|f| vec![FlowVal::Bot; f.slots.len()])
            .collect();
        let mut rets: Vec<FlowVal> = vec![FlowVal::Bot; nf];
        let all_closures: BTreeSet<FnId> = prog
            .funs
            .iter()
            .enumerate()
            .filter(|(_, f)| f.kind == FnKind::ClosureEntered)
            .map(|(i, _)| FnId(i as u32))
            .collect();

        let mut changed = true;
        while changed {
            changed = false;
            for (fi, f) in prog.funs.iter().enumerate() {
                for ins in &f.code {
                    match ins {
                        Instr::Move(d, s) => {
                            let v = slots[fi][s.0 as usize].clone();
                            changed |= slots[fi][d.0 as usize].join_in(&v);
                        }
                        Instr::MakeClosure { dst, f: target, .. } => {
                            let v = FlowVal::Fns(BTreeSet::from([*target]));
                            changed |= slots[fi][dst.0 as usize].join_in(&v);
                        }
                        // Anything read back out of the heap may be any
                        // escaped closure.
                        Instr::GetField(d, _, _) | Instr::LoadGlobal(d, _) => {
                            changed |= slots[fi][d.0 as usize].join_in(&FlowVal::Top);
                        }
                        Instr::CallDirect {
                            dst,
                            f: callee,
                            args,
                            ..
                        } => {
                            let ci = callee.0 as usize;
                            for (k, a) in args.iter().enumerate() {
                                let v = slots[fi][a.0 as usize].clone();
                                changed |= slots[ci][k].join_in(&v);
                            }
                            let r = rets[ci].clone();
                            changed |= slots[fi][dst.0 as usize].join_in(&r);
                        }
                        Instr::CallClosure { dst, clos, arg, .. } => {
                            let cv = slots[fi][clos.0 as usize].clone();
                            let targets: Vec<FnId> = match &cv {
                                FlowVal::Bot => Vec::new(),
                                FlowVal::Fns(s) => s.iter().copied().collect(),
                                FlowVal::Top => all_closures.iter().copied().collect(),
                            };
                            let av = slots[fi][arg.0 as usize].clone();
                            for t in targets {
                                let ti = t.0 as usize;
                                // slot 0 = the closure itself, slot 1 = arg.
                                changed |= slots[ti][0].join_in(&cv);
                                changed |= slots[ti][1].join_in(&av);
                                let r = rets[ti].clone();
                                changed |= slots[fi][dst.0 as usize].join_in(&r);
                            }
                        }
                        Instr::Return(s) => {
                            let v = slots[fi][s.0 as usize].clone();
                            changed |= rets[fi].join_in(&v);
                        }
                        _ => {}
                    }
                }
            }
        }

        // Summarize per call site.
        let site_targets = prog
            .sites
            .iter()
            .map(|site| match &site.kind {
                tfgc_ir::SiteKind::Closure { clos, .. } => {
                    Some(slots[site.fn_id.0 as usize][clos.0 as usize].clone())
                }
                _ => None,
            })
            .collect();
        ClosureFlow { site_targets }
    }

    /// Possible targets of the closure call at `site` (empty slice for a
    /// precise never-assigned value; `None` = ⊤).
    pub fn targets_of(&self, site: tfgc_ir::CallSiteId) -> Option<Option<&BTreeSet<FnId>>> {
        self.site_targets[site.0 as usize]
            .as_ref()
            .map(|v| match v {
                FlowVal::Top => None,
                FlowVal::Fns(s) => Some(s),
                FlowVal::Bot => Some(EMPTY.get_or_init(BTreeSet::new)),
            })
    }
}

static EMPTY: std::sync::OnceLock<BTreeSet<FnId>> = std::sync::OnceLock::new();

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_ir::lower;
    use tfgc_syntax::parse_program;
    use tfgc_types::elaborate;

    fn compile(src: &str) -> IrProgram {
        lower(&elaborate(&parse_program(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn direct_lambda_flow_is_precise() {
        let p = compile(
            "fun apply f x = f x ;
             apply (fn n => n + 1) 3",
        );
        let flow = ClosureFlow::compute(&p);
        // The closure call inside `apply` sees exactly one target.
        let site = p
            .sites
            .iter()
            .find(|s| matches!(s.kind, tfgc_ir::SiteKind::Closure { .. }))
            .unwrap();
        match flow.targets_of(site.id) {
            Some(Some(ts)) => assert_eq!(ts.len(), 1, "exactly the lambda"),
            other => panic!("expected precise targets, got {other:?}"),
        }
    }

    #[test]
    fn two_lambdas_flow_to_two_targets() {
        let p = compile(
            "fun apply f x = f x ;
             apply (fn n => n + 1) 3 + apply (fn n => n * 2) 4",
        );
        let flow = ClosureFlow::compute(&p);
        let site = p
            .sites
            .iter()
            .find(|s| matches!(s.kind, tfgc_ir::SiteKind::Closure { .. }))
            .unwrap();
        match flow.targets_of(site.id) {
            Some(Some(ts)) => assert_eq!(ts.len(), 2),
            other => panic!("expected two targets, got {other:?}"),
        }
    }

    #[test]
    fn heap_escape_degrades_to_top() {
        // The closure goes through a list; reading it back is ⊤.
        let p = compile(
            "fun first xs = case xs of [] => fn z => z | f :: _ => f ;
             (first [fn n => n + 1]) 5",
        );
        let flow = ClosureFlow::compute(&p);
        let site = p
            .sites
            .iter()
            .rfind(|s| matches!(s.kind, tfgc_ir::SiteKind::Closure { .. }))
            .unwrap();
        assert_eq!(
            flow.targets_of(site.id),
            Some(None),
            "heap-escaped closures are top"
        );
    }
}
